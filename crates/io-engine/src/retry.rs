//! Retry, per-IO deadline and hedged-read policy for the IO engine.
//!
//! Production NVMe stacks survive the failure modes a [`scm_device::FaultPlan`]
//! injects — transient command failures, stuck IOs, latency storms and payload
//! corruption — with three cooperating mechanisms, all reproduced here on the
//! virtual clock so they stay deterministic:
//!
//! * **bounded retry with exponential backoff**: a failed attempt is re-issued
//!   after `backoff_base * backoff_multiplier^(attempt-1)`, up to
//!   `max_attempts` total attempts;
//! * **per-IO deadlines**: an IO whose device latency exceeds `io_deadline`
//!   is abandoned (its queue slot stays occupied until the device would have
//!   finished — the host cannot reclaim silicon) and re-issued, which is what
//!   bounds the damage of stuck IOs;
//! * **hedged reads**: when the primary completion would land later than
//!   `hedge_after` past the attempt start, a duplicate read is issued at that
//!   instant and the first *clean* completion wins — the classic
//!   tail-at-scale defence.
//!
//! The default configuration (3 attempts, deadline and hedging disabled) is
//! bit-identical to the pre-resilience engine whenever no faults fire: the
//! first attempt succeeds, no extra RNG draws, no extra latency.

use crate::error::IoError;
use sdm_metrics::SimDuration;

/// Retry/deadline/hedging knobs, embedded in
/// [`crate::EngineConfig::retry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Total attempts per logical read, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles (or whatever
    /// `backoff_multiplier` says) on each subsequent one.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the backoff per extra attempt.
    pub backoff_multiplier: u32,
    /// Per-IO deadline: an attempt whose device latency exceeds this is
    /// abandoned and retried. [`SimDuration::ZERO`] disables deadlines.
    pub io_deadline: SimDuration,
    /// Hedged reads: when the primary attempt would complete later than
    /// this delay past the attempt start, issue a duplicate read at the
    /// delay mark and take the first clean completion. `None` disables
    /// hedging. Callers typically derive the delay from an observed p99.
    pub hedge_after: Option<SimDuration>,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 3,
            backoff_base: SimDuration::from_micros(10),
            backoff_multiplier: 2,
            io_deadline: SimDuration::ZERO,
            hedge_after: None,
        }
    }
}

impl RetryConfig {
    /// Backoff to wait before re-issuing after the given (1-based) failed
    /// attempt: `backoff_base * backoff_multiplier^(attempt-1)`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(32);
        let factor = u64::from(self.backoff_multiplier.max(1)).saturating_pow(exp);
        self.backoff_base * factor
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::InvalidConfig`] when `max_attempts` is zero.
    pub fn validate(&self) -> Result<(), IoError> {
        if self.max_attempts == 0 {
            return Err(IoError::InvalidConfig {
                reason: "retry.max_attempts must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Cumulative resilience counters of one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Attempts re-issued after a failure (excludes first attempts).
    pub retries: u64,
    /// Attempts failed by a transient device error.
    pub transient_errors: u64,
    /// Attempts whose payload failed end-to-end checksum verification.
    /// Every detected corruption lands here; none of them is ever
    /// delivered to the caller.
    pub checksum_failures: u64,
    /// Attempts abandoned because they exceeded the per-IO deadline.
    pub deadline_timeouts: u64,
    /// Hedged (duplicate) reads issued.
    pub hedges: u64,
    /// Hedged reads that completed cleanly before the primary.
    pub hedge_wins: u64,
    /// Logical reads that exhausted every attempt and surfaced
    /// [`IoError::RetriesExhausted`] to the caller.
    pub exhausted: u64,
}

impl ResilienceStats {
    /// Total failed attempts across all failure modes.
    pub fn total_failures(&self) -> u64 {
        self.transient_errors + self.checksum_failures + self.deadline_timeouts
    }

    /// Folds another engine's counters into this one (multi-shard hosts).
    pub fn merge(&mut self, other: &ResilienceStats) {
        self.retries += other.retries;
        self.transient_errors += other.transient_errors;
        self.checksum_failures += other.checksum_failures;
        self.deadline_timeouts += other.deadline_timeouts;
        self.hedges += other.hedges;
        self.hedge_wins += other.hedge_wins;
        self.exhausted += other.exhausted;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let cfg = RetryConfig::default();
        assert_eq!(cfg.backoff(1), SimDuration::from_micros(10));
        assert_eq!(cfg.backoff(2), SimDuration::from_micros(20));
        assert_eq!(cfg.backoff(3), SimDuration::from_micros(40));
        // Saturates rather than overflowing for absurd attempt counts.
        assert!(cfg.backoff(200) >= cfg.backoff(3));
    }

    #[test]
    fn zero_attempts_is_invalid() {
        let cfg = RetryConfig {
            max_attempts: 0,
            ..RetryConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(IoError::InvalidConfig { .. })));
        assert!(RetryConfig::default().validate().is_ok());
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = ResilienceStats {
            retries: 1,
            transient_errors: 2,
            checksum_failures: 3,
            deadline_timeouts: 4,
            hedges: 5,
            hedge_wins: 1,
            exhausted: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.retries, 2);
        assert_eq!(a.total_failures(), 18);
        assert_eq!(a.hedge_wins, 2);
    }
}

//! io_uring-like bounded submission / completion queues.

use crate::error::IoError;
use std::collections::VecDeque;

/// One entry travelling through a ring (either direction).
///
/// The engine stores its own richer request/completion types; the ring is a
/// generic bounded FIFO mirroring the submission-queue / completion-queue
/// shape of io_uring so the queue-depth tuning knob has a concrete home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingEntry<T> {
    /// Caller-provided correlation token (io_uring `user_data`).
    pub user_data: u64,
    /// The payload.
    pub payload: T,
}

/// A bounded submission queue + unbounded completion queue pair.
///
/// io_uring's SQ has a fixed depth negotiated at setup time; pushing beyond
/// it fails and the application must reap completions. The CQ is sized at
/// twice the SQ by the kernel, but since our engine never drops completions
/// we model it as unbounded.
///
/// # Example
///
/// ```
/// use io_engine::IoRing;
///
/// let mut ring: IoRing<&'static str> = IoRing::new(2);
/// ring.push_sqe(1, "a").unwrap();
/// ring.push_sqe(2, "b").unwrap();
/// assert!(ring.push_sqe(3, "c").is_err());
/// let batch = ring.take_submissions();
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug)]
pub struct IoRing<T> {
    depth: usize,
    submission: VecDeque<RingEntry<T>>,
    completion: VecDeque<RingEntry<T>>,
}

impl<T> IoRing<T> {
    /// Creates a ring with the given submission-queue depth (minimum 1).
    pub fn new(depth: usize) -> Self {
        IoRing {
            depth: depth.max(1),
            submission: VecDeque::new(),
            completion: VecDeque::new(),
        }
    }

    /// Configured submission-queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of entries currently waiting in the submission queue.
    pub fn sq_len(&self) -> usize {
        self.submission.len()
    }

    /// Number of completions waiting to be reaped.
    pub fn cq_len(&self) -> usize {
        self.completion.len()
    }

    /// Queues a submission entry.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::SubmissionQueueFull`] when the SQ is at capacity.
    pub fn push_sqe(&mut self, user_data: u64, payload: T) -> Result<(), IoError> {
        if self.submission.len() >= self.depth {
            return Err(IoError::SubmissionQueueFull { depth: self.depth });
        }
        self.submission.push_back(RingEntry { user_data, payload });
        Ok(())
    }

    /// Removes and returns all pending submissions (the `io_uring_submit`
    /// step).
    pub fn take_submissions(&mut self) -> Vec<RingEntry<T>> {
        self.submission.drain(..).collect()
    }

    /// Posts a completion entry.
    pub fn push_cqe(&mut self, user_data: u64, payload: T) {
        self.completion.push_back(RingEntry { user_data, payload });
    }

    /// Reaps at most `max` completions, in completion order.
    pub fn reap(&mut self, max: usize) -> Vec<RingEntry<T>> {
        let n = max.min(self.completion.len());
        self.completion.drain(..n).collect()
    }

    /// Reaps every pending completion.
    pub fn reap_all(&mut self) -> Vec<RingEntry<T>> {
        self.completion.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_enforced() {
        let mut ring: IoRing<u32> = IoRing::new(2);
        assert_eq!(ring.depth(), 2);
        ring.push_sqe(1, 10).unwrap();
        ring.push_sqe(2, 20).unwrap();
        assert!(matches!(
            ring.push_sqe(3, 30),
            Err(IoError::SubmissionQueueFull { depth: 2 })
        ));
        assert_eq!(ring.sq_len(), 2);
    }

    #[test]
    fn zero_depth_is_clamped_to_one() {
        let ring: IoRing<u32> = IoRing::new(0);
        assert_eq!(ring.depth(), 1);
    }

    #[test]
    fn submissions_drain_in_fifo_order() {
        let mut ring: IoRing<u32> = IoRing::new(4);
        for i in 0..4 {
            ring.push_sqe(i, i as u32 * 10).unwrap();
        }
        let batch = ring.take_submissions();
        assert_eq!(
            batch.iter().map(|e| e.user_data).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(ring.sq_len(), 0);
        // After draining, there is room again.
        ring.push_sqe(9, 90).unwrap();
    }

    #[test]
    fn completions_reap_in_order_and_partially() {
        let mut ring: IoRing<&str> = IoRing::new(4);
        ring.push_cqe(1, "a");
        ring.push_cqe(2, "b");
        ring.push_cqe(3, "c");
        assert_eq!(ring.cq_len(), 3);
        let first = ring.reap(2);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].user_data, 1);
        let rest = ring.reap_all();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].payload, "c");
        assert_eq!(ring.cq_len(), 0);
    }
}

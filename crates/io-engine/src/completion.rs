//! Host CPU cost of reaping completions: interrupt-driven vs polled.
//!
//! Paper §A.1: at very high IO rates there is always work in the completion
//! queues, so removing the IRQ overhead and polling improves IOPS/core by
//! about 50 %. The paper could not deploy polling because operator-based
//! execution in Caffe2/PyTorch does not allow a producer–consumer pool across
//! all embedding operators — but it quantifies the opportunity, which this
//! model reproduces.

use sdm_metrics::SimDuration;
use serde::{Deserialize, Serialize};

/// How completions are harvested from the NVMe completion queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CompletionMode {
    /// Interrupt-driven completions: each IO pays IRQ + context switch cost.
    #[default]
    Interrupt,
    /// Polled completions: a core spins on the CQ; per-IO cost is lower but
    /// the polling core is fully consumed.
    Polling,
}

/// Per-IO host CPU cost model for submission + completion handling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuCostModel {
    /// CPU time to build and submit one request (io_uring SQE preparation).
    pub submit_cost: SimDuration,
    /// CPU time to handle one completion with interrupts.
    pub interrupt_completion_cost: SimDuration,
    /// CPU time to handle one completion when polling.
    pub polling_completion_cost: SimDuration,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        // Calibrated so that polling yields ~50% more IOPS/core, matching the
        // paper's observation: interrupt path ≈ 3 µs/IO total, polled path
        // ≈ 2 µs/IO total.
        CpuCostModel {
            submit_cost: SimDuration::from_nanos(700),
            interrupt_completion_cost: SimDuration::from_nanos(2_300),
            polling_completion_cost: SimDuration::from_nanos(1_300),
        }
    }
}

impl CpuCostModel {
    /// Host CPU time consumed by one IO end to end under the given mode.
    pub fn cpu_time_per_io(&self, mode: CompletionMode) -> SimDuration {
        match mode {
            CompletionMode::Interrupt => self.submit_cost + self.interrupt_completion_cost,
            CompletionMode::Polling => self.submit_cost + self.polling_completion_cost,
        }
    }

    /// IOs per second one core can sustain under the given mode.
    pub fn iops_per_core(&self, mode: CompletionMode) -> f64 {
        let per_io = self.cpu_time_per_io(mode).as_secs_f64();
        if per_io <= 0.0 {
            return f64::INFINITY;
        }
        1.0 / per_io
    }

    /// Number of cores needed to drive `iops` IOs per second under the mode.
    pub fn cores_for_iops(&self, iops: f64, mode: CompletionMode) -> f64 {
        if iops <= 0.0 {
            return 0.0;
        }
        iops / self.iops_per_core(mode)
    }

    /// Relative IOPS/core improvement of polling over interrupts
    /// (the paper reports ≈ 0.5, i.e. 50 %).
    pub fn polling_improvement(&self) -> f64 {
        self.iops_per_core(CompletionMode::Polling) / self.iops_per_core(CompletionMode::Interrupt)
            - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polling_improves_iops_per_core_by_about_half() {
        let m = CpuCostModel::default();
        let gain = m.polling_improvement();
        assert!(gain > 0.40 && gain < 0.60, "gain = {gain}");
    }

    #[test]
    fn cpu_time_is_additive() {
        let m = CpuCostModel::default();
        assert_eq!(
            m.cpu_time_per_io(CompletionMode::Interrupt),
            m.submit_cost + m.interrupt_completion_cost
        );
        assert!(
            m.cpu_time_per_io(CompletionMode::Polling)
                < m.cpu_time_per_io(CompletionMode::Interrupt)
        );
    }

    #[test]
    fn cores_for_iops_scales_linearly() {
        let m = CpuCostModel::default();
        let one = m.cores_for_iops(100_000.0, CompletionMode::Interrupt);
        let two = m.cores_for_iops(200_000.0, CompletionMode::Interrupt);
        assert!((two / one - 2.0).abs() < 1e-9);
        assert_eq!(m.cores_for_iops(0.0, CompletionMode::Polling), 0.0);
    }

    #[test]
    fn default_mode_is_interrupt() {
        assert_eq!(CompletionMode::default(), CompletionMode::Interrupt);
    }

    #[test]
    fn millions_of_iops_need_multiple_cores() {
        // Paper §5.2: 4.8M IOPS demand would be prohibitive in CPU terms;
        // check the model reflects that (>10 cores with interrupts).
        let m = CpuCostModel::default();
        let cores = m.cores_for_iops(4_800_000.0, CompletionMode::Interrupt);
        assert!(cores > 10.0, "cores = {cores}");
    }
}

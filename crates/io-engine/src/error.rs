//! Error type for the IO engine.

use scm_device::DeviceError;
use std::error::Error;
use std::fmt;

/// Errors returned by the IO engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoError {
    /// The submission queue is full; the caller must reap completions first.
    SubmissionQueueFull {
        /// Configured queue depth.
        depth: usize,
    },
    /// The underlying device rejected the request.
    Device(DeviceError),
    /// Configuration value out of range.
    InvalidConfig {
        /// Description of the offending parameter.
        reason: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::SubmissionQueueFull { depth } => {
                write!(f, "submission queue full (depth {depth})")
            }
            IoError::Device(e) => write!(f, "device error: {e}"),
            IoError::InvalidConfig { reason } => write!(f, "invalid engine config: {reason}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for IoError {
    fn from(e: DeviceError) -> Self {
        IoError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_metrics::units::Bytes;

    #[test]
    fn display_and_source() {
        let e = IoError::SubmissionQueueFull { depth: 8 };
        assert!(e.to_string().contains("8"));

        let dev = DeviceError::OutOfBounds {
            offset: 0,
            len: 1,
            capacity: Bytes(0),
        };
        let wrapped: IoError = dev.clone().into();
        assert!(wrapped.to_string().contains("device error"));
        assert!(Error::source(&wrapped).is_some());
        assert!(Error::source(&IoError::InvalidConfig { reason: "x".into() }).is_none());
    }
}

//! Error type for the IO engine.

use scm_device::DeviceError;
use std::error::Error;
use std::fmt;

/// The way one IO attempt failed (retry accounting and the terminal error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FailureKind {
    /// The device reported a transient, retryable error.
    Transient,
    /// The payload failed end-to-end checksum verification (corruption
    /// detected at completion).
    ChecksumMismatch,
    /// The device did not complete the IO within the per-IO deadline.
    DeadlineExceeded,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Transient => write!(f, "transient device error"),
            FailureKind::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            FailureKind::DeadlineExceeded => write!(f, "per-IO deadline exceeded"),
        }
    }
}

/// Errors returned by the IO engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoError {
    /// The submission queue is full; the caller must reap completions first.
    SubmissionQueueFull {
        /// Configured queue depth.
        depth: usize,
    },
    /// The underlying device rejected the request.
    Device(DeviceError),
    /// Configuration value out of range.
    InvalidConfig {
        /// Description of the offending parameter.
        reason: String,
    },
    /// A read kept failing after the configured number of attempts. The
    /// serving layer degrades the affected row (pools it as zero) instead
    /// of failing the query.
    RetriesExhausted {
        /// Attempts issued, including the first.
        attempts: u32,
        /// Failure mode of the final attempt.
        last: FailureKind,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::SubmissionQueueFull { depth } => {
                write!(f, "submission queue full (depth {depth})")
            }
            IoError::Device(e) => write!(f, "device error: {e}"),
            IoError::InvalidConfig { reason } => write!(f, "invalid engine config: {reason}"),
            IoError::RetriesExhausted { attempts, last } => {
                write!(f, "read failed after {attempts} attempts (last: {last})")
            }
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for IoError {
    fn from(e: DeviceError) -> Self {
        IoError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_metrics::units::Bytes;

    #[test]
    fn display_and_source() {
        let e = IoError::SubmissionQueueFull { depth: 8 };
        assert!(e.to_string().contains("8"));

        let dev = DeviceError::OutOfBounds {
            offset: 0,
            len: 1,
            capacity: Bytes(0),
        };
        let wrapped: IoError = dev.clone().into();
        assert!(wrapped.to_string().contains("device error"));
        assert!(Error::source(&wrapped).is_some());
        assert!(Error::source(&IoError::InvalidConfig { reason: "x".into() }).is_none());

        let exhausted = IoError::RetriesExhausted {
            attempts: 4,
            last: FailureKind::ChecksumMismatch,
        };
        let msg = exhausted.to_string();
        assert!(msg.contains("4 attempts"));
        assert!(msg.contains("checksum"));
        assert!(FailureKind::Transient.to_string().contains("transient"));
        assert!(FailureKind::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }
}

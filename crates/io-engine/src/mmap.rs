//! The rejected alternative: mmap-based access through a page cache.
//!
//! Paper §4.1: because embedding rows are 64–512 B and show almost no
//! spatial locality, mapping the SM image with `mmap` means every miss pulls
//! a whole 4 KiB page into fast memory, wasting FM space and roughly
//! tripling access latency compared to DIRECT-IO with an application-level
//! row cache. [`MmapIo`] models that path so the trade-off can be measured.

use crate::error::IoError;
use scm_device::{DeviceArray, DeviceId, ReadCommand};
use sdm_metrics::units::Bytes;
use sdm_metrics::{LatencyHistogram, SimDuration, SimInstant};
use std::collections::HashMap;

/// Page size used by the simulated page cache (x86 base pages).
pub const PAGE_SIZE: u64 = 4096;

/// Statistics for the mmap path.
#[derive(Debug, Clone, Default)]
pub struct MmapStats {
    /// Row reads served.
    pub reads: u64,
    /// Page faults (device reads) incurred.
    pub faults: u64,
    /// Bytes of fast memory currently pinned by cached pages.
    pub resident_bytes: Bytes,
    /// Bytes shipped from the device (always whole pages).
    pub bus_bytes: Bytes,
    /// Payload bytes actually requested by callers.
    pub requested_bytes: Bytes,
    /// Latency distribution of row reads.
    pub latency: LatencyHistogram,
}

impl MmapStats {
    /// Fraction of row reads that hit an already-resident page.
    pub fn hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            1.0 - self.faults as f64 / self.reads as f64
        }
    }

    /// Read amplification of the mmap path.
    pub fn read_amplification(&self) -> f64 {
        if self.requested_bytes.is_zero() {
            1.0
        } else {
            self.bus_bytes.as_u64() as f64 / self.requested_bytes.as_u64() as f64
        }
    }
}

/// Simulated `mmap` of one device with an LRU page cache bounded by a fast
/// memory budget.
#[derive(Debug)]
pub struct MmapIo {
    device: DeviceId,
    fm_budget_pages: usize,
    /// page index -> LRU stamp
    resident: HashMap<u64, u64>,
    lru_clock: u64,
    dram_hit_latency: SimDuration,
    page_fault_overhead: SimDuration,
    stats: MmapStats,
}

impl MmapIo {
    /// Maps `device` with a fast-memory budget for resident pages.
    pub fn new(device: DeviceId, fm_budget: Bytes) -> Self {
        MmapIo {
            device,
            fm_budget_pages: (fm_budget.as_u64() / PAGE_SIZE).max(1) as usize,
            resident: HashMap::new(),
            lru_clock: 0,
            // A DRAM access plus kernel page-table walk cost.
            dram_hit_latency: SimDuration::from_nanos(300),
            // Fault entry/exit, page allocation and page-cache bookkeeping.
            page_fault_overhead: SimDuration::from_micros(3),
            stats: MmapStats::default(),
        }
    }

    /// Statistics observed so far.
    pub fn stats(&self) -> &MmapStats {
        &self.stats
    }

    /// Reads `len` bytes at `offset` through the mapped region.
    ///
    /// Returns the data and the access latency (page-cache hit or fault).
    ///
    /// # Errors
    ///
    /// Propagates device errors for out-of-range accesses.
    pub fn read(
        &mut self,
        array: &mut DeviceArray,
        offset: u64,
        len: u32,
        _now: SimInstant,
    ) -> Result<(Vec<u8>, SimDuration), IoError> {
        let first_page = offset / PAGE_SIZE;
        let last_page = (offset + len as u64 - 1) / PAGE_SIZE;
        let mut latency = SimDuration::ZERO;
        self.lru_clock += 1;
        for page in first_page..=last_page {
            if self.resident.contains_key(&page) {
                latency += self.dram_hit_latency;
                self.resident.insert(page, self.lru_clock);
            } else {
                // Page fault: whole-page block read from the device.
                let cmd = ReadCommand::block(page * PAGE_SIZE, PAGE_SIZE as u32);
                let outcome = array.read(self.device, &cmd, 1)?;
                latency += self.page_fault_overhead + outcome.device_latency;
                self.stats.faults += 1;
                self.stats.bus_bytes += outcome.bus_bytes;
                self.evict_if_needed();
                self.resident.insert(page, self.lru_clock);
            }
        }
        // The payload itself is read from the (now resident) pages; fetch it
        // directly from the device store for simplicity — the timing has
        // already been accounted for above.
        let data = array
            .device_mut(self.device)?
            .read(&ReadCommand::sgl(offset, len), 1)
            .map(|o| o.data)?;

        self.stats.reads += 1;
        self.stats.requested_bytes += Bytes(len as u64);
        self.stats.resident_bytes = Bytes(self.resident.len() as u64 * PAGE_SIZE);
        self.stats.latency.record(latency);
        Ok((data, latency))
    }

    fn evict_if_needed(&mut self) {
        while self.resident.len() >= self.fm_budget_pages {
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, stamp)| **stamp) {
                self.resident.remove(&victim);
            } else {
                break;
            }
        }
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scm_device::TechnologyProfile;

    fn array() -> DeviceArray {
        DeviceArray::homogeneous(TechnologyProfile::nand_flash(), Bytes::from_mib(4), 1).unwrap()
    }

    #[test]
    fn first_access_faults_second_hits() {
        let mut arr = array();
        arr.write(DeviceId(0), 0, &[3u8; 256]).unwrap();
        let mut mmap = MmapIo::new(DeviceId(0), Bytes::from_kib(64));
        let now = SimInstant::EPOCH;
        let (data, fault_latency) = mmap.read(&mut arr, 0, 128, now).unwrap();
        assert_eq!(data, vec![3u8; 128]);
        let (_, hit_latency) = mmap.read(&mut arr, 128, 128, now).unwrap();
        assert!(fault_latency > hit_latency * 10);
        assert_eq!(mmap.stats().faults, 1);
        assert_eq!(mmap.stats().reads, 2);
        assert!(mmap.stats().hit_rate() > 0.4);
    }

    #[test]
    fn page_cache_evicts_under_budget_pressure() {
        let mut arr = array();
        // Budget of 2 pages.
        let mut mmap = MmapIo::new(DeviceId(0), Bytes::from_kib(8));
        let now = SimInstant::EPOCH;
        for i in 0..8u64 {
            mmap.read(&mut arr, i * PAGE_SIZE, 64, now).unwrap();
        }
        assert!(mmap.resident_pages() <= 2);
        assert_eq!(mmap.stats().faults, 8);
        // Re-reading an evicted page faults again.
        mmap.read(&mut arr, 0, 64, now).unwrap();
        assert_eq!(mmap.stats().faults, 9);
    }

    #[test]
    fn read_amplification_is_page_sized() {
        let mut arr = array();
        let mut mmap = MmapIo::new(DeviceId(0), Bytes::from_mib(1));
        let now = SimInstant::EPOCH;
        for i in 0..16u64 {
            mmap.read(&mut arr, i * PAGE_SIZE, 128, now).unwrap();
        }
        // 4096/128 = 32x amplification
        assert!(mmap.stats().read_amplification() > 30.0);
    }

    #[test]
    fn straddling_read_touches_two_pages() {
        let mut arr = array();
        let mut mmap = MmapIo::new(DeviceId(0), Bytes::from_mib(1));
        let now = SimInstant::EPOCH;
        mmap.read(&mut arr, PAGE_SIZE - 64, 128, now).unwrap();
        assert_eq!(mmap.stats().faults, 2);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut arr = array();
        let mut mmap = MmapIo::new(DeviceId(0), Bytes::from_mib(1));
        let err = mmap
            .read(&mut arr, Bytes::from_mib(4).as_u64(), 64, SimInstant::EPOCH)
            .unwrap_err();
        assert!(matches!(err, IoError::Device(_)));
    }
}

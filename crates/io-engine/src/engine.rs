//! The asynchronous IO engine: request routing, throttling and accounting.

use crate::completion::{CompletionMode, CpuCostModel};
use crate::error::{FailureKind, IoError};
use crate::retry::{ResilienceStats, RetryConfig};
use scm_device::{checksum64, DeviceArray, DeviceId, ReadCommand, ReadOutcome};
use sdm_metrics::units::{split_share, Bytes};
use sdm_metrics::{LatencyHistogram, SimDuration, SimInstant};
use std::collections::HashMap;

/// Identifier for the embedding table an IO belongs to, used by the
/// per-table throttling knobs. The engine treats it as an opaque tag.
pub type TableTag = u32;

/// One read request handed to the engine.
#[derive(Debug, Clone)]
pub struct IoRequest {
    /// Target device.
    pub device: DeviceId,
    /// The NVMe read command.
    pub command: ReadCommand,
    /// Optional owning table, for per-table throttling and accounting.
    pub table: Option<TableTag>,
    /// Caller correlation token, echoed in the completion.
    pub user_data: u64,
}

impl IoRequest {
    /// Creates a request with no table tag and `user_data = 0`.
    pub fn new(device: DeviceId, command: ReadCommand) -> Self {
        IoRequest {
            device,
            command,
            table: None,
            user_data: 0,
        }
    }

    /// Sets the correlation token.
    pub fn with_user_data(mut self, user_data: u64) -> Self {
        self.user_data = user_data;
        self
    }

    /// Tags the request with its owning table.
    pub fn with_table(mut self, table: TableTag) -> Self {
        self.table = Some(table);
        self
    }
}

/// A finished IO, including its full latency breakdown.
#[derive(Debug, Clone)]
pub struct IoCompletion {
    /// Caller correlation token.
    pub user_data: u64,
    /// Owning table, if tagged.
    pub table: Option<TableTag>,
    /// The payload bytes read.
    pub data: Vec<u8>,
    /// When the request was handed to the engine.
    pub submitted_at: SimInstant,
    /// When the request was issued to the device (after throttling).
    pub issued_at: SimInstant,
    /// When the device finished serving it.
    pub completed_at: SimInstant,
    /// Time spent waiting behind the throttling knobs.
    pub queue_delay: SimDuration,
    /// Device + link time.
    pub device_latency: SimDuration,
    /// Bytes that crossed the host link.
    pub bus_bytes: Bytes,
}

impl IoCompletion {
    /// Total latency seen by the caller (queueing + device).
    pub fn total_latency(&self) -> SimDuration {
        self.completed_at.duration_since(self.submitted_at)
    }
}

/// Tuning knobs for the engine (paper §4.1 "Tuning API").
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum IOs outstanding against a single device. The paper limits
    /// this for Nand Flash to smooth out bursts, because SSD controllers try
    /// to serve everything at once and latency explodes.
    pub max_outstanding_per_device: usize,
    /// Maximum IOs outstanding for a single table.
    pub max_outstanding_per_table: usize,
    /// Maximum number of distinct tables that may have IOs in flight at the
    /// same time.
    pub max_tables_in_flight: usize,
    /// How completions are harvested (interrupt vs polled, §A.1).
    pub completion_mode: CompletionMode,
    /// Host CPU cost per IO.
    pub cpu_cost: CpuCostModel,
    /// Retry, per-IO deadline and hedged-read policy. The default policy
    /// never changes the behaviour of a fault-free device.
    pub retry: RetryConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_outstanding_per_device: 64,
            max_outstanding_per_table: 32,
            max_tables_in_flight: 64,
            completion_mode: CompletionMode::Interrupt,
            cpu_cost: CpuCostModel::default(),
            retry: RetryConfig::default(),
        }
    }
}

impl EngineConfig {
    /// The per-shard slice (`index` of `shards`) of the host-shared IO
    /// limits.
    ///
    /// Each shard runs its own engine instance, but the device queue slots
    /// they model are one physical resource: the per-device outstanding
    /// limit and the tables-in-flight limit are split **losslessly** —
    /// every shard gets `limit / shards` slots and the remainder goes one
    /// each to the first shards, so the slices sum exactly to the host
    /// limit whenever `shards <= limit` (a truncating division lost up to
    /// `shards - 1` slots: 7 slots over 4 shards kept only 4 of 7). Slices
    /// still floor at one slot so every shard's engine stays valid, which
    /// is the only case where the sum can exceed the host limit. The
    /// per-table limit bounds a single operator's burst and is a
    /// per-stream property, so it carries over unchanged, as do the
    /// completion mode and CPU cost model.
    pub fn divide_among_indexed(&self, shards: usize, index: usize) -> EngineConfig {
        let n = shards.max(1) as u64;
        let i = index as u64;
        EngineConfig {
            max_outstanding_per_device: (split_share(self.max_outstanding_per_device as u64, n, i)
                as usize)
                .max(1),
            max_tables_in_flight: (split_share(self.max_tables_in_flight as u64, n, i) as usize)
                .max(1),
            ..self.clone()
        }
    }

    /// The first (largest) per-shard slice; see
    /// [`EngineConfig::divide_among_indexed`]. `divide_among(1)` is the
    /// identity.
    pub fn divide_among(&self, shards: usize) -> EngineConfig {
        self.divide_among_indexed(shards, 0)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::InvalidConfig`] when any limit is zero.
    pub fn validate(&self) -> Result<(), IoError> {
        if self.max_outstanding_per_device == 0 {
            return Err(IoError::InvalidConfig {
                reason: "max_outstanding_per_device must be at least 1".into(),
            });
        }
        if self.max_outstanding_per_table == 0 {
            return Err(IoError::InvalidConfig {
                reason: "max_outstanding_per_table must be at least 1".into(),
            });
        }
        if self.max_tables_in_flight == 0 {
            return Err(IoError::InvalidConfig {
                reason: "max_tables_in_flight must be at least 1".into(),
            });
        }
        self.retry.validate()
    }
}

/// Per-submission queue-occupancy accounting.
///
/// Every submitted IO observes the device queue depth it was issued at
/// (its own slot included); this records the distribution so serving modes
/// that overlap IO across queries can *prove* they drive the device queues
/// deeper (paper §3.2) instead of asserting it.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    /// Submissions observed (one depth sample each).
    pub depth_samples: u64,
    /// Sum of observed queue depths across all submissions.
    pub depth_sum: u64,
    /// Deepest queue any submission was issued at.
    pub max_depth: usize,
}

impl IoStats {
    /// Records the queue depth one submission was issued at.
    pub fn record(&mut self, depth: usize) {
        self.depth_samples += 1;
        self.depth_sum += depth as u64;
        self.max_depth = self.max_depth.max(depth);
    }

    /// Mean observed queue depth, or zero before any submission.
    pub fn mean_depth(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }

    /// Folds another accounting block into this one (multi-shard hosts
    /// aggregate per-engine depth statistics after the workers join).
    pub fn merge(&mut self, other: &IoStats) {
        self.depth_samples += other.depth_samples;
        self.depth_sum += other.depth_sum;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// Cumulative engine statistics.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed (scheduled; they become visible via `poll`).
    pub completed: u64,
    /// Total host CPU time spent on submission + completion handling.
    pub cpu_time: SimDuration,
    /// Total bytes shipped over device links.
    pub bus_bytes: Bytes,
    /// Total payload bytes requested.
    pub requested_bytes: Bytes,
    /// Aggregate queueing delay.
    pub queue_delay: SimDuration,
    /// Aggregate device latency.
    pub device_time: SimDuration,
    /// Distribution of caller-visible total latencies.
    pub latency: LatencyHistogram,
    /// Per-submission queue-occupancy accounting (observed mean/max depth).
    pub queue_depth: IoStats,
    /// Retry / checksum / deadline / hedging counters.
    pub resilience: ResilienceStats,
}

impl EngineStats {
    /// Average read amplification (bus bytes / requested bytes).
    pub fn read_amplification(&self) -> f64 {
        if self.requested_bytes.is_zero() {
            1.0
        } else {
            self.bus_bytes.as_u64() as f64 / self.requested_bytes.as_u64() as f64
        }
    }
}

/// Per-device scheduling state: completion times of IOs still in flight.
///
/// The completion list is kept **sorted** so the hot submission path never
/// allocates: pruning drains a prefix, admission reads one element, and the
/// insertion point comes from a binary search. The seed implementation
/// collected + sorted a fresh `Vec` per submitted IO, which dominated the
/// host-side cost of a cache-miss burst.
#[derive(Debug, Default)]
struct DeviceSched {
    /// In-flight completion instants, ascending.
    completions: Vec<SimInstant>,
}

impl DeviceSched {
    fn prune(&mut self, now: SimInstant) {
        let done = self.completions.partition_point(|t| *t <= now);
        if done > 0 {
            self.completions.drain(..done);
        }
    }

    /// Earliest instant (≥ `now`) at which fewer than `cap` IOs are active.
    /// Assumes `prune(now)` ran, so every tracked completion is `> now`.
    fn admission_time(&self, now: SimInstant, cap: usize) -> SimInstant {
        if self.completions.len() < cap {
            return now;
        }
        // We must wait until active drops to cap-1, i.e. until the
        // (len - cap + 1)-th completion.
        self.completions[self.completions.len() - cap]
    }

    fn active_at(&self, t: SimInstant) -> usize {
        self.completions.len() - self.completions.partition_point(|c| *c <= t)
    }

    /// Records a new in-flight completion, keeping the list sorted.
    fn push(&mut self, completed_at: SimInstant) {
        let at = self.completions.partition_point(|t| *t <= completed_at);
        self.completions.insert(at, completed_at);
    }

    /// Latest in-flight completion strictly after `now`, if any.
    fn last_after(&self, now: SimInstant) -> Option<SimInstant> {
        self.completions.last().copied().filter(|t| *t > now)
    }
}

/// One device command's fate inside the retry loop.
#[derive(Debug)]
enum Attempt {
    /// Clean completion: correct payload, within deadline.
    Completed {
        issued_at: SimInstant,
        completed_at: SimInstant,
        outcome: ReadOutcome,
    },
    /// Failed attempt; `retry_at` is the instant the failure became known
    /// to the host (backoff starts there).
    Failed {
        kind: FailureKind,
        retry_at: SimInstant,
    },
}

/// The asynchronous IO engine.
///
/// The engine owns the host's [`DeviceArray`] and schedules every read on
/// the virtual clock: requests are admitted as soon as the configured
/// outstanding-IO limits allow, the device model provides the service time
/// at the observed queue depth, and completions become visible to `poll`
/// once the clock passes their completion instant.
#[derive(Debug)]
pub struct IoEngine {
    array: DeviceArray,
    config: EngineConfig,
    device_sched: Vec<DeviceSched>,
    table_sched: HashMap<TableTag, DeviceSched>,
    ready: Vec<IoCompletion>,
    stats: EngineStats,
}

impl IoEngine {
    /// Creates an engine over a device array with the given configuration.
    ///
    /// Invalid configurations are clamped to their minimum legal values; use
    /// [`EngineConfig::validate`] beforehand to detect them instead.
    pub fn new(array: DeviceArray, config: EngineConfig) -> Self {
        let device_sched = (0..array.len()).map(|_| DeviceSched::default()).collect();
        IoEngine {
            array,
            config,
            device_sched,
            table_sched: HashMap::new(),
            ready: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// The engine's tuning configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Replaces the tuning configuration (applies to subsequent requests).
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
    }

    /// Shared view of the device array.
    pub fn array(&self) -> &DeviceArray {
        &self.array
    }

    /// Mutable access to the device array (used by the model loader to write
    /// embedding images).
    pub fn array_mut(&mut self) -> &mut DeviceArray {
        &mut self.array
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of scheduled-but-not-yet-reaped completions.
    pub fn outstanding(&self) -> usize {
        self.ready.len()
    }

    /// Submits one read request at virtual time `now`.
    ///
    /// The request is scheduled immediately: its issue time honours the
    /// outstanding-IO limits and its completion time comes from the device
    /// model. Failed attempts — transient device errors, payloads that
    /// flunk end-to-end checksum verification, IOs past the per-IO
    /// deadline — are retried with exponential backoff per the configured
    /// [`RetryConfig`]; slow clean completions may additionally be hedged
    /// with a duplicate read. The winning completion becomes visible
    /// through [`IoEngine::poll`] or [`IoEngine::drain`].
    ///
    /// # Errors
    ///
    /// Propagates hard device errors (out-of-bounds ranges, unsupported
    /// SGL) immediately; returns [`IoError::RetriesExhausted`] when every
    /// attempt failed.
    pub fn submit(&mut self, request: IoRequest, now: SimInstant) -> Result<(), IoError> {
        let dev_index = request.device.0;
        if dev_index >= self.array.len() {
            return Err(IoError::Device(scm_device::DeviceError::UnknownDevice {
                index: dev_index,
                len: self.array.len(),
            }));
        }

        let retry = self.config.retry;
        let mut attempt: u32 = 0;
        let mut earliest = now;
        let (issued_at, completed_at, outcome) = loop {
            attempt += 1;
            match self.issue_attempt(&request, earliest)? {
                Attempt::Failed { kind, retry_at } => {
                    self.note_failure(kind);
                    if attempt >= retry.max_attempts.max(1) {
                        self.stats.resilience.exhausted += 1;
                        return Err(IoError::RetriesExhausted {
                            attempts: attempt,
                            last: kind,
                        });
                    }
                    self.stats.resilience.retries += 1;
                    earliest = retry_at + retry.backoff(attempt);
                }
                Attempt::Completed {
                    issued_at,
                    completed_at,
                    outcome,
                } => {
                    let mut best = (issued_at, completed_at, outcome);
                    // Hedge: the primary is clean but slow — issue a
                    // duplicate at the hedge mark and let the first clean
                    // completion win. A failed hedge is simply discarded;
                    // the primary result is already in hand.
                    if let Some(delay) = retry.hedge_after {
                        if best.1.duration_since(earliest) > delay {
                            self.stats.resilience.hedges += 1;
                            match self.issue_attempt(&request, earliest + delay)? {
                                Attempt::Completed {
                                    issued_at: h_issued,
                                    completed_at: h_done,
                                    outcome: h_out,
                                } => {
                                    if h_done < best.1 {
                                        self.stats.resilience.hedge_wins += 1;
                                        best = (h_issued, h_done, h_out);
                                    }
                                }
                                Attempt::Failed { kind, .. } => self.note_failure(kind),
                            }
                        }
                    }
                    break best;
                }
            }
        };

        let completion = IoCompletion {
            user_data: request.user_data,
            table: request.table,
            data: outcome.data,
            submitted_at: now,
            issued_at,
            completed_at,
            queue_delay: issued_at.duration_since(now),
            device_latency: outcome.device_latency,
            bus_bytes: outcome.bus_bytes,
        };

        self.stats.submitted += 1;
        self.stats.completed += 1;
        self.stats.cpu_time += self
            .config
            .cpu_cost
            .cpu_time_per_io(self.config.completion_mode);
        self.stats.bus_bytes += outcome.bus_bytes;
        self.stats.requested_bytes += outcome.requested_bytes;
        self.stats.queue_delay += completion.queue_delay;
        self.stats.device_time += completion.device_latency;
        self.stats.latency.record(completion.total_latency());

        self.ready.push(completion);
        Ok(())
    }

    /// Issues one device command for the request, no earlier than
    /// `earliest`. Successful and abandoned commands are recorded in the
    /// scheduling state (they occupy their device queue slot either way);
    /// transient failures occupy nothing — the device rejected the command
    /// at issue.
    fn issue_attempt(
        &mut self,
        request: &IoRequest,
        earliest: SimInstant,
    ) -> Result<Attempt, IoError> {
        let dev_index = request.device.0;

        // 1. Work out the earliest admission time allowed by the knobs.
        self.device_sched[dev_index].prune(earliest);
        let mut issue_at = self.device_sched[dev_index]
            .admission_time(earliest, self.config.max_outstanding_per_device);

        if let Some(tag) = request.table {
            let sched = self.table_sched.entry(tag).or_default();
            sched.prune(earliest);
            issue_at =
                issue_at.max(sched.admission_time(earliest, self.config.max_outstanding_per_table));
        }

        // Max-tables-in-flight: if this table is not already active and the
        // limit is reached, wait until the busiest constraint relaxes (the
        // earliest instant at which some active table fully drains).
        // Counted in place — no temporary collection on the submit path.
        if let Some(tag) = request.table {
            let active_tables = self
                .table_sched
                .iter()
                .filter(|(t, s)| **t != tag && s.active_at(earliest) > 0)
                .count();
            if active_tables >= self.config.max_tables_in_flight {
                let earliest_drain = self
                    .table_sched
                    .iter()
                    .filter(|(t, s)| **t != tag && s.active_at(earliest) > 0)
                    .filter_map(|(_, s)| s.last_after(earliest))
                    .min()
                    .unwrap_or(earliest);
                issue_at = issue_at.max(earliest_drain);
            }
        }

        // 2. Ask the device for the service time at the observed depth.
        let queue_depth = self.device_sched[dev_index].active_at(issue_at) + 1;
        self.stats.queue_depth.record(queue_depth);
        let outcome =
            match self
                .array
                .read_at(request.device, &request.command, queue_depth, issue_at)
            {
                Ok(outcome) => outcome,
                Err(e) if e.is_transient() => {
                    return Ok(Attempt::Failed {
                        kind: FailureKind::Transient,
                        retry_at: issue_at,
                    })
                }
                Err(e) => return Err(IoError::Device(e)),
            };
        let completed_at = issue_at + outcome.device_latency;

        // 3. Record scheduling state; even attempts the host abandons keep
        // their queue slot until the device would have finished.
        self.track_inflight(dev_index, request.table, completed_at);

        let deadline = self.config.retry.io_deadline;
        if !deadline.is_zero() && outcome.device_latency > deadline {
            return Ok(Attempt::Failed {
                kind: FailureKind::DeadlineExceeded,
                retry_at: issue_at + deadline,
            });
        }
        // End-to-end protection: verify the guard tag the device stamped
        // before any injected corruption. A mismatch is known only once the
        // data is back, so the retry clock starts at completion.
        if checksum64(&outcome.data) != outcome.checksum {
            return Ok(Attempt::Failed {
                kind: FailureKind::ChecksumMismatch,
                retry_at: completed_at,
            });
        }

        Ok(Attempt::Completed {
            issued_at: issue_at,
            completed_at,
            outcome,
        })
    }

    fn track_inflight(&mut self, dev_index: usize, table: Option<TableTag>, at: SimInstant) {
        self.device_sched[dev_index].push(at);
        if let Some(tag) = table {
            self.table_sched.entry(tag).or_default().push(at);
        }
    }

    fn note_failure(&mut self, kind: FailureKind) {
        match kind {
            FailureKind::Transient => self.stats.resilience.transient_errors += 1,
            FailureKind::ChecksumMismatch => self.stats.resilience.checksum_failures += 1,
            FailureKind::DeadlineExceeded => self.stats.resilience.deadline_timeouts += 1,
        }
    }

    /// Submits a batch of requests as one ring submission: every request is
    /// enqueued at the same instant, in order, and each one's issue time
    /// still honours the outstanding-IO limits (queue depth is respected
    /// exactly as if the requests had been submitted one by one at `now`).
    ///
    /// This is the io_uring-style path the serving loop uses for a pooled
    /// operator's cache misses (§3.2): one submission call for the whole
    /// miss set instead of a syscall-equivalent per row.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first failing submission.
    pub fn submit_batch(
        &mut self,
        requests: impl IntoIterator<Item = IoRequest>,
        now: SimInstant,
    ) -> Result<(), IoError> {
        for request in requests {
            self.submit(request, now)?;
        }
        Ok(())
    }

    /// Returns every completion whose completion instant is at or before
    /// `now`, in completion order.
    pub fn poll(&mut self, now: SimInstant) -> Vec<IoCompletion> {
        let (done, not_done): (Vec<_>, Vec<_>) =
            self.ready.drain(..).partition(|c| c.completed_at <= now);
        self.ready = not_done;
        let mut done = done;
        done.sort_by_key(|c| c.completed_at);
        done
    }

    /// Waits for everything in flight: returns all outstanding completions
    /// (sorted by completion time) and the instant the last one finished
    /// (`now` when nothing was in flight).
    ///
    /// # Errors
    ///
    /// This method is currently infallible but returns `Result` so the
    /// signature can accommodate cancellation in the future.
    pub fn drain(&mut self, now: SimInstant) -> Result<(Vec<IoCompletion>, SimInstant), IoError> {
        let mut done: Vec<IoCompletion> = self.ready.drain(..).collect();
        done.sort_by_key(|c| c.completed_at);
        let finished_at = done.last().map(|c| c.completed_at).unwrap_or(now).max(now);
        Ok((done, finished_at))
    }

    /// Like [`IoEngine::drain`], but hands each completion to `f` in
    /// completion order instead of collecting them, and returns the instant
    /// the last one finished (`now` when nothing was in flight).
    ///
    /// This lets the caller overlap completion reaping with downstream work
    /// (the serving loop dequantises and pools each row as it is reaped)
    /// without an intermediate completion vector — the sort happens in the
    /// ready queue's own storage. The stable sort matches [`IoEngine::drain`],
    /// so both paths reap equal-time completions in submission order.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` keeps room for cancellation.
    pub fn drain_each(
        &mut self,
        now: SimInstant,
        mut f: impl FnMut(IoCompletion),
    ) -> Result<SimInstant, IoError> {
        self.ready.sort_by_key(|c| c.completed_at);
        let finished_at = self
            .ready
            .last()
            .map(|c| c.completed_at)
            .unwrap_or(now)
            .max(now);
        for completion in self.ready.drain(..) {
            f(completion);
        }
        Ok(finished_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scm_device::TechnologyProfile;

    fn engine_with(profile: TechnologyProfile, devices: usize, cfg: EngineConfig) -> IoEngine {
        let array = DeviceArray::homogeneous(profile, Bytes::from_mib(4), devices).unwrap();
        IoEngine::new(array, cfg)
    }

    #[test]
    fn divide_among_splits_shared_limits_with_floor() {
        let cfg = EngineConfig::default();
        let quarter = cfg.divide_among(4);
        assert_eq!(
            quarter.max_outstanding_per_device,
            cfg.max_outstanding_per_device / 4
        );
        assert_eq!(quarter.max_tables_in_flight, cfg.max_tables_in_flight / 4);
        assert_eq!(
            quarter.max_outstanding_per_table,
            cfg.max_outstanding_per_table
        );
        assert_eq!(quarter.completion_mode, cfg.completion_mode);
        assert!(quarter.validate().is_ok());
        // More shards than queue slots still yields a valid config.
        let tiny = cfg.divide_among(10_000);
        assert_eq!(tiny.max_outstanding_per_device, 1);
        assert_eq!(tiny.max_tables_in_flight, 1);
        assert!(tiny.validate().is_ok());
        // Zero clamps to one (identity).
        assert_eq!(
            cfg.divide_among(0).max_outstanding_per_device,
            cfg.max_outstanding_per_device
        );
    }

    #[test]
    fn indexed_slices_conserve_queue_slots_at_awkward_counts() {
        // The motivating bug: a 7-slot queue limit over 4 shards used to
        // keep only floor(7/4) = 1 slot per shard — 3 of 7 submission slots
        // (43 % of capacity) silently vanished from the host budget.
        let cfg = EngineConfig {
            max_outstanding_per_device: 7,
            max_tables_in_flight: 13,
            ..EngineConfig::default()
        };
        for shards in [1usize, 2, 3, 4, 5, 7] {
            let device: usize = (0..shards)
                .map(|i| {
                    cfg.divide_among_indexed(shards, i)
                        .max_outstanding_per_device
                })
                .sum();
            let tables: usize = (0..shards)
                .map(|i| cfg.divide_among_indexed(shards, i).max_tables_in_flight)
                .sum();
            assert_eq!(
                device, cfg.max_outstanding_per_device,
                "{shards} shards: device slots"
            );
            assert_eq!(
                tables, cfg.max_tables_in_flight,
                "{shards} shards: tables in flight"
            );
            for i in 0..shards {
                assert!(cfg.divide_among_indexed(shards, i).validate().is_ok());
            }
        }
    }

    #[test]
    fn single_request_roundtrip() {
        let mut engine = engine_with(TechnologyProfile::optane_ssd(), 1, EngineConfig::default());
        engine
            .array_mut()
            .write(DeviceId(0), 0, &[5u8; 128])
            .unwrap();
        let now = SimInstant::EPOCH;
        engine
            .submit(
                IoRequest::new(DeviceId(0), ReadCommand::sgl(0, 128)).with_user_data(42),
                now,
            )
            .unwrap();
        let (completions, at) = engine.drain(now).unwrap();
        assert_eq!(completions.len(), 1);
        let c = &completions[0];
        assert_eq!(c.user_data, 42);
        assert_eq!(c.data, vec![5u8; 128]);
        assert_eq!(c.queue_delay, SimDuration::ZERO);
        assert!(at > now);
        assert_eq!(engine.stats().submitted, 1);
    }

    #[test]
    fn unknown_device_rejected() {
        let mut engine = engine_with(TechnologyProfile::optane_ssd(), 1, EngineConfig::default());
        let err = engine
            .submit(
                IoRequest::new(DeviceId(3), ReadCommand::sgl(0, 8)),
                SimInstant::EPOCH,
            )
            .unwrap_err();
        assert!(matches!(err, IoError::Device(_)));
    }

    #[test]
    fn outstanding_cap_delays_excess_requests() {
        let cfg = EngineConfig {
            max_outstanding_per_device: 2,
            ..EngineConfig::default()
        };
        let mut engine = engine_with(TechnologyProfile::nand_flash(), 1, cfg);
        let now = SimInstant::EPOCH;
        for i in 0..4 {
            engine
                .submit(
                    IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 4096, 128)).with_user_data(i),
                    now,
                )
                .unwrap();
        }
        let (completions, _) = engine.drain(now).unwrap();
        assert_eq!(completions.len(), 4);
        // The first two go straight to the device; the last two wait.
        let delayed = completions
            .iter()
            .filter(|c| c.queue_delay > SimDuration::ZERO)
            .count();
        assert_eq!(delayed, 2);
    }

    #[test]
    fn per_table_cap_throttles_only_that_table() {
        let cfg = EngineConfig {
            max_outstanding_per_device: 1024,
            max_outstanding_per_table: 1,
            ..EngineConfig::default()
        };
        let mut engine = engine_with(TechnologyProfile::optane_ssd(), 1, cfg);
        let now = SimInstant::EPOCH;
        for i in 0..3 {
            engine
                .submit(
                    IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 512, 64))
                        .with_table(7)
                        .with_user_data(i),
                    now,
                )
                .unwrap();
        }
        // A different table is not throttled by table 7's queue.
        engine
            .submit(
                IoRequest::new(DeviceId(0), ReadCommand::sgl(4096, 64))
                    .with_table(9)
                    .with_user_data(99),
                now,
            )
            .unwrap();
        let (completions, _) = engine.drain(now).unwrap();
        let other = completions.iter().find(|c| c.user_data == 99).unwrap();
        assert_eq!(other.queue_delay, SimDuration::ZERO);
        let table7_delayed = completions
            .iter()
            .filter(|c| c.table == Some(7) && c.queue_delay > SimDuration::ZERO)
            .count();
        assert_eq!(table7_delayed, 2);
    }

    #[test]
    fn poll_only_returns_finished_ios() {
        let mut engine = engine_with(TechnologyProfile::nand_flash(), 1, EngineConfig::default());
        let now = SimInstant::EPOCH;
        engine
            .submit(IoRequest::new(DeviceId(0), ReadCommand::sgl(0, 128)), now)
            .unwrap();
        // Nothing is done after 1us (Nand base latency ~90us).
        assert!(engine.poll(now + SimDuration::from_micros(1)).is_empty());
        assert_eq!(engine.outstanding(), 1);
        let later = now + SimDuration::from_millis(10);
        let done = engine.poll(later);
        assert_eq!(done.len(), 1);
        assert_eq!(engine.outstanding(), 0);
    }

    #[test]
    fn higher_concurrency_raises_latency() {
        // Reproduces the Figure 3 trend: driving the device towards its IOPS
        // ceiling inflates the observed latency.
        let make = || {
            engine_with(
                TechnologyProfile::nand_flash(),
                1,
                EngineConfig {
                    max_outstanding_per_device: 4096,
                    ..EngineConfig::default()
                },
            )
        };
        let mut light = make();
        let mut heavy = make();
        let now = SimInstant::EPOCH;
        for i in 0..4u64 {
            light
                .submit(
                    IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 4096, 128)),
                    now,
                )
                .unwrap();
        }
        for i in 0..512u64 {
            heavy
                .submit(
                    IoRequest::new(DeviceId(0), ReadCommand::sgl((i % 900) * 4096, 128)),
                    now,
                )
                .unwrap();
        }
        let light_p95 = light.stats().latency.p95();
        let heavy_p95 = heavy.stats().latency.p95();
        assert!(heavy_p95 > light_p95, "{heavy_p95} <= {light_p95}");
    }

    #[test]
    fn stats_track_amplification() {
        let mut engine = engine_with(TechnologyProfile::nand_flash(), 1, EngineConfig::default());
        let now = SimInstant::EPOCH;
        engine
            .submit(IoRequest::new(DeviceId(0), ReadCommand::block(0, 128)), now)
            .unwrap();
        assert!(engine.stats().read_amplification() > 30.0);
        let mut engine2 = engine_with(TechnologyProfile::nand_flash(), 1, EngineConfig::default());
        engine2
            .submit(IoRequest::new(DeviceId(0), ReadCommand::sgl(0, 128)), now)
            .unwrap();
        assert!((engine2.stats().read_amplification() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn config_validation() {
        let mut cfg = EngineConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.max_outstanding_per_device = 0;
        assert!(matches!(cfg.validate(), Err(IoError::InvalidConfig { .. })));
    }

    #[test]
    fn drain_each_matches_drain() {
        let make = || {
            let mut e = engine_with(TechnologyProfile::nand_flash(), 1, EngineConfig::default());
            for i in 0..8u64 {
                e.submit(
                    IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 4096, 128)).with_user_data(i),
                    SimInstant::EPOCH,
                )
                .unwrap();
            }
            e
        };
        let mut a = make();
        let mut b = make();
        let (collected, finished_a) = a.drain(SimInstant::EPOCH).unwrap();
        let mut streamed = Vec::new();
        let finished_b = b
            .drain_each(SimInstant::EPOCH, |c| streamed.push(c))
            .unwrap();
        assert_eq!(finished_a, finished_b);
        assert_eq!(collected.len(), streamed.len());
        for (x, y) in collected.iter().zip(&streamed) {
            assert_eq!(x.user_data, y.user_data);
            assert_eq!(x.completed_at, y.completed_at);
        }
        // Nothing left behind.
        assert_eq!(b.outstanding(), 0);
        let empty_at = b
            .drain_each(SimInstant::EPOCH, |_| panic!("no IOs"))
            .unwrap();
        assert_eq!(empty_at, SimInstant::EPOCH);
    }

    #[test]
    fn queue_depth_accounting_tracks_mean_and_max() {
        let mut stats = IoStats::default();
        assert_eq!(stats.mean_depth(), 0.0);
        stats.record(1);
        stats.record(3);
        assert_eq!(stats.depth_samples, 2);
        assert!((stats.mean_depth() - 2.0).abs() < 1e-12);
        assert_eq!(stats.max_depth, 3);
        let mut other = IoStats::default();
        other.record(7);
        stats.merge(&other);
        assert_eq!(stats.depth_samples, 3);
        assert_eq!(stats.max_depth, 7);

        // A burst submitted at one instant is observed at increasing depths:
        // the engine's per-submission samples reflect real queue occupancy.
        let mut engine = engine_with(TechnologyProfile::optane_ssd(), 1, EngineConfig::default());
        let now = SimInstant::EPOCH;
        for i in 0..8u64 {
            engine
                .submit(
                    IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 4096, 128)),
                    now,
                )
                .unwrap();
        }
        let depth = &engine.stats().queue_depth;
        assert_eq!(depth.depth_samples, 8);
        assert_eq!(depth.max_depth, 8);
        assert!(depth.mean_depth() > 1.0);
    }

    #[test]
    fn transient_errors_are_retried_with_backoff() {
        // 50% transient error rate, 4 attempts: reads succeed eventually
        // and the retry counters reflect the recovered failures.
        let cfg = EngineConfig {
            retry: RetryConfig {
                max_attempts: 4,
                ..RetryConfig::default()
            },
            ..EngineConfig::default()
        };
        let mut engine = engine_with(TechnologyProfile::optane_ssd(), 1, cfg);
        engine
            .array_mut()
            .device_mut(DeviceId(0))
            .unwrap()
            .set_fault_plan(Some(
                scm_device::FaultPlan::new(5).with_transient_errors(0.5),
            ));
        let now = SimInstant::EPOCH;
        let mut served = 0u64;
        for i in 0..64u64 {
            match engine.submit(
                IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 512, 64)).with_user_data(i),
                now,
            ) {
                Ok(()) => served += 1,
                Err(IoError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 4),
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let res = &engine.stats().resilience;
        assert!(served > 0, "half-rate faults cannot kill every read");
        assert!(res.transient_errors > 0);
        assert!(res.retries > 0);
        assert_eq!(engine.stats().completed, served);
        // Retried completions pay the backoff in caller-visible latency.
        let (completions, _) = engine.drain(now).unwrap();
        assert!(completions
            .iter()
            .any(|c| c.queue_delay >= SimDuration::from_micros(10)));
    }

    #[test]
    fn exhausted_retries_surface_a_typed_error() {
        let cfg = EngineConfig {
            retry: RetryConfig {
                max_attempts: 3,
                ..RetryConfig::default()
            },
            ..EngineConfig::default()
        };
        let mut engine = engine_with(TechnologyProfile::optane_ssd(), 1, cfg);
        engine
            .array_mut()
            .device_mut(DeviceId(0))
            .unwrap()
            .set_fault_plan(Some(
                scm_device::FaultPlan::new(1).with_transient_errors(1.0),
            ));
        let err = engine
            .submit(
                IoRequest::new(DeviceId(0), ReadCommand::sgl(0, 64)),
                SimInstant::EPOCH,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            IoError::RetriesExhausted {
                attempts: 3,
                last: FailureKind::Transient
            }
        ));
        assert_eq!(engine.stats().resilience.exhausted, 1);
        assert_eq!(engine.stats().resilience.transient_errors, 3);
        assert_eq!(engine.stats().completed, 0);
    }

    #[test]
    fn checksum_verification_catches_every_injected_corruption() {
        let cfg = EngineConfig {
            retry: RetryConfig {
                max_attempts: 6,
                ..RetryConfig::default()
            },
            ..EngineConfig::default()
        };
        let mut engine = engine_with(TechnologyProfile::optane_ssd(), 1, cfg);
        engine
            .array_mut()
            .write(DeviceId(0), 0, &[0xA5u8; 4096])
            .unwrap();
        engine
            .array_mut()
            .device_mut(DeviceId(0))
            .unwrap()
            .set_fault_plan(Some(scm_device::FaultPlan::new(8).with_corruption(0.3)));
        let now = SimInstant::EPOCH;
        for i in 0..32u64 {
            engine
                .submit(
                    IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 128, 64)).with_user_data(i),
                    now,
                )
                .unwrap();
        }
        let injected = engine
            .array()
            .device(DeviceId(0))
            .unwrap()
            .fault_plan()
            .unwrap()
            .stats()
            .corruptions;
        assert!(injected > 0, "30% corruption over 32 reads must fire");
        assert_eq!(
            engine.stats().resilience.checksum_failures,
            injected,
            "every injected corruption must be detected"
        );
        // And no delivered payload is corrupt.
        let (completions, _) = engine.drain(now).unwrap();
        assert_eq!(completions.len(), 32);
        for c in &completions {
            assert_eq!(c.data, vec![0xA5u8; 64], "corrupt payload served");
        }
    }

    #[test]
    fn deadline_abandons_stuck_ios_and_recovers() {
        let hang = SimDuration::from_millis(100);
        let cfg = EngineConfig {
            retry: RetryConfig {
                max_attempts: 8,
                io_deadline: SimDuration::from_millis(1),
                ..RetryConfig::default()
            },
            ..EngineConfig::default()
        };
        let mut engine = engine_with(TechnologyProfile::optane_ssd(), 1, cfg);
        engine
            .array_mut()
            .device_mut(DeviceId(0))
            .unwrap()
            .set_fault_plan(Some(scm_device::FaultPlan::new(3).with_stuck(0.5, hang)));
        let now = SimInstant::EPOCH;
        for i in 0..16u64 {
            engine
                .submit(
                    IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 512, 64)),
                    now,
                )
                .unwrap();
        }
        assert!(engine.stats().resilience.deadline_timeouts > 0);
        // Caller-visible latency is bounded by deadline+backoff retries,
        // far below the 100ms hang.
        let (completions, _) = engine.drain(now).unwrap();
        for c in &completions {
            assert!(
                c.total_latency() < hang,
                "stuck IO leaked into caller latency: {:?}",
                c.total_latency()
            );
        }
    }

    #[test]
    fn hedged_reads_cut_the_tail_of_a_latency_storm() {
        // A plan that makes some reads stuck (slow) without storms;
        // hedging re-issues them at the hedge mark, and the duplicate —
        // which usually is not stuck — wins.
        let hang = SimDuration::from_millis(5);
        let cfg = EngineConfig {
            retry: RetryConfig {
                hedge_after: Some(SimDuration::from_micros(100)),
                ..RetryConfig::default()
            },
            ..EngineConfig::default()
        };
        let mut engine = engine_with(TechnologyProfile::optane_ssd(), 1, cfg);
        engine
            .array_mut()
            .device_mut(DeviceId(0))
            .unwrap()
            .set_fault_plan(Some(scm_device::FaultPlan::new(6).with_stuck(0.3, hang)));
        let now = SimInstant::EPOCH;
        for i in 0..32u64 {
            engine
                .submit(
                    IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 512, 64)),
                    now,
                )
                .unwrap();
        }
        let res = &engine.stats().resilience;
        assert!(res.hedges > 0, "stuck reads must trigger hedges");
        assert!(
            res.hedge_wins > 0,
            "some hedges must beat the stuck primary"
        );
        assert!(res.hedge_wins <= res.hedges);
    }

    #[test]
    fn default_retry_config_is_bit_identical_without_faults() {
        let make = |cfg: EngineConfig| {
            let mut e = engine_with(TechnologyProfile::nand_flash(), 1, cfg);
            for i in 0..32u64 {
                e.submit(
                    IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 4096, 128))
                        .with_table((i % 3) as TableTag)
                        .with_user_data(i),
                    SimInstant::from_nanos(i * 10_000),
                )
                .unwrap();
            }
            e
        };
        // Aggressive retry/deadline/hedge settings on a healthy device
        // change nothing: first attempts are clean and fast.
        let tuned = EngineConfig {
            retry: RetryConfig {
                max_attempts: 7,
                io_deadline: SimDuration::from_millis(50),
                hedge_after: Some(SimDuration::from_millis(40)),
                ..RetryConfig::default()
            },
            ..EngineConfig::default()
        };
        let mut a = make(EngineConfig::default());
        let mut b = make(tuned);
        let (ca, fa) = a.drain(SimInstant::EPOCH).unwrap();
        let (cb, fb) = b.drain(SimInstant::EPOCH).unwrap();
        assert_eq!(fa, fb);
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.user_data, y.user_data);
            assert_eq!(x.completed_at, y.completed_at);
            assert_eq!(x.data, y.data);
        }
        assert_eq!(a.stats().resilience, b.stats().resilience);
        assert_eq!(a.stats().resilience, ResilienceStats::default());
    }

    #[test]
    fn submit_batch_preserves_order_and_counts() {
        let mut engine = engine_with(TechnologyProfile::optane_ssd(), 1, EngineConfig::default());
        let now = SimInstant::EPOCH;
        let reqs: Vec<IoRequest> = (0..10)
            .map(|i| IoRequest::new(DeviceId(0), ReadCommand::sgl(i * 512, 64)).with_user_data(i))
            .collect();
        engine.submit_batch(reqs, now).unwrap();
        let (completions, _) = engine.drain(now).unwrap();
        assert_eq!(completions.len(), 10);
        assert_eq!(engine.stats().submitted, 10);
        assert!(engine.stats().cpu_time > SimDuration::ZERO);
    }
}

//! Asynchronous IO engine over simulated SCM devices.
//!
//! The paper issues multi-million IOPS against NVMe devices through
//! `io_uring` with `DIRECT-IO`, because going through the page cache (`mmap`)
//! wastes fast-memory space and triples access latency for the 128 B-ish
//! embedding rows DLRM reads (§4.1). This crate reproduces that software
//! layer on top of [`scm_device`]:
//!
//! * [`IoRing`] — an io_uring-like submission/completion queue pair with
//!   bounded depth.
//! * [`IoEngine`] — routes requests to devices, enforces the paper's tuning
//!   knobs (maximum outstanding IOs per device, per table, and the number of
//!   tables in flight), and computes per-request queueing + device latency on
//!   the virtual clock.
//! * [`MmapIo`] — the rejected design alternative: page-granularity reads
//!   through a simulated page cache, used by the mmap-vs-DIRECT-IO
//!   experiment.
//! * [`CompletionMode`] — interrupt-driven vs polled completions and their
//!   host CPU cost (§A.1: polling improves IOPS/core by ~50 % but was too
//!   complex to deploy).
//!
//! # Example
//!
//! ```
//! use io_engine::{EngineConfig, IoEngine, IoRequest};
//! use scm_device::{DeviceArray, DeviceId, ReadCommand, TechnologyProfile};
//! use sdm_metrics::units::Bytes;
//! use sdm_metrics::SimInstant;
//!
//! # fn main() -> Result<(), io_engine::IoError> {
//! let array = DeviceArray::homogeneous(
//!     TechnologyProfile::optane_ssd(), Bytes::from_mib(1), 1).unwrap();
//! let mut engine = IoEngine::new(array, EngineConfig::default());
//! let now = SimInstant::EPOCH;
//! engine.submit(IoRequest::new(DeviceId(0), ReadCommand::sgl(0, 128)).with_user_data(7), now)?;
//! let (completions, done_at) = engine.drain(now)?;
//! assert_eq!(completions.len(), 1);
//! assert_eq!(completions[0].user_data, 7);
//! assert!(done_at > now);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The submission/completion paths must stay panic-free: every failure is a
// typed `IoError` the retry layer (and above it, degraded serving) can act
// on. Tests opt back in locally with `#[allow(clippy::unwrap_used)]`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod completion;
mod engine;
mod error;
mod mmap;
mod retry;
mod ring;

pub use completion::{CompletionMode, CpuCostModel};
pub use engine::{EngineConfig, EngineStats, IoCompletion, IoEngine, IoRequest, IoStats};
pub use error::{FailureKind, IoError};
pub use mmap::{MmapIo, MmapStats};
pub use retry::{ResilienceStats, RetryConfig};
pub use ring::{IoRing, RingEntry};

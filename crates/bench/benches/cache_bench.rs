//! Criterion bench backing Figure 6: lookup cost and hit behaviour of the
//! cache engines.

use criterion::{criterion_group, criterion_main, Criterion};
use sdm_cache::{
    CacheConfig, CpuOptimizedCache, DualRowCache, MemoryOptimizedCache, RowCache, RowKey,
};
use sdm_metrics::units::Bytes;

fn warm_cache<C: RowCache>(cache: &mut C, rows: u64, row_bytes: usize) {
    for i in 0..rows {
        cache.insert(RowKey::new(0, i), &vec![(i % 251) as u8; row_bytes]);
    }
}

fn cache_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_cache_get");
    group.sample_size(30);
    let rows = 10_000u64;

    let mut memory_opt = MemoryOptimizedCache::with_expected_row_size(Bytes::from_mib(8), 128);
    warm_cache(&mut memory_opt, rows, 128);
    let mut i = 0u64;
    group.bench_function("memory_optimized_hit", |b| {
        b.iter(|| {
            i = (i + 7) % rows;
            memory_opt.get(&RowKey::new(0, i)).map(<[u8]>::len)
        })
    });

    let mut cpu_opt = CpuOptimizedCache::new(Bytes::from_mib(8));
    warm_cache(&mut cpu_opt, rows, 128);
    group.bench_function("cpu_optimized_hit", |b| {
        b.iter(|| {
            i = (i + 7) % rows;
            cpu_opt.get(&RowKey::new(0, i)).map(<[u8]>::len)
        })
    });

    let mut dual = DualRowCache::new(CacheConfig::with_total_budget(Bytes::from_mib(8)));
    warm_cache(&mut dual, rows, 128);
    group.bench_function("dual_hit", |b| {
        b.iter(|| {
            i = (i + 7) % rows;
            dual.get(&RowKey::new(0, i)).map(<[u8]>::len)
        })
    });
    group.finish();
}

fn pooled_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooled_cache");
    group.sample_size(30);
    let mut cache = sdm_cache::PooledEmbeddingCache::new(Bytes::from_mib(4), 4);
    let indices: Vec<u64> = (0..40).collect();
    cache.insert(3, &indices, &[0.5f32; 64]);
    group.bench_function("hit_40_indices", |b| {
        b.iter(|| cache.lookup(3, &indices).map(<[f32]>::len))
    });
    group.finish();
}

criterion_group!(benches, cache_engines, pooled_cache);
criterion_main!(benches);

//! Criterion bench backing Figure 3 / Table 1: device read latency at
//! different concurrency levels and access granularities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scm_device::{ReadCommand, ScmDevice, TechnologyProfile};
use sdm_metrics::units::Bytes;

fn device_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_read_128B");
    group.sample_size(20);
    for (name, profile) in [
        ("nand", TechnologyProfile::nand_flash()),
        ("optane", TechnologyProfile::optane_ssd()),
    ] {
        for depth in [1usize, 64] {
            let mut device =
                ScmDevice::new(name, profile.clone(), Bytes::from_mib(64)).expect("device");
            let mut offset = 0u64;
            group.bench_with_input(
                BenchmarkId::new(name, format!("qd{depth}")),
                &depth,
                |b, &depth| {
                    b.iter(|| {
                        offset = (offset + 4096) % (60 * 1024 * 1024);
                        device.read(&ReadCommand::sgl(offset, 128), depth).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("granularity");
    group.sample_size(20);
    for (name, cmd) in [
        ("sgl_128B", ReadCommand::sgl(8192, 128)),
        ("block_4KiB", ReadCommand::block(8192, 128)),
    ] {
        let mut device =
            ScmDevice::new("nand", TechnologyProfile::nand_flash(), Bytes::from_mib(16))
                .expect("device");
        group.bench_function(name, |b| b.iter(|| device.read(&cmd, 4).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, device_reads, granularity);
criterion_main!(benches);

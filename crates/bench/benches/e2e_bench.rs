//! Criterion bench backing Tables 8/9: end-to-end query execution on the
//! DRAM baseline vs the SDM stack (Nand and Optane).

use criterion::{criterion_group, criterion_main, Criterion};
use sdm_bench::{bench_sdm_config, build_system, queries_for, scaled};
use sdm_core::PlacementPolicy;

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_e2e_m1");
    group.sample_size(10);
    let model = scaled(&dlrm::model_zoo::m1());
    let queries = queries_for(&model, 64, 99);

    let configs = [
        (
            "dram_only",
            bench_sdm_config().with_placement(PlacementPolicy::FixedFmThenSm {
                dram_budget: model.user_capacity(),
            }),
        ),
        ("sdm_optane", bench_sdm_config()),
        ("sdm_nand", bench_sdm_config().with_nand_flash()),
    ];
    for (name, config) in configs {
        let mut system = build_system(&model, config);
        // Warm the caches outside the measured region.
        let _ = system.run_queries(&queries[..32]).unwrap();
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                i = (i + 1) % queries.len();
                system.run_query(&queries[i]).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);

//! Criterion bench backing Tables 8/9: end-to-end query execution on the
//! DRAM baseline vs the SDM stack (Nand and Optane) — plus the batched
//! serving-loop comparison (`run_batch` vs looped `run_query`).

use criterion::{criterion_group, criterion_main, Criterion};
use sdm_bench::{bench_sdm_config, build_system, queries_for, scaled};
use sdm_core::PlacementPolicy;

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_e2e_m1");
    group.sample_size(10);
    let model = scaled(&dlrm::model_zoo::m1());
    let queries = queries_for(&model, 64, 99);

    let configs = [
        (
            "dram_only",
            bench_sdm_config().with_placement(PlacementPolicy::FixedFmThenSm {
                dram_budget: model.user_capacity(),
            }),
        ),
        ("sdm_optane", bench_sdm_config()),
        ("sdm_nand", bench_sdm_config().with_nand_flash()),
    ];
    for (name, config) in configs {
        let mut system = build_system(&model, config);
        // Warm the caches outside the measured region.
        let _ = system.run_queries(&queries[..32]).unwrap();
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                i = (i + 1) % queries.len();
                system.run_query(&queries[i]).unwrap()
            })
        });
    }
    group.finish();
}

/// Looped `run_query` vs `run_batch` over the same warmed stream: virtual
/// time is identical by construction (see the `batch_equivalence` suite),
/// so the delta is pure host-side serving-loop overhead.
fn batch_vs_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_loop_m1");
    group.sample_size(10);
    let model = scaled(&dlrm::model_zoo::m1());
    let queries = queries_for(&model, 64, 99);

    // One system serves both benchmarks so the comparison is not polluted
    // by instance-to-instance heap-layout differences.
    let mut system = build_system(&model, bench_sdm_config());
    let _ = system.run_queries(&queries).unwrap();
    group.bench_function("looped_run_query_64", |b| {
        b.iter(|| {
            for q in &queries {
                system.run_query(q).unwrap();
            }
        })
    });
    group.bench_function("run_batch_64", |b| {
        b.iter(|| system.run_batch(&queries).unwrap())
    });
    group.finish();
}

criterion_group!(benches, end_to_end, batch_vs_loop);
criterion_main!(benches);

//! Criterion bench backing Table 3/4 and §A.5: the cost of dequantise + pool
//! that the pooled-embedding cache and load-time de-quantisation avoid —
//! plus the seed-vs-slice comparison for the zero-copy hot path.
//!
//! `seed_vecvec` reproduces the seed implementation exactly (one fresh
//! `Vec<f32>` per row via `dequantize_row`, summed into a freshly allocated
//! output); `slice_into` is the current hot path (`pool_quantized_into`
//! fusing dequantise+accumulate into one reused output buffer). The
//! acceptance bar for the hot-path PR is ≥ 2× between the two.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use embedding::kernels::SelectedKernel;
use embedding::{pooling, PoolKernel, QuantScheme};
use sdm_bench::{bench_quantized_rows as quantized_rows, pool_seed_style};

fn pooling_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_quantized");
    group.sample_size(30);
    for &pf in &[10usize, 40, 100] {
        for (name, scheme) in [("int8", QuantScheme::Int8), ("fp32", QuantScheme::Fp32)] {
            let dim = 64;
            let rows = quantized_rows(pf, dim, scheme);
            let row_refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
            group.bench_with_input(BenchmarkId::new(name, pf), &pf, |b, _| {
                b.iter(|| pooling::pool_quantized(&row_refs, scheme, dim).unwrap())
            });
        }
    }
    group.finish();
}

/// Seed `Vec<Vec<f32>>`-style pooling vs the slice-based `_into` hot path.
fn seed_vs_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_hotpath");
    group.sample_size(30);
    let dim = 64;
    for &pf in &[10usize, 40, 100] {
        let rows = quantized_rows(pf, dim, QuantScheme::Int8);
        let row_refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
        group.bench_with_input(BenchmarkId::new("seed_vecvec", pf), &pf, |b, _| {
            b.iter(|| pool_seed_style(&row_refs, QuantScheme::Int8, dim))
        });
        let mut out = vec![0.0f32; dim];
        group.bench_with_input(BenchmarkId::new("slice_into", pf), &pf, |b, _| {
            b.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                pooling::pool_quantized_into(row_refs.iter().copied(), QuantScheme::Int8, &mut out)
                    .unwrap();
                black_box(out[0])
            })
        });
    }
    group.finish();
}

/// Scalar vs every supported SIMD kernel on identical rows, per scheme.
/// The bit-identity contract means this is a pure speed comparison: any
/// divergence in the pooled values is caught by `tests/kernel_equivalence`
/// and the `exp_hotpath --check` gate, not here.
fn kernel_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_kernels");
    group.sample_size(30);
    let (pf, dim) = (40usize, 64usize);
    let kernels: Vec<SelectedKernel> = [PoolKernel::Scalar, PoolKernel::Sse2, PoolKernel::Avx2]
        .into_iter()
        .filter(|k| k.is_supported())
        .map(PoolKernel::resolve)
        .collect();
    for (name, scheme) in [
        ("int8", QuantScheme::Int8),
        ("int4", QuantScheme::Int4),
        ("fp32", QuantScheme::Fp32),
    ] {
        let rows = quantized_rows(pf, dim, scheme);
        let row_refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut out = vec![0.0f32; dim];
        for &kernel in &kernels {
            let id = BenchmarkId::new(name, kernel.name());
            group.bench_with_input(id, &pf, |b, _| {
                b.iter(|| {
                    out.iter_mut().for_each(|v| *v = 0.0);
                    pooling::pool_quantized_into_with(
                        kernel,
                        row_refs.iter().copied(),
                        scheme,
                        &mut out,
                    )
                    .unwrap();
                    black_box(out[0])
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, pooling_cost, seed_vs_slice, kernel_comparison);
criterion_main!(benches);

//! Criterion bench backing Table 3/4 and §A.5: the cost of dequantise + pool
//! that the pooled-embedding cache and load-time de-quantisation avoid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use embedding::{pooling, quantize_row, QuantScheme};

fn pooling_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_quantized");
    group.sample_size(30);
    for &pf in &[10usize, 40, 100] {
        for (name, scheme) in [("int8", QuantScheme::Int8), ("fp32", QuantScheme::Fp32)] {
            let dim = 64;
            let rows: Vec<Vec<u8>> = (0..pf)
                .map(|i| {
                    let values: Vec<f32> = (0..dim).map(|j| ((i * j) as f32).sin()).collect();
                    quantize_row(&values, scheme)
                })
                .collect();
            let row_refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
            group.bench_with_input(BenchmarkId::new(name, pf), &pf, |b, _| {
                b.iter(|| pooling::pool_quantized(&row_refs, scheme, dim).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, pooling_cost);
criterion_main!(benches);

//! Experiment E8 — paper Table 4: pooled-embedding-cache hit rate and average
//! hit length as a function of the admission length threshold.

use sdm_bench::{header, pct};
use sdm_cache::PooledEmbeddingCache;
use sdm_metrics::units::Bytes;
use workload::{QueryGenerator, WorkloadConfig};

fn main() {
    header("Table 4: PooledEmb cache hit rate vs LenThreshold");
    let model = dlrm::model_zoo::m1();
    let workload = WorkloadConfig {
        item_batch: 4,
        user_population: 500_000,
        user_zipf_exponent: 0.52,
        inference_eval: false,
    };
    let queries = QueryGenerator::new(&model.tables, workload, 8)
        .expect("workload")
        .generate(6_000);

    println!("\n  LenThreshold   hit rate   avg hit length");
    for threshold in [1usize, 4, 8, 16, 32] {
        let mut cache = PooledEmbeddingCache::new(Bytes::from_mib(64), threshold);
        for q in &queries {
            for req in &q.user_requests {
                if cache.lookup(req.table, &req.indices).is_none() {
                    cache.insert(req.table, &req.indices, &[0.0f32; 16]);
                }
            }
        }
        println!(
            "  {:>10}   {:>8}   {:>10.1}",
            threshold,
            pct(cache.stats().hit_rate()),
            cache.average_hit_length()
        );
    }
    println!("\nPaper Table 4: ~4-4.6% hit rate roughly flat in the threshold, while the average");
    println!("length of a hit grows from 11 to 76 as the threshold rises from 1 to 32.");
}

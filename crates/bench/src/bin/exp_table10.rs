//! Experiment E11 — paper Table 10: sizing the future M3 host — how many
//! Optane SSDs its user-embedding IOPS demand requires.

use cluster::sizing::{size_ssds, SizingInputs};
use sdm_bench::header;

fn main() {
    header("Table 10: SDM host sizing for M3");
    let inputs = SizingInputs {
        qps: 3150.0,
        user_tables: 2000,
        avg_pooling_factor: 30.0,
        cache_hit_rate: 0.80,
        iops_per_ssd: 4_000_000.0,
    };
    let result = size_ssds(inputs).expect("sizing failed");
    println!("\n  model  QPS   user tables  PF  hit rate  raw MIOPS  SM MIOPS  Optane SSDs needed");
    println!(
        "  M3     {:>4}  {:>11}  {:>2}  {:>7.0}%  {:>9.1}  {:>8.1}  {:>18}",
        inputs.qps,
        inputs.user_tables,
        inputs.avg_pooling_factor,
        inputs.cache_hit_rate * 100.0,
        result.raw_iops / 1e6,
        result.sm_iops / 1e6,
        result.ssds_needed
    );
    println!(
        "\nPaper Table 10: 36 MIOPS after the cache, satisfied by 9 Optane SSDs at 4 MIOPS each."
    );

    println!("\nsensitivity to the cache hit rate:");
    for hit in [0.5f64, 0.6, 0.7, 0.8, 0.9, 0.95] {
        let r = size_ssds(SizingInputs {
            cache_hit_rate: hit,
            ..inputs
        })
        .unwrap();
        println!(
            "  hit rate {:>4.0}% -> {:>5.1} MIOPS -> {:>2} SSDs",
            hit * 100.0,
            r.sm_iops / 1e6,
            r.ssds_needed
        );
    }
}

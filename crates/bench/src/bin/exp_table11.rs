//! Experiment E12 — paper Table 11: multi-tenancy — SDM raises host
//! utilisation for experimental models and cuts fleet power by ~29%.

use cluster::multi_tenancy::{
    fleet_power_ratio, tenants_by_memory, utilisation, TenancyHost, TenantModel,
};
use cluster::{HostConfig, PowerModel};
use sdm_bench::{header, pct};
use sdm_metrics::units::Bytes;

fn main() {
    header("Table 11: multi-tenancy on the future accelerator platform");
    let power = PowerModel::default();
    let hw_fa = HostConfig::hw_fa();
    let hw_fao = HostConfig::hw_fao();
    let power_ratio = power.normalized_host_power(&hw_fao, &hw_fa);

    // Experimental models consume up to a quarter of a production model's
    // resources and run at low traffic (paper §5.3). Their embedding
    // capacity must fit in host memory (DRAM, or DRAM + SM with SDM);
    // accelerator memory holds the item/dense parts and is not the
    // constraint.
    let tenant = TenantModel {
        memory: Bytes::from_gib(250),
        compute_share: 0.225,
    };
    let baseline = TenancyHost {
        memory: hw_fa.dram + hw_fa.ssd_capacity(),
        power: 1.0,
    };
    let sdm = TenancyHost {
        memory: hw_fao.dram + hw_fao.ssd_capacity(),
        power: power_ratio,
    };

    let compute_cap = (1.0 / tenant.compute_share).floor() as u64;
    let base_tenants = tenants_by_memory(&baseline, &tenant).min(compute_cap);
    let sdm_tenants = tenants_by_memory(&sdm, &tenant).min(compute_cap);
    println!("\n  scenario      embedding memory/host   tenants/host  bound by     utilisation  host power (norm)");
    println!(
        "  HW-FA         {:>20}   {:>12}  {:<10}  {:>11}  {:>17.2}",
        baseline.memory.to_string(),
        base_tenants,
        "memory",
        pct(utilisation(base_tenants, &tenant)),
        1.0
    );
    println!(
        "  HW-FAO + SDM  {:>20}   {:>12}  {:<10}  {:>11}  {:>17.2}",
        sdm.memory.to_string(),
        sdm_tenants,
        "compute",
        pct(utilisation(sdm_tenants, &tenant)),
        power_ratio
    );

    // Fleet power with the paper's measured utilisations and with ours.
    let paper = fleet_power_ratio(0.63, 1.0, 0.90, 1.01).unwrap();
    let measured = fleet_power_ratio(
        utilisation(base_tenants, &tenant).max(0.01),
        1.0,
        utilisation(sdm_tenants, &tenant).max(0.01),
        power_ratio,
    )
    .unwrap();
    println!(
        "\n  fleet power ratio (paper utilisations 0.63 -> 0.90): {:.2}  saving {}",
        paper,
        pct(1.0 - paper)
    );
    println!(
        "  fleet power ratio (modelled hosts above):             {:.2}  saving {}",
        measured,
        pct(1.0 - measured)
    );
    println!("\nPaper Table 11: fleet power 0.71, i.e. a 29% saving. The modelled hosts show the");
    println!("same mechanism (memory-bound -> compute-bound) with a larger headroom because the");
    println!("baseline host here is limited to a single experimental model.");
}

//! Experiment E14 — paper §4.1: mmap through the page cache vs DIRECT-IO with
//! an application-level row cache, for random small embedding reads.

use io_engine::{EngineConfig, IoEngine, IoRequest, MmapIo};
use scm_device::{DeviceArray, DeviceId, ReadCommand, TechnologyProfile};
use sdm_bench::header;
use sdm_cache::RowCache;
use sdm_metrics::units::Bytes;
use sdm_metrics::{LatencyHistogram, SimInstant};
use workload::ZipfSampler;

fn main() {
    header("mmap vs DIRECT-IO for random 128B embedding reads");
    let rows: u64 = 500_000;
    let row_bytes = 128u32;
    let capacity = Bytes::from_mib(128);
    // Strong temporal locality (item-table-like) so the fast-memory budget
    // matters: the row cache can hold ~4x more hot rows than the page cache
    // can hold hot pages.
    let sampler = ZipfSampler::new(rows, 1.05, 3).expect("sampler");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let accesses: Vec<u64> = (0..30_000).map(|_| sampler.sample(&mut rng)).collect();
    let fm_budget = Bytes::from_mib(2);

    // mmap path: page-granularity faults through a page cache.
    let mut array = DeviceArray::homogeneous(TechnologyProfile::nand_flash(), capacity, 1).unwrap();
    let mut mmap = MmapIo::new(DeviceId(0), fm_budget);
    let mut mmap_hist = LatencyHistogram::new();
    for &row in &accesses {
        let (_, latency) = mmap
            .read(
                &mut array,
                row * row_bytes as u64,
                row_bytes,
                SimInstant::EPOCH,
            )
            .unwrap();
        mmap_hist.record(latency);
    }

    // DIRECT-IO path: SGL row reads plus an application row cache with the
    // same fast-memory budget, issued closed-loop (one IO outstanding).
    let array = DeviceArray::homogeneous(TechnologyProfile::nand_flash(), capacity, 1).unwrap();
    let mut engine = IoEngine::new(array, EngineConfig::default());
    let mut cache = sdm_cache::CpuOptimizedCache::new(fm_budget);
    let mut direct_hist = LatencyHistogram::new();
    let mut now = SimInstant::EPOCH;
    for &row in &accesses {
        let key = sdm_cache::RowKey::new(0, row);
        if cache.get(&key).is_some() {
            direct_hist.record(cache.lookup_cost());
            now += cache.lookup_cost();
            continue;
        }
        engine
            .submit(
                IoRequest::new(
                    DeviceId(0),
                    ReadCommand::sgl(row * row_bytes as u64, row_bytes),
                ),
                now,
            )
            .unwrap();
        let (completions, finished) = engine.drain(now).unwrap();
        direct_hist.record(finished.duration_since(now) + cache.lookup_cost());
        now = finished;
        cache.insert(key, &completions[0].data);
    }

    println!("\n  path                      mean latency   p99 latency   FM resident      hit rate   read amplification");
    println!(
        "  mmap (page cache)         {:>12}   {:>11}   {:>10}   {:>8.1}%   {:>6.1}x",
        mmap_hist.mean().to_string(),
        mmap_hist.p99().to_string(),
        mmap.stats().resident_bytes.to_string(),
        mmap.stats().hit_rate() * 100.0,
        mmap.stats().read_amplification()
    );
    println!(
        "  DIRECT-IO + row cache     {:>12}   {:>11}   {:>10}   {:>8.1}%   {:>6.1}x",
        direct_hist.mean().to_string(),
        direct_hist.p99().to_string(),
        cache.memory_used().to_string(),
        cache.stats().hit_rate() * 100.0,
        engine.stats().read_amplification()
    );
    let ratio = mmap_hist.mean().as_micros_f64() / direct_hist.mean().as_micros_f64().max(1e-9);
    println!("\n  mmap mean latency / DIRECT-IO mean latency = {ratio:.1}x (paper: ~3x)");
}

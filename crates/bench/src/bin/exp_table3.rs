//! Experiment E7 — paper Table 3: profiling repeated index (sub)sequences to
//! justify the pooled-embedding cache design (only the full sequence, c = P,
//! is worth caching).

use sdm_bench::{header, pct};
use std::collections::{HashMap, HashSet};
use workload::{QueryGenerator, WorkloadConfig};

fn main() {
    header("Table 3: pooled-embedding subsequence profiling");
    // Paper-scale M1 descriptors and a realistic user population, so full
    // index sequences only repeat when the same user reappears.
    let model = dlrm::model_zoo::m1();
    let workload = WorkloadConfig {
        item_batch: 4,
        user_population: 500_000,
        user_zipf_exponent: 0.52,
        inference_eval: false,
    };
    let queries = QueryGenerator::new(&model.tables, workload, 7)
        .expect("workload")
        .generate(6_000);

    // Scheme c = P: a hit when the full (table, sorted index multiset) was
    // seen before.
    let mut seen_full: HashSet<(u32, Vec<u64>)> = HashSet::new();
    let mut full_hits = 0u64;
    // Scheme c = 10: a hit when any sorted 10-index window repeats.
    let mut seen_sub: HashSet<(u32, Vec<u64>)> = HashSet::new();
    let mut sub_hits = 0u64;
    let mut sub_generated = 0u64;
    let mut index_popularity: HashMap<(u32, u64), u64> = HashMap::new();
    let mut top_hits = 0u64;
    let mut total_queries = 0u64;

    for q in &queries {
        total_queries += 1;
        let mut query_full_hit = false;
        let mut query_sub_hit = false;
        let mut query_top_hit = false;
        for req in &q.user_requests {
            let mut sorted = req.indices.clone();
            sorted.sort_unstable();
            if !seen_full.insert((req.table, sorted.clone())) {
                query_full_hit = true;
            }
            for window in sorted.windows(10) {
                sub_generated += 1;
                if !seen_sub.insert((req.table, window.to_vec())) {
                    query_sub_hit = true;
                }
            }
            // "top indices" variant: only windows made entirely of indices
            // already seen at least 8 times qualify.
            let hot: Vec<u64> = sorted
                .iter()
                .copied()
                .filter(|&i| index_popularity.get(&(req.table, i)).copied().unwrap_or(0) >= 8)
                .collect();
            if hot.len() >= 10 && !seen_sub.insert((req.table, hot[..10].to_vec())) {
                query_top_hit = true;
            }
            for &i in &req.indices {
                *index_popularity.entry((req.table, i)).or_default() += 1;
            }
        }
        if query_full_hit {
            full_hits += 1;
        }
        if query_sub_hit {
            sub_hits += 1;
        }
        if query_top_hit {
            top_hits += 1;
        }
    }

    println!("\n  scheme              hit rate    generated sequences");
    println!(
        "  c=10                {:>8}    {} windows (O(choose(P, c)) per request)",
        pct(sub_hits as f64 / total_queries as f64),
        sub_generated
    );
    println!(
        "  c=10, top indices   {:>8}    O(100) candidates per request",
        pct(top_hits as f64 / total_queries as f64)
    );
    println!(
        "  c=P (full seq)      {:>8}    1 per request",
        pct(full_hits as f64 / total_queries as f64)
    );
    println!("\nPaper Table 3: 26% / 19% / 5%. Expected shape: subsequence schemes hit more often");
    println!("but generate orders of magnitude more candidates; the full-sequence scheme keeps a");
    println!("useful hit rate at one candidate per request, so it is the one deployed.");
}

//! Experiment E10 — paper Table 9: M2 on an accelerator platform — SDM with
//! Optane avoids scale-out and saves ~5% power; Nand Flash cannot sustain
//! the accelerated QPS because its loaded latency forces heavy
//! under-utilisation.

use cluster::{ScenarioComparison, ServingScenario};
use dlrm::ComputeModel;
use scm_device::TechnologyProfile;
use sdm_bench::{bench_sdm_config, header, pct, queries_for, scaled, EXPERIMENT_SEED};
use sdm_core::SdmSystem;
use sdm_metrics::units::Watts;
use sdm_metrics::SimDuration;

fn main() {
    header("Table 9: M2 — scale-out vs SDM on Nand vs SDM on Optane");
    let paper_model = dlrm::model_zoo::m2();
    let model = scaled(&paper_model);
    let queries = queries_for(&model, 40, 92);

    // 1. Measure the steady-state cache hit rate on the simulated stack.
    let mut system = SdmSystem::build_with_compute(
        &model,
        bench_sdm_config(),
        ComputeModel::accelerator(),
        EXPERIMENT_SEED,
    )
    .expect("system build failed");
    let _ = system.run_queries(&queries[..20]).unwrap();
    system.manager_mut().invalidate_caches();
    let _ = system.run_queries(&queries[20..]).unwrap();
    let hit_rate = system.manager().stats().row_cache_hit_rate();
    println!(
        "\nmeasured steady-state SM cache hit rate: {}",
        pct(hit_rate)
    );

    // 2. Roofline the sustainable QPS per technology at paper scale:
    //    lookups that reach SM per query = user tables × avg PF × miss rate;
    //    the devices must serve them while staying near their unloaded
    //    latency, otherwise the user-embedding phase leaks into the critical
    //    path (Equation 3).
    let user_tables = paper_model.user_tables();
    let avg_pf = user_tables
        .iter()
        .map(|t| t.pooling_factor as f64)
        .sum::<f64>()
        / user_tables.len() as f64;
    let sm_lookups_per_query = user_tables.len() as f64 * avg_pf * (1.0 - hit_rate);
    let accelerator_qps = 450.0;
    let latency_budget = SimDuration::from_micros(110);
    println!(
        "SM lookups per query at paper scale: {:.0} ({} tables x PF {:.0} x miss {:.0}%)",
        sm_lookups_per_query,
        user_tables.len(),
        avg_pf,
        (1.0 - hit_rate) * 100.0
    );
    println!("per-IO latency budget to keep the user phase hidden: {latency_budget}");

    let mut measured_nand_ratio = 1.0;
    println!("\n  technology      usable IOPS (2 SSDs)   QPS bound by SM   QPS served (cap {accelerator_qps})");
    for (name, profile) in [
        ("Nand Flash", TechnologyProfile::nand_flash()),
        ("Optane SSD", TechnologyProfile::optane_ssd()),
    ] {
        let device =
            scm_device::ScmDevice::new(name, profile, sdm_metrics::units::Bytes::from_gib(1))
                .expect("device");
        let usable = 2.0 * device.iops_at_latency_target(latency_budget);
        let qps_bound = usable / sm_lookups_per_query.max(1.0);
        let served = qps_bound.min(accelerator_qps);
        println!(
            "  {name:<14} {:>18.2}M   {:>15.0}   {:>12.0}",
            usable / 1e6,
            qps_bound,
            served
        );
        if name == "Nand Flash" {
            measured_nand_ratio = (served / accelerator_qps).clamp(0.05, 1.0);
        }
    }
    println!(
        "  Nand/Optane served-QPS ratio = {:.2} (paper: 230/450 = 0.51)",
        measured_nand_ratio
    );

    // 3. Fleet arithmetic (Table 9).
    let total_qps = accelerator_qps * 1500.0;
    let comparison = ScenarioComparison {
        total_qps,
        scenarios: vec![
            ServingScenario::new("HW-AN + ScaleOut", accelerator_qps, Watts(1.05))
                .with_auxiliary_hosts(0.2),
            ServingScenario::new(
                "HW-AN + SDM",
                accelerator_qps * measured_nand_ratio,
                Watts(1.4 * measured_nand_ratio / (230.0 / 450.0)),
            ),
            ServingScenario::new("HW-AO + SDM", accelerator_qps, Watts(1.0)),
        ],
    };
    println!("\nfleet arithmetic:");
    println!("  scenario             QPS/host  power/host  total hosts  total power (norm)");
    for row in comparison.evaluate().unwrap() {
        println!(
            "  {:<19} {:>9.0}  {:>10.2}  {:>11}  {:>14.2}",
            row.name,
            row.qps_per_host,
            row.normalized_host_power,
            row.total_hosts,
            row.normalized_total_power
        );
    }
    println!(
        "  power saving of HW-AO + SDM over scale-out: {} (paper: 5%)",
        pct(comparison.power_saving(2).unwrap())
    );
    println!(
        "  HW-AN + SDM needs considerably more power than either (paper: 2978 vs 1575 hosts)."
    );
}

//! Hot-path tracking experiment: measures the zero-copy serving loop and
//! writes machine-readable numbers to `BENCH_hotpath.json` so the perf
//! trajectory is tracked from PR to PR.
//!
//! Five measurements (release build recommended; 1–4 are wall clock, 5 is
//! virtual-clock and therefore deterministic):
//!
//! 1. **Pooling** — seed-style `Vec<Vec<f32>>` pooling (fresh vector per
//!    row + fresh output) vs the fused slice-based `pool_quantized_into`
//!    hot path, in ns/row.
//! 2. **Batch serving** — looped `run_query` vs `run_batch` over the same
//!    warmed M1 stream, in queries/second of host wall time.
//! 3. **Allocations** — heap allocations per query on the warmed hot path,
//!    counted by a `GlobalAlloc` wrapper around the system allocator
//!    (expected: 0 for `run_batch` / `run_query_into`).
//! 4. **Multi-stream serving** — *measured* wall-clock QPS of a
//!    `ServingHost` at 1/2/4/8 shards over the same M1 stream, plus the
//!    scaling-efficiency ratio against perfectly linear scaling. This is
//!    the measurement that replaced the removed
//!    `QpsReport::qps_with_streams` extrapolation; the delivered numbers
//!    depend on the machine's core count (recorded alongside).
//! 5. **Cross-query IO overlap** — exact vs relaxed batch execution on the
//!    *virtual* clock (paper §3.2): batch QPS, p50/p99 query latency and
//!    observed device-queue depth per mode. Deterministic, so CI gates on
//!    these numbers directly.
//! 6. **Shared host cache tier** — tier-on vs tier-off serving at 1/2/4
//!    shards on a skewed Zipf stream, on the *virtual* clock: batch QPS,
//!    shared-tier hit rate and the cross-shard hit rate (hits served by a
//!    row another shard promoted). Deterministic, so CI gates on the gain
//!    and on cross-shard reuse staying strictly positive.
//! 7. **Cache-admission policy lab** — always-admit vs the second-touch
//!    doorkeeper at 1/2/4 shards over the same skewed stream, but through a
//!    *capacity-constrained* shared tier (smaller than the hot row set, so
//!    the LRU churns and admission has something to decide). Virtual clock;
//!    CI gates the doorkeeper's hit rate never falling below always-admit
//!    and the constrained always-admit QPS staying within tolerance of the
//!    full-budget tier numbers.
//! 8. **Cache-hit latency** — wall-clock ns per warmed hit in each cache
//!    level (private row cache, shared tier, pooled-embedding cache), the
//!    numbers the ROADMAP's perf-trajectory item tracks.
//! 9. **Open-loop serving** — latency-vs-offered-load curve on the
//!    *virtual* clock: a seeded Poisson arrival stream drives an
//!    SLO-aware front end (dynamic batching, token-bucket admission, load
//!    shedding) over exact- and relaxed-mode hosts at three offered rates.
//!    Deterministic; CI gates the curve's shape (p99 monotone in offered
//!    load, zero shed at the lowest rate, served ≤ offered).
//! 10. **Fault resilience** — seeded fault injection (transient errors,
//!     bit flips, stuck IOs, latency storms) vs the end-to-end handling
//!     stack (checksums, retries, deadlines, hedged reads, degraded rows,
//!     shard failover) on the *virtual* clock. Deterministic; CI gates
//!     zero corrupted results served, total corruption detection, a storm
//!     throughput floor, zero degraded rows under an empty plan and
//!     bit-identical replay per fault seed.
//!
//! Usage: `exp_hotpath [--quick] [--out PATH] [--check]`. Quick mode
//! shrinks the iteration counts for CI smoke runs; `--check` compares the
//! fresh numbers against the committed `BENCH_hotpath.json` (read before it
//! is overwritten) and exits non-zero on a >25 % regression in the gated
//! fields or a violated overlap invariant.

use dlrm::QueryResult;
use embedding::kernels::{self, SelectedKernel};
use embedding::{pooling, PoolKernel, QuantScheme};
use sdm_bench::{
    bench_quantized_rows, bench_sdm_config, build_system, header, json_field, measure_batch_modes,
    measure_cache_policies, measure_fault_resilience, measure_load_curve, measure_shared_tier,
    measure_streams, pool_seed_style, queries_for, scaled, skewed_queries_for,
};
use sdm_cache::{CacheConfig, DualRowCache, PooledEmbeddingCache, RowCache, RowKey, SharedRowTier};
use sdm_core::{FrontendConfig, TokenBucketConfig};
use sdm_metrics::alloc_hook;
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::time::Instant;

/// System allocator wrapper feeding the sdm-metrics allocation hook.
struct CountingAllocator;

// SAFETY: defers every operation to the system allocator unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same contract as `System.alloc`; the layout is forwarded
    // unchanged and the hook only touches an atomic counter.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        alloc_hook::note_alloc(layout.size());
        System.alloc(layout)
    }
    // SAFETY: same contract as `System.alloc_zeroed`; the layout is
    // forwarded unchanged and the hook only touches an atomic counter.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        alloc_hook::note_alloc(layout.size());
        System.alloc_zeroed(layout)
    }
    // SAFETY: same contract as `System.realloc`; pointer, layout and size
    // are forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            alloc_hook::note_alloc(new_size);
        }
        System.realloc(ptr, layout, new_size)
    }
    // SAFETY: same contract as `System.dealloc`; pointer and layout are
    // forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allowed wall-clock regression vs the committed snapshot (25 %).
const REGRESSION_TOLERANCE: f64 = 0.25;

/// Minimum fraction of healthy virtual QPS the serving stack must retain
/// under the fault storm (transient errors + bit flips + stuck IOs + a
/// 6x latency storm). The measured retention is far higher; the floor
/// exists so a resilience regression cannot hide inside run-to-run noise.
const STORM_QPS_FLOOR_FRAC: f64 = 0.05;

/// The `--check` gate: compares gated fields of the fresh document against
/// the committed baseline and verifies the overlap invariants. Returns the
/// failure messages (empty = pass).
///
/// `compare_wall_clock` gates the machine-dependent fields (pooling ns/row,
/// batch and multi-stream QPS); the caller sets it only when the fresh run
/// and the snapshot report the same `host_cores`, so a slower CI runner
/// cannot fail spuriously. The virtual-clock `io_overlap` fields are
/// deterministic and always gated.
fn regression_failures(baseline: &str, fresh: &str, compare_wall_clock: bool) -> Vec<String> {
    let mut failures = Vec::new();
    // (section, field, higher_is_better)
    // The shared-tier QPS and hit-rate fields are deterministic (virtual
    // clock over deterministic cache states); the cross-shard *attribution*
    // rates are not quite — origin tags depend on which shard's warmup
    // thread promoted a row first — so those are gated as strictly-positive
    // invariants below rather than compared numerically.
    let deterministic = [
        ("io_overlap", "relaxed_qps", true),
        ("shared_tier", "on_qps_2", true),
        ("shared_tier", "on_qps_4", true),
        ("shared_tier", "hit_rate_4", true),
        ("open_loop", "exact_served_qps_3", true),
        ("open_loop", "relaxed_served_qps_3", true),
        ("fault_resilience", "healthy_qps", true),
        ("fault_resilience", "storm_qps", true),
    ];
    // The `cache_latency` ns/hit fields are deliberately *not* gated:
    // single-digit-nanosecond microbenches jitter well past 25 % run to
    // run; they are tracked in the JSON (and presence-checked by ci.sh)
    // as trajectory numbers only.
    let wall_clock = [
        ("pooling", "slice_ns_per_row", false),
        ("batch", "run_batch_qps", true),
        ("multi_stream", "qps_streams_1", true),
        ("multi_stream", "qps_streams_4", true),
    ];
    let mut compare = |section: &str, field: &str, higher_is_better: bool| {
        let (Some(base), Some(now)) = (
            json_field(baseline, section, field),
            json_field(fresh, section, field),
        ) else {
            failures.push(format!(
                "{section}.{field}: missing in baseline or fresh run"
            ));
            return;
        };
        let regressed = if higher_is_better {
            now < base * (1.0 - REGRESSION_TOLERANCE)
        } else {
            now > base * (1.0 + REGRESSION_TOLERANCE)
        };
        if regressed {
            failures.push(format!(
                "{section}.{field}: {now:.3} regressed >{:.0}% vs baseline {base:.3}",
                REGRESSION_TOLERANCE * 100.0
            ));
        }
    };
    for (section, field, higher_is_better) in deterministic {
        compare(section, field, higher_is_better);
    }
    if compare_wall_clock {
        for (section, field, higher_is_better) in wall_clock {
            compare(section, field, higher_is_better);
        }
    }

    // Pooling-kernel invariants on the fresh run: every supported kernel
    // must have produced bit-identical pooled vectors (the kernels'
    // documented contract — a lane-order or FMA slip shows up here), and
    // on a host with a SIMD kernel the auto dispatch may never be slower
    // than scalar on the headline int8 path.
    let pool_kernel = |field: &str| json_field(fresh, "pooling_kernels", field);
    match pool_kernel("bit_identical") {
        Some(1.0) => {}
        other => failures.push(format!(
            "pooling_kernels: kernels not bit-identical ({other:?})"
        )),
    }
    match (pool_kernel("simd_available"), pool_kernel("simd_speedup")) {
        (Some(0.0), Some(_)) => {} // scalar-only host
        (Some(_), Some(speedup)) if speedup >= 1.0 => {}
        other => failures.push(format!(
            "pooling_kernels: simd kernel slower than scalar or fields missing ({other:?})"
        )),
    }

    // Overlap invariants on the fresh run (virtual clock — deterministic).
    let overlap = |field: &str| json_field(fresh, "io_overlap", field);
    match (overlap("exact_qps"), overlap("relaxed_qps")) {
        (Some(exact), Some(relaxed)) if relaxed >= exact => {}
        other => failures.push(format!("io_overlap: relaxed_qps < exact_qps ({other:?})")),
    }
    match (
        overlap("mean_queue_depth_exact"),
        overlap("mean_queue_depth_relaxed"),
    ) {
        (Some(exact), Some(relaxed)) if relaxed > exact => {}
        other => failures.push(format!(
            "io_overlap: relaxed queue depth not strictly deeper ({other:?})"
        )),
    }

    // Shared-tier invariants on the fresh run (virtual clock —
    // deterministic): enabling the tier must never cost batch throughput on
    // the skewed stream at 2+ shards, and the cross-shard hit rate — the
    // reuse the tier exists to recover — must stay strictly positive.
    let tier = |field: &str| json_field(fresh, "shared_tier", field);
    for shards in [2u32, 4] {
        match (
            tier(&format!("off_qps_{shards}")),
            tier(&format!("on_qps_{shards}")),
        ) {
            (Some(off), Some(on)) if on >= off => {}
            other => failures.push(format!(
                "shared_tier: on_qps_{shards} < off_qps_{shards} ({other:?})"
            )),
        }
        match tier(&format!("cross_shard_hit_rate_{shards}")) {
            Some(rate) if rate > 0.0 => {}
            other => failures.push(format!(
                "shared_tier: cross_shard_hit_rate_{shards} not strictly positive ({other:?})"
            )),
        }
    }

    // Cache-admission policy invariants on the fresh run: the
    // capacity-constrained always-admit tier may cost some throughput
    // against the full-budget tier, but never more than the regression
    // tolerance; and on the skewed stream the second-touch doorkeeper —
    // which exists to keep single-touch tail rows from displacing the
    // resident head — must never hit *less* often than always-admit. At 1
    // and 2 shards the comparison is deterministic and gated strictly; at
    // 4 shards promotion order depends on thread interleaving and the
    // per-run hit rates jitter by a few tenths of a percent, so that
    // comparison carries a small noise allowance — a real doorkeeper
    // regression (tail rows admitted first-touch, head evicted) moves the
    // rate by far more.
    let policy = |field: &str| json_field(fresh, "cache_policies", field);
    for shards in [1u32, 2, 4] {
        match (
            policy(&format!("always_admit_qps_{shards}")),
            tier(&format!("on_qps_{shards}")),
        ) {
            (Some(constrained), Some(full))
                if constrained >= full * (1.0 - REGRESSION_TOLERANCE) => {}
            other => failures.push(format!(
                "cache_policies: always_admit_qps_{shards} regressed >{:.0}% vs \
                 shared_tier on_qps_{shards} ({other:?})",
                REGRESSION_TOLERANCE * 100.0
            )),
        }
        let hit_rate_noise = if shards >= 4 { 0.01 } else { 0.0 };
        match (
            policy(&format!("second_touch_hit_rate_{shards}")),
            policy(&format!("always_admit_hit_rate_{shards}")),
        ) {
            (Some(second), Some(always)) if second >= always - hit_rate_noise => {}
            other => failures.push(format!(
                "cache_policies: second_touch_hit_rate_{shards} below \
                 always_admit_hit_rate_{shards} ({other:?})"
            )),
        }
    }

    // Open-loop curve-shape invariants on the fresh run (virtual clock —
    // deterministic). Gated on shape, not on jitter-prone absolutes: p99
    // must be monotone non-decreasing in offered load, nothing may be shed
    // at the lowest rate, and a host can never serve more than was offered.
    let open = |field: &str| json_field(fresh, "open_loop", field);
    for mode in ["exact", "relaxed"] {
        match open(&format!("{mode}_shed_rate_1")) {
            Some(rate) if rate <= 0.0 => {}
            other => failures.push(format!(
                "open_loop: {mode}_shed_rate_1 not zero at the lowest offered load ({other:?})"
            )),
        }
        let p99 = |i: usize| open(&format!("{mode}_p99_us_{i}"));
        match (p99(1), p99(2), p99(3)) {
            (Some(a), Some(b), Some(c)) if a <= b && b <= c => {}
            other => failures.push(format!(
                "open_loop: {mode} p99 not monotone non-decreasing in offered load ({other:?})"
            )),
        }
        for i in 1..=3usize {
            match (
                open(&format!("{mode}_served_qps_{i}")),
                open(&format!("offered_qps_{i}")),
            ) {
                (Some(served), Some(offered)) if served <= offered => {}
                other => failures.push(format!(
                    "open_loop: {mode}_served_qps_{i} exceeds offered_qps_{i} ({other:?})"
                )),
            }
        }
    }

    // Fault-resilience invariants on the fresh run (virtual clock —
    // deterministic). These are the robustness contract, not perf numbers:
    // a corrupted payload may never reach a query result, an attached but
    // empty fault plan must be perfectly inert, replay under a pinned
    // fault seed must be bit-identical, the checksum must catch every
    // injected flip, and the storm/outage machinery must demonstrably
    // engage (throughput floor, failovers, deadline timeouts).
    let fault = |field: &str| json_field(fresh, "fault_resilience", field);
    for (field, expected) in [
        ("corrupted_served", 0.0),
        ("empty_plan_degraded_rows", 0.0),
        ("empty_plan_identical", 1.0),
        ("replay_identical", 1.0),
    ] {
        match fault(field) {
            Some(v) if v == expected => {}
            other => failures.push(format!(
                "fault_resilience: {field} != {expected} ({other:?})"
            )),
        }
    }
    match (fault("injected_corruptions"), fault("detected_corruptions")) {
        (Some(injected), Some(detected)) if injected > 0.0 && detected == injected => {}
        other => failures.push(format!(
            "fault_resilience: checksum did not catch every injected corruption ({other:?})"
        )),
    }
    match (fault("healthy_qps"), fault("storm_qps")) {
        (Some(healthy), Some(storm)) if storm >= healthy * STORM_QPS_FLOOR_FRAC => {}
        other => failures.push(format!(
            "fault_resilience: storm_qps below {:.0}% of healthy_qps ({other:?})",
            STORM_QPS_FLOOR_FRAC * 100.0
        )),
    }
    for field in [
        "outage_failovers",
        "stuck_deadline_timeouts",
        "outage_degraded_rows",
    ] {
        match fault(field) {
            Some(v) if v > 0.0 => {}
            other => failures.push(format!(
                "fault_resilience: {field} not strictly positive ({other:?})"
            )),
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    // The committed snapshot is the regression baseline; read it before the
    // fresh numbers overwrite it.
    let baseline = if check {
        std::fs::read_to_string(&out_path).ok()
    } else {
        None
    };

    header("Hot path: arena-backed rows, slice pooling, batched execution");
    let (pool_iters, batch_reps) = if quick { (2_000, 9) } else { (40_000, 36) };

    // --- 1. Pooling: seed Vec<Vec<f32>> path vs slice-based into-path. ---
    let pf = 40usize;
    let dim = 64usize;
    let rows = bench_quantized_rows(pf, dim, QuantScheme::Int8);
    let row_refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();

    // Warm both paths, then time.
    let mut sink = 0.0f32;
    for _ in 0..pool_iters / 10 {
        sink += black_box(pool_seed_style(
            black_box(&row_refs),
            QuantScheme::Int8,
            dim,
        ))[0];
    }
    let start = Instant::now();
    for _ in 0..pool_iters {
        sink += black_box(pool_seed_style(
            black_box(&row_refs),
            QuantScheme::Int8,
            dim,
        ))[0];
    }
    let seed_ns_per_row = start.elapsed().as_nanos() as f64 / (pool_iters as f64) / (pf as f64);

    let mut out = vec![0.0f32; dim];
    for _ in 0..pool_iters / 10 {
        out.iter_mut().for_each(|v| *v = 0.0);
        pooling::pool_quantized_into(
            black_box(row_refs.iter().copied()),
            QuantScheme::Int8,
            &mut out,
        )
        .unwrap();
        sink += black_box(&out)[0];
    }
    let start = Instant::now();
    for _ in 0..pool_iters {
        out.iter_mut().for_each(|v| *v = 0.0);
        pooling::pool_quantized_into(
            black_box(row_refs.iter().copied()),
            QuantScheme::Int8,
            &mut out,
        )
        .unwrap();
        sink += black_box(&out)[0];
    }
    let slice_ns_per_row = start.elapsed().as_nanos() as f64 / (pool_iters as f64) / (pf as f64);
    let pooling_speedup = seed_ns_per_row / slice_ns_per_row;

    println!("\n  pooling (int8, pf={pf}, dim={dim})");
    println!("    seed Vec<Vec<f32>> path   {seed_ns_per_row:>8.2} ns/row");
    println!("    slice-based into path     {slice_ns_per_row:>8.2} ns/row");
    println!("    speedup                   {pooling_speedup:>8.2}x");

    // --- 1b. Per-kernel fused dequant-accumulate pooling (SIMD A/B). ---
    // Every kernel the host supports is measured over identical rows for
    // each quantisation scheme; the JSON records ns/row per (scheme,
    // kernel), the auto-dispatched kernel's name, and two fresh-run
    // invariants the --check gate enforces: cross-kernel bit-identity and
    // (on SIMD hosts) an auto-kernel speedup of at least 1.0x over scalar
    // on the headline int8 path.
    let auto = kernels::auto_kernel();
    let supported: Vec<SelectedKernel> = [PoolKernel::Scalar, PoolKernel::Sse2, PoolKernel::Avx2]
        .into_iter()
        .filter(|k| k.is_supported())
        .map(PoolKernel::resolve)
        .collect();
    let mut kernels_json = format!(
        "\"pf\": {pf},\n    \"dim\": {dim},\n    \"kernel\": \"{}\",\n    \
         \"simd_available\": {}",
        auto.name(),
        u8::from(auto.is_simd())
    );
    let mut bit_identical = true;
    let mut simd_speedup = 1.0f64;
    println!(
        "\n  pooling kernels (pf={pf}, dim={dim}, auto={})",
        auto.name()
    );
    for (scheme, tag) in [
        (QuantScheme::Int8, "int8"),
        (QuantScheme::Int4, "int4"),
        (QuantScheme::Fp32, "fp32"),
    ] {
        let kernel_rows = bench_quantized_rows(pf, dim, scheme);
        let kernel_refs: Vec<&[u8]> = kernel_rows.iter().map(|r| r.as_slice()).collect();
        let mut reference_bits: Option<Vec<u32>> = None;
        let mut scalar_ns = 0.0f64;
        for &kernel in &supported {
            // Bit-identity first: one pooled pass per kernel, compared
            // lane for lane against scalar (always the first entry).
            out.iter_mut().for_each(|v| *v = 0.0);
            pooling::pool_quantized_into_with(
                kernel,
                kernel_refs.iter().copied(),
                scheme,
                &mut out,
            )
            .unwrap();
            let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            match &reference_bits {
                None => reference_bits = Some(bits),
                Some(reference) => bit_identical &= &bits == reference,
            }

            for _ in 0..pool_iters / 10 {
                out.iter_mut().for_each(|v| *v = 0.0);
                pooling::pool_quantized_into_with(
                    kernel,
                    black_box(kernel_refs.iter().copied()),
                    scheme,
                    &mut out,
                )
                .unwrap();
                sink += black_box(&out)[0];
            }
            let start = Instant::now();
            for _ in 0..pool_iters {
                out.iter_mut().for_each(|v| *v = 0.0);
                pooling::pool_quantized_into_with(
                    kernel,
                    black_box(kernel_refs.iter().copied()),
                    scheme,
                    &mut out,
                )
                .unwrap();
                sink += black_box(&out)[0];
            }
            let ns = start.elapsed().as_nanos() as f64 / (pool_iters as f64) / (pf as f64);
            if kernel == SelectedKernel::SCALAR {
                scalar_ns = ns;
            }
            if matches!(scheme, QuantScheme::Int8) && kernel == auto && auto.is_simd() {
                simd_speedup = scalar_ns / ns;
            }
            println!("    {tag:<5} {:<7} {ns:>8.2} ns/row", kernel.name());
            kernels_json.push_str(&format!(",\n    \"{tag}_{}_ns\": {ns:.3}", kernel.name()));
        }
    }
    kernels_json.push_str(&format!(
        ",\n    \"simd_speedup\": {simd_speedup:.3},\n    \"bit_identical\": {}",
        u8::from(bit_identical)
    ));
    println!("    int8 auto-vs-scalar speedup {simd_speedup:>6.2}x");
    println!("    bit identical across kernels: {bit_identical}");

    // --- 2. Batch serving: looped run_query vs run_batch, on the heavy
    // M1 replica (operator math dominates, so the loop overhead is a small
    // slice) and on a light model (where the per-query serving-loop
    // overhead the batch path amortises is clearly visible). ---
    let batch = 64usize;

    // Median-of-rounds timing: alternate the two serving loops and take
    // each side's median round. The median (rather than the minimum)
    // captures what batching actually buys at this scale — the looped path
    // pays the allocator on every query, which shows up as a heavier tail
    // rather than a slower best case.
    let measure = |model: &dlrm::ModelConfig, reps: usize| -> (f64, f64) {
        let rounds = 9usize;
        let reps = (reps.max(rounds) / rounds).max(1);
        let queries = queries_for(model, batch, 99);
        // One system serves both paths (identical warmed cache state and
        // heap layout), and the rounds alternate so scheduler drift hits
        // both sides equally.
        let mut system = build_system(model, bench_sdm_config());
        let _ = system.run_queries(&queries).unwrap();
        for q in &queries {
            system.run_query(q).unwrap();
        }
        let _ = system.run_batch(&queries).unwrap();

        let mut loop_rounds = Vec::with_capacity(rounds);
        let mut batch_rounds = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let start = Instant::now();
            for _ in 0..reps {
                for q in &queries {
                    system.run_query(q).unwrap();
                }
            }
            loop_rounds.push(start.elapsed().as_secs_f64());

            let start = Instant::now();
            for _ in 0..reps {
                system.run_batch(&queries).unwrap();
            }
            batch_rounds.push(start.elapsed().as_secs_f64());
        }
        let median = |xs: &mut Vec<f64>| {
            xs.sort_by(f64::total_cmp);
            xs[xs.len() / 2]
        };
        let per_round = (reps * batch) as f64;
        (
            per_round / median(&mut loop_rounds),
            per_round / median(&mut batch_rounds),
        )
    };

    let m1 = scaled(&dlrm::model_zoo::m1());
    let (looped_qps, batch_qps) = measure(&m1, batch_reps);
    let batch_gain = batch_qps / looped_qps;
    println!("\n  serving loop (M1 scaled, batch={batch}, warmed)");
    println!("    looped run_query          {looped_qps:>12.0} q/s (host wall clock)");
    println!("    run_batch                 {batch_qps:>12.0} q/s (host wall clock)");
    println!("    gain                      {batch_gain:>8.3}x");

    let light = dlrm::model_zoo::tiny(4, 2, 2_000);
    let (light_looped_qps, light_batch_qps) = measure(&light, batch_reps * 40);
    let light_gain = light_batch_qps / light_looped_qps;
    println!("\n  serving loop (tiny model, batch={batch}, warmed)");
    println!("    looped run_query          {light_looped_qps:>12.0} q/s (host wall clock)");
    println!("    run_batch                 {light_batch_qps:>12.0} q/s (host wall clock)");
    println!("    gain                      {light_gain:>8.3}x");

    // --- 3. Allocations per query on the warmed hot path (M1 stream). ---
    let queries = queries_for(&m1, batch, 99);
    let mut system = build_system(&m1, bench_sdm_config());
    let mut result = QueryResult::default();
    for _ in 0..2 {
        for q in &queries {
            system.run_query_into(q, &mut result).unwrap();
        }
    }
    system.run_batch(&queries).unwrap();
    system.run_batch(&queries).unwrap();
    alloc_hook::reset();
    alloc_hook::set_enabled(true);
    for q in &queries {
        system.run_query_into(q, &mut result).unwrap();
    }
    alloc_hook::set_enabled(false);
    let run_query_allocs = alloc_hook::allocations() as f64 / batch as f64;

    alloc_hook::reset();
    alloc_hook::set_enabled(true);
    system.run_batch(&queries).unwrap();
    alloc_hook::set_enabled(false);
    let run_batch_allocs = alloc_hook::allocations() as f64 / batch as f64;

    println!("\n  allocations/query (warmed)");
    println!("    run_query_into            {run_query_allocs:>8.3}");
    println!("    run_batch                 {run_batch_allocs:>8.3}");

    // --- 4. Multi-stream serving: measured wall-clock QPS per shard
    // count (user-sticky routing, evenly divided budgets). ---
    let stream_counts = [1usize, 2, 4, 8];
    let (stream_queries, stream_rounds) = if quick { (96, 5) } else { (384, 9) };
    let ms_queries = queries_for(&m1, stream_queries, 101);
    let ms = measure_streams(
        &m1,
        &bench_sdm_config(),
        &ms_queries,
        &stream_counts,
        stream_rounds,
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\n  multi-stream serving (M1 scaled, {stream_queries} queries, {cores} cores)");
    for m in ms.iter() {
        let speedup = ms.speedup(m.streams).unwrap_or(0.0);
        let eff = ms.scaling_efficiency(m.streams).unwrap_or(0.0);
        println!(
            "    {} stream(s)               {:>12.0} q/s  (speedup {:>5.2}x, efficiency {})",
            m.streams,
            m.wall_qps(),
            speedup,
            sdm_bench::pct(eff),
        );
    }
    let qps_at = |streams: usize| ms.get(streams).map(|m| m.wall_qps()).unwrap_or(0.0);
    let speedup_4 = ms.speedup(4).unwrap_or(0.0);
    let efficiency_4 = ms.scaling_efficiency(4).unwrap_or(0.0);

    // --- 5. Cross-query IO overlap: exact vs relaxed batch execution on
    // the virtual clock (deterministic; numerically gated by CI). ---
    let overlap_window = 8usize;
    // Same size in quick and full mode: the measurement is virtual-clock
    // (cheap and deterministic), and the CI gate compares quick runs
    // against the committed full-mode snapshot.
    let overlap_batch = 256usize;
    let overlap_queries = queries_for(&m1, overlap_batch, 103);
    let overlap = measure_batch_modes(&m1, &bench_sdm_config(), &overlap_queries, overlap_window);
    let (oe, or) = (
        *overlap.exact().expect("exact mode measured"),
        *overlap.relaxed().expect("relaxed mode measured"),
    );
    println!(
        "\n  cross-query IO overlap (M1 scaled, {overlap_batch} cold queries, \
         window {overlap_window}, virtual clock)"
    );
    println!(
        "    exact    {:>12.0} q/s  p50 {:>9} p99 {:>9}  depth mean {:>5.2} max {:>3}",
        oe.qps(),
        oe.p50_latency,
        oe.p99_latency,
        oe.mean_queue_depth,
        oe.max_queue_depth,
    );
    println!(
        "    relaxed  {:>12.0} q/s  p50 {:>9} p99 {:>9}  depth mean {:>5.2} max {:>3}",
        or.qps(),
        or.p50_latency,
        or.p99_latency,
        or.mean_queue_depth,
        or.max_queue_depth,
    );
    println!(
        "    gain                      {:>8.3}x qps, {:>5.2}x p99, {:>5.2}x depth",
        overlap.qps_gain().unwrap_or(0.0),
        overlap.p99_ratio().unwrap_or(0.0),
        overlap.depth_gain().unwrap_or(0.0),
    );

    // --- 6. Shared host cache tier: tier-on vs tier-off at 1/2/4 shards
    // on a skewed Zipf stream (virtual clock; deterministic; CI-gated).
    // Same stream size in quick and full mode so the gate compares like
    // with like. ---
    let tier_counts = [1usize, 2, 4];
    let tier_batch = 256usize;
    let tier_budget = Bytes::from_mib(8);
    // The regime the tier exists for (paper §3): private row caches too
    // small for the hot row set — dividing the budget across shards shrinks
    // every slice further — while one host-level tier holds the whole hot
    // set. The pooled cache is off so whole-operator replay cannot mask the
    // row path in the measured batch.
    let mut tier_config = bench_sdm_config();
    tier_config.cache.row_cache_budget = Bytes::from_kib(512);
    tier_config.cache.pooled_cache_budget = Bytes::ZERO;
    let tier_queries = skewed_queries_for(&m1, tier_batch, 107);
    let tiers = measure_shared_tier(&m1, &tier_config, &tier_queries, &tier_counts, tier_budget);
    println!(
        "\n  shared host cache tier (M1 scaled, {tier_batch} skewed queries, \
         512KiB private row budget, {tier_budget} tier budget, virtual clock)"
    );
    for &shards in &tier_counts {
        let off = tiers.get(shards, false).expect("tier-off measured");
        let on = tiers.get(shards, true).expect("tier-on measured");
        println!(
            "    {shards} shard(s)  off {:>12.0} q/s  on {:>12.0} q/s  \
             (gain {:>5.2}x, hit rate {}, cross-shard {})",
            off.virtual_qps,
            on.virtual_qps,
            tiers.qps_gain(shards).unwrap_or(0.0),
            sdm_bench::pct(on.hit_rate()),
            sdm_bench::pct(on.cross_shard_hit_rate()),
        );
    }
    let tier_at =
        |shards: usize, enabled: bool| *tiers.get(shards, enabled).expect("tier run measured");

    // --- 7. Cache-admission policy lab: always-admit vs the second-touch
    // doorkeeper on the same skewed stream, but through a tier too small
    // for the hot row set, so the LRU churns and admission matters
    // (virtual clock; deterministic; CI-gated). ---
    // Sized below the skewed stream's hot row set (which fits at ~512KiB;
    // the full-budget tier above serves it at 100 %), so the constrained
    // tier's LRU keeps evicting and the admission policy decides what
    // stays resident.
    let policy_budget = Bytes::from_kib(384);
    let policies = measure_cache_policies(
        &m1,
        &tier_config,
        &tier_queries,
        &tier_counts,
        policy_budget,
    );
    println!(
        "\n  cache-admission policy lab (M1 scaled, {tier_batch} skewed queries, \
         512KiB private row budget, {policy_budget} constrained tier, virtual clock)"
    );
    for &shards in &tier_counts {
        let always = policies
            .get(shards, "always_admit")
            .expect("always-admit run measured");
        let second = policies
            .get(shards, "second_touch")
            .expect("second-touch run measured");
        println!(
            "    {shards} shard(s)  always {:>12.0} q/s (hit {})  second-touch {:>12.0} q/s \
             (hit {}, denied {:>6})",
            always.virtual_qps,
            sdm_bench::pct(always.hit_rate()),
            second.virtual_qps,
            sdm_bench::pct(second.hit_rate()),
            second.admission_denied,
        );
    }
    // Flat key/value body of the cache_policies JSON section (single
    // level, like open_loop, for the hand-rolled `json_field` reader).
    let mut cache_policies_json = format!(
        "\"model\": \"M1-scaled\",\n    \"queries\": {tier_batch},\n    \
         \"budget_mib\": {:.1}",
        policy_budget.as_mib_f64()
    );
    for &shards in &tier_counts {
        let always = policies
            .get(shards, "always_admit")
            .expect("always-admit run measured");
        let second = policies
            .get(shards, "second_touch")
            .expect("second-touch run measured");
        cache_policies_json.push_str(&format!(
            ",\n    \"always_admit_qps_{shards}\": {:.1},\n    \
             \"second_touch_qps_{shards}\": {:.1},\n    \
             \"always_admit_hit_rate_{shards}\": {:.4},\n    \
             \"second_touch_hit_rate_{shards}\": {:.4},\n    \
             \"second_touch_denied_{shards}\": {}",
            always.virtual_qps,
            second.virtual_qps,
            always.hit_rate(),
            second.hit_rate(),
            second.admission_denied,
        ));
    }

    // --- 8. Cache-hit latency: wall-clock ns per warmed hit in each cache
    // level. ---
    let hit_iters = if quick { 40_000usize } else { 400_000 };
    let row_bytes = [7u8; 128];
    let keys: Vec<RowKey> = (0..1024u64).map(|i| RowKey::new(0, i)).collect();

    let mut row_cache = DualRowCache::new(CacheConfig::with_total_budget(Bytes::from_mib(4)));
    for key in &keys {
        row_cache.insert(*key, &row_bytes);
    }
    let mut checksum = 0u64;
    for i in 0..hit_iters / 10 {
        checksum += u64::from(row_cache.get(&keys[i % keys.len()]).unwrap()[0]);
    }
    let start = Instant::now();
    for i in 0..hit_iters {
        checksum += u64::from(row_cache.get(black_box(&keys[i % keys.len()])).unwrap()[0]);
    }
    let row_hit_ns = start.elapsed().as_nanos() as f64 / hit_iters as f64;

    let shared_tier = SharedRowTier::new(Bytes::from_mib(4), 8);
    for key in &keys {
        shared_tier.insert(*key, &row_bytes, 0);
    }
    let start = Instant::now();
    for i in 0..hit_iters {
        shared_tier
            .lookup_with(black_box(&keys[i % keys.len()]), 1, |bytes| {
                checksum += u64::from(bytes[0]);
            })
            .expect("warmed shared-tier hit");
    }
    let shared_hit_ns = start.elapsed().as_nanos() as f64 / hit_iters as f64;

    let mut pooled_cache = PooledEmbeddingCache::new(Bytes::from_mib(4), 2);
    let sequences: Vec<Vec<u64>> = (0..256u64)
        .map(|i| (0..8).map(|j| i * 8 + j).collect())
        .collect();
    let vector = [0.5f32; 64];
    for seq in &sequences {
        pooled_cache.insert(0, seq, &vector);
    }
    let mut fsum = 0.0f32;
    let start = Instant::now();
    for i in 0..hit_iters {
        fsum += pooled_cache
            .lookup(0, black_box(&sequences[i % sequences.len()]))
            .expect("warmed pooled hit")[0];
    }
    let pooled_hit_ns = start.elapsed().as_nanos() as f64 / hit_iters as f64;
    black_box(checksum);
    black_box(fsum);

    println!("\n  cache-hit latency (warmed, wall clock)");
    println!("    row cache (dual)          {row_hit_ns:>8.1} ns/hit");
    println!("    shared tier (striped)     {shared_hit_ns:>8.1} ns/hit");
    println!("    pooled cache (keyed)      {pooled_hit_ns:>8.1} ns/hit");

    // --- 9. Open-loop serving: latency-vs-offered-load curve on the
    // virtual clock (deterministic; curve-shape gated by CI). The same
    // seeded Poisson arrival stream drives an exact-mode and a
    // relaxed-mode host at each offered rate, straddling the exact mode's
    // measured capacity (~470 virtual q/s cold, section 5) so the curve
    // shows the serving story: both modes meet the SLO at low load, and at
    // the top rate the exact host sheds hard while the relaxed host's
    // overlap absorbs far more of the offered load. Same sizes in quick
    // and full mode so the gate compares like with like. ---
    let open_rates = [100.0f64, 250.0, 1_600.0];
    let open_count = 256usize;
    let open_queries = queries_for(&m1, open_count, 109);
    let open_frontend = FrontendConfig {
        max_batch: 16,
        max_batch_delay: SimDuration::from_millis(5),
        max_queue_wait: SimDuration::from_millis(50),
        token_bucket: Some(TokenBucketConfig {
            capacity: 256.0,
            refill_per_sec: 5_000.0,
        }),
    };
    let open_arrival_seed = 113u64;
    let open_exact = measure_load_curve(
        &m1,
        &bench_sdm_config(),
        &open_queries,
        &open_frontend,
        &open_rates,
        open_arrival_seed,
    );
    let open_relaxed = measure_load_curve(
        &m1,
        &bench_sdm_config().with_relaxed_batching(overlap_window),
        &open_queries,
        &open_frontend,
        &open_rates,
        open_arrival_seed,
    );
    println!(
        "\n  open-loop serving (M1 scaled, {open_count} queries/point, max_batch 16, \
         close deadline 5ms, SLO 50ms, virtual clock)"
    );
    for (mode, curve) in [("exact", &open_exact), ("relaxed", &open_relaxed)] {
        for point in curve.iter() {
            println!(
                "    {mode:<8} offered {:>6.0} q/s  p50 {:>9} p99 {:>9}  \
                 shed {:>6}  served {:>6.0} q/s  batch {:>5.2}",
                point.offered_qps_target,
                point.p50_latency,
                point.p99_latency,
                sdm_bench::pct(point.shed_rate()),
                point.served_qps,
                point.mean_batch,
            );
        }
    }
    let open_point = |curve: &sdm_metrics::LoadCurveReport, i: usize| {
        *curve.get(i).expect("load point measured")
    };
    // Flat key/value body of the open_loop JSON section (the hand-rolled
    // `json_field` reader scopes a section to its first `}`, so the
    // section must stay a single-level object).
    let mut open_loop_json = format!(
        "\"model\": \"M1-scaled\",\n    \"queries\": {open_count},\n    \
         \"max_batch\": 16,\n    \"max_batch_delay_us\": 5000,\n    \"slo_us\": 50000"
    );
    for (i, &rate) in open_rates.iter().enumerate() {
        let n = i + 1;
        let e = open_point(&open_exact, i);
        let r = open_point(&open_relaxed, i);
        // Arrivals are mode-independent (same process and seed), so one
        // measured offered_qps field serves both modes.
        open_loop_json.push_str(&format!(
            ",\n    \"target_qps_{n}\": {rate:.1},\n    \
             \"offered_qps_{n}\": {:.1},\n    \
             \"exact_p50_us_{n}\": {:.3},\n    \
             \"exact_p99_us_{n}\": {:.3},\n    \
             \"exact_shed_rate_{n}\": {:.4},\n    \
             \"exact_served_qps_{n}\": {:.1},\n    \
             \"relaxed_p50_us_{n}\": {:.3},\n    \
             \"relaxed_p99_us_{n}\": {:.3},\n    \
             \"relaxed_shed_rate_{n}\": {:.4},\n    \
             \"relaxed_served_qps_{n}\": {:.1}",
            e.offered_qps,
            e.p50_latency.as_micros_f64(),
            e.p99_latency.as_micros_f64(),
            e.shed_rate(),
            e.served_qps,
            r.p50_latency.as_micros_f64(),
            r.p99_latency.as_micros_f64(),
            r.shed_rate(),
            r.served_qps,
        ));
    }

    // --- 10. Fault resilience: injected faults vs the end-to-end handling
    // stack on the virtual clock (deterministic; CI-gated). Same sizes in
    // quick and full mode so the gate compares like with like. ---
    let fault_shards = 2usize;
    // Enough rounds for the health EWMAs to shake off the cold first batch
    // so the outage shard separates as a straggler and reroutes engage.
    let fault_rounds = 12usize;
    let fault_batch = 96usize;
    let fault_seed = 127u64;
    // Small row cache, no pooled cache: the SM read path must stay hot
    // every round — a fully warmed cache would mask the injected faults
    // (and the outage shard's storm latency) after the first batch.
    let mut fault_config = bench_sdm_config();
    fault_config.cache.row_cache_budget = Bytes::from_kib(512);
    fault_config.cache.pooled_cache_budget = Bytes::ZERO;
    let fault_queries = queries_for(&m1, fault_batch, 127);
    let fr = measure_fault_resilience(
        &m1,
        &fault_config,
        &fault_queries,
        fault_shards,
        fault_rounds,
        fault_seed,
    );
    let fr_get = |label: &str| fr.report.get(label).expect("fault condition measured");
    let (fr_healthy, fr_empty, fr_storm, fr_stuck, fr_outage) = (
        fr_get("healthy"),
        fr_get("empty_plan"),
        fr_get("storm"),
        fr_get("stuck"),
        fr_get("outage"),
    );
    println!(
        "\n  fault resilience (M1 scaled, {fault_batch} queries x {fault_rounds} rounds, \
         {fault_shards} shards, fault seed {fault_seed}, hedge after {}, virtual clock)",
        fr.hedge_after,
    );
    for m in fr.report.iter() {
        println!(
            "    {:<10} {:>10.0} q/s  injected {:>5}  degraded {:>4}  retries {:>5}  \
             hedges {:>3} (won {:>3})  timeouts {:>4}  failovers {:>3}",
            m.label,
            m.virtual_qps,
            m.injected_total(),
            m.degraded_rows,
            m.retries,
            m.hedges,
            m.hedge_wins,
            m.deadline_timeouts,
            m.failovers,
        );
    }
    println!(
        "    storm retention {}  corruption detection {}  corrupted served {}  \
         empty-plan identical {}  replay identical {}",
        sdm_bench::pct(fr.report.qps_retention("storm", "healthy").unwrap_or(0.0)),
        sdm_bench::pct(fr_storm.corruption_detection_rate()),
        fr.report.total_corrupted_served(),
        fr.empty_plan_identical,
        fr.replay_identical,
    );
    // Flat key/value body of the fault_resilience JSON section (single
    // level, like open_loop, for the hand-rolled `json_field` reader).
    let fault_json = format!(
        "\"model\": \"M1-scaled\",\n    \"queries\": {fault_batch},\n    \
         \"shards\": {fault_shards},\n    \"rounds\": {fault_rounds},\n    \
         \"fault_seed\": {fault_seed},\n    \
         \"hedge_after_us\": {hedge_us:.3},\n    \
         \"healthy_qps\": {healthy_qps:.1},\n    \
         \"storm_qps\": {storm_qps:.1},\n    \
         \"stuck_qps\": {stuck_qps:.1},\n    \
         \"outage_qps\": {outage_qps:.1},\n    \
         \"storm_retention\": {storm_retention:.4},\n    \
         \"storm_qps_floor_frac\": {floor_frac:.4},\n    \
         \"injected_transient\": {injected_transient},\n    \
         \"injected_corruptions\": {injected_corruptions},\n    \
         \"injected_stuck\": {injected_stuck},\n    \
         \"detected_corruptions\": {detected_corruptions},\n    \
         \"corrupted_served\": {corrupted_served},\n    \
         \"storm_degraded_rows\": {storm_degraded},\n    \
         \"outage_degraded_rows\": {outage_degraded},\n    \
         \"storm_retries\": {storm_retries},\n    \
         \"storm_hedges\": {storm_hedges},\n    \
         \"storm_hedge_wins\": {storm_hedge_wins},\n    \
         \"stuck_deadline_timeouts\": {stuck_timeouts},\n    \
         \"outage_failovers\": {outage_failovers},\n    \
         \"empty_plan_degraded_rows\": {empty_degraded},\n    \
         \"empty_plan_identical\": {empty_identical},\n    \
         \"replay_identical\": {replay_identical}",
        hedge_us = fr.hedge_after.as_micros_f64(),
        healthy_qps = fr_healthy.virtual_qps,
        storm_qps = fr_storm.virtual_qps,
        stuck_qps = fr_stuck.virtual_qps,
        outage_qps = fr_outage.virtual_qps,
        storm_retention = fr.report.qps_retention("storm", "healthy").unwrap_or(0.0),
        floor_frac = STORM_QPS_FLOOR_FRAC,
        injected_transient = fr_storm.injected_transient,
        injected_corruptions = fr_storm.injected_corruptions,
        injected_stuck = fr_storm.injected_stuck,
        detected_corruptions = fr_storm.detected_corruptions,
        corrupted_served = fr.report.total_corrupted_served(),
        storm_degraded = fr_storm.degraded_rows,
        outage_degraded = fr_outage.degraded_rows,
        storm_retries = fr_storm.retries,
        storm_hedges = fr_storm.hedges,
        storm_hedge_wins = fr_storm.hedge_wins,
        stuck_timeouts = fr_stuck.deadline_timeouts,
        outage_failovers = fr_outage.failovers,
        empty_degraded = fr_empty.degraded_rows,
        empty_identical = u8::from(fr.empty_plan_identical),
        replay_identical = u8::from(fr.replay_identical),
    );

    // --- Emit BENCH_hotpath.json (hand-rolled: no JSON crate vendored). ---
    let json = format!(
        "{{\n  \"schema\": \"sdm-hotpath-v1\",\n  \"quick\": {quick},\n  \
         \"pooling\": {{\n    \"pf\": {pf},\n    \"dim\": {dim},\n    \
         \"seed_ns_per_row\": {seed_ns_per_row:.3},\n    \
         \"slice_ns_per_row\": {slice_ns_per_row:.3},\n    \
         \"speedup\": {pooling_speedup:.3}\n  }},\n  \
         \"pooling_kernels\": {{\n    {kernels_json}\n  }},\n  \
         \"batch\": {{\n    \"model\": \"M1-scaled\",\n    \"batch_size\": {batch},\n    \
         \"looped_run_query_qps\": {looped_qps:.1},\n    \
         \"run_batch_qps\": {batch_qps:.1},\n    \
         \"gain\": {batch_gain:.4}\n  }},\n  \
         \"batch_light\": {{\n    \"model\": \"tiny(4,2,2000)\",\n    \"batch_size\": {batch},\n    \
         \"looped_run_query_qps\": {light_looped_qps:.1},\n    \
         \"run_batch_qps\": {light_batch_qps:.1},\n    \
         \"gain\": {light_gain:.4}\n  }},\n  \
         \"allocations_per_query\": {{\n    \
         \"run_query_into\": {run_query_allocs:.3},\n    \
         \"run_batch\": {run_batch_allocs:.3}\n  }},\n  \
         \"multi_stream\": {{\n    \"model\": \"M1-scaled\",\n    \
         \"queries\": {stream_queries},\n    \"host_cores\": {cores},\n    \
         \"qps_streams_1\": {q1:.1},\n    \
         \"qps_streams_2\": {q2:.1},\n    \
         \"qps_streams_4\": {q4:.1},\n    \
         \"qps_streams_8\": {q8:.1},\n    \
         \"speedup_4\": {speedup_4:.4},\n    \
         \"scaling_efficiency_4\": {efficiency_4:.4}\n  }},\n  \
         \"io_overlap\": {{\n    \"model\": \"M1-scaled\",\n    \
         \"queries\": {overlap_batch},\n    \
         \"max_inflight_queries\": {overlap_window},\n    \
         \"exact_qps\": {exact_qps:.1},\n    \
         \"relaxed_qps\": {relaxed_qps:.1},\n    \
         \"qps_gain\": {qps_gain:.4},\n    \
         \"p50_latency_exact\": {p50_exact:.3},\n    \
         \"p50_latency_relaxed\": {p50_relaxed:.3},\n    \
         \"p99_latency_exact\": {p99_exact:.3},\n    \
         \"p99_latency_relaxed\": {p99_relaxed:.3},\n    \
         \"mean_queue_depth_exact\": {depth_exact:.3},\n    \
         \"mean_queue_depth_relaxed\": {depth_relaxed:.3},\n    \
         \"max_queue_depth_exact\": {max_depth_exact},\n    \
         \"max_queue_depth_relaxed\": {max_depth_relaxed}\n  }},\n  \
         \"shared_tier\": {{\n    \"model\": \"M1-scaled\",\n    \
         \"queries\": {tier_batch},\n    \
         \"budget_mib\": {tier_budget_mib:.1},\n    \
         \"off_qps_1\": {t_off_1:.1},\n    \
         \"on_qps_1\": {t_on_1:.1},\n    \
         \"off_qps_2\": {t_off_2:.1},\n    \
         \"on_qps_2\": {t_on_2:.1},\n    \
         \"off_qps_4\": {t_off_4:.1},\n    \
         \"on_qps_4\": {t_on_4:.1},\n    \
         \"qps_gain_2\": {t_gain_2:.4},\n    \
         \"qps_gain_4\": {t_gain_4:.4},\n    \
         \"hit_rate_2\": {t_hit_2:.4},\n    \
         \"hit_rate_4\": {t_hit_4:.4},\n    \
         \"cross_shard_hit_rate_2\": {t_cross_2:.4},\n    \
         \"cross_shard_hit_rate_4\": {t_cross_4:.4},\n    \
         \"promotions_4\": {t_promo_4}\n  }},\n  \
         \"cache_policies\": {{\n    {cache_policies_json}\n  }},\n  \
         \"open_loop\": {{\n    {open_loop_json}\n  }},\n  \
         \"fault_resilience\": {{\n    {fault_json}\n  }},\n  \
         \"cache_latency\": {{\n    \
         \"row_hit_ns\": {row_hit_ns:.1},\n    \
         \"shared_hit_ns\": {shared_hit_ns:.1},\n    \
         \"pooled_hit_ns\": {pooled_hit_ns:.1}\n  }}\n}}\n",
        q1 = qps_at(1),
        q2 = qps_at(2),
        q4 = qps_at(4),
        q8 = qps_at(8),
        exact_qps = oe.qps(),
        relaxed_qps = or.qps(),
        qps_gain = overlap.qps_gain().unwrap_or(0.0),
        p50_exact = oe.p50_latency.as_nanos() as f64 / 1_000.0,
        p50_relaxed = or.p50_latency.as_nanos() as f64 / 1_000.0,
        p99_exact = oe.p99_latency.as_nanos() as f64 / 1_000.0,
        p99_relaxed = or.p99_latency.as_nanos() as f64 / 1_000.0,
        depth_exact = oe.mean_queue_depth,
        depth_relaxed = or.mean_queue_depth,
        max_depth_exact = oe.max_queue_depth,
        max_depth_relaxed = or.max_queue_depth,
        tier_budget_mib = tier_budget.as_mib_f64(),
        t_off_1 = tier_at(1, false).virtual_qps,
        t_on_1 = tier_at(1, true).virtual_qps,
        t_off_2 = tier_at(2, false).virtual_qps,
        t_on_2 = tier_at(2, true).virtual_qps,
        t_off_4 = tier_at(4, false).virtual_qps,
        t_on_4 = tier_at(4, true).virtual_qps,
        t_gain_2 = tiers.qps_gain(2).unwrap_or(0.0),
        t_gain_4 = tiers.qps_gain(4).unwrap_or(0.0),
        t_hit_2 = tier_at(2, true).hit_rate(),
        t_hit_4 = tier_at(4, true).hit_rate(),
        t_cross_2 = tier_at(2, true).cross_shard_hit_rate(),
        t_cross_4 = tier_at(4, true).cross_shard_hit_rate(),
        t_promo_4 = tier_at(4, true).promotions,
    );
    std::fs::write(&out_path, &json).expect("failed to write BENCH_hotpath.json");
    println!("\n  wrote {out_path}");
    black_box(sink);

    // --- Numeric regression gate (--check). ---
    if check {
        println!("\n  regression gate vs committed {out_path}");
        match baseline {
            None => println!("    no committed baseline found; skipping comparison"),
            Some(base) => {
                // Wall-clock fields only compare like with like.
                let compare_wall_clock = json_field(&base, "multi_stream", "host_cores")
                    == json_field(&json, "multi_stream", "host_cores");
                if !compare_wall_clock {
                    println!(
                        "    (host_cores differs from baseline; gating only the \
                         deterministic io_overlap fields)"
                    );
                }
                let failures = regression_failures(&base, &json, compare_wall_clock);
                if failures.is_empty() {
                    println!("    all gated fields within tolerance; overlap invariants hold");
                } else {
                    for f in &failures {
                        println!("    FAIL {f}");
                    }
                    std::process::exit(1);
                }
            }
        }
    }
}

//! Experiment E6 — paper Figure 6: cache organisation and DRAM-budget
//! placement choices, evaluated on an InferenceEval-style workload on Nand
//! Flash (the configuration most sensitive to these choices).

use sdm_bench::{bench_sdm_config, build_system, header, scaled, EXPERIMENT_SEED};
use sdm_core::PlacementPolicy;
use sdm_metrics::units::Bytes;
use workload::{Query, QueryGenerator, WorkloadConfig};

fn eval_queries(model: &dlrm::ModelConfig, count: usize) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: 4,
        user_population: 20_000,
        user_zipf_exponent: 0.7,
        inference_eval: true,
    };
    QueryGenerator::new(&model.tables, cfg, EXPERIMENT_SEED)
        .expect("workload")
        .generate(count)
}

fn run(label: &str, model: &dlrm::ModelConfig, config: sdm_core::SdmConfig, queries: &[Query]) {
    let mut system = build_system(model, config);
    let _ = system.run_queries(&queries[..30]).expect("warmup failed");
    let report = system.run_queries(&queries[30..]).expect("run failed");
    println!(
        "  {label:<38} qps={:>8.1}  p95={:>10}  row-cache hit={:>6.1}%  SM reads={}",
        report.qps_single_stream,
        report.p95_latency.to_string(),
        system.manager().stats().row_cache_hit_rate() * 100.0,
        system.manager().stats().sm_reads,
    );
}

fn main() {
    header("Figure 6: cache organisation and direct-DRAM placement (InferenceEval)");
    let model = scaled(&dlrm::model_zoo::m2());
    let queries = eval_queries(&model, 90);

    println!("\ncache engine choice (same total FM budget, Nand Flash SM):");
    let base = || {
        let mut c = bench_sdm_config().with_nand_flash();
        c.cache = sdm_cache::CacheConfig::with_total_budget(Bytes::from_mib(1));
        c
    };
    let mut memory_only = base();
    memory_only.cache.memory_optimized_fraction = 1.0;
    memory_only.cache.small_row_threshold = 100_000;
    run(
        "memory-optimized engine only",
        &model,
        memory_only,
        &queries,
    );

    let mut cpu_only = base();
    cpu_only.cache.memory_optimized_fraction = 0.0;
    cpu_only.cache.small_row_threshold = 0;
    run("CPU-optimized engine only", &model, cpu_only, &queries);

    let mut dual = base();
    dual.cache.memory_optimized_fraction = 0.8;
    run("dual cache (paper choice)", &model, dual, &queries);

    println!("\ndirect DRAM placement budget (rest of user tables on SM + cache):");
    let user_capacity = model.user_capacity();
    for share in [0.0f64, 0.25, 0.5] {
        let budget = Bytes((user_capacity.as_u64() as f64 * share) as u64);
        let config = base().with_placement(if share == 0.0 {
            PlacementPolicy::SmOnlyWithCache
        } else {
            PlacementPolicy::FixedFmThenSm {
                dram_budget: budget,
            }
        });
        run(
            &format!("DRAM budget = {:>4.0}% of user capacity", share * 100.0),
            &model,
            config,
            &queries,
        );
    }
    println!("\nExpected shape: the dual cache tracks the better engine; more direct DRAM");
    println!("placement removes SM reads and raises QPS for the InferenceEval use case.");
}

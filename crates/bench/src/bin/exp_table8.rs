//! Experiment E9 — paper Table 8: serving M1 on HW-SS (single socket + Nand
//! Flash SDM) instead of HW-L (dual socket, 256 GB DRAM) saves ~20% of fleet
//! power at the same p95 latency.

use cluster::{ScenarioComparison, ServingScenario};
use sdm_bench::{bench_sdm_config, build_system, header, pct, queries_for, scaled};
use sdm_metrics::units::Watts;

fn main() {
    header("Table 8: M1 on HW-L (DRAM only) vs HW-SS + SDM (Nand Flash)");
    let model = scaled(&dlrm::model_zoo::m1());
    let queries = queries_for(&model, 160, 81);

    // Measure the relative QPS of the two deployments on the simulated
    // stack: DRAM-only placement vs user tables on Nand behind the cache.
    let mut dram_like = build_system(
        &model,
        bench_sdm_config().with_placement(sdm_core::PlacementPolicy::FixedFmThenSm {
            dram_budget: model.user_capacity(),
        }),
    );
    let mut sdm_nand = build_system(&model, bench_sdm_config().with_nand_flash());
    let _ = dram_like.run_queries(&queries[..60]).unwrap();
    let _ = sdm_nand.run_queries(&queries[..60]).unwrap();
    let dram_report = dram_like.run_queries(&queries[60..]).unwrap();
    let sdm_report = sdm_nand.run_queries(&queries[60..]).unwrap();
    let hit_rate = sdm_nand.manager().stats().row_cache_hit_rate();
    let qps_ratio = sdm_report.qps_single_stream / dram_report.qps_single_stream;

    println!("\nmeasured on the simulated stack:");
    println!(
        "  DRAM-only   qps/stream={:>8.1} p95={:>10} p99={:>10}",
        dram_report.qps_single_stream,
        dram_report.p95_latency.to_string(),
        dram_report.p99_latency.to_string()
    );
    println!(
        "  SDM (Nand)  qps/stream={:>8.1} p95={:>10} p99={:>10}  steady-state cache hit rate={}",
        sdm_report.qps_single_stream,
        sdm_report.p95_latency.to_string(),
        sdm_report.p99_latency.to_string(),
        pct(hit_rate)
    );
    println!("  SDM/DRAM qps ratio = {:.2} — SDM reaches the DRAM deployment's latency/QPS on matched hardware (the paper's Table 8 point); the 240 vs 120 QPS/host difference comes from HW-SS having half the sockets.", qps_ratio);

    // Fleet arithmetic with the paper's per-host QPS and normalized power.
    // The HW-SS host only gets half the sockets, so its QPS per host is the
    // paper's 120 vs 240; its power is 0.4x.
    let total_qps = 240.0 * 1200.0;
    let comparison = ScenarioComparison {
        total_qps,
        scenarios: vec![
            ServingScenario::new("HW-L", 240.0, Watts(1.0)),
            ServingScenario::new("HW-SS + SDM", 120.0, Watts(0.4)),
        ],
    };
    println!("\nfleet arithmetic (paper per-host QPS and normalized power):");
    println!("  scenario        QPS/host  power/host  total hosts  total power (norm)");
    for row in comparison.evaluate().unwrap() {
        println!(
            "  {:<14} {:>9.0}  {:>10.2}  {:>11}  {:>14.2}",
            row.name,
            row.qps_per_host,
            row.normalized_host_power,
            row.total_hosts,
            row.normalized_total_power
        );
    }
    println!(
        "  power saving with SDM: {} (paper: 20%)",
        pct(comparison.power_saving(1).unwrap())
    );
}

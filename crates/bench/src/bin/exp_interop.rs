//! Experiment E17 — paper §A.2: inter-op parallelism overlaps user-side SM
//! reads with item-side work and cuts M1's latency (and raises QPS) by ~20%.

use dlrm::ExecutionMode;
use sdm_bench::{bench_sdm_config, build_system, header, pct, queries_for, scaled};

fn main() {
    header("Inter-op parallelism: sequential vs overlapped embedding operators");
    let model = scaled(&dlrm::model_zoo::m1());
    let queries = queries_for(&model, 120, 17);

    let mut results = Vec::new();
    for (label, mode) in [
        ("sequential operators", ExecutionMode::Sequential),
        ("inter-op parallel", ExecutionMode::InterOpParallel),
    ] {
        let mut system = build_system(&model, bench_sdm_config().with_nand_flash());
        system.engine_mut().set_mode(mode);
        let _ = system.run_queries(&queries[..40]).unwrap();
        let report = system.run_queries(&queries[40..]).unwrap();
        println!(
            "  {label:<22} mean latency = {:>10}   qps/stream = {:>8.1}",
            report.mean_latency.to_string(),
            report.qps_single_stream
        );
        results.push(report);
    }
    let latency_saving =
        1.0 - results[1].mean_latency.as_micros_f64() / results[0].mean_latency.as_micros_f64();
    let qps_gain = results[1].qps_single_stream / results[0].qps_single_stream - 1.0;
    println!(
        "\n  latency reduction from inter-op parallelism: {}",
        pct(latency_saving)
    );
    println!(
        "  QPS gain at the same latency target:          {}",
        pct(qps_gain)
    );
    println!("\nPaper §A.2: ~20% latency reduction, ~20% more QPS per host for M1.");
}

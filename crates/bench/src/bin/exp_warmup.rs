//! Experiment E18 — paper §A.4: cache warmup after a model update and the
//! extra capacity needed to ride out rolling updates.

use sdm_bench::{bench_sdm_config, build_system, header, pct, queries_for, scaled};
use sdm_cache::warmup_capacity_overhead;
use sdm_core::{ModelUpdater, UpdateKind};
use sdm_metrics::SimDuration;

fn main() {
    header("Cache warmup after a full model update");
    let model = scaled(&dlrm::model_zoo::m1());
    let queries = queries_for(&model, 240, 18);
    let mut system = build_system(&model, bench_sdm_config().with_nand_flash());

    // Warm up, then apply a full update (which invalidates the caches) and
    // watch the hit rate recover.
    let _ = system.run_queries(&queries[..80]).unwrap();
    let warm_hit = system.manager().stats().row_cache_hit_rate();
    let report = ModelUpdater::apply(system.manager_mut(), UpdateKind::Full, 77).unwrap();
    println!(
        "\nfull update: wrote {} in {}, caches invalidated = {}",
        report.bytes_written, report.write_time, report.caches_invalidated
    );

    let before = system.manager().stats().clone();
    let mut batches = Vec::new();
    for chunk in queries[80..].chunks(20) {
        let reads_before =
            system.manager().stats().sm_reads + system.manager().stats().row_cache_hits;
        let hits_before = system.manager().stats().row_cache_hits;
        let _ = system.run_queries(chunk).unwrap();
        let reads = system.manager().stats().sm_reads + system.manager().stats().row_cache_hits
            - reads_before;
        let hits = system.manager().stats().row_cache_hits - hits_before;
        batches.push(hits as f64 / reads.max(1) as f64);
    }
    println!("steady-state hit rate before update: {}", pct(warm_hit));
    println!("hit rate per 20-query window after the update:");
    for (i, rate) in batches.iter().enumerate() {
        println!("  window {:>2}: {}", i, pct(*rate));
    }
    let _ = before;

    println!("\ncapacity over-provisioning for rolling updates ((r*w)/(p*t)):");
    for (r, w_min, p, t_min) in [
        (0.10f64, 5u64, 0.5f64, 30u64),
        (0.10, 5, 0.5, 60),
        (0.05, 5, 0.5, 30),
    ] {
        let overhead = warmup_capacity_overhead(
            r,
            SimDuration::from_secs(w_min * 60),
            p,
            SimDuration::from_secs(t_min * 60),
        );
        println!(
            "  r={:>3}% w={}min p={:>3}% t={}min -> extra capacity {}",
            r * 100.0,
            w_min,
            p * 100.0,
            t_min,
            pct(overhead)
        );
    }
    println!("\nPaper example reports 1.2% (with w and t swapped in its arithmetic; the formula gives 3.3%).");
}

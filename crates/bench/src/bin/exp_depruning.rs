//! Experiment E15 — paper §4.5: de-pruning at load time frees the mapping
//! tensors' fast memory for the cache at the cost of a few percent more SM
//! requests; the paper measures ~2.5% extra requests and up to 48% higher
//! performance when the workload is bounded by SM-resident user embeddings.

use sdm_bench::{bench_sdm_config, build_system, header, pct, queries_for, scaled};
use sdm_core::LoadTransform;
use sdm_metrics::units::Bytes;

fn main() {
    header("De-pruning at load time: mapping tensors in FM vs full tables on SM");
    let mut model = scaled(&dlrm::model_zoo::m2());
    for t in &mut model.tables {
        if t.kind == embedding::TableKind::User {
            t.pruned_fraction = 0.05;
        }
    }
    let queries = queries_for(&model, 120, 15);

    let run = |label: &str, deprune: bool, cache_budget: Bytes| {
        let mut config = bench_sdm_config()
            .with_nand_flash()
            .with_transform(LoadTransform {
                deprune,
                dequantize: false,
            });
        config.cache = sdm_cache::CacheConfig::with_total_budget(cache_budget);
        let mut system = build_system(&model, config);
        let _ = system.run_queries(&queries[..40]).unwrap();
        let report = system.run_queries(&queries[40..]).unwrap();
        let stats = system.manager().stats();
        println!(
            "  {label:<44} SM reads={:>7}  total SM requests={:>7}  hit rate={:>6}  qps={:>8.1}  mapping FM={}",
            stats.sm_reads,
            stats.sm_reads + stats.row_cache_hits,
            pct(stats.row_cache_hit_rate()),
            report.qps_single_stream,
            system.manager().loaded().fm_mapping_bytes
        );
        (
            stats.sm_reads + stats.row_cache_hits,
            report.qps_single_stream,
        )
    };

    // Without de-pruning the mapping tensors live in FM; give the cache the
    // FM that remains. With de-pruning the whole budget goes to the cache.
    let full_budget = Bytes::from_mib(2);
    let mapping_overhead = Bytes::from_kib(256);
    let (base_requests, base_qps) = run(
        "pruned on SM, mapping tensors in FM (small cache)",
        false,
        full_budget.saturating_sub(mapping_overhead),
    );
    let (depruned_requests, depruned_qps) =
        run("de-pruned on SM, full cache budget", true, full_budget);

    let extra_requests = depruned_requests as f64 / base_requests.max(1) as f64 - 1.0;
    let speedup = depruned_qps / base_qps - 1.0;
    println!(
        "\n  extra SM-side requests from de-pruning: {}",
        pct(extra_requests.max(0.0))
    );
    println!(
        "  performance gain from the recovered cache space: {}",
        pct(speedup)
    );
    println!("\nPaper: ~2.5% extra requests, up to 48% gain when bounded by SM user embeddings.");
}

//! Experiment E3 — paper Figure 3: IOPS and loaded latency for Nand Flash vs
//! Optane SSD, 20 embedding lookups per IO.

use scm_device::{AccessMode, ReadCommand, ScmDevice, SglRange, TechnologyProfile};
use sdm_bench::header;
use sdm_metrics::units::Bytes;

fn batch_command(base: u64) -> ReadCommand {
    // 20 lookups of 128 B scattered across the device, one NVMe command.
    let ranges: Vec<SglRange> = (0..20)
        .map(|i| SglRange::new((base + i * 131) % (200 * 1024 * 1024 - 256), 128))
        .collect();
    ReadCommand::with_ranges(ranges, AccessMode::Sgl).expect("non-empty command")
}

fn sweep(name: &str, profile: TechnologyProfile) {
    println!("\n{name}: queue-depth sweep (latency is per batch of 20 lookups)");
    println!("  qdepth      IOPS(K)   mean_latency     p99_latency");
    for &depth in &[1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let mut device =
            ScmDevice::new(name, profile.clone(), Bytes::from_mib(256)).expect("device");
        let mut hist = sdm_metrics::LatencyHistogram::new();
        let samples = 400;
        for i in 0..samples {
            let outcome = device
                .read(&batch_command(i * 4096), depth)
                .expect("read failed");
            hist.record(outcome.device_latency);
        }
        // Little's law: sustained IOs/s at this concurrency.
        let iops = depth as f64 / hist.mean().as_secs_f64().max(1e-9);
        println!(
            "  {:>6}   {:>9.1}   {:>12}   {:>12}",
            depth,
            iops / 1e3,
            hist.mean().to_string(),
            hist.p99().to_string(),
        );
    }
}

fn main() {
    header("Figure 3: IOPS and latency, Nand Flash vs Optane SSD");
    sweep("nand-flash", TechnologyProfile::nand_flash());
    sweep("optane-ssd", TechnologyProfile::optane_ssd());
    println!(
        "\nExpected shape: Optane sustains far higher IOPS at an order of magnitude lower latency;"
    );
    println!("Nand latency inflates steeply once past ~50% of its IOPS ceiling.");
}

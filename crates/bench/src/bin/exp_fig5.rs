//! Experiment E5 — paper Figure 5: spatial locality of embedding accesses is
//! low (hot rows are scattered across 4 KiB blocks).

use embedding::TableKind;
use sdm_bench::header;
use workload::{spatial_locality, AccessTrace, QueryGenerator, WorkloadConfig};

fn main() {
    header("Figure 5: spatial locality (1.0 = perfect, 1/rows-per-block = none)");
    // Paper-scale M2 descriptors (millions of rows per table) so block-level
    // clustering is meaningful; only indices are sampled, no bytes are
    // materialised.
    let model = dlrm::model_zoo::m2();
    let workload = WorkloadConfig {
        item_batch: 2,
        user_population: 200_000,
        user_zipf_exponent: 0.7,
        inference_eval: false,
    };
    let queries = QueryGenerator::new(&model.tables, workload, 5)
        .expect("workload")
        .generate(800);
    let trace = AccessTrace::from_queries(&queries);

    let mut user_values = Vec::new();
    let mut item_values = Vec::new();
    for t in &model.tables {
        let accesses = trace.table_accesses(t.id);
        if accesses.len() < 500 {
            continue;
        }
        let s = spatial_locality(accesses, t.row_bytes(), 4096, 25_000);
        match t.kind {
            TableKind::User => user_values.push(s),
            TableKind::Item => item_values.push(s),
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "user tables ({}): mean spatial locality {:.3}, max {:.3}",
        user_values.len(),
        mean(&user_values),
        max(&user_values)
    );
    println!(
        "item tables ({}): mean spatial locality {:.3}, max {:.3}",
        item_values.len(),
        mean(&item_values),
        max(&item_values)
    );
    println!("\nExpected shape: cool heat map — values far below 1.0 everywhere,");
    println!("which is why the SDM cache is a row cache rather than a block cache.");
}

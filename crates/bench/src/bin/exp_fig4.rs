//! Experiment E4 — paper Figure 4: temporal locality of user and item
//! embedding accesses, globally and as observed by one host under sticky
//! routing.

use embedding::TableKind;
use sdm_bench::{header, pct};
use workload::{
    locality_report, temporal_locality_cdf, AccessTrace, QueryGenerator, RoutingPolicy, Scheduler,
    WorkloadConfig,
};

fn print_cdf(label: &str, accesses: &[u64]) {
    let cdf = temporal_locality_cdf(accesses, 10);
    let points: Vec<String> = cdf
        .iter()
        .map(|(rows, acc)| format!("{:.0}%:{:.0}%", rows * 100.0, acc * 100.0))
        .collect();
    let report = locality_report(accesses);
    println!(
        "  {label:<18} top1%={:<7} top10%={:<7} cdf[{}]",
        pct(report.top1_share),
        pct(report.top10_share),
        points.join(" ")
    );
}

fn main() {
    header("Figure 4: temporal locality (user vs item tables, global vs per host)");
    // Paper-scale M2 descriptors: the query generator only samples indices,
    // so no table bytes are materialised.
    let model = dlrm::model_zoo::m2();
    let workload = WorkloadConfig {
        item_batch: 2,
        user_population: 200_000,
        user_zipf_exponent: 0.7,
        inference_eval: false,
    };
    let queries = QueryGenerator::new(&model.tables, workload, 4)
        .expect("workload")
        .generate(800);
    let trace = AccessTrace::from_queries(&queries);

    println!("\n(a) user tables, global trace (8 sampled tables):");
    for t in model
        .tables
        .iter()
        .filter(|t| t.kind == TableKind::User)
        .take(8)
    {
        print_cdf(&t.name, trace.table_accesses(t.id));
    }
    println!("\n(b) item tables, global trace (8 sampled tables):");
    for t in model
        .tables
        .iter()
        .filter(|t| t.kind == TableKind::Item)
        .take(8)
    {
        print_cdf(&t.name, trace.table_accesses(t.id));
    }

    println!("\n(c) same user tables observed by one host (16 hosts, user-sticky routing):");
    let mut scheduler = Scheduler::new(16, RoutingPolicy::UserSticky);
    let per_host = scheduler.per_host_traces(&queries);
    let busiest = per_host
        .iter()
        .max_by_key(|t| t.len())
        .expect("at least one host");
    for t in model
        .tables
        .iter()
        .filter(|t| t.kind == TableKind::User)
        .take(8)
    {
        print_cdf(&t.name, busiest.table_accesses(t.id));
    }
    println!("\nExpected shape: power-law CDFs; item tables more skewed than user tables;");
    println!("per-host (sticky) curves at least as skewed as the global ones.");
}

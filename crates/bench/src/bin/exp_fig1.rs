//! Experiment E1 — paper Figure 1: embedding-table size vs bytes/query for
//! the 140 GB / 734-table model. Most of the capacity needs little
//! bandwidth, which is what makes slow memory viable.

use dlrm::analysis;
use dlrm::model_zoo;
use sdm_bench::{header, pct};
use sdm_metrics::units::Bytes;

fn main() {
    header("Figure 1: table size vs bytes per query (140GB model, 734 tables)");
    let model = model_zoo::figure1_model();
    let demands = analysis::table_demands(&model);
    let summary = analysis::capacity_summary(&model.tables);
    println!(
        "model capacity = {} ({} user tables = {} of capacity)",
        model.embedding_capacity(),
        model.user_tables().len(),
        pct(summary.user_fraction()),
    );

    // Scatter data, bucketed for terminal display: bytes/query deciles vs
    // capacity share.
    let max_bpq = demands
        .iter()
        .map(|d| d.bytes_per_query.as_u64())
        .max()
        .unwrap_or(1);
    println!("\n  bytes/query bucket        tables   capacity share");
    for decile in 1..=10u64 {
        let hi = max_bpq * decile / 10;
        let lo = max_bpq * (decile - 1) / 10;
        let in_bucket: Vec<_> = demands
            .iter()
            .filter(|d| d.bytes_per_query.as_u64() > lo && d.bytes_per_query.as_u64() <= hi)
            .collect();
        let cap: u64 = in_bucket.iter().map(|d| d.capacity.as_u64()).sum();
        println!(
            "  ({:>10} , {:>10}]   {:>5}    {}",
            Bytes(lo),
            Bytes(hi),
            in_bucket.len(),
            pct(cap as f64 / model.embedding_capacity().as_u64() as f64)
        );
    }

    let threshold = Bytes(max_bpq / 10);
    println!(
        "\ncapacity needing <= 10% of the worst table's bytes/query: {}",
        pct(analysis::capacity_fraction_below_demand(&model, threshold))
    );
}

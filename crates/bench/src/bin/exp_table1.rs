//! Experiment E2 — paper Table 1: the slow-memory technology envelope.

use scm_device::TechnologyProfile;
use sdm_bench::header;
use sdm_metrics::units::Bytes;

fn main() {
    header("Table 1: SM technology options");
    for profile in TechnologyProfile::table1() {
        println!("{}", profile.summary());
    }
    println!();
    println!("Model-update interval limits (days) for a 1 TB model on 2 TB of each technology:");
    for profile in TechnologyProfile::table1() {
        let days = profile.min_update_interval_days(Bytes::from_tib(1), Bytes::from_tib(2));
        println!(
            "  {:<26} {:.4} days between full updates at rated endurance",
            profile.kind.to_string(),
            days
        );
    }
}

//! Experiment E13 — paper §4.1.1: SGL bit-bucket sub-block reads save ~75% of
//! the bus bandwidth and a few percent of device latency versus 4 KiB block
//! reads.

use scm_device::{ReadCommand, ScmDevice, TechnologyProfile};
use sdm_bench::{bench_sdm_config, build_system, header, pct, queries_for, scaled};
use sdm_core::AccessGranularity;
use sdm_metrics::units::Bytes;

fn main() {
    header("Small-granularity (SGL bit-bucket) reads vs block reads");

    // 1. Device level: one 128 B row read, block vs SGL.
    println!("\nper-read device view (Nand Flash, 128B row):");
    let mut dev_block =
        ScmDevice::new("nand", TechnologyProfile::nand_flash(), Bytes::from_mib(16)).unwrap();
    let mut dev_sgl =
        ScmDevice::new("nand", TechnologyProfile::nand_flash(), Bytes::from_mib(16)).unwrap();
    let block = dev_block.read(&ReadCommand::block(8192, 128), 4).unwrap();
    let sgl = dev_sgl.read(&ReadCommand::sgl(8192, 128), 4).unwrap();
    println!(
        "  block read: {} over the bus, device latency {}",
        block.bus_bytes, block.device_latency
    );
    println!(
        "  SGL read:   {} over the bus, device latency {}",
        sgl.bus_bytes, sgl.device_latency
    );
    println!(
        "  bus saving {}  device-latency saving {}",
        pct(1.0 - sgl.bus_bytes.as_u64() as f64 / block.bus_bytes.as_u64() as f64),
        pct(1.0 - sgl.device_latency.as_micros_f64() / block.device_latency.as_micros_f64())
    );

    // 2. Stack level: the same M1 workload served with each granularity.
    println!("\nfull-stack view (M1 scaled, Nand Flash):");
    let model = scaled(&dlrm::model_zoo::m1());
    let queries = queries_for(&model, 60, 13);
    let mut rows = Vec::new();
    for (label, granularity) in [
        ("block (4KiB) reads", AccessGranularity::Block),
        ("SGL bit-bucket reads", AccessGranularity::Sgl),
    ] {
        let config = bench_sdm_config()
            .with_nand_flash()
            .with_granularity(granularity);
        let mut system = build_system(&model, config);
        let _ = system.run_queries(&queries).expect("run failed");
        let stats = system.manager().stats();
        let io_per_read = stats.io_time / stats.sm_reads.max(1);
        println!(
            "  {label:<22} bus bytes/row = {:>6.1}  read amplification = {:>6.2}  SM IO time/row = {}",
            stats.sm_bus_bytes.as_u64() as f64 / stats.sm_reads.max(1) as f64,
            stats.read_amplification(),
            io_per_read
        );
        rows.push((stats.sm_bus_bytes, io_per_read));
    }
    let bus_saving = 1.0 - rows[1].0.as_u64() as f64 / rows[0].0.as_u64().max(1) as f64;
    let io_saving = 1.0 - rows[1].1.as_micros_f64() / rows[0].1.as_micros_f64().max(1e-9);
    println!("\n  bus bandwidth saved by SGL: {}", pct(bus_saving));
    println!("  SM IO time per row saved:   {}", pct(io_saving));
    println!("\nPaper: ~75% bus saving, 3-5% latency saving per read (more at the application");
    println!("level because the extra block-to-row memcpy disappears).");
}

//! Experiment E19 — paper §A.5: de-quantising tables at load time trades
//! cheap SM capacity for dequantisation CPU, but shrinks the effective FM
//! cache (fewer, larger rows), which usually loses.

use sdm_bench::{header, pct, EXPERIMENT_SEED};
use sdm_core::{LoadTransform, SdmConfig, SdmSystem};
use sdm_metrics::units::Bytes;
use workload::{QueryGenerator, WorkloadConfig};

fn main() {
    header("De-quantisation at load time: int8 rows vs f32 rows on SM");
    // A model with enough rows per table that the cache budget is the
    // binding constraint (the regime the paper discusses).
    let mut model = dlrm::model_zoo::tiny(16, 2, 30_000);
    for t in &mut model.tables {
        t.zipf_exponent = 0.9;
    }
    let workload = WorkloadConfig {
        item_batch: 8,
        user_population: 20_000,
        user_zipf_exponent: 0.6,
        inference_eval: false,
    };
    let queries = QueryGenerator::new(&model.tables, workload, 19)
        .unwrap()
        .generate(300);

    let mut results = Vec::new();
    for (label, dequantize) in [
        ("int8 rows on SM (baseline)", false),
        ("f32 rows on SM (de-quantised)", true),
    ] {
        let mut config = SdmConfig::default()
            .with_nand_flash()
            .with_transform(LoadTransform {
                deprune: false,
                dequantize,
            });
        config.device_capacity = Bytes::from_mib(256);
        config.fm_budget = Bytes::from_mib(8);
        config.cache = sdm_cache::CacheConfig::with_total_budget(Bytes::from_mib(1));
        config.seed = EXPERIMENT_SEED;
        let mut system = SdmSystem::build(&model, config, EXPERIMENT_SEED).expect("build failed");
        let _ = system.run_queries(&queries[..100]).unwrap();
        let report = system.run_queries(&queries[100..]).unwrap();
        let stats = system.manager().stats();
        println!(
            "  {label:<32} SM image={:>10}  cache hit rate={:>6}  pooling time={:>10}  qps={:>8.1}",
            system.manager().loaded().sm_written_bytes,
            pct(stats.row_cache_hit_rate()),
            stats.pooling_time.to_string(),
            report.qps_single_stream
        );
        results.push((stats.row_cache_hit_rate(), report.qps_single_stream));
    }
    println!(
        "\n  cache hit rate change from de-quantising: {:+.1} points",
        (results[1].0 - results[0].0) * 100.0
    );
    println!("  QPS change: {}", pct(results[1].1 / results[0].1 - 1.0));
    println!("\nPaper: de-quantisation only helps very CPU-bound cases; the cache-efficiency");
    println!("loss dominates for most models, which is why the pooled-embedding cache is the");
    println!("preferred way to skip dequantisation work.");
}

//! Experiment E16 — paper §A.1: polled completions improve IOPS/core by ~50%
//! over interrupt-driven completions, but the paper could not deploy polling.

use io_engine::{CompletionMode, CpuCostModel};
use sdm_bench::{header, pct};

fn main() {
    header("Polling vs interrupt completions (CPU cost of high IOPS)");
    let model = CpuCostModel::default();
    println!("\n  mode        CPU time/IO     IOPS per core");
    for mode in [CompletionMode::Interrupt, CompletionMode::Polling] {
        println!(
            "  {:<10}  {:>11}   {:>12.0}",
            format!("{mode:?}"),
            model.cpu_time_per_io(mode).to_string(),
            model.iops_per_core(mode)
        );
    }
    println!(
        "\n  IOPS/core improvement from polling: {} (paper: ~50%)",
        pct(model.polling_improvement())
    );
    println!("\n  cores needed to drive M2's 4.8M raw IOPS:");
    for mode in [CompletionMode::Interrupt, CompletionMode::Polling] {
        println!(
            "    {:<10} {:>6.1} cores",
            format!("{mode:?}"),
            model.cores_for_iops(4_800_000.0, mode)
        );
    }
    println!("\n  (after the ~90% cache hit rate the sustained demand is ~480K IOPS:");
    for mode in [CompletionMode::Interrupt, CompletionMode::Polling] {
        println!(
            "    {:<10} {:>6.1} cores",
            format!("{mode:?}"),
            model.cores_for_iops(480_000.0, mode)
        );
    }
    println!("  )");
}

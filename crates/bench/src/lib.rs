//! Shared helpers for the experiment binaries (`exp_*`) and Criterion
//! benches that regenerate the paper's tables and figures.
//!
//! Every binary prints a self-contained report to stdout; EXPERIMENTS.md
//! records the paper-reported values next to the values these binaries
//! produce.

use dlrm::{model_zoo, ModelConfig};
use sdm_core::{SdmConfig, SdmSystem, ServingHost};
use sdm_metrics::units::Bytes;
use sdm_metrics::MultiStreamReport;
use workload::{Query, QueryGenerator, RoutingPolicy, WorkloadConfig};

/// Divisor applied to paper-scale row counts so experiments run in seconds
/// on a development machine. Capacity-derived results always use the
/// unscaled descriptors.
pub const DEFAULT_CAPACITY_DIVISOR: u64 = 200_000;

/// Divisor applied to MLP widths for the materialised replicas.
pub const DEFAULT_MLP_DIVISOR: f64 = 40.0;

/// Seed used by all experiments (printed so runs are reproducible).
pub const EXPERIMENT_SEED: u64 = 0x5d_2022;

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
    println!("seed = {EXPERIMENT_SEED:#x}");
}

/// Builds the laptop-scale replica of a paper model.
pub fn scaled(model: &ModelConfig) -> ModelConfig {
    model_zoo::scaled_model(model, DEFAULT_CAPACITY_DIVISOR, DEFAULT_MLP_DIVISOR)
}

/// A default SDM configuration sized for the scaled replicas.
pub fn bench_sdm_config() -> SdmConfig {
    SdmConfig {
        device_capacity: Bytes::from_mib(256),
        fm_budget: Bytes::from_mib(32),
        cache: sdm_cache::CacheConfig::with_total_budget(Bytes::from_mib(16)),
        seed: EXPERIMENT_SEED,
        ..SdmConfig::default()
    }
}

/// Builds a full SDM system for a scaled model.
///
/// # Panics
///
/// Panics when the configuration cannot be built — experiments treat that as
/// a fatal setup error.
pub fn build_system(model: &ModelConfig, config: SdmConfig) -> SdmSystem {
    SdmSystem::build(model, config, EXPERIMENT_SEED).expect("failed to build SDM system")
}

/// Generates a query stream for a (scaled) model.
///
/// # Panics
///
/// Panics when the workload generator rejects the model (empty table set).
pub fn queries_for(model: &ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch.min(16),
        user_population: 5_000,
        user_zipf_exponent: 0.8,
        inference_eval: false,
    };
    let mut generator =
        QueryGenerator::new(&model.tables, cfg, seed).expect("workload generation failed");
    generator.generate(count)
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Measures wall-clock multi-stream throughput: for each entry of
/// `stream_counts`, builds a [`ServingHost`] with that many shards
/// (user-sticky routing, evenly divided budgets), warms it on the full
/// stream, then records the median-wall-clock round of `rounds` repeated
/// `run_batch` calls into a [`MultiStreamReport`].
///
/// The median (rather than the minimum) keeps scheduler jitter out of the
/// scaling ratios without hiding the real cost of thread coordination.
///
/// # Panics
///
/// Panics when a host cannot be built or a batch fails — experiments treat
/// both as fatal setup errors.
pub fn measure_streams(
    model: &ModelConfig,
    config: &SdmConfig,
    queries: &[Query],
    stream_counts: &[usize],
    rounds: usize,
) -> MultiStreamReport {
    let rounds = rounds.max(1);
    let mut report = MultiStreamReport::new();
    for &streams in stream_counts {
        let mut host = ServingHost::build(
            model,
            config,
            EXPERIMENT_SEED,
            streams,
            RoutingPolicy::UserSticky,
        )
        .expect("failed to build serving host");
        // Warm caches, scratch capacity and the partition buffers.
        host.run_batch(queries).expect("warmup batch failed");
        host.run_batch(queries).expect("warmup batch failed");
        let mut runs: Vec<sdm_core::HostReport> = (0..rounds)
            .map(|_| host.run_batch(queries).expect("measured batch failed"))
            .collect();
        runs.sort_by(|a, b| f64::total_cmp(&a.wall_seconds, &b.wall_seconds));
        report.record(runs[runs.len() / 2].measurement());
    }
    report
}

/// Deterministic quantised rows for the pooling benchmarks (`pf` rows of
/// `dim` elements), shared by `pooling_bench` and `exp_hotpath` so both
/// measure the same inputs.
pub fn bench_quantized_rows(pf: usize, dim: usize, scheme: embedding::QuantScheme) -> Vec<Vec<u8>> {
    (0..pf)
        .map(|i| {
            let values: Vec<f32> = (0..dim).map(|j| ((i * j) as f32).sin()).collect();
            embedding::quantize_row(&values, scheme)
        })
        .collect()
}

/// The seed pooling path, byte for byte: per-row dequantise into a fresh
/// `Vec<f32>`, then a second pass summing into a freshly allocated output.
/// Kept as the baseline the slice-based hot path is measured against.
///
/// # Panics
///
/// Panics on malformed row buffers — benchmark inputs are trusted.
pub fn pool_seed_style(rows: &[&[u8]], scheme: embedding::QuantScheme, dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    for &raw in rows {
        let values = embedding::dequantize_row(raw, scheme, dim).unwrap();
        for (o, v) in out.iter_mut().zip(&values) {
            *o += *v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_models_build_quickly_and_small() {
        let m1 = scaled(&model_zoo::m1());
        assert!(m1.embedding_capacity() < Bytes::from_mib(8));
        assert_eq!(m1.tables.len(), model_zoo::m1().tables.len());
    }

    #[test]
    fn build_system_and_run_one_query() {
        let model = scaled(&model_zoo::m1());
        let mut system = build_system(&model, bench_sdm_config());
        let queries = queries_for(&model, 1, 1);
        let result = system.run_query(&queries[0]).unwrap();
        assert!(!result.scores.is_empty());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.205), "20.5%");
    }

    #[test]
    fn measure_streams_records_every_count() {
        let model = model_zoo::tiny(2, 1, 400);
        let queries = queries_for(&model, 16, 3);
        let report = measure_streams(&model, &SdmConfig::for_tests(), &queries, &[1, 2], 3);
        assert_eq!(report.len(), 2);
        for m in report.iter() {
            assert_eq!(m.queries, 16);
            assert!(m.wall_qps() > 0.0);
        }
        assert!(report.speedup(2).is_some());
    }
}

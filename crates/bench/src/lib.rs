//! Shared helpers for the experiment binaries (`exp_*`) and Criterion
//! benches that regenerate the paper's tables and figures.
//!
//! Every binary prints a self-contained report to stdout; EXPERIMENTS.md
//! records the paper-reported values next to the values these binaries
//! produce.
//!
//! # Panic policy
//!
//! The workspace-wide `unwrap_used`/`expect_used` deny applies here too,
//! but the measurement helpers *deliberately* abort on setup or serving
//! failures: every caller is an `exp_*` binary or a Criterion bench where
//! crashing with the failure message is the correct error handling, and
//! threading `Result` through every helper would only obscure what is
//! being measured. Each such function carries a `# Panics` doc section and
//! a local, justified `#[allow(clippy::expect_used)]`; new non-harness
//! code in this crate still has to opt in consciously.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

// Harness crate (crate docs, "Panic policy"): the measurement helpers
// abort on setup/serving failures by design, and the experiment report
// printer writes to stdout — that *is* this crate's output channel.
// sdm-analyze: allow-file(no-unwrap-outside-tests)
// sdm-analyze: allow-file(no-print-in-libs)

use dlrm::{model_zoo, ModelConfig};
use io_engine::RetryConfig;
use scm_device::{DeviceId, FaultPlan, FaultStats};
use sdm_core::{Frontend, FrontendConfig, SdmConfig, SdmSystem, ServingHost};
use sdm_metrics::units::Bytes;
use sdm_metrics::{
    BatchModeMeasurement, BatchModeReport, CachePolicyMeasurement, CachePolicyReport,
    LatencyHistogram, LoadCurveReport, MultiStreamReport, ResilienceMeasurement, ResilienceReport,
    SharedTierMeasurement, SharedTierReport, SimDuration, SimInstant,
};
use workload::{
    ArrivalGenerator, ArrivalProcess, Query, QueryGenerator, RoutingPolicy, WorkloadConfig,
};

/// Divisor applied to paper-scale row counts so experiments run in seconds
/// on a development machine. Capacity-derived results always use the
/// unscaled descriptors.
pub const DEFAULT_CAPACITY_DIVISOR: u64 = 200_000;

/// Divisor applied to MLP widths for the materialised replicas.
pub const DEFAULT_MLP_DIVISOR: f64 = 40.0;

/// Seed used by all experiments (printed so runs are reproducible).
pub const EXPERIMENT_SEED: u64 = 0x5d_2022;

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
    println!("seed = {EXPERIMENT_SEED:#x}");
}

/// Builds the laptop-scale replica of a paper model.
pub fn scaled(model: &ModelConfig) -> ModelConfig {
    model_zoo::scaled_model(model, DEFAULT_CAPACITY_DIVISOR, DEFAULT_MLP_DIVISOR)
}

/// A default SDM configuration sized for the scaled replicas.
pub fn bench_sdm_config() -> SdmConfig {
    SdmConfig {
        device_capacity: Bytes::from_mib(256),
        fm_budget: Bytes::from_mib(32),
        cache: sdm_cache::CacheConfig::with_total_budget(Bytes::from_mib(16)),
        seed: EXPERIMENT_SEED,
        ..SdmConfig::default()
    }
}

/// Builds a full SDM system for a scaled model.
///
/// # Panics
///
/// Panics when the configuration cannot be built — experiments treat that as
/// a fatal setup error.
// Harness policy: a fatal setup/serving error aborts the experiment
// with the message below (crate docs, "Panic policy").
#[allow(clippy::expect_used)]
pub fn build_system(model: &ModelConfig, config: SdmConfig) -> SdmSystem {
    SdmSystem::build(model, config, EXPERIMENT_SEED).expect("failed to build SDM system")
}

/// Generates a query stream for a (scaled) model.
///
/// # Panics
///
/// Panics when the workload generator rejects the model (empty table set).
// Harness policy: a fatal setup/serving error aborts the experiment
// with the message below (crate docs, "Panic policy").
#[allow(clippy::expect_used)]
pub fn queries_for(model: &ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch.min(16),
        user_population: 5_000,
        user_zipf_exponent: 0.8,
        inference_eval: false,
    };
    let mut generator =
        QueryGenerator::new(&model.tables, cfg, seed).expect("workload generation failed");
    generator.generate(count)
}

/// Generates a heavily skewed query stream (small hot user set under a
/// steep Zipf exponent) — the workload shape under which cross-shard row
/// reuse shows up, used by the shared-tier measurements.
///
/// # Panics
///
/// Panics when the workload generator rejects the model (empty table set).
// Harness policy: a fatal setup/serving error aborts the experiment
// with the message below (crate docs, "Panic policy").
#[allow(clippy::expect_used)]
pub fn skewed_queries_for(model: &ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch.min(16),
        ..WorkloadConfig::skewed(64, 1.1)
    };
    let mut generator =
        QueryGenerator::new(&model.tables, cfg, seed).expect("workload generation failed");
    generator.generate(count)
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Measures wall-clock multi-stream throughput: for each entry of
/// `stream_counts`, builds a [`ServingHost`] with that many shards
/// (user-sticky routing, evenly divided budgets), warms it on the full
/// stream, then records the median-wall-clock round of `rounds` repeated
/// `run_batch` calls into a [`MultiStreamReport`].
///
/// The median (rather than the minimum) keeps scheduler jitter out of the
/// scaling ratios without hiding the real cost of thread coordination.
///
/// # Panics
///
/// Panics when a host cannot be built or a batch fails — experiments treat
/// both as fatal setup errors.
// Harness policy: a fatal setup/serving error aborts the experiment
// with the message below (crate docs, "Panic policy").
#[allow(clippy::expect_used)]
pub fn measure_streams(
    model: &ModelConfig,
    config: &SdmConfig,
    queries: &[Query],
    stream_counts: &[usize],
    rounds: usize,
) -> MultiStreamReport {
    let rounds = rounds.max(1);
    let mut report = MultiStreamReport::new();
    for &streams in stream_counts {
        let mut host = ServingHost::build(
            model,
            config,
            EXPERIMENT_SEED,
            streams,
            RoutingPolicy::UserSticky,
        )
        .expect("failed to build serving host");
        // Warm caches, scratch capacity and the partition buffers.
        host.run_batch(queries).expect("warmup batch failed");
        host.run_batch(queries).expect("warmup batch failed");
        let mut runs: Vec<sdm_core::HostReport> = (0..rounds)
            .map(|_| host.run_batch(queries).expect("measured batch failed"))
            .collect();
        runs.sort_by(|a, b| f64::total_cmp(&a.wall_seconds, &b.wall_seconds));
        report.record(runs[runs.len() / 2].measurement());
    }
    report
}

/// Measures the exact-vs-relaxed batch trade-off on the *virtual* clock:
/// one freshly built system per mode runs the same cold query stream, so
/// every number (makespan QPS, p50/p99 latency, observed queue depth) is
/// deterministic and machine-independent — which is what lets CI gate on
/// them numerically.
///
/// # Panics
///
/// Panics when a system cannot be built or a batch fails — experiments
/// treat both as fatal setup errors.
// Harness policy: a fatal setup/serving error aborts the experiment
// with the message below (crate docs, "Panic policy").
#[allow(clippy::expect_used)]
pub fn measure_batch_modes(
    model: &ModelConfig,
    config: &SdmConfig,
    queries: &[Query],
    window: usize,
) -> BatchModeReport {
    let mut report = BatchModeReport::new();
    for relaxed in [false, true] {
        let cfg = if relaxed {
            config.clone().with_relaxed_batching(window)
        } else {
            config.clone()
        };
        let mut system =
            SdmSystem::build(model, cfg, EXPERIMENT_SEED).expect("failed to build SDM system");
        let qps = system.run_batch(queries).expect("mode batch failed");
        let depth = &system.manager().io_engine().stats().queue_depth;
        let m = BatchModeMeasurement {
            queries: qps.queries,
            makespan: qps.makespan,
            p50_latency: system.shard().batch_hist().percentile(0.5),
            p99_latency: qps.p99_latency,
            mean_queue_depth: depth.mean_depth(),
            max_queue_depth: depth.max_depth,
        };
        if relaxed {
            report.record_relaxed(m);
        } else {
            report.record_exact(m);
        }
    }
    report
}

/// Measures the shared-tier trade-off on the *virtual* clock: for each
/// shard count, a tier-off and a tier-on host (identical seeds and routing)
/// serve the same skewed stream, and the third batch — private caches
/// warmed, tier populated — is recorded. Reported counters are the
/// measured batch's deltas, not cumulative totals.
///
/// `config` should model the regime the tier exists for: a private
/// row-cache budget *smaller than the hot row set* (dividing it across
/// shards shrinks every slice further) and the pooled-embedding cache
/// disabled, so the row path stays live in the measured batch instead of
/// being short-circuited by whole-operator replay. In that regime the
/// measured batch is deterministic: private miss patterns are per-shard
/// LRU state, and the tier — sized by `tier_budget` to hold the hot set at
/// the host level — serves every probe, turning what would be repeated SM
/// reads (tier off) into sub-microsecond DRAM hits (tier on).
///
/// # Panics
///
/// Panics when a host cannot be built or a batch fails — experiments treat
/// both as fatal setup errors.
// Harness policy: a fatal setup/serving error aborts the experiment
// with the message below (crate docs, "Panic policy").
#[allow(clippy::expect_used)]
pub fn measure_shared_tier(
    model: &ModelConfig,
    config: &SdmConfig,
    queries: &[Query],
    shard_counts: &[usize],
    tier_budget: Bytes,
) -> SharedTierReport {
    let mut report = SharedTierReport::new();
    for &shards in shard_counts {
        for enabled in [false, true] {
            let cfg = if enabled {
                config.clone().with_shared_tier(tier_budget)
            } else {
                config.clone()
            };
            let mut host = ServingHost::build(
                model,
                &cfg,
                EXPERIMENT_SEED,
                shards,
                RoutingPolicy::UserSticky,
            )
            .expect("failed to build serving host");
            // Two warmup batches settle the private LRU states and (when
            // enabled) promote the stream's hot rows into the shared tier.
            host.run_batch(queries).expect("warmup batch failed");
            host.run_batch(queries).expect("warmup batch failed");
            let before = host.stats();
            let run = host.run_batch(queries).expect("measured batch failed");
            let stats = host.stats();
            report.record(SharedTierMeasurement {
                shards,
                enabled,
                queries: run.queries,
                virtual_qps: run.virtual_qps,
                shared_hits: stats.shared_tier_hits - before.shared_tier_hits,
                shared_misses: stats.shared_tier_misses - before.shared_tier_misses,
                cross_shard_hits: stats.shared_tier_cross_hits - before.shared_tier_cross_hits,
                promotions: stats.shared_tier_promotions - before.shared_tier_promotions,
            });
        }
    }
    report
}

/// Measures the admission-policy A/B on the *virtual* clock: for each
/// shard count, one host per [`sdm_cache::TierAdmission`] policy (identical
/// seeds and routing) serves the same skewed stream through a *capacity
/// constrained* shared tier, and the third batch — private caches warmed,
/// tier populated and churning — is recorded. Reported counters are the
/// measured batch's deltas, not cumulative totals.
///
/// Unlike [`measure_shared_tier`], `tier_budget` here should be *smaller
/// than the stream's hot row set*, so the tier's LRU actually evicts and
/// the admission policy has something to decide: under always-admit every
/// single-touch tail row displaces resident head rows, while the
/// second-touch doorkeeper turns those promotions away (the
/// `admission_denied` delta) and keeps the head resident.
///
/// # Panics
///
/// Panics when a host cannot be built, a batch fails, or the configured
/// tier budget is zero — experiments treat these as fatal setup errors.
// Harness policy: a fatal setup/serving error aborts the experiment
// with the message below (crate docs, "Panic policy").
#[allow(clippy::expect_used)]
pub fn measure_cache_policies(
    model: &ModelConfig,
    config: &SdmConfig,
    queries: &[Query],
    shard_counts: &[usize],
    tier_budget: Bytes,
) -> CachePolicyReport {
    use sdm_cache::TierAdmission;
    assert!(!tier_budget.is_zero(), "cache-policy lab needs a live tier");
    let mut report = CachePolicyReport::new();
    for &shards in shard_counts {
        for (admission, policy) in [
            (TierAdmission::Always, "always_admit"),
            (TierAdmission::SecondTouch, "second_touch"),
        ] {
            let cfg = config
                .clone()
                .with_shared_tier(tier_budget)
                .with_shared_tier_admission(admission);
            let mut host = ServingHost::build(
                model,
                &cfg,
                EXPERIMENT_SEED,
                shards,
                RoutingPolicy::UserSticky,
            )
            .expect("failed to build serving host");
            // Two warmup batches settle the private LRU states and let the
            // doorkeeper see every hot row at least twice; the constrained
            // tier keeps evicting, so the measured batch still exercises
            // admission on every promotion attempt.
            host.run_batch(queries).expect("warmup batch failed");
            host.run_batch(queries).expect("warmup batch failed");
            let before = host.stats();
            let denied_before = host
                .shared_tier()
                .expect("cache-policy lab host has a shared tier")
                .admission_denied();
            let run = host.run_batch(queries).expect("measured batch failed");
            let stats = host.stats();
            let denied_after = host
                .shared_tier()
                .expect("cache-policy lab host has a shared tier")
                .admission_denied();
            report.record(CachePolicyMeasurement {
                shards,
                policy,
                queries: run.queries,
                virtual_qps: run.virtual_qps,
                shared_hits: stats.shared_tier_hits - before.shared_tier_hits,
                shared_misses: stats.shared_tier_misses - before.shared_tier_misses,
                promotions: stats.shared_tier_promotions - before.shared_tier_promotions,
                admission_denied: denied_after - denied_before,
            });
        }
    }
    report
}

/// Measures the open-loop latency-vs-offered-load curve on the *virtual*
/// clock: for each offered rate, a freshly built 1-shard host (cold
/// caches, same stream capacity regime as the batch-mode measurement)
/// serves the query stream through a [`Frontend`] fed by seeded Poisson
/// arrivals at that rate. Every recorded point — p50/p99, shed rate,
/// served QPS — is deterministic, so CI gates on curve-shape invariants.
///
/// Rates should be passed in increasing order so
/// [`LoadCurveReport::p99_monotone`] checks the intended shape.
///
/// # Panics
///
/// Panics when a host, front end or generator cannot be built or a batch
/// fails — experiments treat these as fatal setup errors.
// Harness policy: a fatal setup/serving error aborts the experiment
// with the message below (crate docs, "Panic policy").
#[allow(clippy::expect_used)]
pub fn measure_load_curve(
    model: &ModelConfig,
    config: &SdmConfig,
    queries: &[Query],
    frontend: &FrontendConfig,
    rates: &[f64],
    arrival_seed: u64,
) -> LoadCurveReport {
    let mut report = LoadCurveReport::new();
    for &rate in rates {
        let mut host =
            ServingHost::build(model, config, EXPERIMENT_SEED, 1, RoutingPolicy::UserSticky)
                .expect("failed to build serving host");
        let mut fe = Frontend::new(*frontend).expect("invalid frontend config");
        let mut arrivals =
            ArrivalGenerator::new(ArrivalProcess::Poisson { rate_qps: rate }, arrival_seed)
                .expect("invalid arrival process");
        let run = fe
            .run(&mut host, queries, &mut arrivals)
            .expect("open-loop run failed");
        report.record(run.load_point(rate));
    }
    report
}

/// Everything the fault-resilience measurement produces: the
/// per-condition [`ResilienceReport`] plus the cross-run gates CI pins.
#[derive(Debug, Clone)]
pub struct FaultResilienceOutcome {
    /// Per-condition measurements (`healthy`, `empty_plan`, `storm`,
    /// `stuck`, `outage`).
    pub report: ResilienceReport,
    /// The hedge delay the faulty conditions ran with, derived from the
    /// healthy run's p99 IO latency (the classic hedged-request recipe).
    pub hedge_after: SimDuration,
    /// Whether two storm runs under the same fault seed produced
    /// bit-identical scores and counters (deterministic replay gate).
    pub replay_identical: bool,
    /// Whether the attached-but-empty-plan run was bit-identical to the
    /// plan-free run (the "resilience compiled in but inert" gate).
    pub empty_plan_identical: bool,
    /// Degraded rows of the empty-plan run — CI pins this to zero.
    pub empty_plan_degraded_rows: u64,
}

/// One fault condition executed to completion: its measurement plus a
/// bit-exact fingerprint (last batch's scores) for replay comparisons.
struct ConditionRun {
    measurement: ResilienceMeasurement,
    scores: Vec<f32>,
    /// p99 of caller-visible IO latency across all shard engines.
    io_p99: SimDuration,
}

/// Runs `rounds` batches of `queries` on a fresh host with `plan_for`
/// attached to every device (`(shard, device) -> plan`), then folds the
/// serving and fault ledgers into one measurement.
// Harness policy: a fatal setup/serving error aborts the experiment
// with the message below (crate docs, "Panic policy").
#[allow(clippy::expect_used)]
fn run_fault_condition(
    label: &str,
    model: &ModelConfig,
    config: &SdmConfig,
    queries: &[Query],
    shards: usize,
    rounds: usize,
    mut plan_for: impl FnMut(usize, usize) -> Option<FaultPlan>,
) -> ConditionRun {
    let mut host = ServingHost::build(
        model,
        config,
        EXPERIMENT_SEED,
        shards,
        RoutingPolicy::UserSticky,
    )
    .expect("failed to build serving host");
    for s in 0..host.shards() {
        let array = host.shard_mut(s).manager_mut().io_engine_mut().array_mut();
        for d in 0..array.len() {
            let plan = plan_for(s, d);
            array
                .device_mut(DeviceId(d))
                .expect("device index in range")
                .set_fault_plan(plan);
        }
    }
    let mut total_makespan = SimDuration::ZERO;
    let mut served = 0u64;
    for _ in 0..rounds.max(1) {
        // Injected faults never fail a batch: reads retry, rows degrade to
        // zeros, unhealthy shards are routed around.
        let report = host.run_batch(queries).expect("resilience batch failed");
        total_makespan += report.virtual_makespan;
        served += report.queries;
    }
    let stats = host.stats();
    let mut injected = FaultStats::default();
    let mut io_hist = LatencyHistogram::new();
    for s in 0..host.shards() {
        let engine = host.shard(s).manager().io_engine();
        io_hist.merge(&engine.stats().latency);
        for (_, device) in engine.array().iter() {
            if let Some(plan) = device.fault_plan() {
                injected.merge(plan.stats());
            }
        }
    }
    let mut scores = Vec::new();
    for i in 0..host.len() {
        scores.extend_from_slice(host.scores(i));
    }
    let row_accesses = stats.row_cache_hits
        + stats.shared_tier_hits
        + stats.sm_reads
        + stats.pruned_zero_rows
        + stats.degraded_rows;
    ConditionRun {
        measurement: ResilienceMeasurement {
            label: label.to_string(),
            queries: served,
            virtual_qps: if total_makespan.is_zero() {
                0.0
            } else {
                served as f64 / total_makespan.as_secs_f64()
            },
            row_accesses,
            degraded_rows: stats.degraded_rows,
            injected_transient: injected.transient_errors,
            injected_corruptions: injected.corruptions,
            injected_stuck: injected.stuck,
            detected_corruptions: stats.io_checksum_failures,
            // Valid wherever every corrupted attempt reaches checksum
            // verification — conditions that inject corruption run with a
            // zero IO deadline, so nothing is abandoned unverified.
            corrupted_served: injected
                .corruptions
                .saturating_sub(stats.io_checksum_failures),
            retries: stats.io_retries,
            deadline_timeouts: stats.io_deadline_timeouts,
            hedges: stats.io_hedges,
            hedge_wins: stats.io_hedge_wins,
            failovers: stats.shard_failovers,
        },
        scores,
        io_p99: io_hist.p99(),
    }
}

/// Per-shard-and-device fault seed: decorrelates device RNG streams while
/// staying a pure function of the run's fault seed.
fn device_fault_seed(fault_seed: u64, shard: usize, device: usize) -> u64 {
    fault_seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (device as u64 + 1)
}

/// Measures end-to-end fault resilience on the *virtual* clock. Five
/// deterministic conditions, each a fresh host serving the same stream:
///
/// * `healthy` — no fault plans; the baseline every retention compares to.
/// * `empty_plan` — a [`FaultPlan`] attached to every device but with all
///   rates zero; must be bit-identical to `healthy` with zero degraded
///   rows (resilience machinery present but inert).
/// * `storm` — transient errors, bit-flip corruption, occasional stuck
///   IOs and a latency-storm window on every device, served with bounded
///   retries and hedged reads (hedge delay = healthy p99 IO latency).
///   Run **twice** under the same fault seed; the runs must be
///   bit-identical (`replay_identical`).
/// * `stuck` — stuck IOs against a per-IO deadline, exercising
///   abandon-and-retry.
/// * `outage` — one shard's devices massively degraded (high transient
///   rate plus a whole-run storm), exercising degraded rows and
///   health-based shard failover.
///
/// # Panics
///
/// Panics when a host cannot be built or a batch fails — experiments
/// treat both as fatal setup errors.
// Harness policy: a fatal setup/serving error aborts the experiment
// with the message below (crate docs, "Panic policy").
#[allow(clippy::expect_used)]
pub fn measure_fault_resilience(
    model: &ModelConfig,
    config: &SdmConfig,
    queries: &[Query],
    shards: usize,
    rounds: usize,
    fault_seed: u64,
) -> FaultResilienceOutcome {
    let mut report = ResilienceReport::new();

    // Healthy and empty-plan runs use the caller's stock engine config
    // (default retry policy), so the empty-plan gate certifies the exact
    // pre-resilience hot path.
    let healthy = run_fault_condition("healthy", model, config, queries, shards, rounds, |_, _| {
        None
    });
    let empty = run_fault_condition(
        "empty_plan",
        model,
        config,
        queries,
        shards,
        rounds,
        |s, d| Some(FaultPlan::new(device_fault_seed(fault_seed, s, d))),
    );
    let empty_plan_identical = empty.scores == healthy.scores
        && empty.measurement.virtual_qps == healthy.measurement.virtual_qps
        && empty.measurement.row_accesses == healthy.measurement.row_accesses
        && empty.measurement.retries == healthy.measurement.retries;
    let empty_plan_degraded_rows = empty.measurement.degraded_rows;
    let hedge_after = healthy.io_p99;

    // Storm: every fault mode at low rate plus a long latency storm.
    // Retries + hedging absorb it; corruption detection must be total.
    let mut storm_cfg = config.clone();
    storm_cfg.io.retry = RetryConfig {
        max_attempts: 4,
        hedge_after: Some(hedge_after),
        ..RetryConfig::default()
    };
    let storm_end = SimInstant::EPOCH + SimDuration::from_secs(3600);
    let stuck_latency = hedge_after.max(SimDuration::from_micros(1)) * 50;
    let storm_plan = |seed_base: u64| {
        move |s: usize, d: usize| {
            Some(
                FaultPlan::new(device_fault_seed(seed_base, s, d))
                    .with_transient_errors(0.05)
                    .with_corruption(0.02)
                    .with_stuck(0.01, stuck_latency)
                    .with_storm(SimInstant::EPOCH, storm_end, 6.0),
            )
        }
    };
    let storm = run_fault_condition(
        "storm",
        model,
        &storm_cfg,
        queries,
        shards,
        rounds,
        storm_plan(fault_seed),
    );
    let storm_replay = run_fault_condition(
        "storm",
        model,
        &storm_cfg,
        queries,
        shards,
        rounds,
        storm_plan(fault_seed),
    );
    let replay_identical =
        storm.measurement == storm_replay.measurement && storm.scores == storm_replay.scores;

    // Stuck: hung IOs against a per-IO deadline (abandon and retry).
    let mut stuck_cfg = config.clone();
    stuck_cfg.io.retry = RetryConfig {
        max_attempts: 4,
        io_deadline: hedge_after.max(SimDuration::from_micros(1)) * 4,
        ..RetryConfig::default()
    };
    let stuck = run_fault_condition(
        "stuck",
        model,
        &stuck_cfg,
        queries,
        shards,
        rounds,
        |s, d| {
            Some(
                FaultPlan::new(device_fault_seed(fault_seed, s, d)).with_stuck(0.03, stuck_latency),
            )
        },
    );

    // Outage: one shard's devices mostly failing and massively slowed —
    // rows degrade to zeros and the host routes batches away from it.
    let outage_shard = shards.saturating_sub(1);
    let outage = run_fault_condition("outage", model, config, queries, shards, rounds, |s, d| {
        (s == outage_shard).then(|| {
            FaultPlan::new(device_fault_seed(fault_seed, s, d))
                .with_transient_errors(0.5)
                .with_storm(SimInstant::EPOCH, storm_end, 20.0)
        })
    });

    report.record(healthy.measurement);
    report.record(empty.measurement);
    report.record(storm.measurement);
    report.record(stuck.measurement);
    report.record(outage.measurement);
    FaultResilienceOutcome {
        report,
        hedge_after,
        replay_identical,
        empty_plan_identical,
        empty_plan_degraded_rows,
    }
}

/// Extracts the numeric value of `"field":` inside the object introduced by
/// `"section":` from a `BENCH_*.json` document (the hand-rolled emitter's
/// format: flat single-level section objects; no JSON crate is vendored).
/// Returns `None` when either key is missing from that section or the
/// value does not parse — a field that only exists in a *later* section is
/// not silently substituted.
pub fn json_field(text: &str, section: &str, field: &str) -> Option<f64> {
    let sec = format!("\"{section}\":");
    let start = text.find(&sec)? + sec.len();
    let scoped = &text[start..];
    // Bound the search to the section's own object.
    let scoped = &scoped[..scoped.find('}').unwrap_or(scoped.len())];
    let key = format!("\"{field}\":");
    let at = scoped.find(&key)? + key.len();
    let rest = scoped[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Deterministic quantised rows for the pooling benchmarks (`pf` rows of
/// `dim` elements), shared by `pooling_bench` and `exp_hotpath` so both
/// measure the same inputs.
pub fn bench_quantized_rows(pf: usize, dim: usize, scheme: embedding::QuantScheme) -> Vec<Vec<u8>> {
    (0..pf)
        .map(|i| {
            let values: Vec<f32> = (0..dim).map(|j| ((i * j) as f32).sin()).collect();
            embedding::quantize_row(&values, scheme)
        })
        .collect()
}

/// The seed pooling path, byte for byte: per-row dequantise into a fresh
/// `Vec<f32>`, then a second pass summing into a freshly allocated output.
/// Kept as the baseline the slice-based hot path is measured against.
///
/// # Panics
///
/// Panics on malformed row buffers — benchmark inputs are trusted.
// Harness policy: malformed benchmark rows abort the experiment (crate
// docs, "Panic policy").
#[allow(clippy::unwrap_used)]
pub fn pool_seed_style(rows: &[&[u8]], scheme: embedding::QuantScheme, dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    for &raw in rows {
        let values = embedding::dequantize_row(raw, scheme, dim).unwrap();
        for (o, v) in out.iter_mut().zip(&values) {
            *o += *v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_models_build_quickly_and_small() {
        let m1 = scaled(&model_zoo::m1());
        assert!(m1.embedding_capacity() < Bytes::from_mib(8));
        assert_eq!(m1.tables.len(), model_zoo::m1().tables.len());
    }

    #[test]
    fn build_system_and_run_one_query() {
        let model = scaled(&model_zoo::m1());
        let mut system = build_system(&model, bench_sdm_config());
        let queries = queries_for(&model, 1, 1);
        let result = system.run_query(&queries[0]).unwrap();
        assert!(!result.scores.is_empty());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.205), "20.5%");
    }

    #[test]
    fn json_field_scopes_to_section() {
        let doc = r#"{
  "batch": {
    "model": "M1-scaled",
    "run_batch_qps": 1916.6
  },
  "batch_light": {
    "run_batch_qps": 61945.5
  },
  "multi_stream": {
    "host_cores": 4,
    "qps_streams_1": 1528.9
  }
}"#;
        assert_eq!(json_field(doc, "batch", "run_batch_qps"), Some(1916.6));
        assert_eq!(
            json_field(doc, "batch_light", "run_batch_qps"),
            Some(61945.5)
        );
        assert_eq!(json_field(doc, "multi_stream", "host_cores"), Some(4.0));
        assert_eq!(json_field(doc, "multi_stream", "missing"), None);
        assert_eq!(json_field(doc, "missing", "run_batch_qps"), None);
        // A field absent from the named section must not resolve to a
        // same-named field of a later section.
        assert_eq!(json_field(doc, "batch", "qps_streams_1"), None);
        assert_eq!(json_field(doc, "batch", "host_cores"), None);
    }

    #[test]
    fn measure_batch_modes_shows_the_overlap_trade_off() {
        let model = model_zoo::tiny(2, 1, 400);
        let queries = queries_for(&model, 32, 9);
        let report = measure_batch_modes(&model, &SdmConfig::for_tests(), &queries, 8);
        assert!(report.is_complete());
        assert!(report.qps_gain().unwrap() >= 1.0);
        assert!(report.depth_gain().unwrap() > 1.0);
        assert_eq!(report.exact().unwrap().queries, 32);
    }

    #[test]
    fn measure_shared_tier_shows_cross_shard_reuse() {
        let model = model_zoo::tiny(2, 1, 400);
        let queries = skewed_queries_for(&model, 48, 11);
        // The tier's regime: private row caches too small for the hot set
        // (so private misses persist in steady state) and the pooled cache
        // off (so whole-operator replay cannot mask the row path).
        let mut config = SdmConfig::for_tests();
        config.cache.row_cache_budget = Bytes::from_kib(16);
        config.cache.pooled_cache_budget = Bytes::ZERO;
        let report = measure_shared_tier(&model, &config, &queries, &[2], Bytes::from_mib(2));
        assert_eq!(report.len(), 2);
        let off = report.get(2, false).unwrap();
        let on = report.get(2, true).unwrap();
        assert_eq!(off.shared_hits, 0, "tier-off runs never probe the tier");
        assert!(on.shared_hits > 0);
        assert!(on.cross_shard_hit_rate() > 0.0);
        assert!(report.qps_gain(2).unwrap() >= 1.0);
    }

    #[test]
    fn measure_fault_resilience_gates_hold_on_a_tiny_model() {
        let model = model_zoo::tiny(2, 1, 400);
        let queries = queries_for(&model, 24, 7);
        let out = measure_fault_resilience(&model, &SdmConfig::for_tests(), &queries, 2, 6, 42);
        assert!(out.empty_plan_identical, "empty plan must be inert");
        assert_eq!(out.empty_plan_degraded_rows, 0);
        assert!(
            out.replay_identical,
            "same seed must replay bit-identically"
        );
        let healthy = out.report.get("healthy").unwrap();
        assert!(healthy.virtual_qps > 0.0);
        assert_eq!(healthy.injected_total(), 0);
        assert_eq!(healthy.degraded_rows, 0);
        let storm = out.report.get("storm").unwrap();
        assert!(storm.injected_total() > 0, "storm must inject faults");
        assert_eq!(
            storm.corruption_detection_rate(),
            1.0,
            "checksums must catch every injected flip: {storm:?}"
        );
        assert_eq!(out.report.total_corrupted_served(), 0);
        assert!(storm.retries > 0);
        let retention = out.report.qps_retention("storm", "healthy").unwrap();
        assert!(retention > 0.0 && retention < 1.0, "retention {retention}");
        let stuck = out.report.get("stuck").unwrap();
        assert!(
            stuck.deadline_timeouts > 0,
            "deadline must abandon stuck IOs"
        );
        let outage = out.report.get("outage").unwrap();
        assert!(
            outage.degraded_rows > 0,
            "outage must degrade rows: {outage:?}"
        );
        assert!(
            outage.failovers > 0,
            "outage must trigger failover: {outage:?}"
        );
    }

    #[test]
    fn measure_streams_records_every_count() {
        let model = model_zoo::tiny(2, 1, 400);
        let queries = queries_for(&model, 16, 3);
        let report = measure_streams(&model, &SdmConfig::for_tests(), &queries, &[1, 2], 3);
        assert_eq!(report.len(), 2);
        for m in report.iter() {
            assert_eq!(m.queries, 16);
            assert!(m.wall_qps() > 0.0);
        }
        assert!(report.speedup(2).is_some());
    }
}

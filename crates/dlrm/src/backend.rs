//! The embedding backend abstraction.
//!
//! The inference engine does not care where embedding rows physically live:
//! fully in DRAM (the baseline deployment), or behind the Software Defined
//! Memory stack (DRAM cache + SCM). Both implement [`EmbeddingBackend`] and
//! report how long each pooled lookup took on the virtual clock, which is
//! how memory placement shows up in end-to-end query latency.

use crate::config::ModelConfig;
use crate::error::DlrmError;
use embedding::kernels::{self, SelectedKernel};
use embedding::{EmbeddingTable, PoolKernel, TableId};
use sdm_cache::SlotPool;
use sdm_metrics::{SimDuration, SimInstant};
use std::collections::HashMap;

/// Serves pooled embedding lookups for the inference engine.
pub trait EmbeddingBackend {
    /// Reads and pools `indices` from `table`, returning the pooled vector
    /// and the simulated time the operation took (memory access + dequantise
    /// + pool).
    ///
    /// # Errors
    ///
    /// Implementations return [`DlrmError`] for unknown tables or
    /// out-of-range indices.
    fn pooled_lookup(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<(Vec<f32>, SimDuration), DlrmError>;

    /// Zero-allocation form of [`EmbeddingBackend::pooled_lookup`]: the
    /// pooled rows are *accumulated into* `out`, which the caller provides
    /// zero-filled and sized to the table's embedding dimension. Returns the
    /// simulated time the operation took.
    ///
    /// The default implementation falls back to the allocating form; hot
    /// backends override it to pool straight into the caller's buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError`] for unknown tables, out-of-range indices, or a
    /// buffer whose length disagrees with the table's dimension.
    fn pooled_lookup_into(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
        out: &mut [f32],
    ) -> Result<SimDuration, DlrmError> {
        let (pooled, took) = self.pooled_lookup(table, indices, now)?;
        if pooled.len() != out.len() {
            return Err(DlrmError::DimensionMismatch {
                expected: out.len(),
                actual: pooled.len(),
            });
        }
        out.copy_from_slice(&pooled);
        Ok(took)
    }

    /// Short name for reporting.
    fn backend_name(&self) -> &str {
        "backend"
    }
}

/// Handle to a pooled lookup that has been *begun* but not yet folded into
/// the query's pooled-vector arena (see [`OverlappedBackend`]).
///
/// Tickets are only meaningful to the backend that issued them and must be
/// finished exactly once, in any order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupTicket(pub u64);

/// Split-phase extension of [`EmbeddingBackend`] for overlapped batch
/// execution (paper §3.2: deep device queues across in-flight queries).
///
/// `lookup_begin` resolves everything that is immediately available (cache
/// hits, fast-memory rows) into backend-owned scratch and *issues* the slow
/// reads without waiting for them; `lookup_finish` waits for the op's IO,
/// writes the completed pooled vector into `out` and reports the op's total
/// simulated latency. Between the two calls the backend may begin ops of
/// *other* queries, which is what lets a relaxed batch executor keep many
/// queries' misses in flight at once.
pub trait OverlappedBackend: EmbeddingBackend {
    /// Begins one pooled lookup at virtual time `now`: accumulates hits into
    /// backend scratch and issues IO for the misses.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError`] for unknown tables or out-of-range indices.
    fn lookup_begin(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<LookupTicket, DlrmError>;

    /// Completes a begun lookup: writes the pooled vector into `out` (sized
    /// to the table's dimension) and returns the op's simulated latency,
    /// including any IO wait.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError`] for stale tickets or a mis-sized buffer.
    fn lookup_finish(
        &mut self,
        ticket: LookupTicket,
        out: &mut [f32],
    ) -> Result<SimDuration, DlrmError>;
}

/// Baseline backend: every table fully resident in DRAM.
///
/// This is the paper's HW-L style deployment (dual socket, 256 GB DRAM) and
/// the reference point the SDM configurations are compared against.
#[derive(Debug)]
pub struct DramBackend {
    tables: HashMap<TableId, EmbeddingTable>,
    /// Resolved dequant-accumulate kernel (auto-detected at construction,
    /// overridable via [`DramBackend::with_pool_kernel`]).
    kernel: SelectedKernel,
    /// DRAM random-access latency per row (cache-missing pointer chase).
    per_row_latency: SimDuration,
    /// Per-element dequantise + accumulate cost.
    per_element_cost: SimDuration,
    /// Begun-but-unfinished split-phase lookups (DRAM has no asynchronous
    /// IO, so `lookup_begin` resolves eagerly and parks the result here).
    /// The pool's generation tickets reject retained tickets whose slot was
    /// released or re-acquired — see [`sdm_cache::SlotPool`].
    pending: SlotPool<(Vec<f32>, SimDuration)>,
}

impl DramBackend {
    /// Materialises every table of a (scaled) model in DRAM.
    pub fn new(model: &ModelConfig, seed: u64) -> Self {
        let tables = model
            .tables
            .iter()
            .map(|d| (d.id, EmbeddingTable::generate(d, seed)))
            .collect();
        DramBackend {
            tables,
            kernel: kernels::auto_kernel(),
            per_row_latency: SimDuration::from_nanos(150),
            per_element_cost: SimDuration::from_nanos(1),
            pending: SlotPool::new(),
        }
    }

    /// Builds a backend from pre-materialised tables.
    pub fn from_tables(tables: Vec<EmbeddingTable>) -> Self {
        DramBackend {
            tables: tables.into_iter().map(|t| (t.descriptor().id, t)).collect(),
            kernel: kernels::auto_kernel(),
            per_row_latency: SimDuration::from_nanos(150),
            per_element_cost: SimDuration::from_nanos(1),
            pending: SlotPool::new(),
        }
    }

    /// Selects the pooling kernel explicitly (the constructors default to
    /// runtime auto-detection). Unsupported kernels fall back to scalar.
    #[must_use]
    pub fn with_pool_kernel(mut self, kernel: PoolKernel) -> Self {
        self.kernel = kernel.resolve_default();
        self
    }

    /// The resolved dequant-accumulate kernel this backend pools with.
    pub fn kernel(&self) -> SelectedKernel {
        self.kernel
    }

    /// Number of resident tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Access to a resident table (for tests).
    pub fn table(&self, id: TableId) -> Option<&EmbeddingTable> {
        self.tables.get(&id)
    }

    /// Discards every begun-but-unfinished split-phase lookup. Callers that
    /// abandon a pipeline mid-flight (an error between `lookup_begin` and
    /// `lookup_finish`) use this so orphaned slots cannot accumulate. The
    /// pool bumps the generation of every abandoned slot, so the orphaned
    /// tickets stay stale even after their slot is re-acquired.
    pub fn reset_pending(&mut self) {
        self.pending.reset();
    }
}

impl EmbeddingBackend for DramBackend {
    fn pooled_lookup(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<(Vec<f32>, SimDuration), DlrmError> {
        let dim = self
            .tables
            .get(&table)
            .ok_or(DlrmError::UnknownTable { table })?
            .descriptor()
            .dim;
        let mut pooled = vec![0.0f32; dim];
        let latency = self.pooled_lookup_into(table, indices, now, &mut pooled)?;
        Ok((pooled, latency))
    }

    fn pooled_lookup_into(
        &mut self,
        table: TableId,
        indices: &[u64],
        _now: SimInstant,
        out: &mut [f32],
    ) -> Result<SimDuration, DlrmError> {
        let t = self
            .tables
            .get(&table)
            .ok_or(DlrmError::UnknownTable { table })?;
        let desc = t.descriptor();
        if out.len() != desc.dim {
            return Err(DlrmError::DimensionMismatch {
                expected: desc.dim,
                actual: out.len(),
            });
        }
        // Rows are dequant-accumulated straight out of the table's arena —
        // no per-row vector, no pooled-vector allocation. The next row is
        // software-prefetched while the current one pools: pooling-factor
        // index streams are random, so the hardware prefetcher cannot cover
        // the arena strides on its own.
        for (i, &idx) in indices.iter().enumerate() {
            let row = t.row(idx).map_err(DlrmError::backend)?;
            if let Some(&next) = indices.get(i + 1) {
                if let Ok(next_row) = t.row(next) {
                    kernels::prefetch_row(next_row);
                }
            }
            kernels::accumulate_row_with(self.kernel, row, desc.quant, out)
                .map_err(DlrmError::backend)?;
        }
        let latency = self.per_row_latency * indices.len() as u64
            + self.per_element_cost * (indices.len() * desc.dim) as u64;
        Ok(latency)
    }

    fn backend_name(&self) -> &str {
        "dram"
    }
}

impl OverlappedBackend for DramBackend {
    fn lookup_begin(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<LookupTicket, DlrmError> {
        // DRAM resolves synchronously: begin computes the pooled vector
        // eagerly, finish just hands it back. This keeps the baseline
        // backend usable under the overlapped executor for comparisons.
        let (pooled, took) = self.pooled_lookup(table, indices, now)?;
        let slot = self.pending.acquire();
        *self.pending.slot_mut(slot) = (pooled, took);
        Ok(LookupTicket(self.pending.ticket(slot)))
    }

    fn lookup_finish(
        &mut self,
        ticket: LookupTicket,
        out: &mut [f32],
    ) -> Result<SimDuration, DlrmError> {
        let slot = self
            .pending
            .checked_slot(ticket.0)
            .ok_or(DlrmError::StaleTicket { ticket: ticket.0 })?;
        let (pooled, took) = self.pending.slot(slot);
        // Validate before releasing, so a mis-sized buffer is retryable —
        // the same semantics as the SDM manager's finish half.
        if pooled.len() != out.len() {
            return Err(DlrmError::DimensionMismatch {
                expected: out.len(),
                actual: pooled.len(),
            });
        }
        out.copy_from_slice(pooled);
        let took = *took;
        // Release stales the consumed ticket; the next begin of this slot
        // issues a fresh generation.
        self.pending.release(slot);
        Ok(took)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_zoo;

    #[test]
    fn dram_backend_serves_pooled_lookups() {
        let model = model_zoo::tiny(2, 1, 200);
        let mut backend = DramBackend::new(&model, 5);
        assert_eq!(backend.num_tables(), 3);
        let (pooled, latency) = backend
            .pooled_lookup(0, &[1, 2, 3, 4], SimInstant::EPOCH)
            .unwrap();
        assert_eq!(pooled.len(), 32);
        assert!(latency > SimDuration::ZERO);
        assert_eq!(backend.backend_name(), "dram");
    }

    #[test]
    fn pooled_result_matches_manual_sum() {
        let model = model_zoo::tiny(1, 0, 50);
        let mut backend = DramBackend::new(&model, 7);
        let table = backend.table(0).unwrap().clone();
        let manual: Vec<f32> = {
            let a = table.dequantized_row(3).unwrap();
            let b = table.dequantized_row(9).unwrap();
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        };
        let (pooled, _) = backend
            .pooled_lookup(0, &[3, 9], SimInstant::EPOCH)
            .unwrap();
        for (x, y) in pooled.iter().zip(&manual) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn explicit_scalar_kernel_is_bit_identical_to_auto() {
        let model = model_zoo::tiny(1, 0, 50);
        let mut auto = DramBackend::new(&model, 7);
        let mut scalar = DramBackend::new(&model, 7).with_pool_kernel(PoolKernel::Scalar);
        assert_eq!(scalar.kernel().name(), "scalar");
        let indices = [3u64, 9, 11, 11, 42];
        let (a, _) = auto.pooled_lookup(0, &indices, SimInstant::EPOCH).unwrap();
        let (b, _) = scalar
            .pooled_lookup(0, &indices, SimInstant::EPOCH)
            .unwrap();
        let a_bits: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
        let b_bits: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "auto kernel diverged from scalar");
    }

    #[test]
    fn unknown_table_and_bad_index_are_errors() {
        let model = model_zoo::tiny(1, 0, 50);
        let mut backend = DramBackend::new(&model, 7);
        assert!(matches!(
            backend.pooled_lookup(99, &[0], SimInstant::EPOCH),
            Err(DlrmError::UnknownTable { table: 99 })
        ));
        assert!(backend
            .pooled_lookup(0, &[10_000], SimInstant::EPOCH)
            .is_err());
    }

    #[test]
    fn free_list_reuses_slots_and_keeps_tickets_generation_safe() {
        let model = model_zoo::tiny(1, 0, 50);
        let mut backend = DramBackend::new(&model, 7);
        let dim = backend.table(0).unwrap().descriptor().dim;
        let mut out = vec![0.0f32; dim];

        // Begin/finish interleaved: after the window drains, later begins
        // must come from the free list instead of growing `pending`.
        let a = backend.lookup_begin(0, &[1], SimInstant::EPOCH).unwrap();
        let b = backend.lookup_begin(0, &[2], SimInstant::EPOCH).unwrap();
        assert_eq!(backend.pending.len(), 2);
        assert_eq!(backend.pending.free_len(), 0);
        backend.lookup_finish(a, &mut out).unwrap();
        backend.lookup_finish(b, &mut out).unwrap();
        let c = backend.lookup_begin(0, &[3], SimInstant::EPOCH).unwrap();
        let d = backend.lookup_begin(0, &[4], SimInstant::EPOCH).unwrap();
        assert_eq!(backend.pending.len(), 2, "drained slots were not reused");

        // The retained ticket `a` names a reused slot with an older
        // generation: it must be rejected, not consume the new occupant.
        assert!(matches!(
            backend.lookup_finish(a, &mut out),
            Err(DlrmError::StaleTicket { .. })
        ));
        backend.lookup_finish(c, &mut out).unwrap();
        backend.lookup_finish(d, &mut out).unwrap();

        // reset_pending returns abandoned slots to the free list and stales
        // their tickets even after the slots are re-acquired.
        let e = backend.lookup_begin(0, &[5], SimInstant::EPOCH).unwrap();
        backend.reset_pending();
        let f = backend.lookup_begin(0, &[6], SimInstant::EPOCH).unwrap();
        assert_eq!(backend.pending.len(), 2, "reset_pending leaked a slot");
        assert!(matches!(
            backend.lookup_finish(e, &mut out),
            Err(DlrmError::StaleTicket { .. })
        ));
        backend.lookup_finish(f, &mut out).unwrap();

        // Free-list invariant: every pending slot is vacant again.
        assert!(backend.pending.all_free());
    }

    #[test]
    fn mis_sized_finish_is_retryable_and_does_not_free_the_slot() {
        let model = model_zoo::tiny(1, 0, 50);
        let mut backend = DramBackend::new(&model, 7);
        let dim = backend.table(0).unwrap().descriptor().dim;
        let t = backend.lookup_begin(0, &[1], SimInstant::EPOCH).unwrap();
        let mut short = vec![0.0f32; dim - 1];
        assert!(matches!(
            backend.lookup_finish(t, &mut short),
            Err(DlrmError::DimensionMismatch { .. })
        ));
        assert_eq!(
            backend.pending.free_len(),
            0,
            "failed finish freed the slot"
        );
        let mut out = vec![0.0f32; dim];
        backend.lookup_finish(t, &mut out).unwrap();
        assert_eq!(backend.pending.free_len(), 1);
    }

    #[test]
    fn latency_scales_with_pooling_factor() {
        let model = model_zoo::tiny(1, 0, 500);
        let mut backend = DramBackend::new(&model, 7);
        let (_, short) = backend.pooled_lookup(0, &[1], SimInstant::EPOCH).unwrap();
        let indices: Vec<u64> = (0..100).collect();
        let (_, long) = backend
            .pooled_lookup(0, &indices, SimInstant::EPOCH)
            .unwrap();
        assert!(long > short * 50);
    }
}

//! The embedding backend abstraction.
//!
//! The inference engine does not care where embedding rows physically live:
//! fully in DRAM (the baseline deployment), or behind the Software Defined
//! Memory stack (DRAM cache + SCM). Both implement [`EmbeddingBackend`] and
//! report how long each pooled lookup took on the virtual clock, which is
//! how memory placement shows up in end-to-end query latency.

use crate::config::ModelConfig;
use crate::error::DlrmError;
use embedding::{accumulate_row, EmbeddingTable, TableId};
use sdm_metrics::{SimDuration, SimInstant};
use std::collections::HashMap;

/// Serves pooled embedding lookups for the inference engine.
pub trait EmbeddingBackend {
    /// Reads and pools `indices` from `table`, returning the pooled vector
    /// and the simulated time the operation took (memory access + dequantise
    /// + pool).
    ///
    /// # Errors
    ///
    /// Implementations return [`DlrmError`] for unknown tables or
    /// out-of-range indices.
    fn pooled_lookup(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<(Vec<f32>, SimDuration), DlrmError>;

    /// Zero-allocation form of [`EmbeddingBackend::pooled_lookup`]: the
    /// pooled rows are *accumulated into* `out`, which the caller provides
    /// zero-filled and sized to the table's embedding dimension. Returns the
    /// simulated time the operation took.
    ///
    /// The default implementation falls back to the allocating form; hot
    /// backends override it to pool straight into the caller's buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError`] for unknown tables, out-of-range indices, or a
    /// buffer whose length disagrees with the table's dimension.
    fn pooled_lookup_into(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
        out: &mut [f32],
    ) -> Result<SimDuration, DlrmError> {
        let (pooled, took) = self.pooled_lookup(table, indices, now)?;
        if pooled.len() != out.len() {
            return Err(DlrmError::DimensionMismatch {
                expected: out.len(),
                actual: pooled.len(),
            });
        }
        out.copy_from_slice(&pooled);
        Ok(took)
    }

    /// Short name for reporting.
    fn backend_name(&self) -> &str {
        "backend"
    }
}

/// Baseline backend: every table fully resident in DRAM.
///
/// This is the paper's HW-L style deployment (dual socket, 256 GB DRAM) and
/// the reference point the SDM configurations are compared against.
#[derive(Debug)]
pub struct DramBackend {
    tables: HashMap<TableId, EmbeddingTable>,
    /// DRAM random-access latency per row (cache-missing pointer chase).
    per_row_latency: SimDuration,
    /// Per-element dequantise + accumulate cost.
    per_element_cost: SimDuration,
}

impl DramBackend {
    /// Materialises every table of a (scaled) model in DRAM.
    pub fn new(model: &ModelConfig, seed: u64) -> Self {
        let tables = model
            .tables
            .iter()
            .map(|d| (d.id, EmbeddingTable::generate(d, seed)))
            .collect();
        DramBackend {
            tables,
            per_row_latency: SimDuration::from_nanos(150),
            per_element_cost: SimDuration::from_nanos(1),
        }
    }

    /// Builds a backend from pre-materialised tables.
    pub fn from_tables(tables: Vec<EmbeddingTable>) -> Self {
        DramBackend {
            tables: tables.into_iter().map(|t| (t.descriptor().id, t)).collect(),
            per_row_latency: SimDuration::from_nanos(150),
            per_element_cost: SimDuration::from_nanos(1),
        }
    }

    /// Number of resident tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Access to a resident table (for tests).
    pub fn table(&self, id: TableId) -> Option<&EmbeddingTable> {
        self.tables.get(&id)
    }
}

impl EmbeddingBackend for DramBackend {
    fn pooled_lookup(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<(Vec<f32>, SimDuration), DlrmError> {
        let dim = self
            .tables
            .get(&table)
            .ok_or(DlrmError::UnknownTable { table })?
            .descriptor()
            .dim;
        let mut pooled = vec![0.0f32; dim];
        let latency = self.pooled_lookup_into(table, indices, now, &mut pooled)?;
        Ok((pooled, latency))
    }

    fn pooled_lookup_into(
        &mut self,
        table: TableId,
        indices: &[u64],
        _now: SimInstant,
        out: &mut [f32],
    ) -> Result<SimDuration, DlrmError> {
        let t = self
            .tables
            .get(&table)
            .ok_or(DlrmError::UnknownTable { table })?;
        let desc = t.descriptor();
        if out.len() != desc.dim {
            return Err(DlrmError::DimensionMismatch {
                expected: desc.dim,
                actual: out.len(),
            });
        }
        // Rows are dequant-accumulated straight out of the table's arena —
        // no per-row vector, no pooled-vector allocation.
        for &idx in indices {
            let row = t.row(idx).map_err(DlrmError::backend)?;
            accumulate_row(row, desc.quant, out).map_err(DlrmError::backend)?;
        }
        let latency = self.per_row_latency * indices.len() as u64
            + self.per_element_cost * (indices.len() * desc.dim) as u64;
        Ok(latency)
    }

    fn backend_name(&self) -> &str {
        "dram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_zoo;

    #[test]
    fn dram_backend_serves_pooled_lookups() {
        let model = model_zoo::tiny(2, 1, 200);
        let mut backend = DramBackend::new(&model, 5);
        assert_eq!(backend.num_tables(), 3);
        let (pooled, latency) = backend
            .pooled_lookup(0, &[1, 2, 3, 4], SimInstant::EPOCH)
            .unwrap();
        assert_eq!(pooled.len(), 32);
        assert!(latency > SimDuration::ZERO);
        assert_eq!(backend.backend_name(), "dram");
    }

    #[test]
    fn pooled_result_matches_manual_sum() {
        let model = model_zoo::tiny(1, 0, 50);
        let mut backend = DramBackend::new(&model, 7);
        let table = backend.table(0).unwrap().clone();
        let manual: Vec<f32> = {
            let a = table.dequantized_row(3).unwrap();
            let b = table.dequantized_row(9).unwrap();
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        };
        let (pooled, _) = backend
            .pooled_lookup(0, &[3, 9], SimInstant::EPOCH)
            .unwrap();
        for (x, y) in pooled.iter().zip(&manual) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn unknown_table_and_bad_index_are_errors() {
        let model = model_zoo::tiny(1, 0, 50);
        let mut backend = DramBackend::new(&model, 7);
        assert!(matches!(
            backend.pooled_lookup(99, &[0], SimInstant::EPOCH),
            Err(DlrmError::UnknownTable { table: 99 })
        ));
        assert!(backend
            .pooled_lookup(0, &[10_000], SimInstant::EPOCH)
            .is_err());
    }

    #[test]
    fn latency_scales_with_pooling_factor() {
        let model = model_zoo::tiny(1, 0, 500);
        let mut backend = DramBackend::new(&model, 7);
        let (_, short) = backend.pooled_lookup(0, &[1], SimInstant::EPOCH).unwrap();
        let indices: Vec<u64> = (0..100).collect();
        let (_, long) = backend
            .pooled_lookup(0, &indices, SimInstant::EPOCH)
            .unwrap();
        assert!(long > short * 50);
    }
}

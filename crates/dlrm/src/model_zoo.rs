//! The paper's three target models (Table 6), plus helpers to materialise
//! laptop-scale replicas.
//!
//! Table 6 of the paper:
//!
//! | Model | Size | user tables | user dim avg | user PF | item tables | item dim avg | item PF | item batch | MLP layers × avg |
//! |-------|------|-------------|--------------|---------|-------------|--------------|---------|-----------|------------------|
//! | M1    | 143 GB | 61        | ~100 B       | 42      | 30          | ~100 B       | 9       | 50        | 31 × 300         |
//! | M2    | 150 GB | 450       | 64 B         | 25      | 280         | 38 B         | 14      | 150       | 43 × 735         |
//! | M3    | 1000 GB | 1800     | 192 B        | 26      | 900         | 192 B        | 26      | 1000      | 35 × 6000        |
//!
//! The descriptors returned here carry the *paper-scale* row counts so every
//! capacity/bandwidth computation (Figures 1, Equations 1–8, Tables 8–11)
//! uses the real sizes. To actually materialise tables and run queries on a
//! development machine, use [`scaled_model`], which divides the row counts
//! by a scale factor while keeping dimensions, pooling factors and skew —
//! the quantities all cache / IO behaviour depends on.

use crate::config::{MlpConfig, ModelConfig, UseCase};
use embedding::{QuantScheme, TableDescriptor, TableKind};
use sdm_metrics::units::Bytes;

/// Deterministic per-table dimension spread around an average, bounded to a
/// range, so a model has a realistic mix of row sizes (Figure 1's x-axis).
fn spread_dim(avg_bytes: usize, min_bytes: usize, max_bytes: usize, index: usize) -> usize {
    // Triangular-ish deterministic spread: alternate below/above the mean.
    let phase = (index * 2654435761) % 1000;
    let t = phase as f64 / 1000.0; // 0..1
    let value = if t < 0.5 {
        min_bytes as f64 + (avg_bytes - min_bytes) as f64 * (t * 2.0)
    } else {
        avg_bytes as f64 + (max_bytes - avg_bytes) as f64 * ((t - 0.5) * 2.0)
    };
    value.round() as usize
}

/// Builds the table set for one model given aggregate targets.
#[allow(clippy::too_many_arguments)]
fn build_tables(
    user_tables: usize,
    user_dim_bytes: (usize, usize, usize), // (min, avg, max)
    user_pf: u32,
    user_capacity: Bytes,
    item_tables: usize,
    item_dim_bytes: (usize, usize, usize),
    item_pf: u32,
    item_capacity: Bytes,
) -> Vec<TableDescriptor> {
    let mut tables = Vec::with_capacity(user_tables + item_tables);
    let mut id = 0u32;

    let mut push_set = |count: usize,
                        dims: (usize, usize, usize),
                        pf: u32,
                        capacity: Bytes,
                        kind: TableKind,
                        zipf: f64,
                        tables: &mut Vec<TableDescriptor>| {
        if count == 0 {
            return;
        }
        let per_table = capacity.as_u64() / count as u64;
        for i in 0..count {
            let row_bytes = spread_dim(dims.1, dims.0, dims.2, i).max(9);
            // int8 rows: dim elements = row_bytes - 8 parameter bytes.
            let dim = row_bytes.saturating_sub(8).max(1);
            let num_rows = (per_table / row_bytes as u64).max(1);
            // Pooling factors vary around the average too.
            let pf_i = ((pf as f64 * (0.5 + (i % 7) as f64 / 6.0)).round() as u32).max(1);
            tables.push(
                TableDescriptor::new(
                    id,
                    format!(
                        "{}_{}",
                        if kind == TableKind::User {
                            "user"
                        } else {
                            "item"
                        },
                        i
                    ),
                    kind,
                    num_rows,
                    dim,
                )
                .with_pooling_factor(pf_i)
                .with_quant(QuantScheme::Int8)
                .with_zipf_exponent(zipf + (i % 5) as f64 * 0.05),
            );
            id += 1;
        }
    };

    // Item tables show more temporal locality than user tables (Figure 4).
    push_set(
        user_tables,
        user_dim_bytes,
        user_pf,
        user_capacity,
        TableKind::User,
        0.75,
        &mut tables,
    );
    push_set(
        item_tables,
        item_dim_bytes,
        item_pf,
        item_capacity,
        TableKind::Item,
        0.95,
        &mut tables,
    );
    tables
}

/// Model **M1** (paper Table 6): 143 GB, 61 user + 30 item tables, average
/// pooling factor 42 (user) / 9 (item), item batch 50, served on CPU hosts.
pub fn m1() -> ModelConfig {
    let tables = build_tables(
        61,
        (90, 110, 172),
        42,
        Bytes::from_gib(100),
        30,
        (90, 110, 172),
        9,
        Bytes::from_gib(43),
    );
    ModelConfig {
        name: "M1".into(),
        tables,
        bottom_mlp: MlpConfig::uniform(8, 300),
        top_mlp: MlpConfig::uniform(23, 300),
        dense_features: 300,
        item_batch: 50,
        use_case: UseCase::Inference,
    }
}

/// Model **M2** (paper Table 6): 150 GB, 450 user + 280 item tables, item
/// batch 150, served on accelerator hosts; user embeddings (100 GB) exceed
/// the 64 GB host DRAM, which is what forces either scale-out or SDM.
pub fn m2() -> ModelConfig {
    let tables = build_tables(
        450,
        (32, 64, 288),
        25,
        Bytes::from_gib(100),
        280,
        (12, 38, 320),
        14,
        Bytes::from_gib(50),
    );
    ModelConfig {
        name: "M2".into(),
        tables,
        bottom_mlp: MlpConfig::uniform(10, 735),
        top_mlp: MlpConfig::uniform(33, 735),
        dense_features: 735,
        item_batch: 150,
        use_case: UseCase::Inference,
    }
}

/// Model **M3** (paper Table 6): the 1 TB / 5 T-parameter future model with
/// 1800 user + 900 item tables, item batch 1000, used for the multi-tenancy
/// projection (Tables 10 and 11).
pub fn m3() -> ModelConfig {
    let tables = build_tables(
        1800,
        (40, 192, 512),
        26,
        Bytes::from_gib(700),
        900,
        (40, 192, 512),
        26,
        Bytes::from_gib(300),
    );
    ModelConfig {
        name: "M3".into(),
        tables,
        bottom_mlp: MlpConfig::uniform(10, 6000),
        top_mlp: MlpConfig::uniform(25, 6000),
        dense_features: 6000,
        item_batch: 1000,
        use_case: UseCase::Inference,
    }
}

/// The 140 GB / 734-table model used for Figure 1 (445 user tables holding
/// 100 GB).
pub fn figure1_model() -> ModelConfig {
    let tables = build_tables(
        445,
        (32, 64, 256),
        30,
        Bytes::from_gib(100),
        289,
        (16, 48, 256),
        12,
        Bytes::from_gib(40),
    );
    ModelConfig {
        name: "Fig1-140GB".into(),
        tables,
        bottom_mlp: MlpConfig::uniform(8, 512),
        top_mlp: MlpConfig::uniform(24, 512),
        dense_features: 512,
        item_batch: 100,
        use_case: UseCase::Inference,
    }
}

/// Produces a materialisable replica of a model: row counts are divided by
/// `capacity_divisor` (minimum 1) and MLP widths by `mlp_divisor`, while the
/// number of tables, row sizes, pooling factors, batches and popularity skew
/// are preserved.
pub fn scaled_model(model: &ModelConfig, capacity_divisor: u64, mlp_divisor: f64) -> ModelConfig {
    let capacity_divisor = capacity_divisor.max(1);
    let tables = model
        .tables
        .iter()
        .map(|t| {
            let mut t = t.clone();
            t.num_rows = (t.num_rows / capacity_divisor).max(64);
            t
        })
        .collect();
    ModelConfig {
        name: format!("{}-scaled-{}", model.name, capacity_divisor),
        tables,
        bottom_mlp: model.bottom_mlp.scaled(1.0 / mlp_divisor.max(1.0)),
        top_mlp: model.top_mlp.scaled(1.0 / mlp_divisor.max(1.0)),
        dense_features: ((model.dense_features as f64 / mlp_divisor.max(1.0)).round() as usize)
            .max(2),
        item_batch: model.item_batch,
        use_case: model.use_case,
    }
}

/// A deliberately small model for unit/integration tests and examples:
/// a handful of tables, a few thousand rows, tiny MLPs.
pub fn tiny(user_tables: usize, item_tables: usize, rows_per_table: u64) -> ModelConfig {
    let mut tables = Vec::new();
    let mut id = 0u32;
    for i in 0..user_tables {
        tables.push(
            TableDescriptor::new(id, format!("user_{i}"), TableKind::User, rows_per_table, 32)
                .with_pooling_factor(12)
                .with_zipf_exponent(0.8),
        );
        id += 1;
    }
    for i in 0..item_tables {
        tables.push(
            TableDescriptor::new(id, format!("item_{i}"), TableKind::Item, rows_per_table, 32)
                .with_pooling_factor(4)
                .with_zipf_exponent(1.0),
        );
        id += 1;
    }
    ModelConfig {
        name: "tiny".into(),
        tables,
        bottom_mlp: MlpConfig::new(vec![8, 16, 32]),
        top_mlp: MlpConfig::new(vec![64, 32, 1]),
        dense_features: 8,
        item_batch: 10,
        use_case: UseCase::Inference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m1_matches_table6_shape() {
        let m = m1();
        assert!(m.validate().is_ok());
        assert_eq!(m.user_tables().len(), 61);
        assert_eq!(m.item_tables().len(), 30);
        assert_eq!(m.item_batch, 50);
        let cap = m.embedding_capacity().as_gib_f64();
        assert!((cap - 143.0).abs() < 15.0, "capacity = {cap} GiB");
        // More than 2/3 of the capacity is user-side (paper §2.2).
        assert!(m.user_capacity().as_gib_f64() / cap > 0.6);
    }

    #[test]
    fn m2_matches_table6_shape() {
        let m = m2();
        assert!(m.validate().is_ok());
        assert_eq!(m.user_tables().len(), 450);
        assert_eq!(m.item_tables().len(), 280);
        assert_eq!(m.item_batch, 150);
        let user_cap = m.user_capacity().as_gib_f64();
        assert!(
            (user_cap - 100.0).abs() < 10.0,
            "user capacity = {user_cap}"
        );
        let cap = m.embedding_capacity().as_gib_f64();
        assert!((cap - 150.0).abs() < 15.0, "capacity = {cap}");
    }

    #[test]
    fn m3_is_terabyte_scale() {
        let m = m3();
        assert!(m.validate().is_ok());
        assert_eq!(m.user_tables().len(), 1800);
        assert_eq!(m.item_tables().len(), 900);
        assert_eq!(m.item_batch, 1000);
        assert!(m.embedding_capacity() > Bytes::from_gib(900));
    }

    #[test]
    fn figure1_model_has_734_tables() {
        let m = figure1_model();
        assert_eq!(m.tables.len(), 734);
        assert_eq!(m.user_tables().len(), 445);
        let cap = m.embedding_capacity().as_gib_f64();
        assert!((cap - 140.0).abs() < 15.0, "capacity = {cap}");
    }

    #[test]
    fn scaled_model_preserves_structure() {
        let m = m1();
        let s = scaled_model(&m, 100_000, 10.0);
        assert!(s.validate().is_ok());
        assert_eq!(s.tables.len(), m.tables.len());
        assert_eq!(s.item_batch, m.item_batch);
        assert!(s.embedding_capacity() < Bytes::from_gib(1));
        // Row sizes and pooling factors are unchanged.
        assert_eq!(s.tables[0].row_bytes(), m.tables[0].row_bytes());
        assert_eq!(s.tables[0].pooling_factor, m.tables[0].pooling_factor);
        assert!(s.bottom_mlp.widths[0] < m.bottom_mlp.widths[0]);
    }

    #[test]
    fn tiny_model_is_valid_and_small() {
        let m = tiny(3, 2, 500);
        assert!(m.validate().is_ok());
        assert_eq!(m.tables.len(), 5);
        assert!(m.embedding_capacity() < Bytes::from_mib(1));
    }

    #[test]
    fn item_tables_are_more_skewed_than_user_tables() {
        let m = m2();
        let avg = |kind: TableKind| {
            let ts = m.tables_of(kind);
            ts.iter().map(|t| t.zipf_exponent).sum::<f64>() / ts.len() as f64
        };
        assert!(avg(TableKind::Item) > avg(TableKind::User));
    }
}

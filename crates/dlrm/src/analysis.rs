//! Capacity, bandwidth and IOPS analysis (paper §2.2, Equations 1–2 and 8,
//! Figure 1).

use crate::config::ModelConfig;
use embedding::{TableDescriptor, TableId, TableKind};
use sdm_metrics::units::Bytes;

/// Capacity split between user-side and item-side embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacitySummary {
    /// Bytes held by user tables.
    pub user: Bytes,
    /// Bytes held by item tables.
    pub item: Bytes,
}

impl CapacitySummary {
    /// Total embedding capacity.
    pub fn total(&self) -> Bytes {
        self.user + self.item
    }

    /// Fraction of the capacity held by user tables (0 when empty).
    pub fn user_fraction(&self) -> f64 {
        let total = self.total().as_u64();
        if total == 0 {
            0.0
        } else {
            self.user.as_u64() as f64 / total as f64
        }
    }
}

/// Computes the user/item capacity split of a table set.
pub fn capacity_summary(tables: &[TableDescriptor]) -> CapacitySummary {
    let mut user = Bytes::ZERO;
    let mut item = Bytes::ZERO;
    for t in tables {
        match t.kind {
            TableKind::User => user += t.capacity(),
            TableKind::Item => item += t.capacity(),
        }
    }
    CapacitySummary { user, item }
}

/// One point of the Figure 1 scatter plot: a table's capacity against the
/// bytes it contributes to each query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableDemand {
    /// The table.
    pub table: TableId,
    /// Whether it is a user or item table.
    pub kind: TableKind,
    /// Table capacity (Figure 1 x-axis).
    pub capacity: Bytes,
    /// Bytes read from this table per query (Figure 1 y-axis).
    pub bytes_per_query: Bytes,
}

/// Computes the Figure 1 scatter data for a model.
pub fn table_demands(model: &ModelConfig) -> Vec<TableDemand> {
    model
        .tables
        .iter()
        .map(|t| TableDemand {
            table: t.id,
            kind: t.kind,
            capacity: t.capacity(),
            bytes_per_query: t.bytes_per_query(model.item_batch),
        })
        .collect()
}

/// Fraction of the model capacity that needs at most `bytes_per_query`
/// bandwidth — the "majority of capacity requires low BW" observation under
/// Figure 1.
pub fn capacity_fraction_below_demand(model: &ModelConfig, bytes_per_query: Bytes) -> f64 {
    let total = model.embedding_capacity().as_u64();
    if total == 0 {
        return 0.0;
    }
    let low: u64 = table_demands(model)
        .iter()
        .filter(|d| d.bytes_per_query <= bytes_per_query)
        .map(|d| d.capacity.as_u64())
        .sum();
    low as f64 / total as f64
}

/// Memory bandwidth demanded by the model's embeddings at a given QPS
/// (Equation 2): `QPS * (B_I * Σ_item p_i d_i + B_U * Σ_user p_j d_j)` with
/// `B_U = 1`.
pub fn bandwidth_requirement(model: &ModelConfig, qps: f64) -> f64 {
    let per_query: u64 = model
        .tables
        .iter()
        .map(|t| t.bytes_per_query(model.item_batch).as_u64())
        .sum();
    qps * per_query as f64
}

/// Bandwidth demanded by only the user-side (slow-memory candidate) tables.
pub fn user_bandwidth_requirement(model: &ModelConfig, qps: f64) -> f64 {
    let per_query: u64 = model
        .user_tables()
        .iter()
        .map(|t| t.bytes_per_query(model.item_batch).as_u64())
        .sum();
    qps * per_query as f64
}

/// IOPS demanded from slow memory when the given tables live there
/// (Equation 8): `QPS * Σ p_i` over the SM-resident tables, scaled by each
/// table's per-query batch.
pub fn iops_requirement<'a>(
    tables: impl IntoIterator<Item = &'a TableDescriptor>,
    qps: f64,
    item_batch: u32,
) -> f64 {
    let lookups: u64 = tables
        .into_iter()
        .map(|t| t.lookups_per_query(item_batch))
        .sum();
    qps * lookups as f64
}

/// IOPS demanded from SM after a fast-memory cache absorbs `hit_rate` of the
/// lookups (the sizing calculation behind Tables 8–10).
pub fn iops_after_cache(raw_iops: f64, hit_rate: f64) -> f64 {
    raw_iops * (1.0 - hit_rate.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_zoo;

    #[test]
    fn user_tables_dominate_capacity() {
        let m = model_zoo::m1();
        let s = capacity_summary(&m.tables);
        assert!(s.user_fraction() > 0.6);
        assert_eq!(s.total(), m.embedding_capacity());
        assert_eq!(capacity_summary(&[]).user_fraction(), 0.0);
    }

    #[test]
    fn figure1_majority_of_capacity_needs_low_bandwidth() {
        // Paper Figure 1: most of the capacity (user tables) contributes few
        // bytes per query compared to the worst (item) tables.
        let m = model_zoo::figure1_model();
        let demands = table_demands(&m);
        assert_eq!(demands.len(), m.tables.len());
        let max_demand = demands.iter().map(|d| d.bytes_per_query).max().unwrap();
        let threshold = Bytes(max_demand.as_u64() / 10);
        let low_bw_capacity = capacity_fraction_below_demand(&m, threshold);
        assert!(
            low_bw_capacity > 0.5,
            "only {low_bw_capacity} of capacity is low-BW"
        );
    }

    #[test]
    fn item_tables_need_more_bytes_per_query_than_user_tables() {
        let m = model_zoo::m2();
        let demands = table_demands(&m);
        let avg = |kind: TableKind| {
            let ds: Vec<&TableDemand> = demands.iter().filter(|d| d.kind == kind).collect();
            ds.iter().map(|d| d.bytes_per_query.as_u64()).sum::<u64>() as f64 / ds.len() as f64
        };
        assert!(avg(TableKind::Item) > 3.0 * avg(TableKind::User));
    }

    #[test]
    fn bandwidth_scales_linearly_with_qps() {
        let m = model_zoo::m1();
        let at_100 = bandwidth_requirement(&m, 100.0);
        let at_200 = bandwidth_requirement(&m, 200.0);
        assert!((at_200 / at_100 - 2.0).abs() < 1e-9);
        assert!(user_bandwidth_requirement(&m, 100.0) < at_100);
    }

    #[test]
    fn m1_iops_matches_paper_sizing() {
        // Paper §5.1: 120 QPS × ~50 user tables × avg PF 42 ≈ 246K IOPS and
        // ≥96 % hit rate leaves <10K IOPS in steady state.
        let m = model_zoo::m1();
        let user_tables = m.user_tables();
        let raw = iops_requirement(user_tables.iter().copied(), 120.0, m.item_batch);
        assert!(raw > 150_000.0 && raw < 450_000.0, "raw = {raw}");
        let steady = iops_after_cache(raw, 0.96);
        assert!(steady < 0.05 * raw);
        assert_eq!(iops_after_cache(raw, 2.0), 0.0);
    }

    #[test]
    fn m2_iops_matches_paper_sizing() {
        // Paper §5.2: 450 QPS × 450 tables × avg PF 25 ≈ 4.8M IOPS raw,
        // ~480K after a 90% hit rate.
        let m = model_zoo::m2();
        let raw = iops_requirement(m.user_tables().iter().copied(), 450.0, m.item_batch);
        assert!(raw > 3.0e6 && raw < 7.0e6, "raw = {raw}");
        let after = iops_after_cache(raw, 0.90);
        assert!(after < 0.11 * raw);
    }
}

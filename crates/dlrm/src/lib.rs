//! Deep Learning Recommendation Model (DLRM) inference engine.
//!
//! A DLRM (paper §2.1, Figure 2) combines:
//!
//! * a **bottom MLP** re-projecting continuous features,
//! * **embedding tables** turning categorical features into dense vectors
//!   (read with a pooling factor and summed),
//! * a **top MLP** over the interaction of all features producing the
//!   ranking score.
//!
//! At inference time one query carries one user and a batch of items
//! (Table 2): user embeddings are read once, item embeddings once per item,
//! and the user-side results are broadcast to all items for the top MLP —
//! which is why user embeddings tolerate slower memory as long as they finish
//! before the item side does (Equation 3).
//!
//! This crate provides the model descriptions of the paper's three target
//! models (Table 6) in [`model_zoo`], a small dense [`Mlp`], the
//! [`EmbeddingBackend`] abstraction that the SDM memory manager implements,
//! the [`InferenceEngine`] that executes queries with or without inter-op
//! parallelism (§A.2), and the capacity/bandwidth analysis of §2.2
//! ([`analysis`]).
//!
//! # Example
//!
//! ```
//! use dlrm::{model_zoo, analysis};
//!
//! let m1 = model_zoo::m1();
//! let summary = analysis::capacity_summary(&m1.tables);
//! // User embeddings dominate the model capacity (paper §2.2).
//! assert!(summary.user_fraction() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
mod backend;
mod config;
mod engine;
mod error;
mod mlp;
pub mod model_zoo;

pub use backend::{DramBackend, EmbeddingBackend, LookupTicket, OverlappedBackend};
pub use config::{ComputeModel, MlpConfig, ModelConfig, UseCase};
pub use engine::{
    ExecutionMode, InferenceEngine, LatencyBreakdown, PendingQuery, PoolingBuffers, QueryResult,
};
pub use error::DlrmError;
pub use mlp::{DenseLayer, Mlp};

//! Error type for the DLRM inference engine.

use std::error::Error;
use std::fmt;

/// Errors returned by model construction and query execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum DlrmError {
    /// A model configuration was inconsistent.
    InvalidModel {
        /// Explanation of the problem.
        reason: String,
    },
    /// A query referenced a table the model does not contain.
    UnknownTable {
        /// The missing table id.
        table: u32,
    },
    /// A vector had the wrong dimensionality for the layer it was fed to.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A split-phase lookup ticket was finished twice or never begun.
    StaleTicket {
        /// The offending ticket value.
        ticket: u64,
    },
    /// The embedding backend failed.
    Backend {
        /// The underlying error.
        source: Box<dyn Error + Send + Sync + 'static>,
    },
}

impl fmt::Display for DlrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlrmError::InvalidModel { reason } => write!(f, "invalid model: {reason}"),
            DlrmError::UnknownTable { table } => {
                write!(f, "query references unknown table {table}")
            }
            DlrmError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            DlrmError::StaleTicket { ticket } => {
                write!(f, "lookup ticket {ticket} is not pending")
            }
            DlrmError::Backend { source } => write!(f, "embedding backend error: {source}"),
        }
    }
}

impl Error for DlrmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DlrmError::Backend { source } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl DlrmError {
    /// Wraps a backend error.
    pub fn backend<E: Error + Send + Sync + 'static>(e: E) -> Self {
        DlrmError::Backend {
            source: Box::new(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DlrmError::InvalidModel {
            reason: "no tables".into(),
        };
        assert!(e.to_string().contains("no tables"));
        assert!(e.source().is_none());

        let io = std::io::Error::other("boom");
        let wrapped = DlrmError::backend(io);
        assert!(wrapped.to_string().contains("boom"));
        assert!(wrapped.source().is_some());

        assert!(DlrmError::UnknownTable { table: 4 }
            .to_string()
            .contains("4"));
        assert!(DlrmError::DimensionMismatch {
            expected: 8,
            actual: 4
        }
        .to_string()
        .contains("8"));
    }
}

//! Small dense MLP used for the bottom and top networks.

use crate::config::MlpConfig;
use crate::error::DlrmError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fully connected layer with ReLU activation.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    weights: Vec<f32>, // row-major, out x in
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl DenseLayer {
    /// Creates a layer with deterministic pseudo-random weights.
    pub fn generate(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / (in_dim.max(1) as f32)).sqrt();
        DenseLayer {
            weights: (0..in_dim * out_dim)
                .map(|_| rng.gen_range(-scale..scale))
                .collect(),
            bias: (0..out_dim).map(|_| rng.gen_range(-0.01..0.01)).collect(),
            in_dim,
            out_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass with ReLU.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::DimensionMismatch`] for a wrong input length.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, DlrmError> {
        let mut out = Vec::with_capacity(self.out_dim);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    /// Forward pass writing into a reusable output vector (cleared and
    /// refilled; capacity is reused across calls, so a warm serving loop
    /// allocates nothing here). Arithmetic is identical to
    /// [`DenseLayer::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::DimensionMismatch`] for a wrong input length.
    pub fn forward_into(&self, input: &[f32], out: &mut Vec<f32>) -> Result<(), DlrmError> {
        if input.len() != self.in_dim {
            return Err(DlrmError::DimensionMismatch {
                expected: self.in_dim,
                actual: input.len(),
            });
        }
        out.clear();
        out.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let mut acc = self.bias[o];
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            out.push(acc.max(0.0));
        }
        Ok(())
    }
}

/// A stack of dense layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
    config: MlpConfig,
}

impl Mlp {
    /// Materialises an MLP from its configuration with deterministic
    /// weights.
    pub fn generate(config: &MlpConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = config
            .widths
            .windows(2)
            .map(|w| DenseLayer::generate(w[0], w[1], &mut rng))
            .collect();
        Mlp {
            layers,
            config: config.clone(),
        }
    }

    /// The configuration this MLP was built from.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Number of dense layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input dimension of the first layer (0 for an empty stack).
    pub fn input_dim(&self) -> usize {
        self.layers.first().map(|l| l.in_dim()).unwrap_or(0)
    }

    /// Output dimension of the last layer (0 for an empty stack).
    pub fn output_dim(&self) -> usize {
        self.layers.last().map(|l| l.out_dim()).unwrap_or(0)
    }

    /// Forward pass through every layer.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::DimensionMismatch`] when the input does not
    /// match the first layer.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, DlrmError> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.forward_into(input, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Forward pass through every layer using two reusable ping-pong
    /// buffers; the result lands in `out`. Both buffers are cleared and
    /// refilled, so a serving loop that reuses them allocates nothing once
    /// their capacity has grown to the widest layer.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::DimensionMismatch`] when the input does not
    /// match the first layer.
    pub fn forward_into(
        &self,
        input: &[f32],
        out: &mut Vec<f32>,
        scratch: &mut Vec<f32>,
    ) -> Result<(), DlrmError> {
        out.clear();
        out.extend_from_slice(input);
        for layer in &self.layers {
            layer.forward_into(out, scratch)?;
            std::mem::swap(out, scratch);
        }
        Ok(())
    }

    /// FLOPs of one forward pass.
    pub fn flops(&self) -> u64 {
        self.config.flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_produces_expected_shapes() {
        let mlp = Mlp::generate(&MlpConfig::new(vec![4, 8, 3]), 1);
        assert_eq!(mlp.num_layers(), 2);
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 3);
        let out = mlp.forward(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(out.len(), 3);
        // ReLU output is non-negative.
        assert!(out.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let mlp = Mlp::generate(&MlpConfig::new(vec![4, 2]), 1);
        assert!(matches!(
            mlp.forward(&[1.0, 2.0]),
            Err(DlrmError::DimensionMismatch {
                expected: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Mlp::generate(&MlpConfig::new(vec![6, 6, 1]), 9);
        let b = Mlp::generate(&MlpConfig::new(vec![6, 6, 1]), 9);
        let c = Mlp::generate(&MlpConfig::new(vec![6, 6, 1]), 10);
        let x = [0.5f32; 6];
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
        // Compare the weights themselves rather than a forward pass: a
        // single ReLU output can saturate to 0.0 under both seeds, which
        // would mask genuinely different models.
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn flops_come_from_config() {
        let cfg = MlpConfig::new(vec![10, 20, 5]);
        let mlp = Mlp::generate(&cfg, 0);
        assert_eq!(mlp.flops(), cfg.flops());
        assert_eq!(mlp.config(), &cfg);
    }

    #[test]
    fn zero_input_propagates_to_bias_relu() {
        let mlp = Mlp::generate(&MlpConfig::new(vec![3, 2]), 4);
        let out = mlp.forward(&[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(out.len(), 2);
    }
}

//! Query execution: bottom MLP, embedding operators, interaction, top MLP.

use crate::backend::{EmbeddingBackend, LookupTicket, OverlappedBackend};
use crate::config::{ComputeModel, ModelConfig};
use crate::error::DlrmError;
use crate::mlp::Mlp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdm_metrics::{SimDuration, SimInstant};
use std::collections::HashMap;
use workload::Query;

/// Whether embedding operators run one after another or overlap.
///
/// Paper §A.2: async IO alone is not enough — the embedding *operators*
/// themselves must execute asynchronously so user-side SM reads overlap with
/// item-side work. Inter-op parallelism cut M1's latency (and therefore
/// raised QPS at fixed latency) by about 20 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionMode {
    /// Operators run back to back (no overlap).
    Sequential,
    /// User-side and item-side embedding phases overlap; the embedding phase
    /// takes the maximum of the two (Equation 3's budget).
    #[default]
    InterOpParallel,
}

/// Per-phase latency of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// Bottom MLP over the continuous features.
    pub bottom_mlp: SimDuration,
    /// All user-side embedding operators.
    pub user_embeddings: SimDuration,
    /// All item-side embedding operators.
    pub item_embeddings: SimDuration,
    /// Top MLP over the interactions (whole item batch).
    pub top_mlp: SimDuration,
    /// End-to-end query latency under the chosen execution mode.
    pub total: SimDuration,
}

/// The outcome of executing one query.
///
/// Reusable: [`InferenceEngine::execute_into`] clears and refills an
/// existing result, so the serving loop can recycle one `QueryResult`
/// (and its `scores` capacity) across queries instead of allocating.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// One ranking score per item in the batch.
    pub scores: Vec<f32>,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
}

/// One pooled embedding operator's output, recorded as a range into the
/// flat pooled-vector arena of [`PoolingBuffers`].
#[derive(Debug, Clone, Copy)]
struct PooledOp {
    table: u32,
    start: usize,
    dim: usize,
}

/// Reusable scratch for query execution — the heart of the zero-copy hot
/// path.
///
/// Owned flat buffers only — no shared handles — so the scratch is `Send`
/// and each shard of a multi-stream serving host can carry its own across
/// worker threads (statically asserted by `engine_and_scratch_are_send`).
///
/// The seed `execute` allocated per query: the dense-feature vector, one
/// `Vec<f32>` per MLP layer, one pooled `Vec<f32>` per embedding operator
/// (plus a `Vec<Vec<…>>` to group them per item), and the interaction
/// buffer. `PoolingBuffers` replaces all of that with flat vectors whose
/// capacity is reused across queries: pooled vectors live back to back in
/// one `f32` arena addressed by `(start, dim)` ranges, and the MLPs
/// ping-pong between two scratch buffers. After the first few queries the
/// steady state performs zero heap allocations per query.
#[derive(Debug, Default)]
pub struct PoolingBuffers {
    /// Dense (continuous) feature staging, resized to the bottom MLP input.
    dense: Vec<f32>,
    /// Bottom-MLP output, broadcast into every item's interaction.
    bottom_out: Vec<f32>,
    /// MLP working buffer (result side).
    mlp_out: Vec<f32>,
    /// MLP working buffer (ping-pong side).
    mlp_scratch: Vec<f32>,
    /// Flat arena of pooled embedding vectors for the current query.
    pooled: Vec<f32>,
    /// User-side operators: ranges into `pooled`, in request order.
    user_ops: Vec<PooledOp>,
    /// Item-side operators: ranges into `pooled` plus the owning item slot,
    /// in request order (item slots are contiguous).
    item_ops: Vec<(PooledOp, usize)>,
    /// Interaction buffer, rebuilt per ranked item.
    interaction: Vec<f32>,
}

impl PoolingBuffers {
    /// Creates empty buffers (capacity grows on first use).
    pub fn new() -> Self {
        PoolingBuffers::default()
    }

    fn reset(&mut self) {
        self.pooled.clear();
        self.user_ops.clear();
        self.item_ops.clear();
    }
}

/// A query whose embedding ops have been *begun* against an
/// [`OverlappedBackend`] but whose pooled vectors are not yet final.
///
/// Reusable like [`PoolingBuffers`]: the relaxed batch executor keeps one
/// per in-flight slot and recycles it, so a warmed pipeline allocates
/// nothing per query. Always paired with the `PoolingBuffers` the query was
/// begun with — the tickets index into that scratch's op lists.
#[derive(Debug, Default)]
pub struct PendingQuery {
    /// One ticket per user-side op, in `PoolingBuffers::user_ops` order.
    user_tickets: Vec<LookupTicket>,
    /// One ticket per item-side op, in `PoolingBuffers::item_ops` order.
    item_tickets: Vec<LookupTicket>,
    bottom_time: SimDuration,
    begun_at: SimInstant,
}

impl PendingQuery {
    /// Creates an empty pending slot (capacity grows on first use).
    pub fn new() -> Self {
        PendingQuery::default()
    }

    fn reset(&mut self) {
        self.user_tickets.clear();
        self.item_tickets.clear();
    }

    /// Simulated cost of the work done at begin time (the bottom MLP) —
    /// what a pipelined issuer spends before it can begin the next query.
    pub fn issue_cost(&self) -> SimDuration {
        self.bottom_time
    }

    /// Virtual instant the query was begun at.
    pub fn begun_at(&self) -> SimInstant {
        self.begun_at
    }
}

/// Executes DLRM queries against an [`EmbeddingBackend`].
///
/// The engine owns its model, MLP weights and a plain RNG seed — nothing
/// reference-counted or interior-mutable — so it is `Send` and can be moved
/// onto (or borrowed by) a shard worker thread. Multi-stream serving
/// depends on this bound; `engine_and_scratch_are_send` pins it down so a
/// future field can't silently regress it.
#[derive(Debug)]
pub struct InferenceEngine {
    model: ModelConfig,
    bottom: Mlp,
    top: Mlp,
    compute: ComputeModel,
    mode: ExecutionMode,
    dense_rng_seed: u64,
    /// Embedding dimension per table, so output ranges can be sized without
    /// consulting the backend.
    table_dims: HashMap<u32, usize>,
    /// Item-side table count, cached so the hot path never materialises the
    /// `Vec<&TableDescriptor>` that `ModelConfig::item_tables` collects.
    item_table_count: usize,
}

impl InferenceEngine {
    /// Builds the engine (materialising its MLPs) for a model.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidModel`] when the model fails validation.
    pub fn new(model: ModelConfig, compute: ComputeModel, seed: u64) -> Result<Self, DlrmError> {
        model.validate()?;
        let bottom = Mlp::generate(&model.bottom_mlp, seed ^ 0xb077);
        let top = Mlp::generate(&model.top_mlp, seed ^ 0x70b0);
        let table_dims = model.tables.iter().map(|t| (t.id, t.dim)).collect();
        let item_table_count = model.item_tables().len();
        Ok(InferenceEngine {
            model,
            bottom,
            top,
            compute,
            mode: ExecutionMode::default(),
            dense_rng_seed: seed,
            table_dims,
            item_table_count,
        })
    }

    /// The model being served.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Current execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Switches between sequential and inter-op-parallel execution.
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        self.mode = mode;
    }

    /// The compute model used to convert FLOPs to time.
    pub fn compute(&self) -> &ComputeModel {
        &self.compute
    }

    /// Deterministic continuous-feature vector for a query, written into a
    /// reusable buffer.
    fn dense_features_into(&self, query: &Query, out: &mut Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(self.dense_rng_seed ^ query.user_id);
        out.clear();
        for _ in 0..self.model.dense_features {
            out.push(rng.gen_range(-1.0f32..1.0f32));
        }
    }

    /// Folds a pooled embedding vector into the fixed-width interaction
    /// buffer. The paper's models concatenate; since this reproduction cares
    /// about systems behaviour rather than model accuracy, folding keeps the
    /// top-MLP input width independent of the (configurable) table count.
    fn fold_into(buffer: &mut [f32], vector: &[f32], salt: usize) {
        if buffer.is_empty() {
            return;
        }
        for (i, v) in vector.iter().enumerate() {
            let pos = (i + salt * 13) % buffer.len();
            buffer[pos] += *v;
        }
    }

    /// Reserves a zeroed `dim`-wide range in the pooled arena and runs the
    /// backend's into-lookup against it.
    fn pooled_op<B: EmbeddingBackend + ?Sized>(
        &self,
        backend: &mut B,
        table: u32,
        indices: &[u64],
        now: SimInstant,
        pooled: &mut Vec<f32>,
    ) -> Result<(PooledOp, SimDuration), DlrmError> {
        let dim = *self
            .table_dims
            .get(&table)
            .ok_or(DlrmError::UnknownTable { table })?;
        let start = pooled.len();
        pooled.resize(start + dim, 0.0);
        let took = backend.pooled_lookup_into(table, indices, now, &mut pooled[start..])?;
        Ok((PooledOp { table, start, dim }, took))
    }

    /// Executes one query against the backend.
    ///
    /// Convenience form that allocates fresh scratch; the serving loop uses
    /// [`InferenceEngine::execute_into`] with persistent buffers instead.
    ///
    /// # Errors
    ///
    /// Propagates backend failures and dimension errors.
    pub fn execute<B: EmbeddingBackend + ?Sized>(
        &self,
        query: &Query,
        backend: &mut B,
        now: SimInstant,
    ) -> Result<QueryResult, DlrmError> {
        let mut buffers = PoolingBuffers::new();
        let mut result = QueryResult::default();
        self.execute_into(query, backend, now, &mut buffers, &mut result)?;
        Ok(result)
    }

    /// Executes one query against the backend using caller-provided scratch
    /// buffers, writing scores and latency into `result` (cleared first).
    ///
    /// With warm `buffers`/`result` capacity and a warmed backend cache this
    /// path performs zero heap allocations per query: pooled vectors are
    /// written into a flat reused arena, the MLPs ping-pong between two
    /// reused buffers, and the backend accumulates rows straight into the
    /// caller's ranges.
    ///
    /// # Errors
    ///
    /// Propagates backend failures and dimension errors.
    pub fn execute_into<B: EmbeddingBackend + ?Sized>(
        &self,
        query: &Query,
        backend: &mut B,
        now: SimInstant,
        buffers: &mut PoolingBuffers,
        result: &mut QueryResult,
    ) -> Result<(), DlrmError> {
        buffers.reset();

        // Bottom MLP on the continuous features.
        self.dense_features_into(query, &mut buffers.dense);
        buffers.dense.resize(self.bottom.input_dim().max(1), 0.0);
        self.bottom.forward_into(
            &buffers.dense,
            &mut buffers.bottom_out,
            &mut buffers.mlp_scratch,
        )?;
        let bottom_time = self.compute.time_for_flops(self.bottom.flops());

        // User-side embedding operators.
        let mut user_time = SimDuration::ZERO;
        for req in &query.user_requests {
            let (op, took) =
                self.pooled_op(backend, req.table, &req.indices, now, &mut buffers.pooled)?;
            user_time += took + self.compute.operator_overhead;
            buffers.user_ops.push(op);
        }

        // Item-side embedding operators, grouped per ranked item. The
        // operators arrive in item order, so the (op, item slot) list stays
        // contiguous per item — no per-item Vec of Vecs.
        let item_tables = self.item_table_count.max(1);
        let item_slots = query.item_batch.max(1) as usize;
        let mut item_time = SimDuration::ZERO;
        for (pos, req) in query.item_requests.iter().enumerate() {
            let (op, took) =
                self.pooled_op(backend, req.table, &req.indices, now, &mut buffers.pooled)?;
            item_time += took + self.compute.operator_overhead;
            let item_index = (pos / item_tables).min(item_slots - 1);
            buffers.item_ops.push((op, item_index));
        }

        // Interaction + top MLP per item (user embeddings broadcast).
        let top_time = self.rank_items(query, buffers, result)?;

        let embedding_time = match self.mode {
            ExecutionMode::Sequential => user_time + item_time,
            ExecutionMode::InterOpParallel => user_time.max(item_time),
        };
        let total = bottom_time + embedding_time + top_time;
        result.latency = LatencyBreakdown {
            bottom_mlp: bottom_time,
            user_embeddings: user_time,
            item_embeddings: item_time,
            top_mlp: top_time,
            total,
        };
        Ok(())
    }

    /// The interaction + top-MLP half of query execution, shared by the
    /// exact ([`InferenceEngine::execute_into`]) and split-phase
    /// ([`InferenceEngine::finish_query_into`]) paths. Expects every pooled
    /// vector in `buffers.pooled` to be final; writes one score per ranked
    /// item and returns the top-MLP time.
    fn rank_items(
        &self,
        query: &Query,
        buffers: &mut PoolingBuffers,
        result: &mut QueryResult,
    ) -> Result<SimDuration, DlrmError> {
        let item_slots = query.item_batch.max(1) as usize;
        let top_in_dim = self.top.input_dim().max(1);
        result.scores.clear();
        result.scores.reserve(item_slots);
        let mut item_cursor = 0usize;
        for item in 0..item_slots {
            buffers.interaction.clear();
            buffers.interaction.resize(top_in_dim, 0.0);
            Self::fold_into(&mut buffers.interaction, &buffers.bottom_out, 0);
            for (salt, op) in buffers.user_ops.iter().enumerate() {
                let v = &buffers.pooled[op.start..op.start + op.dim];
                Self::fold_into(&mut buffers.interaction, v, salt + 1 + op.table as usize);
            }
            // This item's contiguous run of operators, salted by their
            // position within the item (exactly the seed's per-item order).
            let mut salt = 0usize;
            while item_cursor < buffers.item_ops.len() && buffers.item_ops[item_cursor].1 == item {
                let op = buffers.item_ops[item_cursor].0;
                let v = &buffers.pooled[op.start..op.start + op.dim];
                Self::fold_into(&mut buffers.interaction, v, salt + 101 + op.table as usize);
                salt += 1;
                item_cursor += 1;
            }
            self.top.forward_into(
                &buffers.interaction,
                &mut buffers.mlp_out,
                &mut buffers.mlp_scratch,
            )?;
            result
                .scores
                .push(buffers.mlp_out.first().copied().unwrap_or(0.0));
        }
        Ok(self
            .compute
            .time_for_flops(self.top.flops() * query.item_batch.max(1) as u64))
    }

    /// Reserves a zeroed `dim`-wide range in the pooled arena for a table's
    /// op without running the lookup (split-phase issue side).
    fn reserve_op(&self, table: u32, pooled: &mut Vec<f32>) -> Result<PooledOp, DlrmError> {
        let dim = *self
            .table_dims
            .get(&table)
            .ok_or(DlrmError::UnknownTable { table })?;
        let start = pooled.len();
        pooled.resize(start + dim, 0.0);
        Ok(PooledOp { table, start, dim })
    }

    /// Begins one query against a split-phase backend: runs the bottom MLP
    /// and *issues* every embedding op at virtual time `now` (hits resolve
    /// into backend scratch, misses go to the device queues) without waiting
    /// for the IO. The query completes later via
    /// [`InferenceEngine::finish_query_into`] with the same
    /// `buffers`/`pending` pair.
    ///
    /// This is the issue half of the relaxed batch executor: a pipeline can
    /// begin up to its in-flight window of queries before finishing the
    /// oldest, which is what keeps many queries' SM reads in the device
    /// queues at once (paper §3.2).
    ///
    /// # Errors
    ///
    /// Propagates backend failures and dimension errors; on error the
    /// `pending` slot is left unfinishable and must be reset by beginning
    /// another query with it.
    pub fn begin_query_into<B: OverlappedBackend + ?Sized>(
        &self,
        query: &Query,
        backend: &mut B,
        now: SimInstant,
        buffers: &mut PoolingBuffers,
        pending: &mut PendingQuery,
    ) -> Result<(), DlrmError> {
        buffers.reset();
        pending.reset();
        pending.begun_at = now;

        self.dense_features_into(query, &mut buffers.dense);
        buffers.dense.resize(self.bottom.input_dim().max(1), 0.0);
        self.bottom.forward_into(
            &buffers.dense,
            &mut buffers.bottom_out,
            &mut buffers.mlp_scratch,
        )?;
        pending.bottom_time = self.compute.time_for_flops(self.bottom.flops());

        for req in &query.user_requests {
            let op = self.reserve_op(req.table, &mut buffers.pooled)?;
            let ticket = backend.lookup_begin(req.table, &req.indices, now)?;
            buffers.user_ops.push(op);
            pending.user_tickets.push(ticket);
        }
        let item_tables = self.item_table_count.max(1);
        let item_slots = query.item_batch.max(1) as usize;
        for (pos, req) in query.item_requests.iter().enumerate() {
            let op = self.reserve_op(req.table, &mut buffers.pooled)?;
            let ticket = backend.lookup_begin(req.table, &req.indices, now)?;
            let item_index = (pos / item_tables).min(item_slots - 1);
            buffers.item_ops.push((op, item_index));
            pending.item_tickets.push(ticket);
        }
        Ok(())
    }

    /// Completes a begun query: resolves every op's ticket (waiting on its
    /// IO, folding the final pooled vector into the arena), then runs the
    /// interaction + top MLP exactly like [`InferenceEngine::execute_into`].
    ///
    /// # Errors
    ///
    /// Propagates backend failures and dimension errors.
    pub fn finish_query_into<B: OverlappedBackend + ?Sized>(
        &self,
        query: &Query,
        backend: &mut B,
        buffers: &mut PoolingBuffers,
        pending: &mut PendingQuery,
        result: &mut QueryResult,
    ) -> Result<(), DlrmError> {
        let mut user_time = SimDuration::ZERO;
        for (op, ticket) in buffers.user_ops.iter().zip(&pending.user_tickets) {
            let out = &mut buffers.pooled[op.start..op.start + op.dim];
            user_time += backend.lookup_finish(*ticket, out)? + self.compute.operator_overhead;
        }
        let mut item_time = SimDuration::ZERO;
        for ((op, _), ticket) in buffers.item_ops.iter().zip(&pending.item_tickets) {
            let out = &mut buffers.pooled[op.start..op.start + op.dim];
            item_time += backend.lookup_finish(*ticket, out)? + self.compute.operator_overhead;
        }
        let top_time = self.rank_items(query, buffers, result)?;
        let embedding_time = match self.mode {
            ExecutionMode::Sequential => user_time + item_time,
            ExecutionMode::InterOpParallel => user_time.max(item_time),
        };
        let total = pending.bottom_time + embedding_time + top_time;
        result.latency = LatencyBreakdown {
            bottom_mlp: pending.bottom_time,
            user_embeddings: user_time,
            item_embeddings: item_time,
            top_mlp: top_time,
            total,
        };
        // Tickets are consumed; the slot can be recycled for another query
        // (begun_at / issue_cost stay readable for the caller's pipeline
        // bookkeeping until the next begin).
        pending.reset();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DramBackend;
    use crate::model_zoo;
    use workload::{QueryGenerator, WorkloadConfig};

    fn setup() -> (InferenceEngine, DramBackend, Vec<Query>) {
        let model = model_zoo::tiny(3, 2, 300);
        let engine = InferenceEngine::new(model.clone(), ComputeModel::default(), 1).unwrap();
        let backend = DramBackend::new(&model, 1);
        let cfg = WorkloadConfig {
            item_batch: model.item_batch,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&model.tables, cfg, 2).unwrap();
        let queries = gen.generate(5);
        (engine, backend, queries)
    }

    #[test]
    fn execution_produces_one_score_per_item() {
        let (engine, mut backend, queries) = setup();
        let result = engine
            .execute(&queries[0], &mut backend, SimInstant::EPOCH)
            .unwrap();
        assert_eq!(result.scores.len(), 10);
        assert!(result.latency.total > SimDuration::ZERO);
        assert!(result.latency.user_embeddings > SimDuration::ZERO);
        assert!(result.latency.item_embeddings > SimDuration::ZERO);
    }

    #[test]
    fn results_are_deterministic() {
        let (engine, mut backend, queries) = setup();
        let a = engine
            .execute(&queries[1], &mut backend, SimInstant::EPOCH)
            .unwrap();
        let b = engine
            .execute(&queries[1], &mut backend, SimInstant::EPOCH)
            .unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.latency.total, b.latency.total);
    }

    #[test]
    fn interop_parallelism_reduces_latency() {
        let (mut engine, mut backend, queries) = setup();
        engine.set_mode(ExecutionMode::Sequential);
        let seq = engine
            .execute(&queries[0], &mut backend, SimInstant::EPOCH)
            .unwrap();
        engine.set_mode(ExecutionMode::InterOpParallel);
        let par = engine
            .execute(&queries[0], &mut backend, SimInstant::EPOCH)
            .unwrap();
        assert!(par.latency.total < seq.latency.total);
        // Scores do not depend on the execution mode.
        assert_eq!(par.scores, seq.scores);
        assert_eq!(engine.mode(), ExecutionMode::InterOpParallel);
    }

    #[test]
    fn execute_into_with_reused_buffers_matches_execute() {
        let (engine, mut backend, queries) = setup();
        let mut buffers = PoolingBuffers::new();
        let mut result = QueryResult::default();
        for q in &queries {
            let fresh = engine.execute(q, &mut backend, SimInstant::EPOCH).unwrap();
            engine
                .execute_into(
                    q,
                    &mut backend,
                    SimInstant::EPOCH,
                    &mut buffers,
                    &mut result,
                )
                .unwrap();
            assert_eq!(fresh.scores, result.scores);
            assert_eq!(fresh.latency, result.latency);
        }
    }

    #[test]
    fn split_phase_execution_matches_execute() {
        let (engine, mut backend, queries) = setup();
        let mut buffers = PoolingBuffers::new();
        let mut pending = PendingQuery::new();
        let mut result = QueryResult::default();
        for q in &queries {
            let fresh = engine.execute(q, &mut backend, SimInstant::EPOCH).unwrap();
            engine
                .begin_query_into(
                    q,
                    &mut backend,
                    SimInstant::EPOCH,
                    &mut buffers,
                    &mut pending,
                )
                .unwrap();
            assert_eq!(pending.begun_at(), SimInstant::EPOCH);
            assert!(pending.issue_cost() > SimDuration::ZERO);
            engine
                .finish_query_into(q, &mut backend, &mut buffers, &mut pending, &mut result)
                .unwrap();
            assert_eq!(fresh.scores, result.scores);
            assert_eq!(fresh.latency, result.latency);
        }
    }

    #[test]
    fn finishing_a_ticket_twice_is_stale() {
        let model = model_zoo::tiny(1, 0, 100);
        let mut backend = DramBackend::new(&model, 1);
        use crate::backend::OverlappedBackend;
        let ticket = backend.lookup_begin(0, &[1, 2], SimInstant::EPOCH).unwrap();
        // A mis-sized buffer is a retryable error: the slot stays pending.
        let mut short = vec![0.0f32; 8];
        assert!(matches!(
            backend.lookup_finish(ticket, &mut short),
            Err(crate::DlrmError::DimensionMismatch { .. })
        ));
        let mut out = vec![0.0f32; 32];
        backend.lookup_finish(ticket, &mut out).unwrap();
        assert!(matches!(
            backend.lookup_finish(ticket, &mut out),
            Err(crate::DlrmError::StaleTicket { .. })
        ));
        // A retained ticket stays stale after its slot is re-acquired by a
        // later begin (generation mismatch) — it must not consume the new
        // occupant's result, which remains finishable.
        let reused = backend.lookup_begin(0, &[5, 6], SimInstant::EPOCH).unwrap();
        assert_ne!(ticket, reused);
        assert!(matches!(
            backend.lookup_finish(ticket, &mut out),
            Err(crate::DlrmError::StaleTicket { .. })
        ));
        backend.lookup_finish(reused, &mut out).unwrap();

        // Abandoned tickets can be reclaimed wholesale, and stay stale even
        // once their slot is re-acquired after the reset.
        let orphan = backend.lookup_begin(0, &[3, 4], SimInstant::EPOCH).unwrap();
        backend.reset_pending();
        assert!(matches!(
            backend.lookup_finish(orphan, &mut out),
            Err(crate::DlrmError::StaleTicket { .. })
        ));
        let fresh = backend.lookup_begin(0, &[7, 8], SimInstant::EPOCH).unwrap();
        assert!(matches!(
            backend.lookup_finish(orphan, &mut out),
            Err(crate::DlrmError::StaleTicket { .. })
        ));
        backend.lookup_finish(fresh, &mut out).unwrap();
    }

    #[test]
    fn invalid_model_is_rejected() {
        let mut model = model_zoo::tiny(1, 1, 100);
        model.tables.clear();
        assert!(InferenceEngine::new(model, ComputeModel::default(), 0).is_err());
    }

    #[test]
    fn latency_breakdown_sums_to_total_in_sequential_mode() {
        let (mut engine, mut backend, queries) = setup();
        engine.set_mode(ExecutionMode::Sequential);
        let r = engine
            .execute(&queries[2], &mut backend, SimInstant::EPOCH)
            .unwrap();
        let sum = r.latency.bottom_mlp
            + r.latency.user_embeddings
            + r.latency.item_embeddings
            + r.latency.top_mlp;
        assert_eq!(sum, r.latency.total);
    }

    #[test]
    fn engine_and_scratch_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<InferenceEngine>();
        assert_send::<PoolingBuffers>();
        assert_send::<QueryResult>();
        assert_send::<LatencyBreakdown>();
    }

    #[test]
    fn engine_exposes_model_and_compute() {
        let (engine, _, _) = setup();
        assert_eq!(engine.model().name, "tiny");
        assert!(engine.compute().flops_per_second > 0.0);
    }
}

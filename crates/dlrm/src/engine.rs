//! Query execution: bottom MLP, embedding operators, interaction, top MLP.

use crate::backend::EmbeddingBackend;
use crate::config::{ComputeModel, ModelConfig};
use crate::error::DlrmError;
use crate::mlp::Mlp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdm_metrics::{SimDuration, SimInstant};
use workload::Query;

/// Whether embedding operators run one after another or overlap.
///
/// Paper §A.2: async IO alone is not enough — the embedding *operators*
/// themselves must execute asynchronously so user-side SM reads overlap with
/// item-side work. Inter-op parallelism cut M1's latency (and therefore
/// raised QPS at fixed latency) by about 20 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionMode {
    /// Operators run back to back (no overlap).
    Sequential,
    /// User-side and item-side embedding phases overlap; the embedding phase
    /// takes the maximum of the two (Equation 3's budget).
    #[default]
    InterOpParallel,
}

/// Per-phase latency of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// Bottom MLP over the continuous features.
    pub bottom_mlp: SimDuration,
    /// All user-side embedding operators.
    pub user_embeddings: SimDuration,
    /// All item-side embedding operators.
    pub item_embeddings: SimDuration,
    /// Top MLP over the interactions (whole item batch).
    pub top_mlp: SimDuration,
    /// End-to-end query latency under the chosen execution mode.
    pub total: SimDuration,
}

/// The outcome of executing one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// One ranking score per item in the batch.
    pub scores: Vec<f32>,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
}

/// Executes DLRM queries against an [`EmbeddingBackend`].
#[derive(Debug)]
pub struct InferenceEngine {
    model: ModelConfig,
    bottom: Mlp,
    top: Mlp,
    compute: ComputeModel,
    mode: ExecutionMode,
    dense_rng_seed: u64,
}

impl InferenceEngine {
    /// Builds the engine (materialising its MLPs) for a model.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidModel`] when the model fails validation.
    pub fn new(model: ModelConfig, compute: ComputeModel, seed: u64) -> Result<Self, DlrmError> {
        model.validate()?;
        let bottom = Mlp::generate(&model.bottom_mlp, seed ^ 0xb077);
        let top = Mlp::generate(&model.top_mlp, seed ^ 0x70b0);
        Ok(InferenceEngine {
            model,
            bottom,
            top,
            compute,
            mode: ExecutionMode::default(),
            dense_rng_seed: seed,
        })
    }

    /// The model being served.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Current execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Switches between sequential and inter-op-parallel execution.
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        self.mode = mode;
    }

    /// The compute model used to convert FLOPs to time.
    pub fn compute(&self) -> &ComputeModel {
        &self.compute
    }

    /// Deterministic continuous-feature vector for a query.
    fn dense_features(&self, query: &Query) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(self.dense_rng_seed ^ query.user_id);
        (0..self.model.dense_features)
            .map(|_| rng.gen_range(-1.0f32..1.0f32))
            .collect()
    }

    /// Folds a pooled embedding vector into the fixed-width interaction
    /// buffer. The paper's models concatenate; since this reproduction cares
    /// about systems behaviour rather than model accuracy, folding keeps the
    /// top-MLP input width independent of the (configurable) table count.
    fn fold_into(buffer: &mut [f32], vector: &[f32], salt: usize) {
        if buffer.is_empty() {
            return;
        }
        for (i, v) in vector.iter().enumerate() {
            let pos = (i + salt * 13) % buffer.len();
            buffer[pos] += *v;
        }
    }

    /// Executes one query against the backend.
    ///
    /// # Errors
    ///
    /// Propagates backend failures and dimension errors.
    pub fn execute<B: EmbeddingBackend + ?Sized>(
        &self,
        query: &Query,
        backend: &mut B,
        now: SimInstant,
    ) -> Result<QueryResult, DlrmError> {
        // Bottom MLP on the continuous features.
        let dense = self.dense_features(query);
        let mut dense_in = dense;
        dense_in.resize(self.bottom.input_dim().max(1), 0.0);
        let bottom_out = self.bottom.forward(&dense_in)?;
        let bottom_time = self.compute.time_for_flops(self.bottom.flops());

        // User-side embedding operators.
        let mut user_time = SimDuration::ZERO;
        let mut user_vectors = Vec::with_capacity(query.user_requests.len());
        for req in &query.user_requests {
            let (pooled, took) = backend.pooled_lookup(req.table, &req.indices, now)?;
            user_time += took + self.compute.operator_overhead;
            user_vectors.push((req.table, pooled));
        }

        // Item-side embedding operators, grouped per ranked item.
        let item_tables = self.model.item_tables().len().max(1);
        let mut item_time = SimDuration::ZERO;
        let mut per_item_vectors: Vec<Vec<(u32, Vec<f32>)>> =
            vec![Vec::new(); query.item_batch.max(1) as usize];
        for (pos, req) in query.item_requests.iter().enumerate() {
            let (pooled, took) = backend.pooled_lookup(req.table, &req.indices, now)?;
            item_time += took + self.compute.operator_overhead;
            let item_index = (pos / item_tables).min(per_item_vectors.len() - 1);
            per_item_vectors[item_index].push((req.table, pooled));
        }

        // Interaction + top MLP per item (user embeddings broadcast).
        let top_in_dim = self.top.input_dim().max(1);
        let mut scores = Vec::with_capacity(per_item_vectors.len());
        for item_vectors in &per_item_vectors {
            let mut interaction = vec![0.0f32; top_in_dim];
            Self::fold_into(&mut interaction, &bottom_out, 0);
            for (salt, (table, v)) in user_vectors.iter().enumerate() {
                Self::fold_into(&mut interaction, v, salt + 1 + *table as usize);
            }
            for (salt, (table, v)) in item_vectors.iter().enumerate() {
                Self::fold_into(&mut interaction, v, salt + 101 + *table as usize);
            }
            let out = self.top.forward(&interaction)?;
            scores.push(out.first().copied().unwrap_or(0.0));
        }
        let top_time = self
            .compute
            .time_for_flops(self.top.flops() * query.item_batch.max(1) as u64);

        let embedding_time = match self.mode {
            ExecutionMode::Sequential => user_time + item_time,
            ExecutionMode::InterOpParallel => user_time.max(item_time),
        };
        let total = bottom_time + embedding_time + top_time;
        Ok(QueryResult {
            scores,
            latency: LatencyBreakdown {
                bottom_mlp: bottom_time,
                user_embeddings: user_time,
                item_embeddings: item_time,
                top_mlp: top_time,
                total,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DramBackend;
    use crate::model_zoo;
    use workload::{QueryGenerator, WorkloadConfig};

    fn setup() -> (InferenceEngine, DramBackend, Vec<Query>) {
        let model = model_zoo::tiny(3, 2, 300);
        let engine = InferenceEngine::new(model.clone(), ComputeModel::default(), 1).unwrap();
        let backend = DramBackend::new(&model, 1);
        let cfg = WorkloadConfig {
            item_batch: model.item_batch,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&model.tables, cfg, 2).unwrap();
        let queries = gen.generate(5);
        (engine, backend, queries)
    }

    #[test]
    fn execution_produces_one_score_per_item() {
        let (engine, mut backend, queries) = setup();
        let result = engine
            .execute(&queries[0], &mut backend, SimInstant::EPOCH)
            .unwrap();
        assert_eq!(result.scores.len(), 10);
        assert!(result.latency.total > SimDuration::ZERO);
        assert!(result.latency.user_embeddings > SimDuration::ZERO);
        assert!(result.latency.item_embeddings > SimDuration::ZERO);
    }

    #[test]
    fn results_are_deterministic() {
        let (engine, mut backend, queries) = setup();
        let a = engine
            .execute(&queries[1], &mut backend, SimInstant::EPOCH)
            .unwrap();
        let b = engine
            .execute(&queries[1], &mut backend, SimInstant::EPOCH)
            .unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.latency.total, b.latency.total);
    }

    #[test]
    fn interop_parallelism_reduces_latency() {
        let (mut engine, mut backend, queries) = setup();
        engine.set_mode(ExecutionMode::Sequential);
        let seq = engine
            .execute(&queries[0], &mut backend, SimInstant::EPOCH)
            .unwrap();
        engine.set_mode(ExecutionMode::InterOpParallel);
        let par = engine
            .execute(&queries[0], &mut backend, SimInstant::EPOCH)
            .unwrap();
        assert!(par.latency.total < seq.latency.total);
        // Scores do not depend on the execution mode.
        assert_eq!(par.scores, seq.scores);
        assert_eq!(engine.mode(), ExecutionMode::InterOpParallel);
    }

    #[test]
    fn invalid_model_is_rejected() {
        let mut model = model_zoo::tiny(1, 1, 100);
        model.tables.clear();
        assert!(InferenceEngine::new(model, ComputeModel::default(), 0).is_err());
    }

    #[test]
    fn latency_breakdown_sums_to_total_in_sequential_mode() {
        let (mut engine, mut backend, queries) = setup();
        engine.set_mode(ExecutionMode::Sequential);
        let r = engine
            .execute(&queries[2], &mut backend, SimInstant::EPOCH)
            .unwrap();
        let sum = r.latency.bottom_mlp
            + r.latency.user_embeddings
            + r.latency.item_embeddings
            + r.latency.top_mlp;
        assert_eq!(sum, r.latency.total);
    }

    #[test]
    fn engine_exposes_model_and_compute() {
        let (engine, _, _) = setup();
        assert_eq!(engine.model().name, "tiny");
        assert!(engine.compute().flops_per_second > 0.0);
    }
}

//! Model and compute configuration.

use crate::error::DlrmError;
use embedding::{TableDescriptor, TableKind};
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;
use serde::{Deserialize, Serialize};

/// Shape of an MLP stack: the layer widths, input to output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Layer widths including the input width (so `n` widths describe
    /// `n - 1` dense layers).
    pub widths: Vec<usize>,
}

impl MlpConfig {
    /// Creates a config from layer widths.
    pub fn new(widths: Vec<usize>) -> Self {
        MlpConfig { widths }
    }

    /// A uniform stack of `layers` dense layers of width `width`.
    pub fn uniform(layers: usize, width: usize) -> Self {
        MlpConfig {
            widths: vec![width.max(1); layers.max(1) + 1],
        }
    }

    /// Number of dense layers.
    pub fn num_layers(&self) -> usize {
        self.widths.len().saturating_sub(1)
    }

    /// Number of parameters (weights + biases).
    pub fn num_parameters(&self) -> u64 {
        self.widths
            .windows(2)
            .map(|w| (w[0] as u64) * (w[1] as u64) + w[1] as u64)
            .sum()
    }

    /// Multiply-accumulate FLOPs per forward pass of one sample.
    pub fn flops(&self) -> u64 {
        self.widths
            .windows(2)
            .map(|w| 2 * (w[0] as u64) * (w[1] as u64))
            .sum()
    }

    /// Scales every width by `factor` (used to materialise a laptop-sized
    /// replica of a datacenter-scale MLP while keeping the layer count).
    pub fn scaled(&self, factor: f64) -> MlpConfig {
        MlpConfig {
            widths: self
                .widths
                .iter()
                .map(|&w| ((w as f64 * factor).round() as usize).max(2))
                .collect(),
        }
    }
}

/// The inference use case (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum UseCase {
    /// Latency-sensitive serving: user batch 1, item batch ≫ 1.
    #[default]
    Inference,
    /// Accuracy validation: user batch equals item batch.
    InferenceEval,
}

/// Host compute capability used to convert FLOPs into time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Sustained dense-math throughput in FLOP/s.
    pub flops_per_second: f64,
    /// Fixed per-operator dispatch overhead.
    pub operator_overhead: SimDuration,
}

impl Default for ComputeModel {
    fn default() -> Self {
        // A single CPU socket's order of magnitude for fp32 GEMM.
        ComputeModel {
            flops_per_second: 2.0e11,
            operator_overhead: SimDuration::from_micros(2),
        }
    }
}

impl ComputeModel {
    /// An accelerator-class compute model (the paper's HW-A* platforms).
    pub fn accelerator() -> Self {
        ComputeModel {
            flops_per_second: 2.0e13,
            operator_overhead: SimDuration::from_micros(1),
        }
    }

    /// Time to execute `flops` floating point operations.
    pub fn time_for_flops(&self, flops: u64) -> SimDuration {
        if self.flops_per_second <= 0.0 {
            return self.operator_overhead;
        }
        self.operator_overhead + SimDuration::from_secs_f64(flops as f64 / self.flops_per_second)
    }
}

/// A full DLRM model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name (M1/M2/M3 or custom).
    pub name: String,
    /// Every embedding table in the model.
    pub tables: Vec<TableDescriptor>,
    /// Bottom MLP (continuous features → dense representation).
    pub bottom_mlp: MlpConfig,
    /// Top MLP (interaction → score).
    pub top_mlp: MlpConfig,
    /// Number of continuous (dense) input features.
    pub dense_features: usize,
    /// Default item batch per query.
    pub item_batch: u32,
    /// Use case the model serves.
    pub use_case: UseCase,
}

impl ModelConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidModel`] when there are no tables, table
    /// ids collide, or a table fails its own validation.
    pub fn validate(&self) -> Result<(), DlrmError> {
        if self.tables.is_empty() {
            return Err(DlrmError::InvalidModel {
                reason: "model has no embedding tables".into(),
            });
        }
        let mut ids: Vec<u32> = self.tables.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != self.tables.len() {
            return Err(DlrmError::InvalidModel {
                reason: "duplicate table ids".into(),
            });
        }
        for t in &self.tables {
            t.validate().map_err(|e| DlrmError::InvalidModel {
                reason: e.to_string(),
            })?;
        }
        if self.item_batch == 0 {
            return Err(DlrmError::InvalidModel {
                reason: "item_batch must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// Tables of a given kind.
    pub fn tables_of(&self, kind: TableKind) -> Vec<&TableDescriptor> {
        self.tables.iter().filter(|t| t.kind == kind).collect()
    }

    /// User-side tables.
    pub fn user_tables(&self) -> Vec<&TableDescriptor> {
        self.tables_of(TableKind::User)
    }

    /// Item-side tables.
    pub fn item_tables(&self) -> Vec<&TableDescriptor> {
        self.tables_of(TableKind::Item)
    }

    /// Total embedding capacity.
    pub fn embedding_capacity(&self) -> Bytes {
        self.tables.iter().map(|t| t.capacity()).sum()
    }

    /// Capacity of the user-side embeddings.
    pub fn user_capacity(&self) -> Bytes {
        self.user_tables().iter().map(|t| t.capacity()).sum()
    }

    /// Looks a table up by id.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::UnknownTable`] when absent.
    pub fn table(&self, id: u32) -> Result<&TableDescriptor, DlrmError> {
        self.tables
            .iter()
            .find(|t| t.id == id)
            .ok_or(DlrmError::UnknownTable { table: id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> ModelConfig {
        ModelConfig {
            name: "tiny".into(),
            tables: vec![
                TableDescriptor::new(0, "u", TableKind::User, 100, 8).with_pooling_factor(4),
                TableDescriptor::new(1, "i", TableKind::Item, 100, 8).with_pooling_factor(2),
            ],
            bottom_mlp: MlpConfig::new(vec![4, 8, 8]),
            top_mlp: MlpConfig::new(vec![24, 16, 1]),
            dense_features: 4,
            item_batch: 5,
            use_case: UseCase::Inference,
        }
    }

    #[test]
    fn mlp_config_arithmetic() {
        let m = MlpConfig::new(vec![4, 8, 2]);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(m.flops(), 2 * (4 * 8 + 8 * 2));
        let u = MlpConfig::uniform(3, 10);
        assert_eq!(u.num_layers(), 3);
        let s = u.scaled(0.1);
        assert!(s.widths.iter().all(|&w| w == 2));
    }

    #[test]
    fn compute_model_converts_flops_to_time() {
        let c = ComputeModel::default();
        let t1 = c.time_for_flops(0);
        let t2 = c.time_for_flops(2_000_000_000);
        assert_eq!(t1, c.operator_overhead);
        assert!(t2 > t1);
        assert!(ComputeModel::accelerator().time_for_flops(2_000_000_000) < t2);
    }

    #[test]
    fn model_validation_catches_problems() {
        assert!(tiny_model().validate().is_ok());

        let mut no_tables = tiny_model();
        no_tables.tables.clear();
        assert!(no_tables.validate().is_err());

        let mut dup = tiny_model();
        dup.tables[1].id = 0;
        assert!(dup.validate().is_err());

        let mut zero_batch = tiny_model();
        zero_batch.item_batch = 0;
        assert!(zero_batch.validate().is_err());
    }

    #[test]
    fn capacity_and_lookup_helpers() {
        let m = tiny_model();
        assert_eq!(m.user_tables().len(), 1);
        assert_eq!(m.item_tables().len(), 1);
        assert_eq!(m.embedding_capacity(), Bytes(2 * 100 * 16));
        assert_eq!(m.user_capacity(), Bytes(100 * 16));
        assert!(m.table(0).is_ok());
        assert!(matches!(
            m.table(9),
            Err(DlrmError::UnknownTable { table: 9 })
        ));
    }
}

//! SM device sizing: how many SSDs a host needs for a model's IOPS demand
//! (paper Table 10).

use crate::error::ClusterError;

/// Inputs of the Table 10 sizing exercise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingInputs {
    /// Target QPS per host.
    pub qps: f64,
    /// Number of SM-resident (user) tables.
    pub user_tables: u64,
    /// Average pooling factor of those tables.
    pub avg_pooling_factor: f64,
    /// Expected fast-memory cache hit rate.
    pub cache_hit_rate: f64,
    /// Sustained random-read IOPS per SSD.
    pub iops_per_ssd: f64,
}

/// Result of the sizing exercise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingResult {
    /// Raw lookups per second before the cache.
    pub raw_iops: f64,
    /// IOPS that reach the SSDs after the cache.
    pub sm_iops: f64,
    /// SSDs needed to sustain `sm_iops`.
    pub ssds_needed: u64,
}

/// Computes the number of SSDs required (Equation 8 plus the cache and the
/// per-device IOPS budget).
///
/// # Errors
///
/// Returns [`ClusterError::InvalidParameter`] for non-positive QPS or
/// per-SSD IOPS, or a hit rate outside `[0, 1)`… a hit rate of exactly 1.0
/// is accepted and yields zero devices.
pub fn size_ssds(inputs: SizingInputs) -> Result<SizingResult, ClusterError> {
    if inputs.qps <= 0.0 {
        return Err(ClusterError::InvalidParameter {
            name: "qps",
            reason: "must be positive".into(),
        });
    }
    if inputs.iops_per_ssd <= 0.0 {
        return Err(ClusterError::InvalidParameter {
            name: "iops_per_ssd",
            reason: "must be positive".into(),
        });
    }
    if !(0.0..=1.0).contains(&inputs.cache_hit_rate) {
        return Err(ClusterError::InvalidParameter {
            name: "cache_hit_rate",
            reason: format!("{} outside [0, 1]", inputs.cache_hit_rate),
        });
    }
    let raw_iops = inputs.qps * inputs.user_tables as f64 * inputs.avg_pooling_factor;
    let sm_iops = raw_iops * (1.0 - inputs.cache_hit_rate);
    let ssds_needed = (sm_iops / inputs.iops_per_ssd).ceil() as u64;
    Ok(SizingResult {
        raw_iops,
        sm_iops,
        ssds_needed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table10_m3_needs_nine_optane_ssds() {
        // Paper Table 10: 3150 QPS × 2000 tables × PF 30 × (1 - 0.8) hit
        // rate ≈ 36–38 MIOPS → 9–10 Optane SSDs at 4 MIOPS each.
        let result = size_ssds(SizingInputs {
            qps: 3150.0,
            user_tables: 2000,
            avg_pooling_factor: 30.0,
            cache_hit_rate: 0.8,
            iops_per_ssd: 4_000_000.0,
        })
        .unwrap();
        assert!(
            (result.sm_iops - 37.8e6).abs() < 1e6,
            "sm = {}",
            result.sm_iops
        );
        assert!(result.ssds_needed == 9 || result.ssds_needed == 10);
        assert!(result.raw_iops > result.sm_iops);
    }

    #[test]
    fn m1_needs_a_single_nand_device_in_steady_state() {
        // Paper §5.1: 120 QPS × ~50 tables × PF 42 with a 96% hit rate is
        // under 10K IOPS — trivially satisfied by one Nand SSD.
        let result = size_ssds(SizingInputs {
            qps: 120.0,
            user_tables: 50,
            avg_pooling_factor: 42.0,
            cache_hit_rate: 0.96,
            iops_per_ssd: 500_000.0,
        })
        .unwrap();
        assert!(result.sm_iops < 11_000.0);
        assert_eq!(result.ssds_needed, 1);
    }

    #[test]
    fn perfect_hit_rate_needs_no_devices() {
        let result = size_ssds(SizingInputs {
            qps: 100.0,
            user_tables: 10,
            avg_pooling_factor: 5.0,
            cache_hit_rate: 1.0,
            iops_per_ssd: 1.0e6,
        })
        .unwrap();
        assert_eq!(result.ssds_needed, 0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let base = SizingInputs {
            qps: 100.0,
            user_tables: 10,
            avg_pooling_factor: 5.0,
            cache_hit_rate: 0.5,
            iops_per_ssd: 1.0e6,
        };
        assert!(size_ssds(SizingInputs { qps: 0.0, ..base }).is_err());
        assert!(size_ssds(SizingInputs {
            iops_per_ssd: 0.0,
            ..base
        })
        .is_err());
        assert!(size_ssds(SizingInputs {
            cache_hit_rate: 1.5,
            ..base
        })
        .is_err());
    }
}

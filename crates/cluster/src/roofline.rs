//! Roofline throughput and fleet sizing (paper Equations 5–7).

use crate::error::ClusterError;

/// Per-query resource demand of a model on a given host type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryDemand {
    /// Memory bandwidth per query, bytes.
    pub bytes_per_query: f64,
    /// Compute per query, FLOPs.
    pub flops_per_query: f64,
}

/// Resource supply of one host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSupply {
    /// Usable memory bandwidth, bytes/s.
    pub memory_bandwidth: f64,
    /// Usable compute, FLOP/s.
    pub compute: f64,
}

/// Equation 5: the QPS a host sustains is limited by whichever of bandwidth
/// and compute runs out first.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidParameter`] when demand or supply is not
/// positive.
pub fn qps_per_host(demand: QueryDemand, supply: HostSupply) -> Result<f64, ClusterError> {
    if demand.bytes_per_query <= 0.0 || demand.flops_per_query <= 0.0 {
        return Err(ClusterError::InvalidParameter {
            name: "demand",
            reason: "bytes_per_query and flops_per_query must be positive".into(),
        });
    }
    if supply.memory_bandwidth <= 0.0 || supply.compute <= 0.0 {
        return Err(ClusterError::InvalidParameter {
            name: "supply",
            reason: "memory_bandwidth and compute must be positive".into(),
        });
    }
    Ok((supply.memory_bandwidth / demand.bytes_per_query)
        .min(supply.compute / demand.flops_per_query))
}

/// Equation 6: the latency of one query is the sum of its memory time and
/// its compute time on the host.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidParameter`] when the supply is not
/// positive.
pub fn latency_per_query(demand: QueryDemand, supply: HostSupply) -> Result<f64, ClusterError> {
    if supply.memory_bandwidth <= 0.0 || supply.compute <= 0.0 {
        return Err(ClusterError::InvalidParameter {
            name: "supply",
            reason: "memory_bandwidth and compute must be positive".into(),
        });
    }
    Ok(demand.bytes_per_query / supply.memory_bandwidth + demand.flops_per_query / supply.compute)
}

/// Equation 7: hosts needed to serve a total QPS with a per-host QPS.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidParameter`] when `qps_per_host` is not
/// positive or `total_qps` is negative.
pub fn hosts_needed(total_qps: f64, qps_per_host: f64) -> Result<u64, ClusterError> {
    if qps_per_host <= 0.0 {
        return Err(ClusterError::InvalidParameter {
            name: "qps_per_host",
            reason: "must be positive".into(),
        });
    }
    if total_qps < 0.0 {
        return Err(ClusterError::InvalidParameter {
            name: "total_qps",
            reason: "must be non-negative".into(),
        });
    }
    Ok((total_qps / qps_per_host).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMAND: QueryDemand = QueryDemand {
        bytes_per_query: 10.0e6,
        flops_per_query: 2.0e9,
    };

    #[test]
    fn qps_takes_the_binding_constraint() {
        // Memory-bound host.
        let memory_bound = HostSupply {
            memory_bandwidth: 100.0e9,
            compute: 1.0e15,
        };
        assert!((qps_per_host(DEMAND, memory_bound).unwrap() - 10_000.0).abs() < 1.0);
        // Compute-bound host.
        let compute_bound = HostSupply {
            memory_bandwidth: 1.0e12,
            compute: 2.0e12,
        };
        assert!((qps_per_host(DEMAND, compute_bound).unwrap() - 1_000.0).abs() < 1.0);
    }

    #[test]
    fn latency_adds_memory_and_compute_time() {
        let supply = HostSupply {
            memory_bandwidth: 100.0e9,
            compute: 2.0e12,
        };
        let l = latency_per_query(DEMAND, supply).unwrap();
        assert!((l - (1.0e-4 + 1.0e-3)).abs() < 1e-9);
    }

    #[test]
    fn hosts_needed_rounds_up() {
        assert_eq!(hosts_needed(1000.0, 240.0).unwrap(), 5);
        assert_eq!(hosts_needed(0.0, 100.0).unwrap(), 0);
        assert!(hosts_needed(100.0, 0.0).is_err());
        assert!(hosts_needed(-1.0, 10.0).is_err());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let bad_supply = HostSupply {
            memory_bandwidth: 0.0,
            compute: 1.0,
        };
        assert!(qps_per_host(DEMAND, bad_supply).is_err());
        assert!(latency_per_query(DEMAND, bad_supply).is_err());
        let bad_demand = QueryDemand {
            bytes_per_query: 0.0,
            flops_per_query: 1.0,
        };
        let ok_supply = HostSupply {
            memory_bandwidth: 1.0,
            compute: 1.0,
        };
        assert!(qps_per_host(bad_demand, ok_supply).is_err());
    }
}

//! Serving scenarios: the Table 8 / Table 9 style deployment comparisons.

use crate::error::ClusterError;
use crate::roofline::hosts_needed;
use sdm_metrics::units::Watts;

/// One way of serving a model: a host type at a measured per-host QPS.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingScenario {
    /// Scenario name ("HW-L", "HW-SS + SDM", "HW-AN + ScaleOut", …).
    pub name: String,
    /// QPS one serving unit sustains at the latency target.
    pub qps_per_host: f64,
    /// Power of one serving unit. For scale-out deployments this should
    /// include the amortised share of the remote memory hosts (e.g.
    /// 1.0 + 0.25 in Table 9).
    pub power_per_host: Watts,
    /// Extra hosts that do not serve queries directly but are required per
    /// serving host (e.g. 0.2 HW-S per HW-AN when one HW-S serves five
    /// HW-ANs). Only used for host counting; their power must already be in
    /// `power_per_host`.
    pub auxiliary_hosts_per_host: f64,
}

impl ServingScenario {
    /// Creates a scenario with no auxiliary hosts.
    pub fn new(name: impl Into<String>, qps_per_host: f64, power_per_host: Watts) -> Self {
        ServingScenario {
            name: name.into(),
            qps_per_host,
            power_per_host,
            auxiliary_hosts_per_host: 0.0,
        }
    }

    /// Adds auxiliary (non-serving) hosts per serving host.
    pub fn with_auxiliary_hosts(mut self, per_host: f64) -> Self {
        self.auxiliary_hosts_per_host = per_host.max(0.0);
        self
    }

    /// Serving hosts needed for a total QPS.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`] for non-positive per-host QPS.
    pub fn serving_hosts(&self, total_qps: f64) -> Result<u64, ClusterError> {
        hosts_needed(total_qps, self.qps_per_host)
    }

    /// Total hosts (serving + auxiliary) for a total QPS.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`] for non-positive per-host QPS.
    pub fn total_hosts(&self, total_qps: f64) -> Result<u64, ClusterError> {
        let serving = self.serving_hosts(total_qps)?;
        Ok(serving + (serving as f64 * self.auxiliary_hosts_per_host).ceil() as u64)
    }

    /// Total power for a total QPS.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`] for non-positive per-host QPS.
    pub fn total_power(&self, total_qps: f64) -> Result<Watts, ClusterError> {
        let serving = self.serving_hosts(total_qps)?;
        Ok(self.power_per_host * serving as f64)
    }
}

/// Compares a set of scenarios at the same total QPS demand (one paper
/// table).
#[derive(Debug, Clone)]
pub struct ScenarioComparison {
    /// The total QPS every scenario must serve.
    pub total_qps: f64,
    /// The compared scenarios; the first one is the baseline.
    pub scenarios: Vec<ServingScenario>,
}

/// One row of a comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Scenario name.
    pub name: String,
    /// QPS per host.
    pub qps_per_host: f64,
    /// Power per host, normalized to the baseline's power per host.
    pub normalized_host_power: f64,
    /// Total hosts (serving + auxiliary).
    pub total_hosts: u64,
    /// Total power normalized to the baseline scenario's total power.
    pub normalized_total_power: f64,
}

impl ScenarioComparison {
    /// Evaluates every scenario and normalizes to the first (baseline) one.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] when there are no scenarios or any scenario
    /// has a non-positive per-host QPS.
    pub fn evaluate(&self) -> Result<Vec<ComparisonRow>, ClusterError> {
        let Some(baseline) = self.scenarios.first() else {
            return Err(ClusterError::InvalidParameter {
                name: "scenarios",
                reason: "at least one scenario is required".into(),
            });
        };
        let baseline_power = baseline.total_power(self.total_qps)?;
        let baseline_host_power = baseline.power_per_host;
        self.scenarios
            .iter()
            .map(|s| {
                Ok(ComparisonRow {
                    name: s.name.clone(),
                    qps_per_host: s.qps_per_host,
                    normalized_host_power: s.power_per_host.normalized_to(baseline_host_power),
                    total_hosts: s.total_hosts(self.total_qps)?,
                    normalized_total_power: s
                        .total_power(self.total_qps)?
                        .normalized_to(baseline_power),
                })
            })
            .collect()
    }

    /// Power saving of scenario `index` relative to the baseline, as a
    /// fraction in `[0, 1]` (negative when it uses more power).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors and rejects an out-of-range index.
    pub fn power_saving(&self, index: usize) -> Result<f64, ClusterError> {
        let rows = self.evaluate()?;
        let row = rows.get(index).ok_or(ClusterError::InvalidParameter {
            name: "index",
            reason: format!("no scenario at index {index}"),
        })?;
        Ok(1.0 - row.normalized_total_power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 8 with its own inputs: HW-L serves 240 QPS at power 1.0,
    /// HW-SS + SDM serves 120 QPS at power 0.4 → 20% fleet power saving.
    #[test]
    fn table8_arithmetic_reproduces_20_percent_saving() {
        let total_qps = 240.0 * 1200.0;
        let comparison = ScenarioComparison {
            total_qps,
            scenarios: vec![
                ServingScenario::new("HW-L", 240.0, Watts(1.0)),
                ServingScenario::new("HW-SS + SDM", 120.0, Watts(0.4)),
            ],
        };
        let rows = comparison.evaluate().unwrap();
        assert_eq!(rows[0].total_hosts, 1200);
        assert_eq!(rows[1].total_hosts, 2400);
        assert!((rows[1].normalized_total_power - 0.8).abs() < 1e-9);
        let saving = comparison.power_saving(1).unwrap();
        assert!((saving - 0.2).abs() < 1e-9);
    }

    /// Paper Table 9: scale-out (1.0 + 0.25 power, 1500 + 300 hosts) vs
    /// HW-AN + SDM (throughput collapses) vs HW-AO + SDM (same QPS, no
    /// scale-out) → ~5% saving for Optane.
    #[test]
    fn table9_arithmetic_reproduces_5_percent_saving() {
        let total_qps = 450.0 * 1500.0;
        let comparison = ScenarioComparison {
            total_qps,
            scenarios: vec![
                ServingScenario::new("HW-AN + ScaleOut", 450.0, Watts(1.05))
                    .with_auxiliary_hosts(0.2),
                ServingScenario::new("HW-AN + SDM", 230.0, Watts(1.4)),
                ServingScenario::new("HW-AO + SDM", 450.0, Watts(1.0)),
            ],
        };
        let rows = comparison.evaluate().unwrap();
        assert_eq!(rows[0].total_hosts, 1800);
        assert_eq!(rows[2].total_hosts, 1500);
        // Nand SDM costs almost 2x the power of scale-out (2978/1575 ≈ 1.9).
        assert!(rows[1].normalized_total_power > 1.5);
        let optane_saving = comparison.power_saving(2).unwrap();
        assert!(
            (0.03..=0.08).contains(&optane_saving),
            "saving = {optane_saving}"
        );
    }

    #[test]
    fn empty_comparison_and_bad_index_are_errors() {
        let empty = ScenarioComparison {
            total_qps: 100.0,
            scenarios: vec![],
        };
        assert!(empty.evaluate().is_err());
        let one = ScenarioComparison {
            total_qps: 100.0,
            scenarios: vec![ServingScenario::new("a", 10.0, Watts(1.0))],
        };
        assert!(one.power_saving(3).is_err());
    }

    #[test]
    fn auxiliary_hosts_increase_host_count_only() {
        let s = ServingScenario::new("x", 100.0, Watts(2.0)).with_auxiliary_hosts(0.2);
        assert_eq!(s.serving_hosts(1000.0).unwrap(), 10);
        assert_eq!(s.total_hosts(1000.0).unwrap(), 12);
        assert!((s.total_power(1000.0).unwrap().as_f64() - 20.0).abs() < 1e-9);
    }
}

//! Component-level host power model.

use crate::hardware::{HostConfig, SsdKind};
use sdm_metrics::units::Watts;

/// Estimates host power from its components.
///
/// The absolute numbers are typical component TDP-class figures; what the
/// experiments rely on is the *ratio* between platforms, which is what the
/// paper reports (normalized power). With the defaults, HW-SS comes out at
/// roughly half of HW-L (the paper measures 0.4×, Table 8).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Power per CPU socket (package + VRs) under serving load.
    pub cpu_socket: Watts,
    /// DRAM power per GiB (device + refresh + IO).
    pub dram_per_gib: Watts,
    /// Power per Nand Flash SSD.
    pub nand_ssd: Watts,
    /// Power per Optane SSD.
    pub optane_ssd: Watts,
    /// Power per accelerator card.
    pub accelerator: Watts,
    /// Fans, NIC, board, PSU losses, accounted per CPU socket (dual-socket
    /// chassis carry roughly twice the fan/VR/PSU overhead).
    pub platform_overhead_per_socket: Watts,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            cpu_socket: Watts(165.0),
            dram_per_gib: Watts(0.4),
            nand_ssd: Watts(12.0),
            optane_ssd: Watts(18.0),
            accelerator: Watts(150.0),
            platform_overhead_per_socket: Watts(60.0),
        }
    }
}

impl PowerModel {
    /// Estimated power of one host.
    pub fn host_power(&self, host: &HostConfig) -> Watts {
        let mut total = self.platform_overhead_per_socket * host.cpu_sockets as f64;
        total += self.cpu_socket * host.cpu_sockets as f64;
        total += self.dram_per_gib * host.dram.as_gib_f64();
        if let Some(ssd) = host.ssd {
            let per = match ssd.kind {
                SsdKind::NandFlash => self.nand_ssd,
                SsdKind::Optane => self.optane_ssd,
            };
            total += per * ssd.count as f64;
        }
        if let Some(acc) = host.accelerator {
            total += self.accelerator * acc.count as f64;
        }
        total
    }

    /// Power of one host normalized to a baseline host.
    pub fn normalized_host_power(&self, host: &HostConfig, baseline: &HostConfig) -> f64 {
        self.host_power(host)
            .normalized_to(self.host_power(baseline))
    }

    /// Total power of a fleet of `hosts` identical hosts.
    pub fn fleet_power(&self, host: &HostConfig, hosts: f64) -> Watts {
        self.host_power(host) * hosts.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_ss_is_roughly_half_of_hw_l() {
        // Table 8 normalizes HW-SS power to 0.4 of HW-L; the component model
        // lands in the same regime (well under half plus margin), and the
        // Table 8 experiment uses the paper's own normalized figures.
        let m = PowerModel::default();
        let ratio = m.normalized_host_power(&HostConfig::hw_ss(), &HostConfig::hw_l());
        assert!((0.30..=0.55).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn optane_host_close_to_nand_host_power() {
        // Table 9 treats HW-AN and HW-AO as the same normalized power (1.0);
        // the SSD swap changes host power by only a few percent.
        let m = PowerModel::default();
        let an = m.host_power(&HostConfig::hw_an()).as_f64();
        let ao = m.host_power(&HostConfig::hw_ao()).as_f64();
        assert!((ao - an).abs() / an < 0.05, "an={an} ao={ao}");
    }

    #[test]
    fn fleet_power_scales_with_hosts() {
        let m = PowerModel::default();
        let one = m.fleet_power(&HostConfig::hw_l(), 1.0);
        let thousand = m.fleet_power(&HostConfig::hw_l(), 1000.0);
        assert!((thousand.as_f64() / one.as_f64() - 1000.0).abs() < 1e-6);
        assert_eq!(m.fleet_power(&HostConfig::hw_l(), -5.0), Watts::ZERO * 1.0);
    }

    #[test]
    fn accelerators_and_ssds_add_power() {
        let m = PowerModel::default();
        assert!(m.host_power(&HostConfig::hw_an()) > m.host_power(&HostConfig::hw_s()));
        assert!(m.host_power(&HostConfig::hw_fao()) > m.host_power(&HostConfig::hw_fa()));
    }
}

//! Hardware platforms (paper Table 7).

use sdm_metrics::units::Bytes;
use serde::{Deserialize, Serialize};

/// SSD technology attached to a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SsdKind {
    /// PCIe Nand Flash.
    NandFlash,
    /// PCIe Optane (3DXP).
    Optane,
}

impl SsdKind {
    /// Random-read IOPS one device of this kind sustains (paper Table 1 /
    /// Figure 3: Nand ≈ 0.5 M, Optane ≈ 4 M).
    pub fn iops_per_device(self) -> f64 {
        match self {
            SsdKind::NandFlash => 500_000.0,
            SsdKind::Optane => 4_000_000.0,
        }
    }
}

/// A set of identical SSDs on one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsdSpec {
    /// Technology.
    pub kind: SsdKind,
    /// Capacity per device.
    pub capacity: Bytes,
    /// Number of devices.
    pub count: usize,
}

/// Inference accelerator attached to a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceleratorSpec {
    /// Number of accelerator cards.
    pub count: usize,
    /// On-card memory per accelerator.
    pub memory: Bytes,
}

/// One host platform (a row of paper Table 7).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Platform name.
    pub name: String,
    /// Number of CPU sockets.
    pub cpu_sockets: usize,
    /// Host DRAM.
    pub dram: Bytes,
    /// Attached SSDs, if any.
    pub ssd: Option<SsdSpec>,
    /// Attached accelerators, if any.
    pub accelerator: Option<AcceleratorSpec>,
}

impl HostConfig {
    /// HW-L: dual-socket, 256 GB DRAM, no SSD, no accelerator.
    pub fn hw_l() -> Self {
        HostConfig {
            name: "HW-L".into(),
            cpu_sockets: 2,
            dram: Bytes::from_gib(256),
            ssd: None,
            accelerator: None,
        }
    }

    /// HW-S: single-socket, 64 GB DRAM.
    pub fn hw_s() -> Self {
        HostConfig {
            name: "HW-S".into(),
            cpu_sockets: 1,
            dram: Bytes::from_gib(64),
            ssd: None,
            accelerator: None,
        }
    }

    /// HW-SS: single-socket, 64 GB DRAM, 2 × 2 TB Nand Flash.
    pub fn hw_ss() -> Self {
        HostConfig {
            name: "HW-SS".into(),
            cpu_sockets: 1,
            dram: Bytes::from_gib(64),
            ssd: Some(SsdSpec {
                kind: SsdKind::NandFlash,
                capacity: Bytes::from_tib(2),
                count: 2,
            }),
            accelerator: None,
        }
    }

    /// HW-AN: single-socket, 64 GB DRAM, 2 × 1 TB Nand Flash, accelerator.
    pub fn hw_an() -> Self {
        HostConfig {
            name: "HW-AN".into(),
            cpu_sockets: 1,
            dram: Bytes::from_gib(64),
            ssd: Some(SsdSpec {
                kind: SsdKind::NandFlash,
                capacity: Bytes::from_tib(1),
                count: 2,
            }),
            accelerator: Some(AcceleratorSpec {
                count: 1,
                memory: Bytes::from_gib(64),
            }),
        }
    }

    /// HW-AO: single-socket, 64 GB DRAM, 2 × 0.4 TB Optane, accelerator.
    pub fn hw_ao() -> Self {
        HostConfig {
            name: "HW-AO".into(),
            cpu_sockets: 1,
            dram: Bytes::from_gib(64),
            ssd: Some(SsdSpec {
                kind: SsdKind::Optane,
                capacity: Bytes::from_gib(400),
                count: 2,
            }),
            accelerator: Some(AcceleratorSpec {
                count: 1,
                memory: Bytes::from_gib(64),
            }),
        }
    }

    /// HW-FA: the future multi-accelerator platform of §5.3 without SDM —
    /// same chassis as [`HostConfig::hw_fao`] but no SSDs, so the embedding
    /// capacity per host is bounded by the 256 GB of DRAM.
    pub fn hw_fa() -> Self {
        HostConfig {
            name: "HW-FA".into(),
            cpu_sockets: 2,
            dram: Bytes::from_gib(256),
            ssd: None,
            accelerator: Some(AcceleratorSpec {
                count: 8,
                memory: Bytes::from_gib(128),
            }),
        }
    }

    /// HW-FAO: the future platform with Optane SSDs sized for M3
    /// (9 devices, Table 10).
    pub fn hw_fao() -> Self {
        HostConfig {
            name: "HW-FAO".into(),
            cpu_sockets: 2,
            dram: Bytes::from_gib(256),
            ssd: Some(SsdSpec {
                kind: SsdKind::Optane,
                capacity: Bytes::from_gib(400),
                count: 9,
            }),
            accelerator: Some(AcceleratorSpec {
                count: 8,
                memory: Bytes::from_gib(128),
            }),
        }
    }

    /// All Table 7 platforms in table order.
    pub fn table7() -> Vec<HostConfig> {
        vec![
            Self::hw_l(),
            Self::hw_s(),
            Self::hw_ss(),
            Self::hw_an(),
            Self::hw_ao(),
        ]
    }

    /// Total SSD capacity on the host.
    pub fn ssd_capacity(&self) -> Bytes {
        self.ssd
            .map(|s| s.capacity * s.count as u64)
            .unwrap_or(Bytes::ZERO)
    }

    /// Aggregate SSD random-read IOPS on the host.
    pub fn ssd_iops(&self) -> f64 {
        self.ssd
            .map(|s| s.kind.iops_per_device() * s.count as f64)
            .unwrap_or(0.0)
    }

    /// Memory capacity usable for embeddings: DRAM plus SSD plus accelerator
    /// memory.
    pub fn total_memory(&self) -> Bytes {
        self.dram
            + self.ssd_capacity()
            + self
                .accelerator
                .map(|a| a.memory * a.count as u64)
                .unwrap_or(Bytes::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_matches_paper() {
        let hosts = HostConfig::table7();
        assert_eq!(hosts.len(), 5);
        assert_eq!(hosts[0].cpu_sockets, 2);
        assert_eq!(hosts[0].dram, Bytes::from_gib(256));
        assert!(hosts[0].ssd.is_none());
        assert_eq!(hosts[2].ssd_capacity(), Bytes::from_tib(4));
        assert!(hosts[3].accelerator.is_some());
        assert_eq!(hosts[4].ssd.unwrap().kind, SsdKind::Optane);
    }

    #[test]
    fn ssd_capacity_extends_memory_well_beyond_dram() {
        let hw_ss = HostConfig::hw_ss();
        // Paper §5.1: using HW-SS saves ~159 TB of DRAM fleet-wide because
        // each host gains 4 TB of SSD over 64 GB of DRAM.
        assert!(hw_ss.total_memory() > hw_ss.dram * 60);
    }

    #[test]
    fn optane_hosts_provide_more_iops_than_nand_hosts() {
        assert!(HostConfig::hw_ao().ssd_iops() > HostConfig::hw_an().ssd_iops());
        assert_eq!(HostConfig::hw_l().ssd_iops(), 0.0);
        // HW-FAO provides the 36 MIOPS Table 10 asks for.
        assert!(HostConfig::hw_fao().ssd_iops() >= 36_000_000.0);
    }
}

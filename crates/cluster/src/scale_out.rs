//! The scale-out alternative: shard the user embeddings across remote
//! memory hosts (Lui et al.), which SDM replaces (paper §5.2).

use crate::error::ClusterError;
use sdm_metrics::units::Bytes;

/// Parameters of a capacity-driven scale-out deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleOutPlan {
    /// Memory the model needs beyond what fits on a serving host.
    pub spilled_capacity: Bytes,
    /// DRAM available for embeddings on one remote memory host.
    pub memory_per_remote_host: Bytes,
    /// How many serving hosts one remote memory host can feed (the paper's
    /// HW-S serves 5 HW-AN on average).
    pub serving_hosts_per_remote_host: f64,
}

impl ScaleOutPlan {
    /// Remote hosts needed purely for capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] when the remote host
    /// memory is zero.
    pub fn remote_hosts_for_capacity(&self) -> Result<u64, ClusterError> {
        if self.memory_per_remote_host.is_zero() {
            return Err(ClusterError::InvalidParameter {
                name: "memory_per_remote_host",
                reason: "must be non-zero".into(),
            });
        }
        Ok(self
            .spilled_capacity
            .as_u64()
            .div_ceil(self.memory_per_remote_host.as_u64()))
    }

    /// Remote hosts needed to feed a given number of serving hosts
    /// (fan-out constraint).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] when the fan-out ratio is
    /// not positive.
    pub fn remote_hosts_for_fanout(&self, serving_hosts: u64) -> Result<u64, ClusterError> {
        if self.serving_hosts_per_remote_host <= 0.0 {
            return Err(ClusterError::InvalidParameter {
                name: "serving_hosts_per_remote_host",
                reason: "must be positive".into(),
            });
        }
        Ok((serving_hosts as f64 / self.serving_hosts_per_remote_host).ceil() as u64)
    }

    /// Remote hosts actually required: the larger of the capacity and
    /// fan-out constraints.
    ///
    /// # Errors
    ///
    /// Propagates parameter errors.
    pub fn remote_hosts(&self, serving_hosts: u64) -> Result<u64, ClusterError> {
        Ok(self
            .remote_hosts_for_capacity()?
            .max(self.remote_hosts_for_fanout(serving_hosts)?))
    }

    /// Number of distinct hosts involved in serving one query (1 serving
    /// host plus the remote shards touched). More hosts per query means a
    /// larger failure domain — the operational argument the paper makes
    /// against scale-out.
    pub fn hosts_per_query(&self, shards_touched_per_query: u64) -> u64 {
        1 + shards_touched_per_query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ScaleOutPlan {
        ScaleOutPlan {
            // M2: 100 GB of user embeddings vs 64 GB host DRAM → ~36 GB
            // spilled, but sharding replicates hot tables so the paper uses
            // whole-model shards; either way the fan-out constraint binds.
            spilled_capacity: Bytes::from_gib(100),
            memory_per_remote_host: Bytes::from_gib(64),
            serving_hosts_per_remote_host: 5.0,
        }
    }

    #[test]
    fn fanout_constraint_binds_for_m2() {
        let p = plan();
        assert_eq!(p.remote_hosts_for_capacity().unwrap(), 2);
        // 1500 serving hosts / 5 = 300 remote hosts (Table 9's +300).
        assert_eq!(p.remote_hosts_for_fanout(1500).unwrap(), 300);
        assert_eq!(p.remote_hosts(1500).unwrap(), 300);
    }

    #[test]
    fn capacity_constraint_binds_for_huge_models() {
        let mut p = plan();
        p.spilled_capacity = Bytes::from_tib(100);
        assert!(p.remote_hosts(10).unwrap() > 1000);
    }

    #[test]
    fn scale_out_grows_the_failure_domain() {
        let p = plan();
        assert_eq!(p.hosts_per_query(0), 1);
        assert!(p.hosts_per_query(4) > 1);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut p = plan();
        p.memory_per_remote_host = Bytes::ZERO;
        assert!(p.remote_hosts_for_capacity().is_err());
        let mut p = plan();
        p.serving_hosts_per_remote_host = 0.0;
        assert!(p.remote_hosts_for_fanout(10).is_err());
    }
}

//! Error type for the cluster-level models.

use std::error::Error;
use std::fmt;

/// Errors returned by the datacenter-level calculations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// An input parameter was zero or out of range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let e = ClusterError::InvalidParameter {
            name: "qps",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("qps"));
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<ClusterError>();
    }
}

//! Datacenter-level modelling: hardware configurations, power, roofline
//! throughput, scale-out and multi-tenancy.
//!
//! The paper's headline results (Tables 8, 9, 10 and 11) are fleet-level
//! arithmetic on top of per-host measurements: given the QPS one host
//! sustains at the latency target and the host's power, how many hosts and
//! how many megawatts does the use case need, with and without Software
//! Defined Memory? This crate reproduces that arithmetic:
//!
//! * [`HostConfig`] — the hardware platforms of Table 7 (HW-L, HW-S, HW-SS,
//!   HW-AN, HW-AO and the future accelerator host of §5.3);
//! * [`PowerModel`] — component-level host power estimates;
//! * [`roofline`] — Equations 5–7 (QPS, latency, hosts needed);
//! * [`ServingScenario`] / [`ScenarioComparison`] — the Table 8/9 style
//!   deployments;
//! * [`scale_out`] — the fan-out deployment of Lui et al. that SDM replaces;
//! * [`multi_tenancy`] — the utilisation/power model behind Table 11;
//! * [`sizing`] — the IOPS → number-of-SSDs sizing of Table 10.
//!
//! # Example
//!
//! ```
//! use cluster::{HostConfig, PowerModel};
//!
//! let power = PowerModel::default();
//! let hw_l = power.host_power(&HostConfig::hw_l());
//! let hw_ss = power.host_power(&HostConfig::hw_ss());
//! // The single-socket SSD host draws well under half the dual-socket
//! // large-DRAM host (paper Table 8 uses 0.4x).
//! assert!(hw_ss.as_f64() / hw_l.as_f64() < 0.55);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod error;
mod hardware;
pub mod multi_tenancy;
mod power;
pub mod roofline;
pub mod scale_out;
mod scenario;
pub mod sizing;

pub use error::ClusterError;
pub use hardware::{AcceleratorSpec, HostConfig, SsdKind, SsdSpec};
pub use power::PowerModel;
pub use scenario::{ScenarioComparison, ServingScenario};

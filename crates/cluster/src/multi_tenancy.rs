//! Multi-tenancy: co-locating experimental models to raise host utilisation
//! (paper §5.3, Table 11).

use crate::error::ClusterError;
use sdm_metrics::units::Bytes;

/// One co-located (experimental) model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantModel {
    /// Memory capacity the model needs on the host.
    pub memory: Bytes,
    /// Fraction of the host's compute the model consumes at its (low)
    /// traffic level.
    pub compute_share: f64,
}

/// A host under multi-tenant serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenancyHost {
    /// Memory available for embedding capacity (DRAM, or DRAM + SM with
    /// SDM).
    pub memory: Bytes,
    /// Relative host power (normalized units are fine).
    pub power: f64,
}

/// How many copies of `tenant` fit on `host`, bounded by memory only (the
/// capacity-bound regime the paper describes: compute is plentiful on the
/// accelerator platform, memory is not).
pub fn tenants_by_memory(host: &TenancyHost, tenant: &TenantModel) -> u64 {
    if tenant.memory.is_zero() {
        return u64::MAX;
    }
    host.memory.as_u64() / tenant.memory.as_u64()
}

/// Host compute utilisation achieved when `count` tenants are co-located.
pub fn utilisation(count: u64, tenant: &TenantModel) -> f64 {
    (count as f64 * tenant.compute_share).min(1.0)
}

/// Fleet power ratio of an SDM-equipped deployment relative to a baseline
/// deployment serving the same aggregate experimental-model workload
/// (Table 11): the fleet shrinks with utilisation, while each host pays its
/// own power.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidParameter`] when either utilisation is not
/// in `(0, 1]`.
pub fn fleet_power_ratio(
    baseline_utilisation: f64,
    baseline_power: f64,
    sdm_utilisation: f64,
    sdm_power: f64,
) -> Result<f64, ClusterError> {
    for (name, u) in [
        ("baseline_utilisation", baseline_utilisation),
        ("sdm_utilisation", sdm_utilisation),
    ] {
        if !(u > 0.0 && u <= 1.0) {
            return Err(ClusterError::InvalidParameter {
                name,
                reason: format!("{u} is outside (0, 1]"),
            });
        }
    }
    if baseline_power <= 0.0 {
        return Err(ClusterError::InvalidParameter {
            name: "baseline_power",
            reason: "must be positive".into(),
        });
    }
    // Hosts needed scale as 1/utilisation; power per host scales with the
    // platform power.
    Ok((baseline_utilisation / sdm_utilisation) * (sdm_power / baseline_power))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table11_reproduces_29_percent_saving() {
        // Paper Table 11: baseline utilisation 0.63 at power 1.0; with SDM
        // utilisation 0.90 at power 1.01 → fleet power 0.71, i.e. 29% saving.
        let ratio = fleet_power_ratio(0.63, 1.0, 0.90, 1.01).unwrap();
        assert!((ratio - 0.707).abs() < 0.01, "ratio = {ratio}");
        assert!((1.0 - ratio - 0.29).abs() < 0.02);
    }

    #[test]
    fn sdm_capacity_allows_more_tenants() {
        let tenant = TenantModel {
            memory: Bytes::from_gib(250),
            compute_share: 0.06,
        };
        // DRAM-only future host: 1 TB DRAM.
        let baseline = TenancyHost {
            memory: Bytes::from_gib(1024),
            power: 1.0,
        };
        // SDM host: 256 GB DRAM + 9 × 400 GB Optane.
        let sdm = TenancyHost {
            memory: Bytes::from_gib(256 + 9 * 400),
            power: 1.01,
        };
        let base_tenants = tenants_by_memory(&baseline, &tenant);
        let sdm_tenants = tenants_by_memory(&sdm, &tenant);
        assert!(sdm_tenants > base_tenants);
        assert!(utilisation(sdm_tenants, &tenant) > utilisation(base_tenants, &tenant));
        assert_eq!(utilisation(100, &tenant), 1.0);
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        assert_eq!(
            tenants_by_memory(
                &TenancyHost {
                    memory: Bytes::from_gib(1),
                    power: 1.0
                },
                &TenantModel {
                    memory: Bytes::ZERO,
                    compute_share: 0.1
                }
            ),
            u64::MAX
        );
        assert!(fleet_power_ratio(0.0, 1.0, 0.9, 1.0).is_err());
        assert!(fleet_power_ratio(0.5, 1.0, 1.5, 1.0).is_err());
        assert!(fleet_power_ratio(0.5, 0.0, 0.9, 1.0).is_err());
    }
}

//! Debug-build lock-discipline instrumentation: [`TrackedMutex`] and the
//! global [`LockRegistry`].
//!
//! The SDM serving stack has two lock contracts the type system cannot
//! express:
//!
//! 1. **Order** — whenever two locks are ever held together, every thread
//!    must acquire them in one consistent global order, or two threads can
//!    deadlock on the inverted pair.
//! 2. **No lock across IO submission** — the [`crate::SharedRowTier`]
//!    stripe locks are sub-microsecond critical sections; holding one
//!    across an SM submit would serialise every shard behind a device
//!    latency. Fills happen at IO *completion* only, by design.
//!
//! Under `cfg(debug_assertions)` a [`TrackedMutex`] registers a lock class
//! per instance, every acquisition pushes onto a thread-local held-lock
//! stack, and the registry maintains a global lock-order graph (an edge
//! `A → B` means "B was acquired while A was held"). An acquisition that
//! would close a cycle in that graph — a potential deadlock, even if this
//! particular interleaving got through — panics immediately with both
//! class names. The [`assert_no_locks_held`] hook, called by the memory
//! manager at the SM submission boundary, panics when *any* tracked lock
//! is held, enforcing contract 2.
//!
//! In release builds `TrackedMutex` is a `#[repr(transparent)]` wrapper
//! over [`std::sync::Mutex`] with `#[inline]` forwarding and
//! [`assert_no_locks_held`] is an empty inline function: the tracking
//! types do not exist and the hot path pays nothing (the CI bench gate
//! measures this, and `tests/lock_discipline.rs` asserts the layout).
//!
//! Locking recovers from poison: a stripe can only be poisoned by a panic
//! in caller code running under a lookup closure, and the engine completes
//! every mutation before handing bytes out, so the data is consistent and
//! serving continues (the pre-existing [`crate::SharedRowTier`] policy).

use std::sync::{MutexGuard, PoisonError};

/// Recovers the inner guard from a poisoned lock (see module docs).
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

#[cfg(debug_assertions)]
mod imp {
    use super::recover;
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::ops::{Deref, DerefMut};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Identifies one registered lock instance in the order graph.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct LockClassId(u32);

    /// The global lock-order graph: class names plus the "acquired while
    /// holding" edges observed so far, across all threads since process
    /// start.
    #[derive(Debug, Default)]
    struct OrderGraph {
        names: Vec<&'static str>,
        /// `edges[a]` holds every class acquired while `a` was held.
        edges: HashMap<u32, HashSet<u32>>,
    }

    impl OrderGraph {
        /// True when `to` can reach `from` through recorded edges — i.e.
        /// adding `from → to` would close a cycle.
        fn reaches(&self, start: u32, goal: u32) -> bool {
            let mut stack = vec![start];
            let mut seen = HashSet::new();
            while let Some(n) = stack.pop() {
                if n == goal {
                    return true;
                }
                if !seen.insert(n) {
                    continue;
                }
                if let Some(next) = self.edges.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
            false
        }
    }

    fn graph() -> &'static Mutex<OrderGraph> {
        static GRAPH: OnceLock<Mutex<OrderGraph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(OrderGraph::default()))
    }

    thread_local! {
        /// Lock classes currently held by this thread, in acquisition
        /// order (released entries are removed in place, so out-of-order
        /// release is fine).
        static HELD: RefCell<Vec<LockClassId>> = const { RefCell::new(Vec::new()) };
    }

    /// The debug-build lock-discipline registry (see module docs). All
    /// state is global; the type only namespaces the operations.
    #[derive(Debug)]
    pub struct LockRegistry;

    impl LockRegistry {
        /// Registers a new lock class and returns its id. Classes are
        /// per-instance: two mutexes sharing a name stay distinct nodes in
        /// the order graph.
        pub fn register(name: &'static str) -> LockClassId {
            let mut g = recover(graph().lock());
            let id = g.names.len() as u32;
            g.names.push(name);
            LockClassId(id)
        }

        /// Names of the lock classes this thread currently holds, in
        /// acquisition order.
        pub fn held_by_current_thread() -> Vec<&'static str> {
            let ids = HELD.with(|h| h.borrow().clone());
            let g = recover(graph().lock());
            ids.iter()
                .map(|id| g.names.get(id.0 as usize).copied().unwrap_or("?"))
                .collect()
        }

        /// Panics when this thread holds any tracked lock. `context` names
        /// the boundary being enforced (e.g. "SM submit").
        #[track_caller]
        pub fn assert_none_held(context: &str) {
            let held = Self::held_by_current_thread();
            assert!(
                held.is_empty(),
                "lock discipline violation at `{context}`: tracked locks held: {held:?} \
                 (the contract forbids holding any lock across this boundary)"
            );
        }

        /// Records an acquisition attempt *before* blocking on the lock:
        /// panics on same-class re-entry (guaranteed self-deadlock on a
        /// non-reentrant mutex) and on any order inversion (a cycle in the
        /// global acquired-while-held graph — a potential deadlock even
        /// when this interleaving happens to get through).
        #[track_caller]
        fn on_acquire(class: LockClassId) {
            let held = HELD.with(|h| h.borrow().clone());
            if held.contains(&class) {
                let name = {
                    let g = recover(graph().lock());
                    g.names.get(class.0 as usize).copied().unwrap_or("?")
                };
                panic!("lock discipline violation: recursive acquisition of `{name}`");
            }
            {
                let mut g = recover(graph().lock());
                for h in &held {
                    if g.edges.get(&h.0).is_some_and(|e| e.contains(&class.0)) {
                        continue;
                    }
                    if g.reaches(class.0, h.0) {
                        let name = |id: u32| g.names.get(id as usize).copied().unwrap_or("?");
                        let (a, b) = (name(h.0), name(class.0));
                        drop(g);
                        panic!(
                            "lock order inversion: acquiring `{b}` while holding `{a}`, but \
                             `{a}` has previously been acquired while (transitively) holding \
                             `{b}` — a potential deadlock cycle"
                        );
                    }
                    g.edges.entry(h.0).or_default().insert(class.0);
                }
            }
            HELD.with(|h| h.borrow_mut().push(class));
        }

        fn on_release(class: LockClassId) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                if let Some(pos) = held.iter().rposition(|c| *c == class) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Debug-build mutex wrapper feeding the [`LockRegistry`]. See the
    /// module docs for the release-build counterpart.
    #[derive(Debug)]
    pub struct TrackedMutex<T> {
        inner: Mutex<T>,
        class: LockClassId,
    }

    impl<T> TrackedMutex<T> {
        /// Wraps `value`, registering a fresh lock class under `name`.
        pub fn new(name: &'static str, value: T) -> Self {
            TrackedMutex {
                inner: Mutex::new(value),
                class: LockRegistry::register(name),
            }
        }

        /// Acquires the lock, recording the acquisition in the registry
        /// (order checked *before* blocking, so an inversion is reported
        /// even when it would have deadlocked). Recovers from poison.
        #[track_caller]
        pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
            LockRegistry::on_acquire(self.class);
            // The registry entry must be popped even if the lock panics.
            let guard = PopOnDrop(self.class);
            let inner = recover(self.inner.lock());
            std::mem::forget(guard);
            TrackedMutexGuard {
                inner,
                class: self.class,
            }
        }
    }

    /// Pops a registry entry on drop; armed only across the blocking
    /// `lock()` call inside [`TrackedMutex::lock`].
    struct PopOnDrop(LockClassId);

    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            LockRegistry::on_release(self.0);
        }
    }

    /// Guard returned by [`TrackedMutex::lock`]; releases the registry
    /// entry (then the lock) on drop.
    #[derive(Debug)]
    pub struct TrackedMutexGuard<'a, T> {
        inner: MutexGuard<'a, T>,
        class: LockClassId,
    }

    impl<T> Deref for TrackedMutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for TrackedMutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Drop for TrackedMutexGuard<'_, T> {
        fn drop(&mut self) {
            LockRegistry::on_release(self.class);
        }
    }
}

#[cfg(debug_assertions)]
pub use imp::{LockClassId, LockRegistry, TrackedMutex, TrackedMutexGuard};

#[cfg(not(debug_assertions))]
mod imp {
    use super::recover;
    use std::sync::{Mutex, MutexGuard};

    /// Release-build `TrackedMutex`: a transparent, zero-overhead wrapper
    /// over [`std::sync::Mutex`]. No registry, no classes, no graph — the
    /// tracking machinery does not exist in this build.
    #[derive(Debug)]
    #[repr(transparent)]
    pub struct TrackedMutex<T> {
        inner: Mutex<T>,
    }

    impl<T> TrackedMutex<T> {
        /// Wraps `value`; the class name is discarded at compile time.
        #[inline]
        pub fn new(_name: &'static str, value: T) -> Self {
            TrackedMutex {
                inner: Mutex::new(value),
            }
        }

        /// Acquires the lock (poison-recovering, like the debug build).
        #[inline]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            recover(self.inner.lock())
        }
    }
}

#[cfg(not(debug_assertions))]
pub use imp::TrackedMutex;

/// Panics when the current thread holds any [`TrackedMutex`] — the hook
/// the memory manager calls at the SM submission boundary ("no stripe
/// lock held across IO submit"). Free function so callers need no
/// registry import; an empty `#[inline]` no-op in release builds.
#[cfg(debug_assertions)]
#[track_caller]
pub fn assert_no_locks_held(context: &str) {
    imp::LockRegistry::assert_none_held(context);
}

/// Release-build no-op (see the debug-build documentation above).
#[cfg(not(debug_assertions))]
#[inline(always)]
pub fn assert_no_locks_held(_context: &str) {}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runs `f` on a fresh thread so its held-lock state and panics cannot
    /// leak into other tests on this thread.
    fn on_fresh_thread<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
        std::thread::spawn(f)
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e))
    }

    #[test]
    fn lock_unlock_maintains_held_stack() {
        on_fresh_thread(|| {
            let a = TrackedMutex::new("stack-a", 1u32);
            let b = TrackedMutex::new("stack-b", 2u32);
            assert!(LockRegistry::held_by_current_thread().is_empty());
            let ga = a.lock();
            assert_eq!(LockRegistry::held_by_current_thread(), vec!["stack-a"]);
            let gb = b.lock();
            assert_eq!(
                LockRegistry::held_by_current_thread(),
                vec!["stack-a", "stack-b"]
            );
            // Out-of-order release keeps the stack consistent.
            drop(ga);
            assert_eq!(LockRegistry::held_by_current_thread(), vec!["stack-b"]);
            drop(gb);
            assert!(LockRegistry::held_by_current_thread().is_empty());
        });
    }

    #[test]
    fn guard_derefs_to_value() {
        let m = TrackedMutex::new("deref", 7u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn order_inversion_panics() {
        on_fresh_thread(|| {
            let a = TrackedMutex::new("inv-a", ());
            let b = TrackedMutex::new("inv-b", ());
            {
                let _ga = a.lock();
                let _gb = b.lock(); // records a → b
            }
            let _gb = b.lock();
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _ga = a.lock(); // b → a closes the cycle
            }))
            .expect_err("inverted acquisition must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("lock order inversion"), "{msg}");
            assert!(msg.contains("inv-a") && msg.contains("inv-b"), "{msg}");
            // The failed acquisition must not linger on the held stack.
            assert_eq!(LockRegistry::held_by_current_thread(), vec!["inv-b"]);
        });
    }

    #[test]
    fn recursive_acquisition_panics() {
        on_fresh_thread(|| {
            let a = TrackedMutex::new("recursive", ());
            let _g = a.lock();
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _again = a.lock();
            }))
            .expect_err("re-locking the same mutex on one thread must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("recursive acquisition"), "{msg}");
        });
    }

    #[test]
    fn assert_no_locks_held_panics_only_while_held() {
        on_fresh_thread(|| {
            assert_no_locks_held("clean");
            let m = TrackedMutex::new("held-check", ());
            let g = m.lock();
            let err = catch_unwind(AssertUnwindSafe(|| {
                assert_no_locks_held("SM submit");
            }))
            .expect_err("held lock must trip the boundary assert");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("SM submit") && msg.contains("held-check"),
                "{msg}"
            );
            drop(g);
            assert_no_locks_held("released");
        });
    }

    #[test]
    fn consistent_global_order_never_panics() {
        // Many threads taking a → b → c in the same order: no false
        // positives from the shared graph.
        let locks = std::sync::Arc::new((
            TrackedMutex::new("ord-a", ()),
            TrackedMutex::new("ord-b", ()),
            TrackedMutex::new("ord-c", ()),
        ));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let locks = std::sync::Arc::clone(&locks);
                scope.spawn(move || {
                    for _ in 0..50 {
                        let _a = locks.0.lock();
                        let _b = locks.1.lock();
                        let _c = locks.2.lock();
                    }
                });
            }
        });
    }

    #[test]
    fn poisoned_tracked_mutex_recovers() {
        let m = std::sync::Arc::new(TrackedMutex::new("poison", 5u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock() must recover from poison");
    }
}

//! The CPU-optimized row-cache engine.
//!
//! This engine keeps a full hash index plus an exact LRU ordering, so every
//! lookup is a single hash probe — cheaper in CPU than scanning a bucket —
//! at the price of noticeably more metadata per entry. The paper routes the
//! small-but-growing set of tables with rows larger than 255 B here, where
//! the relative metadata overhead is small and the CPU saving matters
//! (Figure 6).
//!
//! The cache is a thin [`RowKey`]-typed wrapper over the shared
//! [`ArenaLru`] engine core: one hash index, an intrusive LRU list and a
//! [`crate::SlabArena`] payload slab, so a hit touches two flat vectors and
//! returns a borrowed slice, performing no heap allocation.

use crate::engine::ArenaLru;
use crate::row_cache::{RowCache, RowKey};
use crate::stats::CacheStats;
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;

/// Per-entry metadata overhead of the indexed engine (hash node, LRU links,
/// slot record).
pub const ENTRY_OVERHEAD: usize = 64;

/// Hash-indexed, exact-LRU row cache.
#[derive(Debug)]
pub struct CpuOptimizedCache {
    engine: ArenaLru<RowKey, (), u8>,
}

impl CpuOptimizedCache {
    /// Creates a cache with the given byte budget.
    pub fn new(budget: Bytes) -> Self {
        CpuOptimizedCache {
            engine: ArenaLru::new(budget, ENTRY_OVERHEAD),
        }
    }

    /// Records a miss observed by a routing layer that probed this engine
    /// without calling [`RowCache::get`] (see [`crate::DualRowCache`]).
    pub(crate) fn note_routed_miss(&mut self) {
        self.engine.note_routed_miss();
    }

    /// Side-effect-free probe: returns the cached bytes without touching
    /// the LRU order or the hit/miss statistics. Used to software-prefetch
    /// the next row of a pooled scan while the current one is accumulated —
    /// a prefetch probe must not perturb eviction order or hit rates.
    pub fn peek(&self, key: &RowKey) -> Option<&[u8]> {
        self.engine.peek(key)
    }
}

impl RowCache for CpuOptimizedCache {
    fn get(&mut self, key: &RowKey) -> Option<&[u8]> {
        self.engine.get(key).map(|(bytes, _)| bytes)
    }

    fn insert(&mut self, key: RowKey, value: &[u8]) {
        self.engine.insert(key, value, ());
    }

    fn contains(&self, key: &RowKey) -> bool {
        self.engine.contains(key)
    }

    fn len(&self) -> usize {
        self.engine.len()
    }

    fn memory_used(&self) -> Bytes {
        self.engine.memory_used()
    }

    fn budget(&self) -> Bytes {
        self.engine.budget()
    }

    fn lookup_cost(&self) -> SimDuration {
        SimDuration::from_nanos(120)
    }

    fn stats(&self) -> &CacheStats {
        self.engine.stats()
    }

    fn peek(&self, key: &RowKey) -> Option<&[u8]> {
        CpuOptimizedCache::peek(self, key)
    }

    fn clear(&mut self) {
        self.engine.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(64));
        let k = RowKey::new(9, 3);
        assert!(c.get(&k).is_none());
        c.insert(k, &[4u8; 300]);
        assert_eq!(c.get(&k).unwrap(), &[4u8; 300]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order_is_exact() {
        // Budget fits exactly two 100-byte entries (2 * 164 = 328).
        let mut c = CpuOptimizedCache::new(Bytes(330));
        c.insert(RowKey::new(0, 1), &[0u8; 100]);
        c.insert(RowKey::new(0, 2), &[0u8; 100]);
        // Touch 1 so 2 becomes LRU.
        c.get(&RowKey::new(0, 1));
        c.insert(RowKey::new(0, 3), &[0u8; 100]);
        assert!(c.contains(&RowKey::new(0, 1)));
        assert!(!c.contains(&RowKey::new(0, 2)));
        assert!(c.contains(&RowKey::new(0, 3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn usage_never_exceeds_budget_under_churn() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(8));
        for i in 0..1000u64 {
            c.insert(
                RowKey::new((i % 7) as u32, i),
                &vec![0u8; (i % 256) as usize + 1],
            );
            assert!(c.memory_used() <= c.budget(), "over budget at i={i}");
        }
    }

    #[test]
    fn fixed_size_churn_reuses_slots_and_arena() {
        let mut c = CpuOptimizedCache::new(Bytes(1000));
        for i in 0..500u64 {
            c.insert(RowKey::new(0, i), &[0u8; 100]);
        }
        // ~6 entries fit; churn must recycle slots/ranges, not grow them.
        assert!(
            c.engine.slot_count() <= 8,
            "{} slots",
            c.engine.slot_count()
        );
        assert!(
            c.engine.arena_len() <= 8 * 100,
            "{} arena bytes",
            c.engine.arena_len()
        );
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c = CpuOptimizedCache::new(Bytes(100));
        c.insert(RowKey::new(0, 0), &[0u8; 200]);
        assert!(c.is_empty());
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn replacement_keeps_single_entry() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(4));
        let k = RowKey::new(1, 1);
        c.insert(k, &[1u8; 64]);
        c.insert(k, &[2u8; 128]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&k).unwrap(), &[2u8; 128]);
    }

    #[test]
    fn same_size_replacement_overwrites_in_place() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(4));
        let k = RowKey::new(2, 2);
        c.insert(k, &[1u8; 64]);
        let (arena_before, used_before) = (c.engine.arena_len(), c.memory_used());
        c.insert(k, &[9u8; 64]);
        assert_eq!(
            c.engine.arena_len(),
            arena_before,
            "in-place overwrite must not grow the arena"
        );
        assert_eq!(c.memory_used(), used_before);
        assert_eq!(c.get(&k).unwrap(), &[9u8; 64]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut c = CpuOptimizedCache::new(Bytes(330));
        c.insert(RowKey::new(0, 1), &[1u8; 100]);
        c.insert(RowKey::new(0, 2), &[2u8; 100]);
        assert_eq!(c.peek(&RowKey::new(0, 1)).unwrap(), &[1u8; 100]);
        let (hits, misses) = (c.stats().hits, c.stats().misses);
        c.insert(RowKey::new(0, 3), &[3u8; 100]);
        assert!(!c.contains(&RowKey::new(0, 1)), "peek refreshed recency");
        assert_eq!((c.stats().hits, c.stats().misses), (hits, misses));
    }

    #[test]
    fn cpu_cost_is_lower_than_memory_optimized() {
        let cpu = CpuOptimizedCache::new(Bytes::from_kib(1));
        let mem = crate::MemoryOptimizedCache::new(Bytes::from_kib(1), 4);
        assert!(cpu.lookup_cost() < mem.lookup_cost());
        const { assert!(ENTRY_OVERHEAD > crate::memory_optimized::ENTRY_OVERHEAD) }
    }

    #[test]
    fn clear_drops_entries() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(4));
        c.insert(RowKey::new(0, 0), &[1u8; 10]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.memory_used(), Bytes::ZERO);
    }
}

//! The CPU-optimized row-cache engine.
//!
//! This engine keeps a full hash index plus an exact LRU ordering, so every
//! lookup is a single hash probe — cheaper in CPU than scanning a bucket —
//! at the price of noticeably more metadata per entry. The paper routes the
//! small-but-growing set of tables with rows larger than 255 B here, where
//! the relative metadata overhead is small and the CPU saving matters
//! (Figure 6).

use crate::row_cache::{RowCache, RowKey};
use crate::stats::CacheStats;
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;
use std::collections::{BTreeMap, HashMap};

/// Per-entry metadata overhead of the indexed engine (hash node, LRU node,
/// allocation headers).
pub const ENTRY_OVERHEAD: usize = 64;

#[derive(Debug)]
struct Entry {
    value: Vec<u8>,
    stamp: u64,
}

/// Hash-indexed, exact-LRU row cache.
#[derive(Debug)]
pub struct CpuOptimizedCache {
    map: HashMap<RowKey, Entry>,
    lru: BTreeMap<u64, RowKey>,
    budget: Bytes,
    used: u64,
    clock: u64,
    stats: CacheStats,
}

impl CpuOptimizedCache {
    /// Creates a cache with the given byte budget.
    pub fn new(budget: Bytes) -> Self {
        CpuOptimizedCache {
            map: HashMap::new(),
            lru: BTreeMap::new(),
            budget,
            used: 0,
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    fn entry_cost(value_len: usize) -> u64 {
        (value_len + ENTRY_OVERHEAD) as u64
    }

    fn touch(&mut self, key: RowKey) {
        self.clock += 1;
        if let Some(e) = self.map.get_mut(&key) {
            self.lru.remove(&e.stamp);
            e.stamp = self.clock;
            self.lru.insert(self.clock, key);
        }
    }

    fn evict_one(&mut self) -> bool {
        let Some((&stamp, &key)) = self.lru.iter().next() else {
            return false;
        };
        self.lru.remove(&stamp);
        if let Some(e) = self.map.remove(&key) {
            self.used -= Self::entry_cost(e.value.len());
            self.stats.evictions += 1;
        }
        true
    }
}

impl RowCache for CpuOptimizedCache {
    fn get(&mut self, key: &RowKey) -> Option<Vec<u8>> {
        if self.map.contains_key(key) {
            self.touch(*key);
            self.stats.record_hit();
            self.map.get(key).map(|e| e.value.clone())
        } else {
            self.stats.record_miss();
            None
        }
    }

    fn insert(&mut self, key: RowKey, value: Vec<u8>) {
        let cost = Self::entry_cost(value.len());
        if cost > self.budget.as_u64() {
            self.stats.rejected += 1;
            return;
        }
        // Remove any existing entry first so usage accounting stays exact.
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(&old.stamp);
            self.used -= Self::entry_cost(old.value.len());
        }
        while self.used + cost > self.budget.as_u64() {
            if !self.evict_one() {
                break;
            }
        }
        if self.used + cost > self.budget.as_u64() {
            self.stats.rejected += 1;
            return;
        }
        self.clock += 1;
        self.used += cost;
        self.stats.insertions += 1;
        self.lru.insert(self.clock, key);
        self.map.insert(
            key,
            Entry {
                value,
                stamp: self.clock,
            },
        );
    }

    fn contains(&self, key: &RowKey) -> bool {
        self.map.contains_key(key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn memory_used(&self) -> Bytes {
        Bytes(self.used)
    }

    fn budget(&self) -> Bytes {
        self.budget
    }

    fn lookup_cost(&self) -> SimDuration {
        SimDuration::from_nanos(120)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn clear(&mut self) {
        self.map.clear();
        self.lru.clear();
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(64));
        let k = RowKey::new(9, 3);
        assert!(c.get(&k).is_none());
        c.insert(k, vec![4u8; 300]);
        assert_eq!(c.get(&k).unwrap(), vec![4u8; 300]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order_is_exact() {
        // Budget fits exactly two 100-byte entries (2 * 164 = 328).
        let mut c = CpuOptimizedCache::new(Bytes(330));
        c.insert(RowKey::new(0, 1), vec![0u8; 100]);
        c.insert(RowKey::new(0, 2), vec![0u8; 100]);
        // Touch 1 so 2 becomes LRU.
        c.get(&RowKey::new(0, 1));
        c.insert(RowKey::new(0, 3), vec![0u8; 100]);
        assert!(c.contains(&RowKey::new(0, 1)));
        assert!(!c.contains(&RowKey::new(0, 2)));
        assert!(c.contains(&RowKey::new(0, 3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn usage_never_exceeds_budget_under_churn() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(8));
        for i in 0..1000u64 {
            c.insert(
                RowKey::new((i % 7) as u32, i),
                vec![0u8; (i % 256) as usize + 1],
            );
            assert!(c.memory_used() <= c.budget(), "over budget at i={i}");
        }
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c = CpuOptimizedCache::new(Bytes(100));
        c.insert(RowKey::new(0, 0), vec![0u8; 200]);
        assert!(c.is_empty());
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn replacement_keeps_single_entry() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(4));
        let k = RowKey::new(1, 1);
        c.insert(k, vec![1u8; 64]);
        c.insert(k, vec![2u8; 128]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&k).unwrap(), vec![2u8; 128]);
    }

    #[test]
    fn cpu_cost_is_lower_than_memory_optimized() {
        let cpu = CpuOptimizedCache::new(Bytes::from_kib(1));
        let mem = crate::MemoryOptimizedCache::new(Bytes::from_kib(1), 4);
        assert!(cpu.lookup_cost() < mem.lookup_cost());
        const { assert!(ENTRY_OVERHEAD > crate::memory_optimized::ENTRY_OVERHEAD) }
    }

    #[test]
    fn clear_drops_entries() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(4));
        c.insert(RowKey::new(0, 0), vec![1u8; 10]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.memory_used(), Bytes::ZERO);
    }
}

//! The CPU-optimized row-cache engine.
//!
//! This engine keeps a full hash index plus an exact LRU ordering, so every
//! lookup is a single hash probe — cheaper in CPU than scanning a bucket —
//! at the price of noticeably more metadata per entry. The paper routes the
//! small-but-growing set of tables with rows larger than 255 B here, where
//! the relative metadata overhead is small and the CPU saving matters
//! (Figure 6).
//!
//! The exact LRU order is an intrusive linked list over slot indices (see
//! [`crate::lru`]) instead of the seed's `BTreeMap<stamp, key>`, and row
//! payloads live in a [`SlabArena`]: a hit touches two flat vectors and
//! returns a borrowed slice, performing no heap allocation.

use crate::arena::SlabArena;
use crate::lru::LruList;
use crate::row_cache::{RowCache, RowKey};
use crate::stats::CacheStats;
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;
use std::collections::HashMap;

/// Per-entry metadata overhead of the indexed engine (hash node, LRU links,
/// slot record).
pub const ENTRY_OVERHEAD: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: RowKey,
    start: usize,
    len: usize,
}

/// Hash-indexed, exact-LRU row cache.
#[derive(Debug)]
pub struct CpuOptimizedCache {
    map: HashMap<RowKey, usize>,
    slots: Vec<Slot>,
    free_slots: Vec<usize>,
    lru: LruList,
    arena: SlabArena<u8>,
    budget: Bytes,
    used: u64,
    stats: CacheStats,
}

impl CpuOptimizedCache {
    /// Creates a cache with the given byte budget.
    pub fn new(budget: Bytes) -> Self {
        CpuOptimizedCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            lru: LruList::new(),
            arena: SlabArena::new(),
            budget,
            used: 0,
            stats: CacheStats::new(),
        }
    }

    fn entry_cost(value_len: usize) -> u64 {
        (value_len + ENTRY_OVERHEAD) as u64
    }

    /// Records a miss observed by a routing layer that probed this engine
    /// without calling [`RowCache::get`] (see [`crate::DualRowCache`]).
    pub(crate) fn note_routed_miss(&mut self) {
        self.stats.record_miss();
    }

    /// Side-effect-free probe: returns the cached bytes without touching
    /// the LRU order or the hit/miss statistics. Used to software-prefetch
    /// the next row of a pooled scan while the current one is accumulated —
    /// a prefetch probe must not perturb eviction order or hit rates.
    pub fn peek(&self, key: &RowKey) -> Option<&[u8]> {
        self.map.get(key).map(|&slot| {
            let s = self.slots[slot];
            self.arena.slice(s.start, s.len)
        })
    }

    /// Refreshes the residency gauges from the arena after any mutation
    /// that allocates or frees payload ranges.
    fn note_residency(&mut self) {
        self.stats.resident_bytes = self.arena.len() as u64;
        self.stats.live_bytes = self.arena.live_len() as u64;
    }

    fn remove_slot(&mut self, slot: usize) -> Slot {
        let s = self.slots[slot];
        self.map.remove(&s.key);
        self.lru.unlink(slot);
        self.arena.free(s.start, s.len);
        self.free_slots.push(slot);
        self.used -= Self::entry_cost(s.len);
        s
    }

    fn evict_one(&mut self) -> bool {
        let Some(victim) = self.lru.lru() else {
            return false;
        };
        self.remove_slot(victim);
        self.stats.evictions += 1;
        true
    }
}

impl RowCache for CpuOptimizedCache {
    fn get(&mut self, key: &RowKey) -> Option<&[u8]> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.lru.touch(slot);
                self.stats.record_hit();
                let s = self.slots[slot];
                Some(self.arena.slice(s.start, s.len))
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    fn insert(&mut self, key: RowKey, value: &[u8]) {
        let cost = Self::entry_cost(value.len());
        if cost > self.budget.as_u64() {
            self.stats.rejected += 1;
            return;
        }
        // Replace in place when the payload length is unchanged (rows of
        // one table never change size), so a same-size refresh touches no
        // free list — usage is unchanged and no eviction can be needed.
        if let Some(slot) = self.map.get(&key).copied() {
            let s = self.slots[slot];
            if s.len == value.len() {
                self.arena.write(s.start, value);
                self.lru.touch(slot);
                self.stats.insertions += 1;
                return;
            }
            // Remove the differently-sized entry so accounting stays exact.
            self.remove_slot(slot);
        }
        while self.used + cost > self.budget.as_u64() {
            if !self.evict_one() {
                break;
            }
        }
        if self.used + cost > self.budget.as_u64() {
            self.stats.rejected += 1;
            self.note_residency();
            return;
        }
        self.used += cost;
        self.stats.insertions += 1;
        let start = self.arena.alloc(value);
        let record = Slot {
            key,
            start,
            len: value.len(),
        };
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot] = record;
                slot
            }
            None => {
                self.slots.push(record);
                self.slots.len() - 1
            }
        };
        self.lru.push_front(slot);
        self.map.insert(key, slot);
        self.note_residency();
    }

    fn contains(&self, key: &RowKey) -> bool {
        self.map.contains_key(key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn memory_used(&self) -> Bytes {
        Bytes(self.used)
    }

    fn budget(&self) -> Bytes {
        self.budget
    }

    fn lookup_cost(&self) -> SimDuration {
        SimDuration::from_nanos(120)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free_slots.clear();
        self.lru.clear();
        self.arena.clear();
        self.used = 0;
        self.note_residency();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(64));
        let k = RowKey::new(9, 3);
        assert!(c.get(&k).is_none());
        c.insert(k, &[4u8; 300]);
        assert_eq!(c.get(&k).unwrap(), &[4u8; 300]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order_is_exact() {
        // Budget fits exactly two 100-byte entries (2 * 164 = 328).
        let mut c = CpuOptimizedCache::new(Bytes(330));
        c.insert(RowKey::new(0, 1), &[0u8; 100]);
        c.insert(RowKey::new(0, 2), &[0u8; 100]);
        // Touch 1 so 2 becomes LRU.
        c.get(&RowKey::new(0, 1));
        c.insert(RowKey::new(0, 3), &[0u8; 100]);
        assert!(c.contains(&RowKey::new(0, 1)));
        assert!(!c.contains(&RowKey::new(0, 2)));
        assert!(c.contains(&RowKey::new(0, 3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn usage_never_exceeds_budget_under_churn() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(8));
        for i in 0..1000u64 {
            c.insert(
                RowKey::new((i % 7) as u32, i),
                &vec![0u8; (i % 256) as usize + 1],
            );
            assert!(c.memory_used() <= c.budget(), "over budget at i={i}");
        }
    }

    #[test]
    fn fixed_size_churn_reuses_slots_and_arena() {
        let mut c = CpuOptimizedCache::new(Bytes(1000));
        for i in 0..500u64 {
            c.insert(RowKey::new(0, i), &[0u8; 100]);
        }
        // ~6 entries fit; churn must recycle slots/ranges, not grow them.
        assert!(c.slots.len() <= 8, "{} slots", c.slots.len());
        assert!(c.arena.len() <= 8 * 100, "{} arena bytes", c.arena.len());
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c = CpuOptimizedCache::new(Bytes(100));
        c.insert(RowKey::new(0, 0), &[0u8; 200]);
        assert!(c.is_empty());
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn replacement_keeps_single_entry() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(4));
        let k = RowKey::new(1, 1);
        c.insert(k, &[1u8; 64]);
        c.insert(k, &[2u8; 128]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&k).unwrap(), &[2u8; 128]);
    }

    #[test]
    fn same_size_replacement_overwrites_in_place() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(4));
        let k = RowKey::new(2, 2);
        c.insert(k, &[1u8; 64]);
        let (arena_before, used_before) = (c.arena.len(), c.memory_used());
        c.insert(k, &[9u8; 64]);
        assert_eq!(
            c.arena.len(),
            arena_before,
            "in-place overwrite must not grow the arena"
        );
        assert_eq!(c.memory_used(), used_before);
        assert_eq!(c.get(&k).unwrap(), &[9u8; 64]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cpu_cost_is_lower_than_memory_optimized() {
        let cpu = CpuOptimizedCache::new(Bytes::from_kib(1));
        let mem = crate::MemoryOptimizedCache::new(Bytes::from_kib(1), 4);
        assert!(cpu.lookup_cost() < mem.lookup_cost());
        const { assert!(ENTRY_OVERHEAD > crate::memory_optimized::ENTRY_OVERHEAD) }
    }

    #[test]
    fn clear_drops_entries() {
        let mut c = CpuOptimizedCache::new(Bytes::from_kib(4));
        c.insert(RowKey::new(0, 0), &[1u8; 10]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.memory_used(), Bytes::ZERO);
    }
}

//! Error type for the cache layer.

use std::error::Error;
use std::fmt;

/// Errors returned by cache construction and configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// A cache was configured with a zero-byte budget.
    ZeroBudget,
    /// A configuration value was out of range.
    InvalidConfig {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::ZeroBudget => write!(f, "cache budget must be non-zero"),
            CacheError::InvalidConfig { reason } => write!(f, "invalid cache config: {reason}"),
        }
    }
}

impl Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CacheError::ZeroBudget.to_string().contains("non-zero"));
        assert!(CacheError::InvalidConfig {
            reason: "bad split".into()
        }
        .to_string()
        .contains("bad split"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<CacheError>();
    }
}

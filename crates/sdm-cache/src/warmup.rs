//! Cache warmup tracking after a model update (paper §A.4).
//!
//! A full model update leaves the fast-memory cache cold; the paper observes
//! that caches warm up within a few minutes and derives the extra serving
//! capacity needed to cover the transient:
//! `extra = (r * w) / (p * t)` where `r` is the fraction of hosts updating
//! at a time, `w` the warmup duration, `p` the relative performance during
//! warmup and `t` the update interval.

use sdm_metrics::SimDuration;

/// Upper bound on retained per-window hit rates. Steady-state detection
/// keeps working past the cap; only the per-window history stops growing,
/// which keeps [`WarmupTracker::record`] allocation-free and the tracker's
/// memory bounded for the lifetime of a serving process.
const MAX_TRACKED_WINDOWS: usize = 4096;

/// Observes hit rate over fixed-size lookup windows and reports when the
/// cache has reached steady state.
#[derive(Debug, Clone)]
pub struct WarmupTracker {
    window: u64,
    steady_threshold: f64,
    current_hits: u64,
    current_lookups: u64,
    /// Hit rates of the first [`MAX_TRACKED_WINDOWS`] completed windows.
    window_rates: Vec<f64>,
    /// Total completed windows (may exceed the retained history).
    completed_windows: u64,
    steady_window: Option<usize>,
}

impl WarmupTracker {
    /// Creates a tracker: hit rates are evaluated every `window` lookups and
    /// the cache is declared warm once a window's hit rate reaches
    /// `steady_threshold`.
    pub fn new(window: u64, steady_threshold: f64) -> Self {
        WarmupTracker {
            window: window.max(1),
            steady_threshold: steady_threshold.clamp(0.0, 1.0),
            current_hits: 0,
            current_lookups: 0,
            // Full capacity up front so `record` never allocates on the
            // serving path (the zero-allocation steady-state guarantee).
            window_rates: Vec::with_capacity(MAX_TRACKED_WINDOWS),
            completed_windows: 0,
            steady_window: None,
        }
    }

    /// Records one cache lookup outcome.
    pub fn record(&mut self, hit: bool) {
        self.current_lookups += 1;
        if hit {
            self.current_hits += 1;
        }
        if self.current_lookups >= self.window {
            let rate = self.current_hits as f64 / self.current_lookups as f64;
            if self.window_rates.len() < MAX_TRACKED_WINDOWS {
                self.window_rates.push(rate);
            }
            if self.steady_window.is_none() && rate >= self.steady_threshold {
                self.steady_window = Some(self.completed_windows as usize);
            }
            self.completed_windows += 1;
            self.current_hits = 0;
            self.current_lookups = 0;
        }
    }

    /// Hit rate of each completed window, in order (capped at the first
    /// [`MAX_TRACKED_WINDOWS`] windows; steady-state detection is not).
    pub fn window_rates(&self) -> &[f64] {
        &self.window_rates
    }

    /// Index of the first window at which steady state was reached, if any.
    pub fn steady_state_window(&self) -> Option<usize> {
        self.steady_window
    }

    /// True once a window has reached the steady-state threshold.
    pub fn is_warm(&self) -> bool {
        self.steady_window.is_some()
    }

    /// Number of lookups needed to reach steady state, if reached.
    pub fn lookups_to_steady_state(&self) -> Option<u64> {
        self.steady_window.map(|w| (w as u64 + 1) * self.window)
    }
}

/// Extra serving capacity (as a fraction, e.g. `0.012` = 1.2 %) needed to
/// absorb warmup slowdown during rolling model updates (paper §A.4):
/// `(rolling_fraction * warmup_time) / (warmup_performance * update_interval)`.
///
/// Returns zero when the update interval or warmup performance is zero.
pub fn warmup_capacity_overhead(
    rolling_fraction: f64,
    warmup_time: SimDuration,
    warmup_performance: f64,
    update_interval: SimDuration,
) -> f64 {
    if update_interval.is_zero() || warmup_performance <= 0.0 {
        return 0.0;
    }
    (rolling_fraction.clamp(0.0, 1.0) * warmup_time.as_secs_f64())
        / (warmup_performance.min(1.0) * update_interval.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_detects_warmup_transition() {
        let mut t = WarmupTracker::new(100, 0.9);
        // Cold phase: 50% hit rate for 3 windows.
        for i in 0..300 {
            t.record(i % 2 == 0);
        }
        assert!(!t.is_warm());
        // Warm phase: 95% hit rate.
        for i in 0..200 {
            t.record(i % 20 != 0);
        }
        assert!(t.is_warm());
        assert_eq!(t.steady_state_window(), Some(3));
        assert_eq!(t.lookups_to_steady_state(), Some(400));
        assert_eq!(t.window_rates().len(), 5);
        assert!(t.window_rates()[0] < 0.6);
        assert!(t.window_rates()[4] > 0.9);
    }

    #[test]
    fn window_history_is_bounded_but_detection_keeps_working() {
        let mut t = WarmupTracker::new(1, 0.9);
        // Miss for longer than the retained history...
        for _ in 0..(MAX_TRACKED_WINDOWS + 100) {
            t.record(false);
        }
        assert_eq!(t.window_rates().len(), MAX_TRACKED_WINDOWS);
        assert!(!t.is_warm());
        // ...then steady state is still detected, past the cap.
        t.record(true);
        assert!(t.is_warm());
        assert_eq!(t.steady_state_window(), Some(MAX_TRACKED_WINDOWS + 100));
        assert_eq!(t.window_rates().len(), MAX_TRACKED_WINDOWS);
    }

    #[test]
    fn paper_example_overhead_is_small_single_digit_percent() {
        // r=10%, w=5 min, p=50%, t=30 min. Evaluating the paper's formula
        // (r*w)/(p*t) literally gives 3.3%; the paper's own numeric example
        // (1.2%) swaps w and t when plugging in. Either way the conclusion —
        // a small single-digit-percent over-provision — holds, which is what
        // this test pins down (the discrepancy is recorded in
        // EXPERIMENTS.md).
        let overhead = warmup_capacity_overhead(
            0.10,
            SimDuration::from_secs(5 * 60),
            0.50,
            SimDuration::from_secs(30 * 60),
        );
        assert!(
            (overhead - 1.0 / 30.0).abs() < 1e-9,
            "overhead = {overhead}"
        );
        assert!(overhead < 0.05);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(
            warmup_capacity_overhead(0.1, SimDuration::from_secs(60), 0.5, SimDuration::ZERO),
            0.0
        );
        assert_eq!(
            warmup_capacity_overhead(
                0.1,
                SimDuration::from_secs(60),
                0.0,
                SimDuration::from_secs(60)
            ),
            0.0
        );
    }

    #[test]
    fn zero_window_is_clamped() {
        let mut t = WarmupTracker::new(0, 0.5);
        t.record(true);
        assert_eq!(t.window_rates().len(), 1);
    }
}

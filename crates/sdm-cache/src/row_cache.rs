//! The row-cache abstraction shared by both engines.

use crate::stats::CacheStats;
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;
use std::fmt;

/// Key of one cached embedding row: `(table, row index)` in the *unpruned*
/// index space the queries use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowKey {
    /// Owning table.
    pub table: u32,
    /// Row index within the table.
    pub row: u64,
}

impl RowKey {
    /// Creates a key.
    pub fn new(table: u32, row: u64) -> Self {
        RowKey { table, row }
    }

    /// A well-mixed 64-bit hash of the key (splitmix64 over both fields),
    /// used by the bucketed engine.
    pub fn mix(&self) -> u64 {
        let mut x = (self.table as u64) << 48 ^ self.row ^ 0x9e37_79b9_7f4a_7c15;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

impl fmt::Display for RowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}r{}", self.table, self.row)
    }
}

/// Common interface of the fast-memory row caches.
///
/// Both engines are bounded by a byte budget that accounts for the stored
/// row bytes *plus* a per-entry metadata overhead — the overhead difference
/// is exactly the memory-vs-CPU trade-off the paper tunes (Figure 6).
///
/// Hits return a *borrowed* slice into the cache's internal arena rather
/// than a cloned `Vec`: the serving loop dequantises straight out of the
/// cache, so a warm lookup performs no heap allocation and no copy.
pub trait RowCache {
    /// Looks a row up, refreshing its recency on a hit. The returned slice
    /// borrows from the cache's payload arena.
    fn get(&mut self, key: &RowKey) -> Option<&[u8]>;

    /// Inserts (or replaces) a row (copied into the cache's arena),
    /// evicting older entries if needed to stay within the byte budget.
    /// Rows larger than the whole budget are silently not admitted.
    fn insert(&mut self, key: RowKey, value: &[u8]);

    /// Returns true when the key is resident (without touching recency).
    fn contains(&self, key: &RowKey) -> bool;

    /// Number of resident rows.
    fn len(&self) -> usize;

    /// True when no rows are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently consumed (payload + per-entry overhead).
    fn memory_used(&self) -> Bytes;

    /// Configured byte budget.
    fn budget(&self) -> Bytes;

    /// Host CPU time of one lookup against this engine.
    fn lookup_cost(&self) -> SimDuration;

    /// Cache statistics.
    fn stats(&self) -> &CacheStats;

    /// Side-effect-free probe: returns the cached bytes without touching
    /// the LRU order or the hit/miss statistics. Prefetch probes and
    /// routing layers must not perturb eviction order or hit rates.
    fn peek(&self, key: &RowKey) -> Option<&[u8]>;

    /// Drops every resident row and resets usage (statistics are kept).
    fn clear(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_spreads_keys() {
        let a = RowKey::new(1, 1).mix();
        let b = RowKey::new(1, 2).mix();
        let c = RowKey::new(2, 1).mix();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn display_reads_naturally() {
        assert_eq!(RowKey::new(3, 99).to_string(), "t3r99");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(RowKey::new(1, 100) < RowKey::new(2, 0));
        assert!(RowKey::new(1, 1) < RowKey::new(1, 2));
    }
}

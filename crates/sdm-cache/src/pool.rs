//! One generation-tagged slot pool for every split-phase pipeline.
//!
//! Three hand-rolled pools used to coexist — the SDM manager's pending
//! lookup slab, the shard's relaxed-batch scratch and the DRAM backend's
//! begun-lookup slab (the last with an O(window) free-slot scan). They all
//! wanted the same thing: a slab of reusable payloads, an O(1)
//! acquire/release free list, and *stale-handle rejection* so a ticket
//! retained across a slot's reuse can never consume the new occupant's
//! result. [`SlotPool`] is that thing, once.
//!
//! # Ticket discipline
//!
//! Every slot carries a 32-bit generation. [`SlotPool::ticket`] packs
//! `(generation << 32) | slot` into a `u64`; the generation is bumped when
//! the slot is [released](SlotPool::release) (and when a
//! [`reset`](SlotPool::reset) abandons a slot mid-flight), so:
//!
//! * a ticket for a **live** slot round-trips through
//!   [`SlotPool::checked_slot`] until the slot is released;
//! * a ticket retained **past release** goes stale the moment the slot
//!   returns to the free list — even if the slot is never re-acquired;
//! * callers that must keep a failed operation retryable (e.g. a mis-sized
//!   output buffer) simply validate *before* releasing.
//!
//! Payloads are never dropped on release — they are recycled in place
//! (capacity-reusing `Vec`s and friends survive), which is what keeps a
//! warmed pipeline allocation-free.

/// Per-slot bookkeeping: reuse generation and occupancy.
#[derive(Debug, Default, Clone, Copy)]
struct SlotMeta {
    generation: u32,
    in_use: bool,
}

/// A generation-tagged, free-list-backed slot pool.
///
/// `T` is the reusable per-slot payload. Slots are addressed by `usize` id
/// while held, and by [ticket](SlotPool::ticket) across code that may
/// outlive the slot's tenure.
#[derive(Debug, Clone)]
pub struct SlotPool<T> {
    slots: Vec<T>,
    meta: Vec<SlotMeta>,
    free: Vec<usize>,
}

impl<T> Default for SlotPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlotPool<T> {
    /// An empty pool. Grows on demand, one slot per concurrently held id.
    pub fn new() -> Self {
        SlotPool {
            slots: Vec::new(),
            meta: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Total slots ever grown (held + free).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the pool has never grown a slot.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Slots currently on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// True when every grown slot is back on the free list.
    pub fn all_free(&self) -> bool {
        self.free.len() == self.slots.len()
    }

    /// Borrow of a held slot's payload.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this pool.
    pub fn slot(&self, id: usize) -> &T {
        &self.slots[id]
    }

    /// Mutable borrow of a held slot's payload.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this pool.
    pub fn slot_mut(&mut self, id: usize) -> &mut T {
        &mut self.slots[id]
    }

    /// The ticket naming slot `id` at its current generation (low 32 bits:
    /// slot id; high 32 bits: generation).
    pub fn ticket(&self, id: usize) -> u64 {
        (u64::from(self.meta[id].generation) << 32) | id as u64
    }

    /// Resolves a ticket to its slot id, or `None` if the ticket is stale:
    /// the slot was released (or abandoned by [`reset`](SlotPool::reset))
    /// since the ticket was issued, or the id was never grown.
    pub fn checked_slot(&self, ticket: u64) -> Option<usize> {
        let id = (ticket & u64::from(u32::MAX)) as usize;
        let generation = (ticket >> 32) as u32;
        let meta = self.meta.get(id)?;
        (meta.in_use && meta.generation == generation).then_some(id)
    }

    /// Releases a held slot back to the free list, staling every ticket
    /// issued for this tenure. The payload is recycled in place, not
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this pool.
    pub fn release(&mut self, id: usize) {
        let meta = &mut self.meta[id];
        debug_assert!(meta.in_use, "release of free slot {id}");
        meta.in_use = false;
        meta.generation = meta.generation.wrapping_add(1);
        self.free.push(id);
    }

    /// Returns every slot to the free list (error recovery between
    /// batches). Pop order is rebuilt ascending, so steady-state pipelines
    /// acquire slots deterministically after a reset. Slots abandoned while
    /// held get their generation bumped, so tickets orphaned by the reset
    /// stay stale even after their slot is re-acquired.
    pub fn reset(&mut self) {
        self.free.clear();
        for (i, meta) in self.meta.iter_mut().enumerate().rev() {
            if meta.in_use {
                meta.generation = meta.generation.wrapping_add(1);
                meta.in_use = false;
            }
            self.free.push(i);
        }
    }
}

impl<T: Default> SlotPool<T> {
    /// Acquires a slot: pops the free list, growing a defaulted payload
    /// only when every slot is held. The payload keeps whatever state its
    /// previous tenure left (callers re-initialise the fields they use —
    /// that reuse is the point).
    pub fn acquire(&mut self) -> usize {
        let id = self.free.pop().unwrap_or_else(|| {
            self.slots.push(T::default());
            self.meta.push(SlotMeta::default());
            self.slots.len() - 1
        });
        self.meta[id].in_use = true;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_grows_then_reuses() {
        let mut pool: SlotPool<Vec<u8>> = SlotPool::new();
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!((a, b), (0, 1));
        assert_eq!(pool.len(), 2);
        pool.release(a);
        assert_eq!(pool.acquire(), a, "free slot not reused");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn tickets_go_stale_on_release_and_reset() {
        let mut pool: SlotPool<u32> = SlotPool::new();
        let id = pool.acquire();
        let ticket = pool.ticket(id);
        assert_eq!(pool.checked_slot(ticket), Some(id));
        pool.release(id);
        assert_eq!(pool.checked_slot(ticket), None, "released ticket lived");
        let id = pool.acquire();
        let ticket = pool.ticket(id);
        pool.reset();
        let again = pool.acquire();
        assert_eq!(again, id, "reset changed deterministic pop order");
        assert_eq!(pool.checked_slot(ticket), None, "reset ticket lived");
    }

    #[test]
    fn payloads_are_recycled_not_dropped() {
        let mut pool: SlotPool<Vec<u8>> = SlotPool::new();
        let id = pool.acquire();
        pool.slot_mut(id).extend_from_slice(&[1, 2, 3]);
        let capacity = pool.slot(id).capacity();
        pool.release(id);
        let id = pool.acquire();
        assert_eq!(pool.slot(id).capacity(), capacity, "payload was dropped");
    }

    #[test]
    fn reset_rebuilds_ascending_pop_order() {
        let mut pool: SlotPool<u8> = SlotPool::new();
        let ids: Vec<usize> = (0..4).map(|_| pool.acquire()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        pool.reset();
        let ids: Vec<usize> = (0..4).map(|_| pool.acquire()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(pool.len(), 4);
    }
}

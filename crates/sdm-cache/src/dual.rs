//! The production cache organisation: a unified row cache built from two
//! internally-specialised engines (paper §4.3, Figure 6).
//!
//! Rows of at most `small_row_threshold` bytes (255 B in the paper) are
//! routed to the memory-optimized engine; larger rows go to the
//! CPU-optimized engine. Per-table enablement lets placement policies turn
//! caching off for tables with no temporal locality (Table 5, "per table
//! cache enablement").

use crate::config::CacheConfig;
use crate::cpu_optimized::CpuOptimizedCache;
use crate::memory_optimized::MemoryOptimizedCache;
use crate::row_cache::{RowCache, RowKey};
use crate::stats::CacheStats;
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;
use std::collections::HashSet;

/// The dual-engine unified row cache.
#[derive(Debug)]
pub struct DualRowCache {
    small: MemoryOptimizedCache,
    large: CpuOptimizedCache,
    small_row_threshold: usize,
    disabled_tables: HashSet<u32>,
    merged_stats: CacheStats,
}

impl DualRowCache {
    /// Builds the dual cache from a [`CacheConfig`].
    pub fn new(config: CacheConfig) -> Self {
        let small = MemoryOptimizedCache::with_expected_row_size(
            config.memory_optimized_budget().max(Bytes(1)),
            config.small_row_threshold.clamp(32, 255),
        );
        let large = CpuOptimizedCache::new(config.cpu_optimized_budget().max(Bytes(1)));
        DualRowCache {
            small,
            large,
            small_row_threshold: config.small_row_threshold,
            disabled_tables: HashSet::new(),
            merged_stats: CacheStats::new(),
        }
    }

    /// Disables caching for a table (its lookups always miss and its rows
    /// are never admitted).
    pub fn disable_table(&mut self, table: u32) {
        self.disabled_tables.insert(table);
    }

    /// Re-enables caching for a table.
    pub fn enable_table(&mut self, table: u32) {
        self.disabled_tables.remove(&table);
    }

    /// Returns true if the table participates in caching.
    pub fn table_enabled(&self, table: u32) -> bool {
        !self.disabled_tables.contains(&table)
    }

    /// The row-size threshold routing to the memory-optimized engine.
    pub fn small_row_threshold(&self) -> usize {
        self.small_row_threshold
    }

    /// Side-effect-free probe across both engines: returns the cached bytes
    /// without recording a hit/miss or touching recency state. The serving
    /// path uses this to software-prefetch the next row of a pooled scan;
    /// a [`RowCache::get`] here would double-count hits and reorder the LRU.
    pub fn peek(&self, key: &RowKey) -> Option<&[u8]> {
        if !self.table_enabled(key.table) {
            return None;
        }
        self.small.peek(key).or_else(|| self.large.peek(key))
    }

    /// Statistics of the memory-optimized engine.
    pub fn small_engine_stats(&self) -> &CacheStats {
        self.small.stats()
    }

    /// Statistics of the CPU-optimized engine.
    pub fn large_engine_stats(&self) -> &CacheStats {
        self.large.stats()
    }

    /// Payload bytes currently backing both engines' arenas (live plus
    /// retained free-list ranges). Compare against [`RowCache::memory_used`]
    /// to observe the arenas' fragmentation slack (bounded by the coalescing
    /// free lists — see [`crate::SlabArena`]).
    pub fn resident_bytes(&self) -> Bytes {
        Bytes(self.small.stats().resident_bytes + self.large.stats().resident_bytes)
    }

    /// Payload bytes of live entries across both engines.
    pub fn live_bytes(&self) -> Bytes {
        Bytes(self.small.stats().live_bytes + self.large.stats().live_bytes)
    }
}

impl RowCache for DualRowCache {
    fn get(&mut self, key: &RowKey) -> Option<&[u8]> {
        if !self.table_enabled(key.table) {
            self.merged_stats.record_miss();
            return None;
        }
        // The row size is not known at lookup time; probe the small engine
        // first (the overwhelmingly common case), then the large engine.
        // `contains` pre-checks keep the borrow of the winning engine's
        // arena disjoint from the other engine's statistics update.
        if self.small.contains(key) {
            self.merged_stats.record_hit();
            return self.small.get(key);
        }
        self.small.note_routed_miss();
        if self.large.contains(key) {
            self.merged_stats.record_hit();
            return self.large.get(key);
        }
        self.large.note_routed_miss();
        self.merged_stats.record_miss();
        None
    }

    fn insert(&mut self, key: RowKey, value: &[u8]) {
        if !self.table_enabled(key.table) {
            return;
        }
        if value.len() <= self.small_row_threshold {
            self.small.insert(key, value);
        } else {
            self.large.insert(key, value);
        }
    }

    fn contains(&self, key: &RowKey) -> bool {
        self.table_enabled(key.table) && (self.small.contains(key) || self.large.contains(key))
    }

    fn len(&self) -> usize {
        self.small.len() + self.large.len()
    }

    fn memory_used(&self) -> Bytes {
        self.small.memory_used() + self.large.memory_used()
    }

    fn budget(&self) -> Bytes {
        self.small.budget() + self.large.budget()
    }

    fn lookup_cost(&self) -> SimDuration {
        // Dominated by the memory-optimized probe.
        self.small.lookup_cost()
    }

    fn stats(&self) -> &CacheStats {
        &self.merged_stats
    }

    fn peek(&self, key: &RowKey) -> Option<&[u8]> {
        DualRowCache::peek(self, key)
    }

    fn clear(&mut self) {
        self.small.clear();
        self.large.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> DualRowCache {
        DualRowCache::new(CacheConfig::with_total_budget(Bytes::from_mib(1)))
    }

    #[test]
    fn routes_by_row_size() {
        let mut c = cache();
        let small_key = RowKey::new(1, 1);
        let large_key = RowKey::new(1, 2);
        c.insert(small_key, &[0u8; 128]);
        c.insert(large_key, &[0u8; 400]);
        assert_eq!(c.small.len(), 1);
        assert_eq!(c.large.len(), 1);
        assert!(c.get(&small_key).is_some());
        assert!(c.get(&large_key).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn threshold_boundary_row_goes_to_small_engine() {
        let mut c = cache();
        c.insert(RowKey::new(0, 0), &[0u8; 255]);
        c.insert(RowKey::new(0, 1), &[0u8; 256]);
        assert_eq!(c.small.len(), 1);
        assert_eq!(c.large.len(), 1);
        assert_eq!(c.small_row_threshold(), 255);
    }

    #[test]
    fn disabled_tables_bypass_the_cache() {
        let mut c = cache();
        c.disable_table(7);
        assert!(!c.table_enabled(7));
        c.insert(RowKey::new(7, 1), &[1u8; 64]);
        assert!(c.get(&RowKey::new(7, 1)).is_none());
        assert_eq!(c.len(), 0);
        // Other tables unaffected.
        c.insert(RowKey::new(8, 1), &[1u8; 64]);
        assert!(c.get(&RowKey::new(8, 1)).is_some());
        c.enable_table(7);
        c.insert(RowKey::new(7, 1), &[1u8; 64]);
        assert!(c.contains(&RowKey::new(7, 1)));
    }

    #[test]
    fn peek_finds_rows_without_stats_or_lru_side_effects() {
        let mut c = cache();
        c.insert(RowKey::new(0, 1), &[7u8; 64]); // small engine
        c.insert(RowKey::new(0, 2), &[9u8; 400]); // large engine
        assert_eq!(c.peek(&RowKey::new(0, 1)), Some(&[7u8; 64][..]));
        assert_eq!(c.peek(&RowKey::new(0, 2)), Some(&[9u8; 400][..]));
        assert_eq!(c.peek(&RowKey::new(0, 3)), None);
        assert_eq!(c.stats().hits, 0, "peek must not record a hit");
        assert_eq!(c.stats().misses, 0, "peek must not record a miss");
        // Disabled tables stay invisible to peek, like get.
        c.disable_table(4);
        c.enable_table(4); // re-enable so the insert lands
        c.insert(RowKey::new(4, 0), &[1u8; 16]);
        c.disable_table(4);
        assert_eq!(c.peek(&RowKey::new(4, 0)), None);
    }

    #[test]
    fn merged_stats_cover_both_engines() {
        let mut c = cache();
        c.insert(RowKey::new(0, 1), &[0u8; 64]);
        c.insert(RowKey::new(0, 2), &[0u8; 400]);
        c.get(&RowKey::new(0, 1));
        c.get(&RowKey::new(0, 2));
        c.get(&RowKey::new(0, 3));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn budget_is_split_between_engines() {
        let c = cache();
        assert!(c.small.budget() > c.large.budget());
        assert_eq!(c.budget(), c.small.budget() + c.large.budget());
        assert_eq!(c.memory_used(), Bytes::ZERO);
    }

    #[test]
    fn clear_empties_both_engines() {
        let mut c = cache();
        c.insert(RowKey::new(0, 1), &[0u8; 64]);
        c.insert(RowKey::new(0, 2), &[0u8; 400]);
        c.clear();
        assert!(c.is_empty());
    }
}

//! The pooled-embedding cache (paper §4.4, Algorithm 1).
//!
//! For every embedding operator the engine reads `pooling_factor` rows and
//! dequantises + pools them. If the *same full sequence of indices* shows up
//! again for the same table — which the paper measures at around 5 % of
//! requests (Table 3, the `c = P` scheme) — the pooled output vector can be
//! served directly, skipping the row lookups, possible SM IO, dequantisation
//! and pooling.
//!
//! Keys are an order-invariant hash of the index sequence so `[3, 1, 2]` and
//! `[1, 2, 3]` hit the same entry (pooling is a sum, so order does not
//! matter). Only sequences of at least `LenThreshold` indices are admitted —
//! short sequences are cheap to recompute and would pollute the cache
//! (Table 4).
//!
//! The cache is a thin wrapper over the shared [`ArenaLru`] engine core with
//! `f32` payload elements and the sequence length as per-entry tag, so a hit
//! returns a borrowed `&[f32]` and touches no allocator; inserts only copy
//! when the entry is actually admitted.

use crate::engine::ArenaLru;
use crate::stats::CacheStats;
use sdm_metrics::units::Bytes;

/// Order-invariant key of one pooled-embedding request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PooledKey {
    table: u32,
    /// Commutative sum of mixed per-index hashes.
    sum: u64,
    /// Commutative XOR of mixed per-index hashes.
    xor: u64,
    /// Sequence length (guards against sum/xor collisions between sequences
    /// of different lengths).
    len: u32,
}

impl PooledKey {
    /// Builds the key for a table and index sequence.
    pub fn new(table: u32, indices: &[u64]) -> Self {
        let mut sum = 0u64;
        let mut xor = 0u64;
        for &idx in indices {
            let h = Self::mix(idx);
            sum = sum.wrapping_add(h);
            xor ^= h.rotate_left((idx % 63) as u32);
        }
        PooledKey {
            table,
            sum,
            xor,
            len: indices.len() as u32,
        }
    }

    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The owning table.
    pub fn table(&self) -> u32 {
        self.table
    }

    /// Length of the keyed sequence.
    pub fn sequence_len(&self) -> u32 {
        self.len
    }
}

/// Metadata overhead per pooled entry (key, LRU links, allocation headers).
const ENTRY_OVERHEAD: usize = 64;

/// LRU cache of pooled embedding outputs, bounded by a byte budget.
#[derive(Debug)]
pub struct PooledEmbeddingCache {
    /// Tag: the admitted sequence length, read back on hits to maintain the
    /// "Hit Avg Len" statistic.
    engine: ArenaLru<PooledKey, u32, f32>,
    len_threshold: usize,
    hit_len_total: u64,
    skipped_short: u64,
}

impl PooledEmbeddingCache {
    /// Creates a pooled-embedding cache with a byte budget and the minimum
    /// admissible sequence length (`LenThreshold`).
    pub fn new(budget: Bytes, len_threshold: usize) -> Self {
        PooledEmbeddingCache {
            engine: ArenaLru::new(budget, ENTRY_OVERHEAD),
            len_threshold: len_threshold.max(1),
            hit_len_total: 0,
            skipped_short: 0,
        }
    }

    /// The admission length threshold.
    pub fn len_threshold(&self) -> usize {
        self.len_threshold
    }

    /// Whether a sequence of `len` indices is even eligible for this cache.
    pub fn eligible(&self, len: usize) -> bool {
        len >= self.len_threshold
    }

    /// Looks up the pooled output for a table + index sequence, returning a
    /// slice borrowed from the cache's arena.
    ///
    /// Ineligible (short) sequences return `None` without being counted as
    /// misses — the paper's Algorithm 1 only consults the cache above the
    /// threshold.
    pub fn lookup(&mut self, table: u32, indices: &[u64]) -> Option<&[f32]> {
        if !self.eligible(indices.len()) {
            self.skipped_short += 1;
            return None;
        }
        let key = PooledKey::new(table, indices);
        let sequence_len = match self.engine.get(&key) {
            Some((_, &sequence_len)) => sequence_len,
            None => return None,
        };
        self.hit_len_total += u64::from(sequence_len);
        // Recency and hit accounting happened in `get`; re-borrow the
        // payload side-effect-free now that the statistic is updated.
        self.engine.peek(&key)
    }

    /// Side-effect-free probe: returns the pooled output without touching
    /// the LRU order or any statistic (including `skipped_short`).
    pub fn peek(&self, table: u32, indices: &[u64]) -> Option<&[f32]> {
        self.engine.peek(&PooledKey::new(table, indices))
    }

    /// Inserts the pooled output for a table + index sequence. Ineligible
    /// sequences are ignored; the vector is only copied (into the cache's
    /// arena) when the entry is actually admitted.
    pub fn insert(&mut self, table: u32, indices: &[u64], vector: &[f32]) {
        if !self.eligible(indices.len()) {
            return;
        }
        let key = PooledKey::new(table, indices);
        self.engine.insert(key, vector, indices.len() as u32);
    }

    /// Number of cached pooled vectors.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// Bytes consumed.
    pub fn memory_used(&self) -> Bytes {
        self.engine.memory_used()
    }

    /// Configured budget.
    pub fn budget(&self) -> Bytes {
        self.engine.budget()
    }

    /// Cache statistics (hits/misses count only eligible sequences).
    pub fn stats(&self) -> &CacheStats {
        self.engine.stats()
    }

    /// Number of lookups skipped because the sequence was below the
    /// threshold.
    pub fn skipped_short(&self) -> u64 {
        self.skipped_short
    }

    /// Average index-sequence length of hits ("Hit Avg Len" in paper
    /// Table 4); zero before the first hit.
    pub fn average_hit_length(&self) -> f64 {
        if self.engine.stats().hits == 0 {
            0.0
        } else {
            self.hit_len_total as f64 / self.engine.stats().hits as f64
        }
    }

    /// Drops all cached vectors (statistics are kept).
    pub fn clear(&mut self) {
        self.engine.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_invariant_key() {
        let a = PooledKey::new(1, &[5, 9, 2, 7]);
        let b = PooledKey::new(1, &[7, 2, 9, 5]);
        let c = PooledKey::new(1, &[5, 9, 2, 8]);
        let d = PooledKey::new(2, &[5, 9, 2, 7]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.sequence_len(), 4);
        assert_eq!(d.table(), 2);
    }

    #[test]
    fn repeated_indices_produce_distinct_keys() {
        // Multisets must be distinguished from sets: [1, 1, 2] != [1, 2].
        let a = PooledKey::new(0, &[1, 1, 2]);
        let b = PooledKey::new(0, &[1, 2]);
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_hit_after_insert_in_any_order() {
        let mut c = PooledEmbeddingCache::new(Bytes::from_kib(64), 2);
        let pooled = vec![1.0f32, 2.0, 3.0];
        assert!(c.lookup(3, &[10, 20, 30]).is_none());
        c.insert(3, &[10, 20, 30], &pooled);
        assert_eq!(c.lookup(3, &[30, 10, 20]).unwrap(), pooled.as_slice());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.average_hit_length() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn short_sequences_are_not_admitted_or_counted() {
        let mut c = PooledEmbeddingCache::new(Bytes::from_kib(64), 8);
        assert!(!c.eligible(4));
        assert!(c.lookup(0, &[1, 2, 3]).is_none());
        c.insert(0, &[1, 2, 3], &[1.0]);
        assert!(c.is_empty());
        assert_eq!(c.stats().lookups(), 0);
        assert_eq!(c.skipped_short(), 1);
        assert_eq!(c.len_threshold(), 8);
    }

    #[test]
    fn budget_is_respected_with_lru_eviction() {
        // Each entry: 16 floats * 4 + 64 = 128 bytes; budget of 512 → 4 entries.
        let mut c = PooledEmbeddingCache::new(Bytes(512), 1);
        for t in 0..10u32 {
            let indices: Vec<u64> = (0..5).map(|i| (t as u64) * 100 + i).collect();
            c.insert(t, &indices, &[0.5f32; 16]);
        }
        assert!(c.len() <= 4);
        assert!(c.memory_used() <= c.budget());
        assert!(c.stats().evictions >= 6);
        // Churn at one vector size must recycle arena ranges, not grow them.
        assert!(
            c.engine.arena_len() <= 5 * 16,
            "{} arena floats",
            c.engine.arena_len()
        );
    }

    #[test]
    fn oversized_vector_rejected() {
        let mut c = PooledEmbeddingCache::new(Bytes(100), 1);
        c.insert(0, &[1, 2], &[0.0f32; 1000]);
        assert!(c.is_empty());
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut c = PooledEmbeddingCache::new(Bytes::from_kib(4), 2);
        assert!(c.peek(0, &[1]).is_none(), "ineligible peek must be None");
        assert_eq!(c.skipped_short(), 0, "peek must not count skips");
        c.insert(0, &[4, 5, 6], &[1.0; 4]);
        assert_eq!(c.peek(0, &[6, 5, 4]).unwrap(), &[1.0f32; 4]);
        assert_eq!(c.stats().lookups(), 0, "peek must not count hits/misses");
        assert!((c.average_hit_length() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = PooledEmbeddingCache::new(Bytes::from_kib(4), 1);
        c.insert(0, &[1, 2, 3], &[1.0; 4]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.memory_used(), Bytes::ZERO);
    }

    #[test]
    fn replacement_of_same_sequence_updates_value() {
        let mut c = PooledEmbeddingCache::new(Bytes::from_kib(4), 1);
        c.insert(0, &[4, 5, 6], &[1.0; 4]);
        c.insert(0, &[6, 5, 4], &[2.0; 4]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(0, &[4, 5, 6]).unwrap(), &[2.0f32; 4]);
    }
}

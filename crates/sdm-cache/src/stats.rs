//! Cache statistics.

use std::fmt;

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the key resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Insertions performed.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Insertions rejected because a single entry exceeded the budget.
    pub rejected: u64,
    /// Payload bytes currently backing the cache's arena (live entries plus
    /// freed ranges retained on the exact-size free lists). This is the
    /// cache's actual resident footprint, which can exceed the modelled
    /// `memory_used()` under mixed-size churn — the `SlabArena`
    /// over-retention the ROADMAP's compaction item describes, made
    /// measurable here instead of staying silent.
    pub resident_bytes: u64,
    /// Payload bytes of entries currently live in the cache.
    pub live_bytes: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Records a hit.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Bytes of backing memory retained beyond the live payload: the
    /// exact-size free-list slack the arena-compaction ROADMAP item is
    /// about. Zero for a cache whose entries all share one size.
    pub fn retained_bytes(&self) -> u64 {
        self.resident_bytes.saturating_sub(self.live_bytes)
    }

    /// Merges another stats block into this one. Counters add; the
    /// residency gauges add too, so a merged block reports the aggregate
    /// footprint of the merged caches.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.rejected += other.rejected;
        self.resident_bytes += other.resident_bytes;
        self.live_bytes += other.live_bytes;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} hit_rate={:.2}% insertions={} evictions={}",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.insertions,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut s = CacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.lookups(), 3);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            insertions: 3,
            evictions: 4,
            rejected: 5,
            resident_bytes: 100,
            live_bytes: 60,
        };
        a.merge(&a.clone());
        assert_eq!(a.hits, 2);
        assert_eq!(a.rejected, 10);
        assert_eq!(a.resident_bytes, 200);
        assert_eq!(a.live_bytes, 120);
        assert_eq!(a.retained_bytes(), 80);
    }

    #[test]
    fn display_contains_percentage() {
        let s = CacheStats {
            hits: 1,
            misses: 1,
            ..Default::default()
        };
        assert!(s.to_string().contains("50.00%"));
    }
}

//! Fast-memory caches for the Software Defined Memory stack.
//!
//! Paper §4.2–§4.4: access to the embedding rows kept on slow memory shows
//! strong temporal locality (power-law index popularity) and essentially no
//! spatial locality, so the SDM stack keeps an application-level **unified
//! row cache** in fast memory in front of the SM devices, rather than an OS
//! page cache or per-table caches. This crate provides:
//!
//! * [`MemoryOptimizedCache`] — low per-entry overhead, bucketed lookup
//!   (cheap in memory, slightly more CPU per hit);
//! * [`CpuOptimizedCache`] — classic hash + LRU index (more bytes per entry,
//!   cheaper CPU per hit);
//! * [`DualRowCache`] — the paper's production choice: route tables with
//!   rows ≤ 255 B to the memory-optimized engine and larger rows to the
//!   CPU-optimized engine (Figure 6);
//! * [`PooledEmbeddingCache`] — caches the *output* of whole embedding
//!   operators keyed by an order-invariant hash of the full index sequence
//!   (§4.4, Algorithm 1), skipping lookup + dequantisation + pooling on a
//!   hit;
//! * [`SharedRowTier`] — the host-shared second tier behind the per-shard
//!   private caches: K lock-striped arena-backed LRU partitions with a
//!   `&self` API, recovering the cross-shard row reuse that fully private
//!   per-shard caches lose;
//! * [`WarmupTracker`] — detects when the cache has reached steady state
//!   after a model update (§A.4);
//! * [`TrackedMutex`] / [`assert_no_locks_held`] — debug-build lock
//!   discipline instrumentation (order-inversion detection, "no stripe
//!   lock across SM submit" enforcement) wrapping the [`SharedRowTier`]
//!   stripe locks; a transparent `Mutex` in release builds.
//!
//! All caches store payloads in per-cache [`SlabArena`]s and return
//! *borrowed* slices on hit — the serving loop dequantises straight out of
//! the cache, so a warm lookup allocates nothing and copies nothing.
//!
//! # Example
//!
//! ```
//! use sdm_cache::{CacheConfig, DualRowCache, RowCache, RowKey};
//! use sdm_metrics::units::Bytes;
//!
//! let mut cache = DualRowCache::new(CacheConfig::with_total_budget(Bytes::from_mib(1)));
//! let key = RowKey::new(3, 42);
//! assert!(cache.get(&key).is_none());
//! cache.insert(key, &[7u8; 128]);
//! assert_eq!(cache.get(&key).unwrap(), &[7u8; 128]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod arena;
mod config;
mod cpu_optimized;
mod dual;
mod engine;
mod error;
mod lru;
mod memory_optimized;
mod pool;
mod pooled;
mod row_cache;
mod shared;
mod stats;
mod tracked;
mod warmup;

pub use arena::SlabArena;
pub use config::{CacheConfig, TierAdmission};
pub use cpu_optimized::CpuOptimizedCache;
pub use dual::DualRowCache;
pub use engine::{AdmissionPolicy, AlwaysAdmit, ArenaLru, SecondTouch};
pub use error::CacheError;
pub use memory_optimized::MemoryOptimizedCache;
pub use pool::SlotPool;
pub use pooled::{PooledEmbeddingCache, PooledKey};
pub use row_cache::{RowCache, RowKey};
pub use shared::{SharedHit, SharedRowTier};
pub use stats::CacheStats;
pub use tracked::{assert_no_locks_held, TrackedMutex};
#[cfg(debug_assertions)]
pub use tracked::{LockClassId, LockRegistry, TrackedMutexGuard};
pub use warmup::{warmup_capacity_overhead, WarmupTracker};

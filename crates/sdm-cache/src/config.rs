//! Cache configuration (the paper's cache-side "Tuning API").

use crate::error::CacheError;
use sdm_metrics::units::Bytes;

/// Admission policy selection for the shared row tier
/// ([`crate::SharedRowTier`]).
///
/// Maps onto the [`crate::AdmissionPolicy`] implementations: `Always` is
/// bit-identical to the pre-policy tier; `SecondTouch` keeps single-touch
/// tail rows from churning the stripes on skewed streams (see
/// [`crate::SecondTouch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierAdmission {
    /// Admit every promotion ([`crate::AlwaysAdmit`], the default).
    #[default]
    Always,
    /// Admit a row only on its second touch within the doorkeeper window
    /// ([`crate::SecondTouch`]).
    SecondTouch,
}

/// Configuration for the fast-memory caches.
///
/// Mirrors the tuning options the paper exposes at model-deployment time:
/// cache sizes, the number of partitions, the row-size routing threshold of
/// the dual cache and the pooled-embedding-cache length threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total fast-memory budget for the unified row cache.
    pub row_cache_budget: Bytes,
    /// Fraction of the budget given to the memory-optimized engine
    /// (the rest goes to the CPU-optimized engine).
    pub memory_optimized_fraction: f64,
    /// Rows of at most this many bytes are routed to the memory-optimized
    /// engine (paper: embedding dim ≤ 255 B).
    pub small_row_threshold: usize,
    /// Number of hash partitions (bucket groups) in the memory-optimized
    /// engine.
    pub partitions: usize,
    /// Budget of the pooled-embedding cache (0 disables it).
    pub pooled_cache_budget: Bytes,
    /// Minimum index-sequence length admitted to the pooled-embedding cache
    /// (`LenThreshold` in paper Table 4).
    pub pooled_len_threshold: usize,
    /// Budget of the host-shared second cache tier
    /// ([`crate::SharedRowTier`]) sitting behind the per-shard private
    /// caches (0 disables it, the default). This is a *host-level* budget:
    /// [`CacheConfig::divide_among_indexed`] does not divide it — the
    /// serving host carves the tier out once and hands every shard a
    /// handle to the same instance.
    pub shared_tier_budget: Bytes,
    /// Number of lock stripes in the shared tier.
    pub shared_tier_stripes: usize,
    /// Admission policy of the shared tier (ignored while the tier is
    /// disabled).
    pub shared_tier_admission: TierAdmission,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            row_cache_budget: Bytes::from_mib(64),
            memory_optimized_fraction: 0.8,
            small_row_threshold: 255,
            partitions: 16,
            pooled_cache_budget: Bytes::from_mib(4),
            pooled_len_threshold: 4,
            shared_tier_budget: Bytes::ZERO,
            shared_tier_stripes: 8,
            shared_tier_admission: TierAdmission::Always,
        }
    }
}

impl CacheConfig {
    /// Convenience constructor: default knobs with the given total row-cache
    /// budget.
    pub fn with_total_budget(budget: Bytes) -> Self {
        CacheConfig {
            row_cache_budget: budget,
            ..CacheConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroBudget`] when the row-cache budget is zero
    /// and [`CacheError::InvalidConfig`] for out-of-range fractions or a
    /// zero partition count.
    pub fn validate(&self) -> Result<(), CacheError> {
        if self.row_cache_budget.is_zero() {
            return Err(CacheError::ZeroBudget);
        }
        if !(0.0..=1.0).contains(&self.memory_optimized_fraction) {
            return Err(CacheError::InvalidConfig {
                reason: format!(
                    "memory_optimized_fraction {} outside [0, 1]",
                    self.memory_optimized_fraction
                ),
            });
        }
        if self.partitions == 0 {
            return Err(CacheError::InvalidConfig {
                reason: "partitions must be at least 1".into(),
            });
        }
        if !self.shared_tier_budget.is_zero() && self.shared_tier_stripes == 0 {
            return Err(CacheError::InvalidConfig {
                reason: "shared_tier_stripes must be at least 1 when the shared tier is enabled"
                    .into(),
            });
        }
        Ok(())
    }

    /// The per-shard slice (`index` of `shards`) of the fast-memory cache
    /// budgets.
    ///
    /// The row-cache and pooled-cache budgets are host-shared fast memory,
    /// split **losslessly**: every shard receives `budget / shards`, and
    /// the remainder bytes go one each to the first shards, so the slices
    /// always sum exactly to the host budget (a plain truncating division
    /// silently dropped up to `shards - 1` bytes per resource). The
    /// structural knobs (thresholds, partition count, engine split)
    /// describe *how* a cache behaves, not how much memory it owns, and
    /// carry over unchanged — as does the shared-tier budget, which is a
    /// host-level resource the serving host carves out exactly once. A
    /// disabled pooled cache (zero budget) stays disabled at any shard
    /// count.
    pub fn divide_among_indexed(&self, shards: usize, index: usize) -> CacheConfig {
        let n = shards.max(1) as u64;
        CacheConfig {
            row_cache_budget: self.row_cache_budget.split_among(n, index as u64),
            pooled_cache_budget: self.pooled_cache_budget.split_among(n, index as u64),
            ..self.clone()
        }
    }

    /// The first (largest) per-shard slice; see
    /// [`CacheConfig::divide_among_indexed`]. `divide_among(1)` is the
    /// bit-identical identity.
    pub fn divide_among(&self, shards: usize) -> CacheConfig {
        self.divide_among_indexed(shards, 0)
    }

    /// Budget for the memory-optimized engine.
    pub fn memory_optimized_budget(&self) -> Bytes {
        Bytes((self.row_cache_budget.as_u64() as f64 * self.memory_optimized_fraction) as u64)
    }

    /// Budget for the CPU-optimized engine.
    pub fn cpu_optimized_budget(&self) -> Bytes {
        self.row_cache_budget
            .saturating_sub(self.memory_optimized_budget())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_splits_budget() {
        let c = CacheConfig::default();
        assert!(c.validate().is_ok());
        let total = c.memory_optimized_budget() + c.cpu_optimized_budget();
        assert_eq!(total, c.row_cache_budget);
        assert!(c.memory_optimized_budget() > c.cpu_optimized_budget());
    }

    #[test]
    fn invalid_configs_are_detected() {
        let c = CacheConfig {
            row_cache_budget: Bytes::ZERO,
            ..Default::default()
        };
        assert!(matches!(c.validate(), Err(CacheError::ZeroBudget)));

        let c = CacheConfig {
            memory_optimized_fraction: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            c.validate(),
            Err(CacheError::InvalidConfig { .. })
        ));

        let c = CacheConfig {
            partitions: 0,
            ..Default::default()
        };
        assert!(matches!(
            c.validate(),
            Err(CacheError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn divide_among_splits_budgets_and_keeps_knobs() {
        let c = CacheConfig::with_total_budget(Bytes::from_mib(16));
        let per_shard = c.divide_among(4);
        assert_eq!(per_shard.row_cache_budget, Bytes::from_mib(4));
        assert_eq!(
            per_shard.pooled_cache_budget,
            Bytes(c.pooled_cache_budget.as_u64() / 4)
        );
        assert_eq!(per_shard.partitions, c.partitions);
        assert_eq!(per_shard.small_row_threshold, c.small_row_threshold);
        assert!(per_shard.validate().is_ok());
        // Degenerate inputs: zero shards clamp to one, disabled stays
        // disabled.
        assert_eq!(c.divide_among(0), c.divide_among(1));
        let disabled = CacheConfig {
            pooled_cache_budget: Bytes::ZERO,
            ..c
        };
        assert!(disabled.divide_among(8).pooled_cache_budget.is_zero());
    }

    #[test]
    fn with_total_budget_sets_budget_only() {
        let c = CacheConfig::with_total_budget(Bytes::from_gib(1));
        assert_eq!(c.row_cache_budget, Bytes::from_gib(1));
        assert_eq!(c.small_row_threshold, 255);
    }

    #[test]
    fn indexed_slices_sum_exactly_at_awkward_shard_counts() {
        // Budgets chosen so nothing divides evenly: the old truncating
        // division lost the remainder bytes from the host aggregate.
        let c = CacheConfig {
            row_cache_budget: Bytes(10_000_019), // prime
            pooled_cache_budget: Bytes(65_537),  // prime
            shared_tier_budget: Bytes::from_mib(3),
            ..CacheConfig::default()
        };
        for shards in [1usize, 2, 3, 5, 7] {
            let row: u64 = (0..shards)
                .map(|i| c.divide_among_indexed(shards, i).row_cache_budget.as_u64())
                .sum();
            let pooled: u64 = (0..shards)
                .map(|i| {
                    c.divide_among_indexed(shards, i)
                        .pooled_cache_budget
                        .as_u64()
                })
                .sum();
            assert_eq!(row, c.row_cache_budget.as_u64(), "{shards} shards: row");
            assert_eq!(
                pooled,
                c.pooled_cache_budget.as_u64(),
                "{shards} shards: pooled"
            );
            // The shared-tier budget is host-level: never divided.
            for i in 0..shards {
                assert_eq!(
                    c.divide_among_indexed(shards, i).shared_tier_budget,
                    c.shared_tier_budget
                );
            }
        }
        // divide_among(1) stays the bit-identical identity.
        assert_eq!(c.divide_among(1), c);
    }

    #[test]
    fn shared_tier_knobs_validate() {
        let mut c = CacheConfig::default();
        assert!(c.shared_tier_budget.is_zero(), "disabled by default");
        c.shared_tier_budget = Bytes::from_mib(1);
        assert!(c.validate().is_ok());
        c.shared_tier_stripes = 0;
        assert!(matches!(
            c.validate(),
            Err(CacheError::InvalidConfig { .. })
        ));
        // A zero budget ignores the stripe count (the tier is off).
        c.shared_tier_budget = Bytes::ZERO;
        assert!(c.validate().is_ok());
    }
}

//! The generic arena-LRU engine core and the admission-policy seam.
//!
//! Four caches in this workspace want the identical organisation: a hash
//! index over slot records, payloads in a [`SlabArena`], an intrusive
//! [`LruList`] for exact recency, byte accounting against a budget, and
//! [`CacheStats`]. They used to hand-mirror the same eviction/accounting
//! bodies ([`crate::CpuOptimizedCache`], [`crate::PooledEmbeddingCache`]
//! and every [`crate::SharedRowTier`] stripe each carried a copy), which
//! meant every policy change cost parallel edits — and let a bug hide in
//! one copy while the others' tests stayed green. [`ArenaLru`] is that
//! engine, once; the engines above are thin typed wrappers that add only
//! their keying/semantic layer.
//!
//! # Type parameters
//!
//! * `K` — the entry key (a row key, a pooled-sequence key, …).
//! * `T` — a small per-entry tag carried alongside the payload: the shared
//!   tier stores the promoting shard, the pooled cache its sequence length,
//!   the row caches nothing (`()`).
//! * `E` — the payload element (`u8` rows, `f32` pooled vectors). Entry
//!   cost is `len × size_of::<E>() + entry_overhead`.
//!
//! # Contract (frozen by `tests/refactor_identity.rs`)
//!
//! The insert body preserves the exact observable behaviour the wrappers
//! had before the extraction: oversize rejection first; same-length
//! replacement in place (no allocator traffic); differently-sized
//! replacement as remove + reinsert; LRU eviction until the entry fits;
//! post-eviction rejection when it still cannot; counters updated at the
//! same points.
//!
//! # Admission
//!
//! [`AdmissionPolicy`] decides whether a **not-yet-resident** key may enter
//! a cache at all (resident refreshes are always allowed — denying them
//! would drop data already paid for). [`AlwaysAdmit`] is the bit-identical
//! default; [`SecondTouch`] is a bounded doorkeeper that admits a key only
//! on its second touch within the doorkeeper's memory, which keeps
//! single-touch tail rows from churning the shared tier's stripes. The
//! policy sees only a mixed 64-bit key hash, so one implementation serves
//! every key type.

use crate::arena::SlabArena;
use crate::lru::LruList;
use crate::stats::CacheStats;
use sdm_metrics::units::Bytes;
use std::collections::HashMap;
use std::hash::Hash;

/// One entry's record: its key (for reverse lookup at eviction), payload
/// range and per-entry tag.
#[derive(Debug, Clone, Copy)]
struct EngineSlot<K, T> {
    key: K,
    start: usize,
    len: usize,
    tag: T,
}

/// The generic arena-backed exact-LRU cache engine.
///
/// See the [module docs](self) for the role of `K`, `T` and `E`.
#[derive(Debug)]
pub struct ArenaLru<K, T = (), E = u8> {
    map: HashMap<K, usize>,
    slots: Vec<EngineSlot<K, T>>,
    free_slots: Vec<usize>,
    lru: LruList,
    arena: SlabArena<E>,
    budget: u64,
    used: u64,
    entry_overhead: usize,
    stats: CacheStats,
}

impl<K, T, E> ArenaLru<K, T, E>
where
    K: Eq + Hash + Copy,
    T: Copy,
    E: Copy + Default,
{
    /// Creates an engine with the given byte budget and per-entry metadata
    /// overhead (hash node, LRU links, slot record — each wrapper's
    /// published `ENTRY_OVERHEAD`).
    pub fn new(budget: Bytes, entry_overhead: usize) -> Self {
        ArenaLru {
            map: HashMap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            lru: LruList::new(),
            arena: SlabArena::new(),
            budget: budget.as_u64(),
            used: 0,
            entry_overhead,
            stats: CacheStats::new(),
        }
    }

    fn entry_cost(&self, payload_len: usize) -> u64 {
        (payload_len * std::mem::size_of::<E>() + self.entry_overhead) as u64
    }

    /// Refreshes the residency gauges from the arena after any mutation
    /// that allocates or frees payload ranges.
    fn note_residency(&mut self) {
        let element = std::mem::size_of::<E>();
        self.stats.resident_bytes = (self.arena.len() * element) as u64;
        self.stats.live_bytes = (self.arena.live_len() * element) as u64;
    }

    fn remove_slot(&mut self, slot: usize) {
        let s = self.slots[slot];
        self.map.remove(&s.key);
        self.lru.unlink(slot);
        self.arena.free(s.start, s.len);
        self.free_slots.push(slot);
        self.used -= self.entry_cost(s.len);
    }

    /// Looks an entry up, refreshing its recency and the hit/miss counters.
    /// Returns the payload slice (borrowed from the engine's arena) and the
    /// entry's tag.
    pub fn get(&mut self, key: &K) -> Option<(&[E], &T)> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.lru.touch(slot);
                self.stats.record_hit();
                let s = &self.slots[slot];
                Some((self.arena.slice(s.start, s.len), &s.tag))
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Side-effect-free probe: returns the payload without touching the LRU
    /// order or the hit/miss statistics. Prefetch probes and routing layers
    /// must not perturb eviction order or hit rates.
    pub fn peek(&self, key: &K) -> Option<&[E]> {
        self.map.get(key).map(|&slot| {
            let s = &self.slots[slot];
            self.arena.slice(s.start, s.len)
        })
    }

    /// Side-effect-free probe of an entry's tag.
    pub fn peek_tag(&self, key: &K) -> Option<&T> {
        self.map.get(key).map(|&slot| &self.slots[slot].tag)
    }

    /// Records a miss observed by a routing layer that probed this engine
    /// without calling [`ArenaLru::get`] (see [`crate::DualRowCache`]).
    pub fn note_routed_miss(&mut self) {
        self.stats.record_miss();
    }

    /// Inserts (or replaces) an entry, evicting LRU entries as needed to
    /// stay within the byte budget. Returns whether the entry is resident
    /// afterwards (`false` when it cannot fit even after evicting
    /// everything, counted in `CacheStats::rejected`).
    pub fn insert(&mut self, key: K, value: &[E], tag: T) -> bool {
        let cost = self.entry_cost(value.len());
        if cost > self.budget {
            self.stats.rejected += 1;
            return false;
        }
        // Replace in place when the payload length is unchanged (the
        // overwhelmingly common case — rows of one table never change
        // size), so a steady-state refresh touches no free list and no
        // eviction can be needed.
        if let Some(slot) = self.map.get(&key).copied() {
            let s = self.slots[slot];
            if s.len == value.len() {
                self.arena.write(s.start, value);
                self.slots[slot].tag = tag;
                self.lru.touch(slot);
                self.stats.insertions += 1;
                return true;
            }
            // Remove the differently-sized entry so accounting stays exact.
            self.remove_slot(slot);
        }
        while self.used + cost > self.budget {
            let Some(victim) = self.lru.lru() else {
                break;
            };
            self.remove_slot(victim);
            self.stats.evictions += 1;
        }
        if self.used + cost > self.budget {
            self.stats.rejected += 1;
            self.note_residency();
            return false;
        }
        self.used += cost;
        self.stats.insertions += 1;
        let start = self.arena.alloc(value);
        let record = EngineSlot {
            key,
            start,
            len: value.len(),
            tag,
        };
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot] = record;
                slot
            }
            None => {
                self.slots.push(record);
                self.slots.len() - 1
            }
        };
        self.lru.push_front(slot);
        self.map.insert(key, slot);
        self.note_residency();
        true
    }

    /// Returns true when the key is resident (without touching recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently consumed (payload + per-entry overhead).
    pub fn memory_used(&self) -> Bytes {
        Bytes(self.used)
    }

    /// Configured byte budget.
    pub fn budget(&self) -> Bytes {
        Bytes(self.budget)
    }

    /// Cache statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Slot records ever grown (resident + free-listed) — an introspection
    /// hook for slot-recycling tests.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Elements currently backing the payload arena (live + freed) — an
    /// introspection hook for arena-recycling tests.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Drops every resident entry and resets usage (statistics are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free_slots.clear();
        self.lru.clear();
        self.arena.clear();
        self.used = 0;
        self.note_residency();
    }
}

/// Decides whether a not-yet-resident key may be inserted into a cache.
///
/// The policy sees a mixed 64-bit hash of the key (e.g.
/// [`crate::RowKey::mix`]) rather than the key itself, so one policy
/// implementation serves every engine. Implementations may be stateful —
/// `admit` both decides and records the touch.
pub trait AdmissionPolicy: std::fmt::Debug + Send {
    /// Returns whether the key may enter, recording the touch for stateful
    /// policies.
    fn admit(&mut self, key_hash: u64) -> bool;

    /// Forgets all recorded touches (cache clear / model update).
    fn reset(&mut self);

    /// Short policy name for reporting.
    fn name(&self) -> &'static str;
}

/// The default policy: every key is admitted on first touch. Bit-identical
/// to pre-policy behaviour by construction.
#[derive(Debug, Default, Clone, Copy)]
pub struct AlwaysAdmit;

impl AdmissionPolicy for AlwaysAdmit {
    fn admit(&mut self, _key_hash: u64) -> bool {
        true
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "always_admit"
    }
}

/// Promote-on-second-touch doorkeeper: a key is admitted only when it was
/// already touched while still in the doorkeeper's bounded memory.
///
/// The memory is a direct-mapped table of key hashes — O(1), allocation-free
/// after construction, and deliberately lossy: a colliding key overwrites
/// the previous occupant, which makes the doorkeeper behave like a recency
/// window rather than an ever-growing set. Single-touch tail keys (the bulk
/// of a power-law stream) are recorded and denied once, never entering the
/// cache; genuinely warm keys come back while still remembered and are
/// admitted on the second touch.
#[derive(Debug, Clone)]
pub struct SecondTouch {
    seen: Vec<u64>,
}

impl SecondTouch {
    /// Creates a doorkeeper remembering roughly `capacity` recent key
    /// hashes (rounded up to a power of two, minimum 64).
    pub fn new(capacity: usize) -> Self {
        SecondTouch {
            seen: vec![0; capacity.next_power_of_two().max(64)],
        }
    }
}

impl AdmissionPolicy for SecondTouch {
    fn admit(&mut self, key_hash: u64) -> bool {
        let idx = (key_hash as usize) & (self.seen.len() - 1);
        if self.seen[idx] == key_hash {
            true
        } else {
            self.seen[idx] = key_hash;
            false
        }
    }

    fn reset(&mut self) {
        self.seen.fill(0);
    }

    fn name(&self) -> &'static str {
        "second_touch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Engine = ArenaLru<u64, (), u8>;

    #[test]
    fn get_insert_roundtrip_with_stats() {
        let mut e: Engine = ArenaLru::new(Bytes::from_kib(4), 64);
        assert!(e.get(&7).is_none());
        assert!(e.insert(7, &[3u8; 100], ()));
        assert_eq!(e.get(&7).unwrap().0, &[3u8; 100]);
        assert_eq!(e.stats().hits, 1);
        assert_eq!(e.stats().misses, 1);
        assert_eq!(e.stats().insertions, 1);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn lru_eviction_order_is_exact() {
        // Budget fits exactly two 100-byte entries (2 × 164 = 328).
        let mut e: Engine = ArenaLru::new(Bytes(330), 64);
        e.insert(1, &[0u8; 100], ());
        e.insert(2, &[0u8; 100], ());
        e.get(&1); // 2 becomes LRU
        e.insert(3, &[0u8; 100], ());
        assert!(e.contains(&1));
        assert!(!e.contains(&2));
        assert!(e.contains(&3));
        assert_eq!(e.stats().evictions, 1);
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut e: Engine = ArenaLru::new(Bytes(330), 64);
        e.insert(1, &[1u8; 100], ());
        e.insert(2, &[2u8; 100], ());
        // Peeking the LRU entry must not rescue it from eviction...
        assert_eq!(e.peek(&1).unwrap(), &[1u8; 100]);
        let (hits, misses) = (e.stats().hits, e.stats().misses);
        e.insert(3, &[3u8; 100], ());
        assert!(!e.contains(&1), "peek refreshed recency");
        // ...and must not move the hit/miss counters.
        assert_eq!((e.stats().hits, e.stats().misses), (hits, misses));
    }

    #[test]
    fn tags_ride_along_and_update_in_place() {
        let mut e: ArenaLru<u64, u32, u8> = ArenaLru::new(Bytes::from_kib(1), 64);
        e.insert(5, &[1u8; 16], 7);
        assert_eq!(*e.get(&5).unwrap().1, 7);
        e.insert(5, &[2u8; 16], 9); // same length: in-place, tag refreshed
        assert_eq!(*e.peek_tag(&5).unwrap(), 9);
        assert_eq!(e.peek(&5).unwrap(), &[2u8; 16]);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn f32_payloads_cost_four_bytes_per_element() {
        let mut e: ArenaLru<u64, (), f32> = ArenaLru::new(Bytes(128 + 64), 64);
        // 32 floats × 4 + 64 overhead = 192 = budget: exactly one entry fits.
        assert!(e.insert(1, &[0.5f32; 32], ()));
        assert!(!e.insert(2, &[0.5f32; 33], ()));
        assert_eq!(e.stats().rejected, 1);
        assert_eq!(e.memory_used(), Bytes(192));
    }

    #[test]
    fn usage_never_exceeds_budget_under_mixed_churn() {
        let mut e: Engine = ArenaLru::new(Bytes::from_kib(8), 64);
        for i in 0..1000u64 {
            e.insert(i % 96, &vec![0u8; (i % 256) as usize + 1], ());
            assert!(e.memory_used() <= e.budget(), "over budget at i={i}");
        }
    }

    #[test]
    fn fixed_size_churn_recycles_slots_and_arena() {
        let mut e: Engine = ArenaLru::new(Bytes(1000), 64);
        for i in 0..500u64 {
            e.insert(i, &[0u8; 100], ());
        }
        // ~6 entries fit; churn must recycle slots/ranges, not grow them.
        assert!(e.slot_count() <= 8, "{} slots", e.slot_count());
        assert!(e.arena_len() <= 8 * 100, "{} arena bytes", e.arena_len());
    }

    #[test]
    fn always_admit_admits_and_second_touch_needs_two() {
        let mut always = AlwaysAdmit;
        assert!(always.admit(42));
        assert_eq!(always.name(), "always_admit");

        let mut st = SecondTouch::new(256);
        assert!(!st.admit(42), "first touch must be denied");
        assert!(st.admit(42), "second touch must be admitted");
        assert!(st.admit(42), "later touches stay admitted while remembered");
        st.reset();
        assert!(!st.admit(42), "reset must forget touches");
        assert_eq!(st.name(), "second_touch");
    }

    #[test]
    fn second_touch_collisions_overwrite_the_doorkeeper_slot() {
        let mut st = SecondTouch::new(64); // table size 64: hashes 1 and 65 collide
        assert!(!st.admit(1));
        assert!(!st.admit(65), "collision must evict the previous hash");
        assert!(!st.admit(1), "evicted hash is a first touch again");
        assert!(st.admit(1));
    }
}

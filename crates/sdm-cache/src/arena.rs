//! Slab arena backing the cache payloads.
//!
//! The seed caches stored every payload as its own `Vec` and returned
//! clones on hit — one allocation per insert and one per hit. The arena
//! keeps all payloads of a cache in a single growable buffer and hands out
//! `(start, len)` ranges instead. Hits borrow straight out of the buffer
//! (zero copies, zero allocations); evicted ranges go onto per-size free
//! lists and are reused by later inserts, so a cache in steady-state churn
//! stops allocating entirely.
//!
//! Free lists are keyed by exact length. DLRM row payloads come in one
//! fixed size per table (and pooled vectors in one size per table
//! dimension), so the number of size classes is tiny and an eviction is
//! almost always followed by an insert of the same class; the simple exact
//! match is enough and avoids any best-fit search on the hot path.
//!
//! Trade-off: freed ranges of one size never serve another size and the
//! buffer never shrinks, so worst-case resident memory is bounded by the
//! *per-size* peak usage summed over the distinct sizes — up to
//! `distinct sizes × budget` under adversarial mixed-size churn, while the
//! cache's modelled `memory_used()` stays within budget. With DLRM's
//! per-table fixed row sizes this slack is a few sizes at most; arena
//! compaction for many-size workloads is a ROADMAP item.

use std::collections::HashMap;

/// A growable slab of `T` handing out `(start, len)` ranges.
#[derive(Debug, Default, Clone)]
pub struct SlabArena<T> {
    buf: Vec<T>,
    /// Freed ranges, keyed by exact length → list of start offsets.
    free: HashMap<usize, Vec<usize>>,
    /// Elements currently live (allocated and not yet freed).
    live: usize,
}

impl<T: Copy + Default> SlabArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        SlabArena {
            buf: Vec::new(),
            free: HashMap::new(),
            live: 0,
        }
    }

    /// Copies `data` into the arena, reusing a freed range of the same
    /// length when one exists, and returns the start offset.
    pub fn alloc(&mut self, data: &[T]) -> usize {
        self.live += data.len();
        if let Some(list) = self.free.get_mut(&data.len()) {
            if let Some(start) = list.pop() {
                self.buf[start..start + data.len()].copy_from_slice(data);
                return start;
            }
        }
        let start = self.buf.len();
        self.buf.extend_from_slice(data);
        start
    }

    /// Returns a range to the free list for reuse. The caller must not use
    /// the range afterwards (ranges are plain offsets, not guarded).
    pub fn free(&mut self, start: usize, len: usize) {
        self.live = self.live.saturating_sub(len);
        self.free.entry(len).or_default().push(start);
    }

    /// Borrows a previously allocated range.
    pub fn slice(&self, start: usize, len: usize) -> &[T] {
        &self.buf[start..start + len]
    }

    /// Overwrites a previously allocated range in place (same length).
    pub fn write(&mut self, start: usize, data: &[T]) {
        self.buf[start..start + data.len()].copy_from_slice(data);
    }

    /// Drops every allocation and free list. Buffer capacity is kept so a
    /// refill after `clear` does not re-allocate.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.free.clear();
        self.live = 0;
    }

    /// Elements currently backing the arena (live + freed).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Elements currently live (allocated and not yet freed). The gap
    /// between [`SlabArena::len`] and this is the exact-size free-list
    /// retention the ROADMAP's arena-compaction item describes: freed
    /// ranges of one size never serve another size, so resident memory can
    /// exceed live payload under mixed-size churn.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// True when nothing has been allocated since the last clear.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_slice_roundtrip() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[1u8, 2, 3]);
        let y = a.alloc(&[4u8, 5]);
        assert_eq!(a.slice(x, 3), &[1, 2, 3]);
        assert_eq!(a.slice(y, 2), &[4, 5]);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn freed_ranges_are_reused_for_same_size() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[1u8, 2, 3, 4]);
        a.free(x, 4);
        let y = a.alloc(&[9u8, 9, 9, 9]);
        assert_eq!(y, x, "same-size alloc should reuse the freed range");
        assert_eq!(a.len(), 4, "no growth after reuse");
        assert_eq!(a.slice(y, 4), &[9, 9, 9, 9]);
    }

    #[test]
    fn different_size_does_not_reuse() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[1u8, 2]);
        a.free(x, 2);
        let y = a.alloc(&[1u8, 2, 3]);
        assert_ne!(y, x);
    }

    #[test]
    fn live_len_tracks_allocations_and_frees() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[1u8, 2, 3]);
        let y = a.alloc(&[4u8, 5]);
        assert_eq!(a.live_len(), 5);
        a.free(x, 3);
        assert_eq!(a.live_len(), 2);
        assert_eq!(a.len(), 5, "freed ranges stay resident");
        // A different-size alloc cannot reuse the freed range: resident
        // grows past live (the compaction gap the stats expose).
        let z = a.alloc(&[9u8; 4]);
        assert_eq!(a.live_len(), 6);
        assert_eq!(a.len(), 9);
        assert!(a.len() > a.live_len());
        a.free(y, 2);
        a.free(z, 4);
        assert_eq!(a.live_len(), 0);
        a.clear();
        assert_eq!(a.live_len(), 0);
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn write_in_place_and_clear() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[0.0f32; 4]);
        a.write(x, &[1.0f32, 2.0, 3.0, 4.0]);
        assert_eq!(a.slice(x, 4), &[1.0, 2.0, 3.0, 4.0]);
        a.clear();
        assert!(a.is_empty());
    }
}

//! Slab arena backing the cache payloads.
//!
//! The seed caches stored every payload as its own `Vec` and returned
//! clones on hit — one allocation per insert and one per hit. The arena
//! keeps all payloads of a cache in a single growable buffer and hands out
//! `(start, len)` ranges instead. Hits borrow straight out of the buffer
//! (zero copies, zero allocations); evicted ranges go onto a free list and
//! are reused by later inserts, so a cache in steady-state churn stops
//! allocating entirely.
//!
//! Free ranges are kept **address-ordered and eagerly coalesced**: freeing
//! a range merges it with free neighbours, and allocation takes the
//! *best fit* (smallest free range that is large enough), splitting off the
//! remainder. This is what bounds resident memory under mixed-size churn —
//! the earlier exact-size free lists could never serve one size class from
//! another, so worst-case residency was `distinct sizes × budget`; with
//! coalescing, freed payload space is fungible across size classes and the
//! gap between [`SlabArena::len`] and [`SlabArena::live_len`] stays a small
//! fragmentation slack instead. `CacheStats::{resident_bytes, live_bytes,
//! retained_bytes}` expose that slack per cache.
//!
//! Steady-state uniform churn (DLRM's common case: one row size per table)
//! still reuses ranges exactly: an eviction's range is the best fit for the
//! insert that follows it. The maps are `O(log F)` in the number of free
//! ranges, and `F` stays tiny once sizes mix-and-merge.

use std::collections::{BTreeMap, BTreeSet};

/// A growable slab of `T` handing out `(start, len)` ranges.
#[derive(Debug, Default, Clone)]
pub struct SlabArena<T> {
    buf: Vec<T>,
    /// Free ranges by start offset → length. Invariant: ranges are disjoint
    /// and never adjacent (adjacent ranges are merged on free).
    free_by_start: BTreeMap<usize, usize>,
    /// The same ranges as `(len, start)`, for best-fit allocation.
    free_by_size: BTreeSet<(usize, usize)>,
    /// Elements currently live (allocated and not yet freed).
    live: usize,
}

impl<T: Copy + Default> SlabArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        SlabArena {
            buf: Vec::new(),
            free_by_start: BTreeMap::new(),
            free_by_size: BTreeSet::new(),
            live: 0,
        }
    }

    fn take_free(&mut self, start: usize, len: usize) {
        self.free_by_start.remove(&start);
        self.free_by_size.remove(&(len, start));
    }

    fn put_free(&mut self, start: usize, len: usize) {
        self.free_by_start.insert(start, len);
        self.free_by_size.insert((len, start));
    }

    /// Copies `data` into the arena, reusing the best-fitting free range
    /// when one exists (splitting off any remainder), and returns the start
    /// offset. Only grows the buffer when no free range is large enough.
    pub fn alloc(&mut self, data: &[T]) -> usize {
        self.live += data.len();
        if let Some(&(flen, fstart)) = self.free_by_size.range((data.len(), 0)..).next() {
            self.take_free(fstart, flen);
            if flen > data.len() {
                // The remainder cannot touch another free range: the range
                // it was split from was maximal (free neighbours are merged
                // eagerly), so re-inserting it needs no merge pass.
                self.put_free(fstart + data.len(), flen - data.len());
            }
            self.buf[fstart..fstart + data.len()].copy_from_slice(data);
            return fstart;
        }
        let start = self.buf.len();
        self.buf.extend_from_slice(data);
        start
    }

    /// Returns a range to the free list for reuse, merging it with any free
    /// neighbour. The caller must not use the range afterwards (ranges are
    /// plain offsets, not guarded).
    pub fn free(&mut self, start: usize, len: usize) {
        self.live = self.live.saturating_sub(len);
        let mut start = start;
        let mut len = len;
        // Merge with the free predecessor that ends where this range starts.
        if let Some((&ps, &pl)) = self.free_by_start.range(..start).next_back() {
            if ps + pl == start {
                self.take_free(ps, pl);
                start = ps;
                len += pl;
            }
        }
        // Merge with the free successor that starts where this range ends.
        if let Some(&nl) = self.free_by_start.get(&(start + len)) {
            self.take_free(start + len, nl);
            len += nl;
        }
        self.put_free(start, len);
    }

    /// Borrows a previously allocated range.
    pub fn slice(&self, start: usize, len: usize) -> &[T] {
        &self.buf[start..start + len]
    }

    /// Overwrites a previously allocated range in place (same length).
    pub fn write(&mut self, start: usize, data: &[T]) {
        self.buf[start..start + data.len()].copy_from_slice(data);
    }

    /// Drops every allocation and free range. Buffer capacity is kept so a
    /// refill after `clear` does not re-allocate.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.free_by_start.clear();
        self.free_by_size.clear();
        self.live = 0;
    }

    /// Elements currently backing the arena (live + freed).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Elements currently live (allocated and not yet freed). The gap
    /// between [`SlabArena::len`] and this is free-list slack: with
    /// coalescing it is bounded by fragmentation rather than by per-size
    /// peak usage, and `CacheStats::retained_bytes` tracks it per cache.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// True when nothing has been allocated since the last clear.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_slice_roundtrip() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[1u8, 2, 3]);
        let y = a.alloc(&[4u8, 5]);
        assert_eq!(a.slice(x, 3), &[1, 2, 3]);
        assert_eq!(a.slice(y, 2), &[4, 5]);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn freed_ranges_are_reused_for_same_size() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[1u8, 2, 3, 4]);
        a.free(x, 4);
        let y = a.alloc(&[9u8, 9, 9, 9]);
        assert_eq!(y, x, "same-size alloc should reuse the freed range");
        assert_eq!(a.len(), 4, "no growth after reuse");
        assert_eq!(a.slice(y, 4), &[9, 9, 9, 9]);
    }

    #[test]
    fn smaller_alloc_splits_a_larger_free_range() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[0u8; 10]);
        a.free(x, 10);
        // A 6-element alloc takes the head of the freed 10-range...
        let y = a.alloc(&[7u8; 6]);
        assert_eq!(y, x);
        assert_eq!(a.len(), 10, "split must not grow the buffer");
        // ...and the 4-element remainder serves the next alloc.
        let z = a.alloc(&[8u8; 4]);
        assert_eq!(z, x + 6);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn adjacent_frees_coalesce_and_serve_larger_allocs() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[1u8; 6]);
        let y = a.alloc(&[2u8; 6]);
        a.free(x, 6);
        a.free(y, 6);
        // Two adjacent 6-ranges merged into 12: a 10-element alloc fits
        // without growing the buffer (impossible under exact-size lists).
        let z = a.alloc(&[9u8; 10]);
        assert_eq!(z, x);
        assert_eq!(a.len(), 12, "coalesced range was not reused");
    }

    #[test]
    fn too_small_free_ranges_do_not_serve_larger_allocs() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[1u8, 2]);
        let _hold = a.alloc(&[3u8; 4]); // keeps the freed range from merging with the tail
        a.free(x, 2);
        let y = a.alloc(&[1u8, 2, 3]);
        assert_ne!(y, x, "a 2-range cannot serve a 3-alloc");
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn live_len_tracks_allocations_and_frees() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[1u8, 2, 3]);
        let y = a.alloc(&[4u8, 5]);
        assert_eq!(a.live_len(), 5);
        a.free(x, 3);
        assert_eq!(a.live_len(), 2);
        assert_eq!(a.len(), 5, "freed ranges stay resident");
        // A larger alloc cannot reuse the freed 3-range: resident grows
        // past live (the fragmentation gap the stats expose).
        let z = a.alloc(&[9u8; 4]);
        assert_eq!(a.live_len(), 6);
        assert_eq!(a.len(), 9);
        assert!(a.len() > a.live_len());
        a.free(y, 2);
        a.free(z, 4);
        assert_eq!(a.live_len(), 0);
        a.clear();
        assert_eq!(a.live_len(), 0);
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn mixed_size_churn_residency_is_bounded() {
        // Alternate two size classes through a bounded live set, the
        // pattern that used to retain `distinct sizes × peak` bytes under
        // exact-size free lists. With coalescing, the buffer stops growing
        // once it covers one phase's working set plus fragmentation slack.
        let mut a = SlabArena::new();
        let mut live: Vec<(usize, usize)> = Vec::new();
        for round in 0..64 {
            let size = if round % 2 == 0 { 96 } else { 160 };
            for _ in 0..16 {
                while live.len() >= 16 {
                    let (start, len) = live.remove(0);
                    a.free(start, len);
                }
                live.push((a.alloc(&vec![round as u8; size]), size));
            }
        }
        let peak_live = 16 * 160;
        assert!(
            a.len() <= peak_live * 3 / 2,
            "resident {} exceeds 1.5x the peak live set {}",
            a.len(),
            peak_live
        );
    }

    #[test]
    fn write_in_place_and_clear() {
        let mut a = SlabArena::new();
        let x = a.alloc(&[0.0f32; 4]);
        a.write(x, &[1.0f32, 2.0, 3.0, 4.0]);
        assert_eq!(a.slice(x, 4), &[1.0, 2.0, 3.0, 4.0]);
        a.clear();
        assert!(a.is_empty());
    }
}

//! The memory-optimized row-cache engine.
//!
//! CacheLib gave the paper a choice between paying memory overhead per
//! key-value pair for a CPU-cheap index, or keeping per-entry overhead low
//! and searching within a hash bucket on every lookup. For the small rows
//! that dominate DLRM models the memory-optimized variant wins: more rows
//! fit in the same fast-memory budget, which raises the hit rate enough to
//! pay for the extra nanoseconds per lookup (paper Figure 6).
//!
//! The engine here is a bucketed cache: keys hash to one of a fixed number
//! of buckets, each bucket holds a small vector of entries searched
//! linearly, and eviction is LRU *within the bucket* (like a set-associative
//! cache), which is what keeps per-entry metadata tiny. Row payloads live in
//! a shared [`SlabArena`], so hits hand out borrowed slices without cloning
//! and evicted ranges are recycled by later inserts.

use crate::arena::SlabArena;
use crate::row_cache::{RowCache, RowKey};
use crate::stats::CacheStats;
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;

/// Per-entry metadata overhead of the bucketed engine (key + stamp + range,
/// no separate index node).
pub const ENTRY_OVERHEAD: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: RowKey,
    start: usize,
    len: usize,
    stamp: u64,
}

/// Bucketed, memory-optimized row cache.
#[derive(Debug)]
pub struct MemoryOptimizedCache {
    buckets: Vec<Vec<Entry>>,
    arena: SlabArena<u8>,
    budget: Bytes,
    used: u64,
    clock: u64,
    stats: CacheStats,
}

impl MemoryOptimizedCache {
    /// Creates a cache with the given byte budget and bucket count.
    ///
    /// A zero bucket count is clamped to 1.
    pub fn new(budget: Bytes, buckets: usize) -> Self {
        MemoryOptimizedCache {
            buckets: vec![Vec::new(); buckets.max(1)],
            arena: SlabArena::new(),
            budget,
            used: 0,
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    /// Creates a cache sized for entries of roughly `expected_row_bytes`,
    /// choosing a bucket count that keeps buckets short (≈8 entries).
    pub fn with_expected_row_size(budget: Bytes, expected_row_bytes: usize) -> Self {
        let per_entry = (expected_row_bytes + ENTRY_OVERHEAD).max(1) as u64;
        let expected_entries = (budget.as_u64() / per_entry).max(1);
        let buckets = (expected_entries / 8).max(1) as usize;
        Self::new(budget, buckets)
    }

    fn bucket_of(&self, key: &RowKey) -> usize {
        (key.mix() % self.buckets.len() as u64) as usize
    }

    fn entry_cost(value_len: usize) -> u64 {
        (value_len + ENTRY_OVERHEAD) as u64
    }

    /// Records a miss observed by a routing layer that probed this engine
    /// without calling [`RowCache::get`] (see [`crate::DualRowCache`]).
    pub(crate) fn note_routed_miss(&mut self) {
        self.stats.record_miss();
    }

    /// Refreshes the residency gauges from the arena after any mutation
    /// that allocates or frees payload ranges.
    fn note_residency(&mut self) {
        self.stats.resident_bytes = self.arena.len() as u64;
        self.stats.live_bytes = self.arena.live_len() as u64;
    }

    fn evict_lru_in_bucket(&mut self, bucket: usize) -> bool {
        let b = &mut self.buckets[bucket];
        let Some((idx, _)) = b.iter().enumerate().min_by_key(|(_, e)| e.stamp) else {
            return false;
        };
        let removed = b.swap_remove(idx);
        self.arena.free(removed.start, removed.len);
        self.used -= Self::entry_cost(removed.len);
        self.stats.evictions += 1;
        true
    }

    /// Side-effect-free probe: returns the cached bytes without bumping the
    /// recency stamp or the hit/miss statistics (see
    /// [`crate::DualRowCache::peek`]).
    pub fn peek(&self, key: &RowKey) -> Option<&[u8]> {
        self.buckets[self.bucket_of(key)]
            .iter()
            .find(|e| e.key == *key)
            .map(|e| self.arena.slice(e.start, e.len))
    }

    /// Evicts the least recently used entry across *all* buckets; used when
    /// the target bucket alone cannot free enough space.
    fn evict_global_lru(&mut self) -> bool {
        let victim = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(bi, b)| {
                b.iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(ei, e)| (bi, ei, e.stamp))
            })
            .min_by_key(|(_, _, stamp)| *stamp);
        if let Some((bi, ei, _)) = victim {
            let removed = self.buckets[bi].swap_remove(ei);
            self.arena.free(removed.start, removed.len);
            self.used -= Self::entry_cost(removed.len);
            self.stats.evictions += 1;
            true
        } else {
            false
        }
    }
}

impl RowCache for MemoryOptimizedCache {
    fn get(&mut self, key: &RowKey) -> Option<&[u8]> {
        self.clock += 1;
        let bucket = self.bucket_of(key);
        let clock = self.clock;
        let found = self.buckets[bucket]
            .iter_mut()
            .find(|e| e.key == *key)
            .map(|e| {
                e.stamp = clock;
                (e.start, e.len)
            });
        match found {
            Some((start, len)) => {
                self.stats.record_hit();
                Some(self.arena.slice(start, len))
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    fn insert(&mut self, key: RowKey, value: &[u8]) {
        let cost = Self::entry_cost(value.len());
        if cost > self.budget.as_u64() {
            self.stats.rejected += 1;
            return;
        }
        self.clock += 1;
        let bucket = self.bucket_of(&key);

        // Replace in place if present (reusing the arena range when the new
        // payload has the same length, the overwhelmingly common case —
        // rows of one table never change size).
        if let Some(i) = self.buckets[bucket].iter().position(|e| e.key == key) {
            let (old_start, old_len) = {
                let e = &self.buckets[bucket][i];
                (e.start, e.len)
            };
            let start = if old_len == value.len() {
                self.arena.write(old_start, value);
                old_start
            } else {
                self.arena.free(old_start, old_len);
                self.arena.alloc(value)
            };
            let e = &mut self.buckets[bucket][i];
            self.used -= Self::entry_cost(old_len);
            self.used += cost;
            e.start = start;
            e.len = value.len();
            e.stamp = self.clock;
            // A replacement may push us over budget if the new value is
            // larger; shed entries until we fit again.
            while self.used > self.budget.as_u64() {
                if !self.evict_lru_in_bucket(bucket) && !self.evict_global_lru() {
                    break;
                }
            }
            self.note_residency();
            return;
        }

        // Make room: first within the bucket, then globally.
        while self.used + cost > self.budget.as_u64() {
            if !self.evict_lru_in_bucket(bucket) && !self.evict_global_lru() {
                break;
            }
        }
        if self.used + cost > self.budget.as_u64() {
            self.stats.rejected += 1;
            self.note_residency();
            return;
        }
        self.used += cost;
        self.stats.insertions += 1;
        let stamp = self.clock;
        let start = self.arena.alloc(value);
        self.buckets[bucket].push(Entry {
            key,
            start,
            len: value.len(),
            stamp,
        });
        self.note_residency();
    }

    fn contains(&self, key: &RowKey) -> bool {
        self.buckets[self.bucket_of(key)]
            .iter()
            .any(|e| e.key == *key)
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    fn memory_used(&self) -> Bytes {
        Bytes(self.used)
    }

    fn budget(&self) -> Bytes {
        self.budget
    }

    fn lookup_cost(&self) -> SimDuration {
        // Bucket scan: a couple of cache lines more than a direct index.
        SimDuration::from_nanos(250)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn peek(&self, key: &RowKey) -> Option<&[u8]> {
        MemoryOptimizedCache::peek(self, key)
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.arena.clear();
        self.used = 0;
        self.note_residency();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = MemoryOptimizedCache::new(Bytes::from_kib(64), 8);
        let k = RowKey::new(1, 2);
        assert!(c.get(&k).is_none());
        c.insert(k, &[5u8; 100]);
        assert_eq!(c.get(&k).unwrap(), &[5u8; 100]);
        assert!(c.contains(&k));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn stays_within_budget_and_evicts_lru() {
        // Budget for ~8 entries of 112+16 bytes.
        let mut c = MemoryOptimizedCache::new(Bytes(1024), 2);
        for i in 0..32u64 {
            c.insert(RowKey::new(0, i), &[0u8; 112]);
        }
        assert!(c.memory_used() <= c.budget());
        assert!(c.len() <= 8);
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn eviction_churn_reuses_arena_ranges() {
        let mut c = MemoryOptimizedCache::new(Bytes(1024), 2);
        for i in 0..1024u64 {
            c.insert(RowKey::new(0, i), &[i as u8; 112]);
        }
        // Every insert past the first ~8 evicts one 112-byte range and
        // allocates another; the arena must recycle rather than grow.
        assert!(
            c.arena.len() <= 16 * 112,
            "arena grew to {} bytes under churn",
            c.arena.len()
        );
    }

    #[test]
    fn recently_used_entries_survive() {
        let mut c = MemoryOptimizedCache::new(Bytes(2000), 1);
        let hot = RowKey::new(0, 0);
        c.insert(hot, &[1u8; 100]);
        for i in 1..50u64 {
            // Keep touching the hot key while streaming cold keys through.
            let _ = c.get(&hot);
            c.insert(RowKey::new(0, i), &[0u8; 100]);
        }
        assert!(c.contains(&hot), "hot key was evicted");
    }

    #[test]
    fn mixed_size_churn_residency_stays_bounded() {
        // Alternating size classes under eviction churn used to retain up to
        // `distinct sizes × budget` bytes of freed ranges, because the
        // arena's exact-size free lists could never serve one size class
        // from another. The coalescing free list merges adjacent freed
        // ranges, so resident bytes must now stay within a small
        // fragmentation factor of the budget rather than a multiple of it.
        let budget = Bytes(2048);
        let mut c = MemoryOptimizedCache::new(budget, 2);
        for round in 0..64u64 {
            // Phase flips between 96-byte and 160-byte rows each round.
            let size = if round % 2 == 0 { 96 } else { 160 };
            for i in 0..16u64 {
                c.insert(RowKey::new((round % 2) as u32, i), &vec![1u8; size]);
            }
        }
        let s = c.stats();
        assert!(
            c.memory_used() <= c.budget(),
            "modelled usage must stay within budget"
        );
        assert_eq!(s.live_bytes, c.arena.live_len() as u64);
        assert!(
            s.resident_bytes <= budget.as_u64() * 3 / 2,
            "mixed-size churn retained {} resident bytes — more than 1.5x \
             the {} budget; free ranges are not being coalesced",
            s.resident_bytes,
            budget.as_u64()
        );
        // Clearing releases the arena and the gauges follow.
        c.clear();
        assert_eq!(c.stats().resident_bytes, 0);
        assert_eq!(c.stats().live_bytes, 0);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut c = MemoryOptimizedCache::new(Bytes(128), 4);
        c.insert(RowKey::new(0, 0), &[0u8; 1024]);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn replacement_updates_value_and_usage() {
        let mut c = MemoryOptimizedCache::new(Bytes::from_kib(4), 4);
        let k = RowKey::new(7, 7);
        c.insert(k, &[1u8; 100]);
        let used_before = c.memory_used();
        c.insert(k, &[2u8; 200]);
        assert_eq!(c.get(&k).unwrap(), &[2u8; 200]);
        assert_eq!(c.len(), 1);
        assert!(c.memory_used() > used_before);
    }

    #[test]
    fn same_size_replacement_overwrites_in_place() {
        let mut c = MemoryOptimizedCache::new(Bytes::from_kib(4), 4);
        let k = RowKey::new(3, 3);
        c.insert(k, &[1u8; 64]);
        let arena_before = c.arena.len();
        c.insert(k, &[2u8; 64]);
        assert_eq!(
            c.arena.len(),
            arena_before,
            "in-place overwrite must not grow the arena"
        );
        assert_eq!(c.get(&k).unwrap(), &[2u8; 64]);
    }

    #[test]
    fn clear_keeps_stats_but_drops_entries() {
        let mut c = MemoryOptimizedCache::new(Bytes::from_kib(4), 4);
        c.insert(RowKey::new(0, 1), &[0u8; 10]);
        c.get(&RowKey::new(0, 1));
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.memory_used(), Bytes::ZERO);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn with_expected_row_size_picks_reasonable_buckets() {
        let c = MemoryOptimizedCache::with_expected_row_size(Bytes::from_mib(1), 128);
        // ~7281 entries / 8 ≈ 910 buckets
        assert!(c.buckets.len() > 500 && c.buckets.len() < 2000);
    }

    #[test]
    fn per_entry_overhead_is_small() {
        const { assert!(ENTRY_OVERHEAD < 32) }
    }
}

//! The host-shared second cache tier (paper §3, §4.2).
//!
//! The paper keeps *one* DRAM cache tier per host in front of the SM
//! devices precisely because hot rows under power-law access are shared
//! across the whole request stream: a row made hot by one serving stream
//! serves every stream. The sharded `ServingHost` gives each shard a fully
//! private [`crate::DualRowCache`], which is ideal for user-sticky locality
//! but loses exactly that cross-shard reuse — a row hot on every shard is
//! cached N times, and a miss on shard A cannot be served by shard B's
//! earlier SM read.
//!
//! [`SharedRowTier`] recovers the reuse without a global lock: keys hash to
//! one of K independent stripes, each a mutex-guarded [`ArenaLru`] — the
//! same engine core as the private caches, tagged with the promoting shard.
//! All operations take `&self`, so shards on `std::thread::scope` workers
//! share one tier through an `Arc` — the tier is `Send + Sync` by
//! construction (asserted by the `send_assertions` suite).
//!
//! Lookups hand the row bytes to a caller closure *under the stripe lock*
//! ([`SharedRowTier::lookup_with`]): the serving loop dequant-accumulates
//! straight out of the stripe's arena, so a shared-tier hit performs no
//! copy and no allocation, and the lock is released the moment the closure
//! returns. Fills happen only at IO completion ([`SharedRowTier::insert`]),
//! so no stripe lock is ever held across an SM read.
//!
//! Every entry records the shard that promoted it, which is what makes the
//! tier's effect measurable: a hit whose origin differs from the probing
//! shard is a *cross-shard* hit — one SM read amortised across streams.
//!
//! Promotion into the tier goes through a pluggable
//! [`crate::AdmissionPolicy`] per stripe: [`crate::AlwaysAdmit`] by default
//! (bit-identical to an unconditioned tier), or promote-on-second-touch
//! ([`crate::SecondTouch`]) to keep the single-touch tail of a power-law
//! stream from churning rows that earned their residency.

use crate::config::TierAdmission;
use crate::engine::{AdmissionPolicy, AlwaysAdmit, ArenaLru, SecondTouch};
use crate::row_cache::RowKey;
use crate::stats::CacheStats;
use crate::tracked::TrackedMutex;
use sdm_metrics::units::{split_share, Bytes};
use sdm_metrics::SimDuration;

/// Metadata overhead per shared-tier entry (hash node, LRU links, slot
/// record, origin tag).
pub const ENTRY_OVERHEAD: usize = 64;

/// Doorkeeper capacity per stripe for [`TierAdmission::SecondTouch`]:
/// enough to remember a few thousand distinct recent rows per stripe, far
/// more than a stripe holds, so warm keys are still remembered when they
/// return.
const SECOND_TOUCH_CAPACITY: usize = 4096;

/// Outcome of a shared-tier hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedHit {
    /// True when the entry was promoted by a *different* shard than the one
    /// probing — the cross-shard reuse the tier exists to recover.
    pub cross_shard: bool,
}

/// One lock-striped partition: the shared [`ArenaLru`] engine core tagged
/// with the promoting shard, plus the stripe's admission policy. DRAM
/// per-entry overhead is paid once per *host* here rather than once per
/// shard, so the indexed (CPU-optimized) organisation is the right one.
#[derive(Debug)]
struct Stripe {
    engine: ArenaLru<RowKey, u32, u8>,
    admission: Box<dyn AdmissionPolicy>,
    /// Promotions the admission policy turned away (not part of
    /// [`CacheStats`] — a denial is a policy decision, not cache pressure).
    denied: u64,
}

impl Stripe {
    fn insert(&mut self, key: RowKey, value: &[u8], origin: u32) -> bool {
        // Admission applies to *new* residents only: refreshing a row that
        // already earned its slot is always allowed (denying it would throw
        // away residency the tier already paid an SM read for).
        if !self.engine.contains(&key) && !self.admission.admit(key.mix()) {
            self.denied += 1;
            return false;
        }
        self.engine.insert(key, value, origin)
    }
}

/// The host-shared row-cache tier: K lock-striped arena-backed LRU
/// partitions behind a `&self` API, shared across shards via `Arc`.
#[derive(Debug)]
pub struct SharedRowTier {
    // `TrackedMutex` (not a bare `Mutex`): under `debug_assertions` every
    // stripe acquisition feeds the lock-order graph and the held-lock
    // stack, so the "no stripe lock across SM submit" contract is enforced
    // by `assert_no_locks_held` at the submission boundary; in release it
    // is a transparent `Mutex`. Poison recovery lives there too: a stripe
    // can only be poisoned by a panic in caller code running under
    // [`SharedRowTier::lookup_with`]'s closure — the engine itself
    // completes every mutation before handing bytes out — so the stripe
    // data is still consistent and serving can continue.
    stripes: Vec<TrackedMutex<Stripe>>,
    budget: Bytes,
    admission: TierAdmission,
}

impl SharedRowTier {
    /// Builds a tier of `stripes` lock-striped partitions sharing `budget`
    /// bytes, with the default [`TierAdmission::Always`] policy — see
    /// [`SharedRowTier::with_admission`].
    pub fn new(budget: Bytes, stripes: usize) -> Self {
        Self::with_admission(budget, stripes, TierAdmission::Always)
    }

    /// Builds a tier of `stripes` lock-striped partitions sharing `budget`
    /// bytes under the given admission policy. The budget is split
    /// losslessly across stripes (remainder bytes go to the first stripes);
    /// a zero stripe count clamps to one.
    pub fn with_admission(budget: Bytes, stripes: usize, admission: TierAdmission) -> Self {
        let n = stripes.max(1);
        let stripes = (0..n)
            .map(|i| {
                let policy: Box<dyn AdmissionPolicy> = match admission {
                    TierAdmission::Always => Box::new(AlwaysAdmit),
                    TierAdmission::SecondTouch => Box::new(SecondTouch::new(SECOND_TOUCH_CAPACITY)),
                };
                TrackedMutex::new(
                    "shared-tier-stripe",
                    Stripe {
                        engine: ArenaLru::new(
                            Bytes(split_share(budget.as_u64(), n as u64, i as u64)),
                            ENTRY_OVERHEAD,
                        ),
                        admission: policy,
                        denied: 0,
                    },
                )
            })
            .collect();
        SharedRowTier {
            stripes,
            budget,
            admission,
        }
    }

    /// Number of lock stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Configured byte budget across all stripes.
    pub fn budget(&self) -> Bytes {
        self.budget
    }

    /// The configured admission policy.
    pub fn admission(&self) -> TierAdmission {
        self.admission
    }

    /// Host CPU time of one tier probe (hash, stripe lock, index lookup).
    /// Costlier than a private-cache probe — the stripe lock is shared
    /// state — which is why the tier sits *behind* the private caches.
    pub fn lookup_cost(&self) -> SimDuration {
        SimDuration::from_nanos(300)
    }

    fn stripe_of(&self, key: &RowKey) -> &TrackedMutex<Stripe> {
        // Use the high half of the mixed key so stripe choice stays
        // decorrelated from the private caches' bucket choice (which uses
        // the low bits via `mix() % buckets`).
        let h = (key.mix() >> 32) as usize;
        &self.stripes[h % self.stripes.len()]
    }

    /// Looks a row up and, on a hit, hands its bytes to `f` under the
    /// stripe lock (recency refreshed). Returns whether the hit was
    /// promoted by a different shard than `source`. The closure must not
    /// call back into the same tier (single-stripe locks are not
    /// re-entrant).
    pub fn lookup_with<F: FnOnce(&[u8])>(
        &self,
        key: &RowKey,
        source: u32,
        f: F,
    ) -> Option<SharedHit> {
        let mut stripe = self.stripe_of(key).lock();
        match stripe.engine.get(key) {
            Some((bytes, &origin)) => {
                f(bytes);
                Some(SharedHit {
                    cross_shard: origin != source,
                })
            }
            None => None,
        }
    }

    /// Side-effect-free probe: hands the row bytes to `f` under the stripe
    /// lock without touching the LRU order or any statistic. Returns whether
    /// the row was resident. The closure must not call back into the same
    /// tier.
    pub fn peek_with<F: FnOnce(&[u8])>(&self, key: &RowKey, f: F) -> bool {
        let stripe = self.stripe_of(key).lock();
        match stripe.engine.peek(key) {
            Some(bytes) => {
                f(bytes);
                true
            }
            None => false,
        }
    }

    /// Promotes a row read from SM into the tier, tagged with the shard
    /// that read it. Returns true when the row was admitted (false when the
    /// admission policy turns it away, or a single entry exceeds the stripe
    /// budget). Called at IO completion only, so no stripe lock is ever
    /// held across an SM read.
    pub fn insert(&self, key: RowKey, value: &[u8], source: u32) -> bool {
        let mut stripe = self.stripe_of(&key).lock();
        stripe.insert(key, value, source)
    }

    /// Returns true when the key is resident (without touching recency).
    pub fn contains(&self, key: &RowKey) -> bool {
        let stripe = self.stripe_of(key).lock();
        stripe.engine.contains(key)
    }

    /// Number of resident rows across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().engine.len()).sum()
    }

    /// True when no rows are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently consumed (payload + per-entry overhead) across all
    /// stripes.
    pub fn memory_used(&self) -> Bytes {
        Bytes(
            self.stripes
                .iter()
                .map(|s| s.lock().engine.memory_used().as_u64())
                .sum(),
        )
    }

    /// Aggregated statistics across all stripes (hits/misses recorded under
    /// the stripe locks; residency gauges sum).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for s in &self.stripes {
            total.merge(s.lock().engine.stats());
        }
        total
    }

    /// Promotions turned away by the admission policy across all stripes
    /// (always zero under [`TierAdmission::Always`]).
    pub fn admission_denied(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().denied).sum()
    }

    /// Drops every resident row in every stripe and forgets the admission
    /// policies' recorded touches (statistics are kept). Model updates call
    /// this once, host-wide — stale doorkeeper state must not carry first
    /// touches across a row-content change.
    pub fn clear(&self) {
        for s in &self.stripes {
            let mut stripe = s.lock();
            stripe.engine.clear();
            stripe.admission.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tier(budget: Bytes, stripes: usize) -> SharedRowTier {
        SharedRowTier::new(budget, stripes)
    }

    #[test]
    fn insert_lookup_roundtrip_with_origin_tracking() {
        let t = tier(Bytes::from_kib(64), 4);
        let key = RowKey::new(1, 42);
        assert!(t.lookup_with(&key, 0, |_| {}).is_none());
        assert!(t.insert(key, &[7u8; 96], 0));
        // Same shard: hit, not cross-shard.
        let mut seen = Vec::new();
        let hit = t.lookup_with(&key, 0, |bytes| seen.extend_from_slice(bytes));
        assert_eq!(hit, Some(SharedHit { cross_shard: false }));
        assert_eq!(seen, vec![7u8; 96]);
        // Another shard: the same entry is a cross-shard hit.
        let hit = t.lookup_with(&key, 3, |_| {});
        assert_eq!(hit, Some(SharedHit { cross_shard: true }));
        let stats = t.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(t.len(), 1);
        assert!(t.contains(&key));
        assert!(t.memory_used() > Bytes::ZERO);
        assert_eq!(t.admission(), TierAdmission::Always);
        assert_eq!(t.admission_denied(), 0);
    }

    #[test]
    fn stripe_budgets_split_losslessly_and_evict_lru() {
        // 1000 bytes over 3 stripes: 334 + 333 + 333.
        let t = tier(Bytes(1000), 3);
        let per_stripe: u64 = t
            .stripes
            .iter()
            .map(|s| s.lock().engine.budget().as_u64())
            .sum();
        assert_eq!(per_stripe, 1000);
        // Fill well past the budget; usage stays bounded and evictions run.
        for i in 0..64u64 {
            t.insert(RowKey::new(0, i), &[0u8; 100], 0);
        }
        assert!(t.memory_used() <= t.budget());
        assert!(t.stats().evictions > 0);
        assert!(!t.is_empty());
    }

    #[test]
    fn oversized_rows_are_rejected_per_stripe() {
        let t = tier(Bytes(256), 2);
        assert!(!t.insert(RowKey::new(0, 0), &[0u8; 1024], 0));
        assert!(t.is_empty());
        assert_eq!(t.stats().rejected, 1);
    }

    #[test]
    fn same_size_repromotion_overwrites_in_place() {
        let t = tier(Bytes::from_kib(4), 1);
        let key = RowKey::new(2, 7);
        assert!(t.insert(key, &[1u8; 64], 0));
        let resident = t.stats().resident_bytes;
        // Shard 1 re-promotes the same row: value and origin update without
        // growing the arena.
        assert!(t.insert(key, &[2u8; 64], 1));
        assert_eq!(t.stats().resident_bytes, resident);
        let hit = t.lookup_with(&key, 0, |bytes| assert_eq!(bytes, &[2u8; 64]));
        assert_eq!(hit, Some(SharedHit { cross_shard: true }));
    }

    #[test]
    fn peek_with_has_no_side_effects() {
        // Stripe budget fits exactly two 100-byte rows.
        let t = tier(Bytes(330), 1);
        let (a, b, c) = (RowKey::new(0, 1), RowKey::new(0, 2), RowKey::new(0, 3));
        t.insert(a, &[1u8; 100], 0);
        t.insert(b, &[2u8; 100], 0);
        // Peeking the LRU row must not rescue it from eviction...
        let mut seen = 0usize;
        assert!(t.peek_with(&a, |bytes| seen = bytes.len()));
        assert_eq!(seen, 100);
        let before = t.stats();
        t.insert(c, &[3u8; 100], 0);
        assert!(!t.contains(&a), "peek refreshed recency");
        // ...and must not have moved the hit/miss counters.
        let after = t.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
        assert!(!t.peek_with(&RowKey::new(9, 9), |_| {}));
    }

    #[test]
    fn second_touch_admits_only_repeated_rows() {
        let t = SharedRowTier::with_admission(Bytes::from_kib(64), 2, TierAdmission::SecondTouch);
        assert_eq!(t.admission(), TierAdmission::SecondTouch);
        let key = RowKey::new(4, 11);
        assert!(!t.insert(key, &[5u8; 64], 0), "first touch must be denied");
        assert!(!t.contains(&key));
        assert_eq!(t.admission_denied(), 1);
        assert!(
            t.insert(key, &[5u8; 64], 0),
            "second touch must be admitted"
        );
        assert!(t.contains(&key));
        // Resident refresh is always allowed — no doorkeeper round-trip.
        assert!(t.insert(key, &[6u8; 64], 1));
        assert_eq!(t.admission_denied(), 1);
        // clear() resets the doorkeeper: the key is a first touch again.
        t.clear();
        assert!(!t.insert(key, &[5u8; 64], 0));
        assert_eq!(t.admission_denied(), 2);
    }

    #[test]
    fn mixed_size_churn_never_serves_wrong_row() {
        // Regression: `Stripe` used to build its `LruList` via the derived
        // `Default`, whose zeroed head/tail claimed slot 0 was already
        // linked — the first insert then created a self-cycle and eviction
        // churn aliased map entries onto freed slots, so lookups handed
        // back a *different key's* bytes. Uniform-row tests never caught
        // it; a capacity-constrained mixed-size churn does within a few
        // hundred operations.
        let t = tier(Bytes::from_kib(32), 1);
        let sizes = [90usize, 104, 113, 145, 151, 172];
        let len_for = |key: &RowKey| sizes[(key.mix() % sizes.len() as u64) as usize];
        let mut rng = 0x5d_2022u64;
        for i in 0..50_000u64 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let key = RowKey::new((rng % 7) as u32, (rng >> 8) % 400);
            let len = len_for(&key);
            if rng.is_multiple_of(3) {
                t.insert(key, &vec![(rng & 0xff) as u8; len], (rng % 2) as u32);
            } else {
                let mut got = None;
                t.lookup_with(&key, 0, |bytes| got = Some(bytes.len()));
                if let Some(got) = got {
                    assert_eq!(got, len, "op {i}: {key:?} returned another row's bytes");
                }
            }
        }
        assert!(
            t.stats().evictions > 0,
            "churn never evicted — test is inert"
        );
    }

    #[test]
    fn clear_empties_every_stripe() {
        let t = tier(Bytes::from_kib(16), 8);
        for i in 0..32u64 {
            t.insert(RowKey::new(0, i), &[1u8; 32], 0);
        }
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.memory_used(), Bytes::ZERO);
    }

    #[test]
    fn zero_stripes_clamp_to_one() {
        let t = tier(Bytes::from_kib(1), 0);
        assert_eq!(t.stripe_count(), 1);
        assert!(t.insert(RowKey::new(0, 0), &[0u8; 16], 0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn concurrent_shards_share_one_tier() {
        // Four worker "shards" hammer one tier through an Arc: every row
        // promoted by shard 0 must be visible (as a cross-shard hit) to the
        // others, and the stripe locks must serialise without deadlock.
        let t = Arc::new(tier(Bytes::from_kib(256), 8));
        let rows: Vec<RowKey> = (0..64).map(|i| RowKey::new(0, i)).collect();
        for key in &rows {
            t.insert(*key, &[9u8; 64], 0);
        }
        std::thread::scope(|scope| {
            for shard in 1u32..5 {
                let t = Arc::clone(&t);
                let rows = &rows;
                scope.spawn(move || {
                    let mut cross = 0u64;
                    for _ in 0..50 {
                        for key in rows {
                            if let Some(hit) = t.lookup_with(key, shard, |bytes| {
                                assert_eq!(bytes[0], 9);
                            }) {
                                cross += u64::from(hit.cross_shard);
                            }
                        }
                    }
                    assert_eq!(cross, 50 * rows.len() as u64);
                });
            }
        });
        let stats = t.stats();
        assert_eq!(stats.hits, 4 * 50 * rows.len() as u64);
        assert_eq!(stats.misses, 0);
    }
}

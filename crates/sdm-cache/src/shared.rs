//! The host-shared second cache tier (paper §3, §4.2).
//!
//! The paper keeps *one* DRAM cache tier per host in front of the SM
//! devices precisely because hot rows under power-law access are shared
//! across the whole request stream: a row made hot by one serving stream
//! serves every stream. The sharded `ServingHost` gives each shard a fully
//! private [`crate::DualRowCache`], which is ideal for user-sticky locality
//! but loses exactly that cross-shard reuse — a row hot on every shard is
//! cached N times, and a miss on shard A cannot be served by shard B's
//! earlier SM read.
//!
//! [`SharedRowTier`] recovers the reuse without a global lock: keys hash to
//! one of K independent stripes, each its own mutex-guarded arena-backed
//! exact-LRU cache ([`crate::SlabArena`] payloads + [`crate::lru::LruList`]
//! recency, the same machinery as the private engines). All operations take
//! `&self`, so shards on `std::thread::scope` workers share one tier
//! through an `Arc` — the tier is `Send + Sync` by construction (asserted
//! by the `send_assertions` suite).
//!
//! Lookups hand the row bytes to a caller closure *under the stripe lock*
//! ([`SharedRowTier::lookup_with`]): the serving loop dequant-accumulates
//! straight out of the stripe's arena, so a shared-tier hit performs no
//! copy and no allocation, and the lock is released the moment the closure
//! returns. Fills happen only at IO completion ([`SharedRowTier::insert`]),
//! so no stripe lock is ever held across an SM read.
//!
//! Every entry records the shard that promoted it, which is what makes the
//! tier's effect measurable: a hit whose origin differs from the probing
//! shard is a *cross-shard* hit — one SM read amortised across streams.

use crate::arena::SlabArena;
use crate::lru::LruList;
use crate::row_cache::RowKey;
use crate::stats::CacheStats;
use sdm_metrics::units::{split_share, Bytes};
use sdm_metrics::SimDuration;
use std::sync::Mutex;

/// Metadata overhead per shared-tier entry (hash node, LRU links, slot
/// record, origin tag).
pub const ENTRY_OVERHEAD: usize = 64;

/// Outcome of a shared-tier hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedHit {
    /// True when the entry was promoted by a *different* shard than the one
    /// probing — the cross-shard reuse the tier exists to recover.
    pub cross_shard: bool,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: RowKey,
    start: usize,
    len: usize,
    /// Shard that promoted this row.
    origin: u32,
}

/// One lock-striped partition: an arena-backed exact-LRU row cache, the
/// same shape as [`crate::CpuOptimizedCache`] plus the per-entry origin
/// tag. DRAM per-entry overhead is paid once per *host* here rather than
/// once per shard, so the CPU-optimized organisation is the right one.
#[derive(Debug, Default)]
struct Stripe {
    map: std::collections::HashMap<RowKey, usize>,
    slots: Vec<Slot>,
    free_slots: Vec<usize>,
    lru: LruList,
    arena: SlabArena<u8>,
    budget: u64,
    used: u64,
    stats: CacheStats,
}

impl Stripe {
    fn entry_cost(value_len: usize) -> u64 {
        (value_len + ENTRY_OVERHEAD) as u64
    }

    fn note_residency(&mut self) {
        self.stats.resident_bytes = self.arena.len() as u64;
        self.stats.live_bytes = self.arena.live_len() as u64;
    }

    fn remove_slot(&mut self, slot: usize) {
        let s = self.slots[slot];
        self.map.remove(&s.key);
        self.lru.unlink(slot);
        self.arena.free(s.start, s.len);
        self.free_slots.push(slot);
        self.used -= Self::entry_cost(s.len);
    }

    fn insert(&mut self, key: RowKey, value: &[u8], origin: u32) -> bool {
        let cost = Self::entry_cost(value.len());
        if cost > self.budget {
            self.stats.rejected += 1;
            return false;
        }
        // Replace in place when the payload length is unchanged (the
        // overwhelmingly common case — rows of one table never change
        // size), so steady-state re-promotion touches no allocator. Counts
        // as an insertion, matching `CpuOptimizedCache`'s in-place path.
        if let Some(slot) = self.map.get(&key).copied() {
            let s = self.slots[slot];
            if s.len == value.len() {
                self.arena.write(s.start, value);
                self.slots[slot].origin = origin;
                self.lru.touch(slot);
                self.stats.insertions += 1;
                return true;
            }
            self.remove_slot(slot);
        }
        while self.used + cost > self.budget {
            let Some(victim) = self.lru.lru() else {
                break;
            };
            self.remove_slot(victim);
            self.stats.evictions += 1;
        }
        if self.used + cost > self.budget {
            self.stats.rejected += 1;
            self.note_residency();
            return false;
        }
        self.used += cost;
        self.stats.insertions += 1;
        let start = self.arena.alloc(value);
        let record = Slot {
            key,
            start,
            len: value.len(),
            origin,
        };
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot] = record;
                slot
            }
            None => {
                self.slots.push(record);
                self.slots.len() - 1
            }
        };
        self.lru.push_front(slot);
        self.map.insert(key, slot);
        self.note_residency();
        true
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free_slots.clear();
        self.lru.clear();
        self.arena.clear();
        self.used = 0;
        self.note_residency();
    }
}

/// The host-shared row-cache tier: K lock-striped arena-backed LRU
/// partitions behind a `&self` API, shared across shards via `Arc`.
#[derive(Debug)]
pub struct SharedRowTier {
    stripes: Vec<Mutex<Stripe>>,
    budget: Bytes,
}

impl SharedRowTier {
    /// Builds a tier of `stripes` lock-striped partitions sharing `budget`
    /// bytes. The budget is split losslessly across stripes (remainder
    /// bytes go to the first stripes); a zero stripe count clamps to one.
    pub fn new(budget: Bytes, stripes: usize) -> Self {
        let n = stripes.max(1);
        let stripes = (0..n)
            .map(|i| {
                Mutex::new(Stripe {
                    budget: split_share(budget.as_u64(), n as u64, i as u64),
                    ..Stripe::default()
                })
            })
            .collect();
        SharedRowTier { stripes, budget }
    }

    /// Number of lock stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Configured byte budget across all stripes.
    pub fn budget(&self) -> Bytes {
        self.budget
    }

    /// Host CPU time of one tier probe (hash, stripe lock, index lookup).
    /// Costlier than a private-cache probe — the stripe lock is shared
    /// state — which is why the tier sits *behind* the private caches.
    pub fn lookup_cost(&self) -> SimDuration {
        SimDuration::from_nanos(300)
    }

    fn stripe_of(&self, key: &RowKey) -> &Mutex<Stripe> {
        // Use the high half of the mixed key so stripe choice stays
        // decorrelated from the private caches' bucket choice (which uses
        // the low bits via `mix() % buckets`).
        let h = (key.mix() >> 32) as usize;
        &self.stripes[h % self.stripes.len()]
    }

    /// Looks a row up and, on a hit, hands its bytes to `f` under the
    /// stripe lock (recency refreshed). Returns whether the hit was
    /// promoted by a different shard than `source`. The closure must not
    /// call back into the same tier (single-stripe locks are not
    /// re-entrant).
    pub fn lookup_with<F: FnOnce(&[u8])>(
        &self,
        key: &RowKey,
        source: u32,
        f: F,
    ) -> Option<SharedHit> {
        let mut stripe = self
            .stripe_of(key)
            .lock()
            .expect("shared-tier stripe poisoned");
        match stripe.map.get(key).copied() {
            Some(slot) => {
                stripe.lru.touch(slot);
                stripe.stats.record_hit();
                let s = stripe.slots[slot];
                f(stripe.arena.slice(s.start, s.len));
                Some(SharedHit {
                    cross_shard: s.origin != source,
                })
            }
            None => {
                stripe.stats.record_miss();
                None
            }
        }
    }

    /// Promotes a row read from SM into the tier, tagged with the shard
    /// that read it. Returns true when the row was admitted (false when a
    /// single entry exceeds the stripe budget). Called at IO completion
    /// only, so no stripe lock is ever held across an SM read.
    pub fn insert(&self, key: RowKey, value: &[u8], source: u32) -> bool {
        let mut stripe = self
            .stripe_of(&key)
            .lock()
            .expect("shared-tier stripe poisoned");
        stripe.insert(key, value, source)
    }

    /// Returns true when the key is resident (without touching recency).
    pub fn contains(&self, key: &RowKey) -> bool {
        let stripe = self
            .stripe_of(key)
            .lock()
            .expect("shared-tier stripe poisoned");
        stripe.map.contains_key(key)
    }

    /// Number of resident rows across all stripes.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("shared-tier stripe poisoned").map.len())
            .sum()
    }

    /// True when no rows are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently consumed (payload + per-entry overhead) across all
    /// stripes.
    pub fn memory_used(&self) -> Bytes {
        Bytes(
            self.stripes
                .iter()
                .map(|s| s.lock().expect("shared-tier stripe poisoned").used)
                .sum(),
        )
    }

    /// Aggregated statistics across all stripes (hits/misses recorded under
    /// the stripe locks; residency gauges sum).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for s in &self.stripes {
            total.merge(&s.lock().expect("shared-tier stripe poisoned").stats);
        }
        total
    }

    /// Drops every resident row in every stripe (statistics are kept).
    /// Model updates call this once, host-wide.
    pub fn clear(&self) {
        for s in &self.stripes {
            s.lock().expect("shared-tier stripe poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tier(budget: Bytes, stripes: usize) -> SharedRowTier {
        SharedRowTier::new(budget, stripes)
    }

    #[test]
    fn insert_lookup_roundtrip_with_origin_tracking() {
        let t = tier(Bytes::from_kib(64), 4);
        let key = RowKey::new(1, 42);
        assert!(t.lookup_with(&key, 0, |_| {}).is_none());
        assert!(t.insert(key, &[7u8; 96], 0));
        // Same shard: hit, not cross-shard.
        let mut seen = Vec::new();
        let hit = t.lookup_with(&key, 0, |bytes| seen.extend_from_slice(bytes));
        assert_eq!(hit, Some(SharedHit { cross_shard: false }));
        assert_eq!(seen, vec![7u8; 96]);
        // Another shard: the same entry is a cross-shard hit.
        let hit = t.lookup_with(&key, 3, |_| {});
        assert_eq!(hit, Some(SharedHit { cross_shard: true }));
        let stats = t.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(t.len(), 1);
        assert!(t.contains(&key));
        assert!(t.memory_used() > Bytes::ZERO);
    }

    #[test]
    fn stripe_budgets_split_losslessly_and_evict_lru() {
        // 1000 bytes over 3 stripes: 334 + 333 + 333.
        let t = tier(Bytes(1000), 3);
        let per_stripe: u64 = t.stripes.iter().map(|s| s.lock().unwrap().budget).sum();
        assert_eq!(per_stripe, 1000);
        // Fill well past the budget; usage stays bounded and evictions run.
        for i in 0..64u64 {
            t.insert(RowKey::new(0, i), &[0u8; 100], 0);
        }
        assert!(t.memory_used() <= t.budget());
        assert!(t.stats().evictions > 0);
        assert!(!t.is_empty());
    }

    #[test]
    fn oversized_rows_are_rejected_per_stripe() {
        let t = tier(Bytes(256), 2);
        assert!(!t.insert(RowKey::new(0, 0), &[0u8; 1024], 0));
        assert!(t.is_empty());
        assert_eq!(t.stats().rejected, 1);
    }

    #[test]
    fn same_size_repromotion_overwrites_in_place() {
        let t = tier(Bytes::from_kib(4), 1);
        let key = RowKey::new(2, 7);
        assert!(t.insert(key, &[1u8; 64], 0));
        let resident = t.stats().resident_bytes;
        // Shard 1 re-promotes the same row: value and origin update without
        // growing the arena.
        assert!(t.insert(key, &[2u8; 64], 1));
        assert_eq!(t.stats().resident_bytes, resident);
        let hit = t.lookup_with(&key, 0, |bytes| assert_eq!(bytes, &[2u8; 64]));
        assert_eq!(hit, Some(SharedHit { cross_shard: true }));
    }

    #[test]
    fn clear_empties_every_stripe() {
        let t = tier(Bytes::from_kib(16), 8);
        for i in 0..32u64 {
            t.insert(RowKey::new(0, i), &[1u8; 32], 0);
        }
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.memory_used(), Bytes::ZERO);
    }

    #[test]
    fn zero_stripes_clamp_to_one() {
        let t = tier(Bytes::from_kib(1), 0);
        assert_eq!(t.stripe_count(), 1);
        assert!(t.insert(RowKey::new(0, 0), &[0u8; 16], 0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn concurrent_shards_share_one_tier() {
        // Four worker "shards" hammer one tier through an Arc: every row
        // promoted by shard 0 must be visible (as a cross-shard hit) to the
        // others, and the stripe locks must serialise without deadlock.
        let t = Arc::new(tier(Bytes::from_kib(256), 8));
        let rows: Vec<RowKey> = (0..64).map(|i| RowKey::new(0, i)).collect();
        for key in &rows {
            t.insert(*key, &[9u8; 64], 0);
        }
        std::thread::scope(|scope| {
            for shard in 1u32..5 {
                let t = Arc::clone(&t);
                let rows = &rows;
                scope.spawn(move || {
                    let mut cross = 0u64;
                    for _ in 0..50 {
                        for key in rows {
                            if let Some(hit) = t.lookup_with(key, shard, |bytes| {
                                assert_eq!(bytes[0], 9);
                            }) {
                                cross += u64::from(hit.cross_shard);
                            }
                        }
                    }
                    assert_eq!(cross, 50 * rows.len() as u64);
                });
            }
        });
        let stats = t.stats();
        assert_eq!(stats.hits, 4 * 50 * rows.len() as u64);
        assert_eq!(stats.misses, 0);
    }
}

//! Intrusive LRU ordering over slot indices.
//!
//! The seed engines kept their recency order in a `BTreeMap<stamp, key>`,
//! which allocates and frees tree nodes as entries are touched — so even a
//! pure cache *hit* could hit the allocator. `LruList` is a doubly linked
//! list threaded through two flat `Vec<usize>`s indexed by slot id: touch,
//! evict and insert are all O(1) pointer swaps with no allocation beyond
//! the one-time growth of the two vectors.

/// Sentinel for "no slot".
const NIL: usize = usize::MAX;

/// A doubly linked LRU list over external slot indices. Head is the most
/// recently used entry, tail the least recently used.
#[derive(Debug, Clone)]
pub(crate) struct LruList {
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize,
    tail: usize,
}

/// An empty list. Derived `Default` would zero `head`/`tail`, silently
/// claiming slot 0 is linked — the sentinel must be [`NIL`].
impl Default for LruList {
    fn default() -> Self {
        Self::new()
    }
}

impl LruList {
    pub(crate) fn new() -> Self {
        LruList {
            prev: Vec::new(),
            next: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn ensure_slot(&mut self, slot: usize) {
        if slot >= self.prev.len() {
            self.prev.resize(slot + 1, NIL);
            self.next.resize(slot + 1, NIL);
        }
    }

    /// Links `slot` in as the most recently used entry. The slot must not
    /// currently be linked.
    pub(crate) fn push_front(&mut self, slot: usize) {
        self.ensure_slot(slot);
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Unlinks `slot` from the list. The slot must currently be linked.
    pub(crate) fn unlink(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
    }

    /// Moves a linked `slot` to the front (most recently used).
    pub(crate) fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    /// The least recently used slot, if any.
    pub(crate) fn lru(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Unlinks everything. Vector capacity is kept.
    pub(crate) fn clear(&mut self) {
        self.prev.clear();
        self.next.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(l: &LruList) -> Vec<usize> {
        let mut out = Vec::new();
        let mut at = l.head;
        while at != NIL {
            out.push(at);
            at = l.next[at];
        }
        out
    }

    #[test]
    fn push_touch_and_evict_order() {
        let mut l = LruList::new();
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        assert_eq!(order(&l), vec![2, 1, 0]);
        assert_eq!(l.lru(), Some(0));
        l.touch(0);
        assert_eq!(order(&l), vec![0, 2, 1]);
        assert_eq!(l.lru(), Some(1));
        l.unlink(1);
        assert_eq!(l.lru(), Some(2));
        l.unlink(2);
        l.unlink(0);
        assert_eq!(l.lru(), None);
    }

    #[test]
    fn touch_of_head_is_a_no_op() {
        let mut l = LruList::new();
        l.push_front(5);
        l.touch(5);
        assert_eq!(order(&l), vec![5]);
        assert_eq!(l.lru(), Some(5));
    }

    #[test]
    fn clear_resets() {
        let mut l = LruList::new();
        l.push_front(1);
        l.push_front(3);
        l.clear();
        assert_eq!(l.lru(), None);
        l.push_front(2);
        assert_eq!(order(&l), vec![2]);
    }
}

//! Eviction-under-load and warmup behaviour across the cache engines —
//! the hot paths the serving loop exercises on every query (paper §4.3,
//! §A.4) that the per-module unit tests only cover in isolation.

use sdm_cache::{
    CacheConfig, CpuOptimizedCache, DualRowCache, MemoryOptimizedCache, PooledEmbeddingCache,
    RowCache, RowKey, WarmupTracker,
};
use sdm_metrics::units::Bytes;

/// Simulates the demand-fill loop the SDM manager runs: look up, record the
/// outcome, insert on miss. Returns the tracker after `passes` sweeps over
/// the working set.
fn demand_fill<C: RowCache>(
    cache: &mut C,
    rows: u64,
    row_bytes: usize,
    passes: usize,
    window: u64,
) -> WarmupTracker {
    let mut tracker = WarmupTracker::new(window, 0.95);
    for _ in 0..passes {
        for row in 0..rows {
            let key = RowKey::new(0, row);
            let hit = cache.get(&key).is_some();
            tracker.record(hit);
            if !hit {
                cache.insert(key, &vec![row as u8; row_bytes]);
            }
        }
    }
    tracker
}

#[test]
fn memory_optimized_cache_warms_up_when_working_set_fits() {
    // 256 rows x (64 + overhead) bytes comfortably fit in 64 KiB.
    let mut cache = MemoryOptimizedCache::with_expected_row_size(Bytes::from_kib(64), 64);
    let tracker = demand_fill(&mut cache, 256, 64, 4, 256);

    // First sweep is all misses; later sweeps are all hits.
    assert!(tracker.window_rates()[0] < 0.05, "cold window should miss");
    assert!(tracker.is_warm(), "cache never reached steady state");
    assert_eq!(tracker.steady_state_window(), Some(1));
    assert_eq!(tracker.lookups_to_steady_state(), Some(512));
    assert_eq!(cache.stats().evictions, 0, "no eviction when the set fits");
}

#[test]
fn cpu_optimized_cache_warms_up_when_working_set_fits() {
    let mut cache = CpuOptimizedCache::new(Bytes::from_kib(64));
    let tracker = demand_fill(&mut cache, 256, 64, 4, 256);
    assert!(tracker.is_warm());
    assert!(tracker.window_rates().last().unwrap() > &0.99);
    assert_eq!(cache.stats().evictions, 0);
}

#[test]
fn thrashing_working_set_never_warms_and_keeps_evicting() {
    // ~8 KiB budget vs a 256-row x 128-byte (~36 KiB + overhead) cycle:
    // sequential sweeps with LRU eviction never re-hit a resident row.
    let mut cache = CpuOptimizedCache::new(Bytes::from_kib(8));
    let tracker = demand_fill(&mut cache, 256, 128, 4, 256);

    assert!(!tracker.is_warm(), "thrashing cache reported steady state");
    for rate in tracker.window_rates() {
        assert!(*rate < 0.2, "window rate {rate} too high for a thrash loop");
    }
    assert!(cache.stats().evictions > 256, "eviction pressure expected");
    assert!(cache.memory_used() <= cache.budget());
}

#[test]
fn eviction_keeps_hot_rows_under_skewed_access() {
    // Skewed access: 8 hot rows are re-touched between every cold access, a
    // long tail of 1024 cold rows streams through. The ~8 KiB budget holds
    // roughly 100 rows, so the tail constantly evicts — but LRU must keep
    // the hot set resident throughout.
    let mut cache = MemoryOptimizedCache::with_expected_row_size(Bytes::from_kib(8), 64);
    let touch = |cache: &mut MemoryOptimizedCache, row: u64| {
        let key = RowKey::new(0, row);
        if cache.get(&key).is_none() {
            cache.insert(key, &[row as u8; 64]);
        }
    };
    for tick in 0..8192u64 {
        touch(&mut cache, tick % 8); // hot set: rows 0..8
        touch(&mut cache, 8 + tick % 1024); // cold tail: rows 8..1032
    }
    assert!(cache.stats().evictions > 1000, "eviction pressure expected");
    assert!(cache.memory_used() <= cache.budget());
    for row in 0..8u64 {
        assert!(
            cache.contains(&RowKey::new(0, row)),
            "hot row {row} evicted"
        );
    }
    // Only the most recently streamed slice of the cold tail can be
    // resident (capacity ≈ 100 rows for 1024 cold rows).
    let cold_resident = (8..1032u64)
        .filter(|&r| cache.contains(&RowKey::new(0, r)))
        .count();
    assert!(cold_resident < 256, "{cold_resident} cold rows resident");
}

#[test]
fn dual_cache_routes_by_row_size_and_stays_within_budgets() {
    let mut dual = DualRowCache::new(CacheConfig::with_total_budget(Bytes::from_kib(64)));
    let threshold = dual.small_row_threshold();
    assert!(threshold > 0);

    for row in 0..64u64 {
        dual.insert(RowKey::new(0, row), &vec![1u8; threshold / 2]);
        dual.insert(RowKey::new(1, row), &vec![2u8; threshold * 4]);
    }
    // Both engines saw their share of the inserts.
    assert_eq!(dual.small_engine_stats().insertions, 64);
    assert_eq!(dual.large_engine_stats().insertions, 64);
    assert!(dual.memory_used() <= dual.budget());

    // Lookups hit the right engine.
    assert!(dual.get(&RowKey::new(0, 0)).is_some() || dual.small_engine_stats().evictions > 0);
    assert!(dual.get(&RowKey::new(1, 63)).is_some() || dual.large_engine_stats().evictions > 0);
}

#[test]
fn pooled_cache_eviction_respects_budget_under_churn() {
    let mut cache = PooledEmbeddingCache::new(Bytes::from_kib(4), 2);
    for i in 0..512u64 {
        let indices: Vec<u64> = (i..i + 8).collect();
        cache.insert(0, &indices, &[i as f32; 16]);
        assert!(
            cache.memory_used() <= cache.budget(),
            "pooled cache over budget at insert {i}"
        );
    }
    assert!(!cache.is_empty());
    // The most recent entry is still resident.
    let last: Vec<u64> = (511..519).collect();
    assert!(cache.lookup(0, &last).is_some());
}

//! Table placement policies (paper §4.6, Table 5).

use dlrm::ModelConfig;
use embedding::{TableDescriptor, TableId, TableKind};
use sdm_metrics::units::Bytes;
use std::collections::{HashMap, HashSet};

/// Where a table's rows live at serving time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableLocation {
    /// Directly in fast memory (DRAM / accelerator memory); lookups never
    /// touch the cache or SM.
    FastMemory,
    /// On slow memory, with the FM row cache in front of it.
    SlowMemoryCached,
    /// On slow memory with the row cache disabled for this table (used for
    /// tables with no temporal locality, Table 5 row 3).
    SlowMemoryUncached,
}

/// The paper's placement policy families (Table 5).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
#[derive(Default)]
pub enum PlacementPolicy {
    /// Map every SM-candidate (user) table to SM and rely on the cache.
    #[default]
    SmOnlyWithCache,
    /// Place tables directly on fast memory, hottest-per-byte first, until
    /// the DRAM budget is spent; the rest goes to SM behind the cache.
    FixedFmThenSm {
        /// Fast-memory bytes reserved for direct table placement.
        dram_budget: Bytes,
    },
    /// Like [`PlacementPolicy::SmOnlyWithCache`], but tables whose Zipf
    /// exponent is below the threshold (no temporal locality) bypass the
    /// cache entirely.
    PerTableCacheEnablement {
        /// Minimum popularity skew for a table to use the cache.
        min_zipf_exponent: f64,
    },
    /// Explicit list of tables that must stay in fast memory (for offline
    /// placement tools); everything else goes to SM behind the cache.
    PinnedTables {
        /// Tables to keep in fast memory.
        pinned: Vec<TableId>,
        /// Fast-memory budget the pinned tables must fit into.
        dram_budget: Bytes,
    },
}

/// The resolved placement of every table of a model.
#[derive(Debug, Clone, Default)]
pub struct PlacementPlan {
    locations: HashMap<TableId, TableLocation>,
    fm_direct_bytes: Bytes,
    sm_bytes: Bytes,
}

impl PlacementPlan {
    /// Computes the placement for a model under a policy.
    ///
    /// Item tables always stay in fast memory (the paper places item
    /// embeddings in DRAM or accelerator memory; only user tables are SM
    /// candidates — §2.2 footnote 1). User tables are distributed according
    /// to the policy.
    pub fn compute(model: &ModelConfig, policy: &PlacementPolicy) -> Self {
        let mut plan = PlacementPlan::default();
        for t in &model.tables {
            if t.kind == TableKind::Item {
                plan.set(t, TableLocation::FastMemory);
            }
        }
        let user_tables: Vec<&TableDescriptor> = model.user_tables();
        match policy {
            PlacementPolicy::SmOnlyWithCache => {
                for t in user_tables {
                    plan.set(t, TableLocation::SlowMemoryCached);
                }
            }
            PlacementPolicy::FixedFmThenSm { dram_budget } => {
                // Hottest bytes-per-query-per-capacity first: tables that are
                // small but heavily read benefit most from direct placement.
                let mut ranked = user_tables;
                ranked.sort_by(|a, b| {
                    let score = |t: &TableDescriptor| {
                        t.bytes_per_query(model.item_batch).as_u64() as f64
                            / t.capacity().as_u64().max(1) as f64
                    };
                    score(b)
                        .partial_cmp(&score(a))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut spent = Bytes::ZERO;
                for t in ranked {
                    if spent + t.capacity() <= *dram_budget {
                        spent += t.capacity();
                        plan.set(t, TableLocation::FastMemory);
                    } else {
                        plan.set(t, TableLocation::SlowMemoryCached);
                    }
                }
            }
            PlacementPolicy::PerTableCacheEnablement { min_zipf_exponent } => {
                for t in user_tables {
                    if t.zipf_exponent >= *min_zipf_exponent {
                        plan.set(t, TableLocation::SlowMemoryCached);
                    } else {
                        plan.set(t, TableLocation::SlowMemoryUncached);
                    }
                }
            }
            PlacementPolicy::PinnedTables {
                pinned,
                dram_budget,
            } => {
                let pinned: HashSet<TableId> = pinned.iter().copied().collect();
                let mut spent = Bytes::ZERO;
                for t in user_tables {
                    if pinned.contains(&t.id) && spent + t.capacity() <= *dram_budget {
                        spent += t.capacity();
                        plan.set(t, TableLocation::FastMemory);
                    } else {
                        plan.set(t, TableLocation::SlowMemoryCached);
                    }
                }
            }
        }
        plan
    }

    fn set(&mut self, table: &TableDescriptor, location: TableLocation) {
        match location {
            TableLocation::FastMemory => self.fm_direct_bytes += table.capacity(),
            TableLocation::SlowMemoryCached | TableLocation::SlowMemoryUncached => {
                self.sm_bytes += table.capacity()
            }
        }
        self.locations.insert(table.id, location);
    }

    /// Location of a table (fast memory for unknown tables, the safe
    /// default).
    pub fn location(&self, table: TableId) -> TableLocation {
        self.locations
            .get(&table)
            .copied()
            .unwrap_or(TableLocation::FastMemory)
    }

    /// Tables that live on slow memory (cached or not).
    pub fn sm_tables(&self) -> Vec<TableId> {
        let mut v: Vec<TableId> = self
            .locations
            .iter()
            .filter(|(_, l)| {
                matches!(
                    l,
                    TableLocation::SlowMemoryCached | TableLocation::SlowMemoryUncached
                )
            })
            .map(|(t, _)| *t)
            .collect();
        v.sort_unstable();
        v
    }

    /// Tables that bypass the row cache.
    pub fn uncached_tables(&self) -> Vec<TableId> {
        let mut v: Vec<TableId> = self
            .locations
            .iter()
            .filter(|(_, l)| **l == TableLocation::SlowMemoryUncached)
            .map(|(t, _)| *t)
            .collect();
        v.sort_unstable();
        v
    }

    /// Bytes of tables placed directly in fast memory (paper-scale).
    pub fn fm_direct_bytes(&self) -> Bytes {
        self.fm_direct_bytes
    }

    /// Bytes of tables placed on slow memory (paper-scale).
    pub fn sm_bytes(&self) -> Bytes {
        self.sm_bytes
    }

    /// Number of tables covered by the plan.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// True when the plan covers no tables.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::model_zoo;

    #[test]
    fn sm_only_policy_sends_all_user_tables_to_sm() {
        let model = model_zoo::tiny(4, 2, 100);
        let plan = PlacementPlan::compute(&model, &PlacementPolicy::SmOnlyWithCache);
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.sm_tables().len(), 4);
        for t in model.item_tables() {
            assert_eq!(plan.location(t.id), TableLocation::FastMemory);
        }
        for t in model.user_tables() {
            assert_eq!(plan.location(t.id), TableLocation::SlowMemoryCached);
        }
        assert!(plan.sm_bytes() > Bytes::ZERO);
    }

    #[test]
    fn fixed_fm_policy_respects_the_dram_budget() {
        let model = model_zoo::tiny(6, 1, 200);
        let table_capacity = model.tables[0].capacity();
        let budget = table_capacity * 2;
        let plan = PlacementPlan::compute(
            &model,
            &PlacementPolicy::FixedFmThenSm {
                dram_budget: budget,
            },
        );
        // Exactly two user tables fit in the budget.
        let fm_users = model
            .user_tables()
            .iter()
            .filter(|t| plan.location(t.id) == TableLocation::FastMemory)
            .count();
        assert_eq!(fm_users, 2);
        assert!(plan.fm_direct_bytes() >= budget.saturating_sub(Bytes(1)) || fm_users == 2);
        assert_eq!(plan.sm_tables().len(), 4);
    }

    #[test]
    fn fixed_fm_prefers_hot_per_byte_tables() {
        let mut model = model_zoo::tiny(2, 0, 1000);
        // Table 0: large but cold (PF 1); table 1: small and hot (PF 30).
        model.tables[0].pooling_factor = 1;
        model.tables[1].pooling_factor = 30;
        model.tables[1].num_rows = 100;
        let budget = model.tables[1].capacity();
        let plan = PlacementPlan::compute(
            &model,
            &PlacementPolicy::FixedFmThenSm {
                dram_budget: budget,
            },
        );
        assert_eq!(plan.location(1), TableLocation::FastMemory);
        assert_eq!(plan.location(0), TableLocation::SlowMemoryCached);
    }

    #[test]
    fn per_table_cache_enablement_disables_cold_tables() {
        let mut model = model_zoo::tiny(3, 0, 100);
        model.tables[0].zipf_exponent = 0.1; // effectively uniform
        model.tables[1].zipf_exponent = 0.9;
        model.tables[2].zipf_exponent = 1.1;
        let plan = PlacementPlan::compute(
            &model,
            &PlacementPolicy::PerTableCacheEnablement {
                min_zipf_exponent: 0.5,
            },
        );
        assert_eq!(plan.location(0), TableLocation::SlowMemoryUncached);
        assert_eq!(plan.location(1), TableLocation::SlowMemoryCached);
        assert_eq!(plan.uncached_tables(), vec![0]);
    }

    #[test]
    fn pinned_tables_stay_in_fm_within_budget() {
        let model = model_zoo::tiny(3, 1, 100);
        let budget = model.tables[0].capacity();
        let plan = PlacementPlan::compute(
            &model,
            &PlacementPolicy::PinnedTables {
                pinned: vec![0, 1],
                dram_budget: budget,
            },
        );
        // Only table 0 fits the pin budget; table 1 spills to SM.
        assert_eq!(plan.location(0), TableLocation::FastMemory);
        assert_eq!(plan.location(1), TableLocation::SlowMemoryCached);
        assert_eq!(plan.location(2), TableLocation::SlowMemoryCached);
    }

    #[test]
    fn unknown_table_defaults_to_fast_memory() {
        let plan = PlacementPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.location(42), TableLocation::FastMemory);
    }
}

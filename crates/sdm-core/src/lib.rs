//! Software Defined Memory (SDM) for massive DLRM inference — the paper's
//! primary contribution.
//!
//! The SDM stack extends the inference memory hierarchy beyond DRAM to
//! Storage Class Memory: embedding tables whose bandwidth demand is low
//! (predominantly the user-side tables, paper §2.2) are placed on NVMe
//! Nand-Flash or Optane devices, a unified row cache plus a
//! pooled-embedding cache in fast memory absorb the temporal locality, and
//! small-granularity SGL reads over an io_uring-style engine keep the IO
//! path cheap.
//!
//! The pieces fit together as follows:
//!
//! * [`SdmConfig`] — every tuning knob the paper exposes at deployment time
//!   (cache sizes, outstanding-IO limits, placement policy, de-prune /
//!   de-quantise at load, access granularity).
//! * [`PlacementPolicy`] / [`PlacementPlan`] — which tables sit directly in
//!   fast memory, which go to SM, and which get the cache (Table 5).
//! * [`ModelLoader`] — materialises a (scaled) model, applies de-pruning /
//!   de-quantisation, lays tables out on the devices and writes the image.
//! * [`SdmMemoryManager`] — the serving path. It implements
//!   [`dlrm::EmbeddingBackend`], so the unmodified DLRM inference engine can
//!   run on top of DRAM or SDM interchangeably.
//! * [`ModelUpdater`] — full and incremental model updates and their
//!   endurance / warmup consequences (§A.3, §A.4).
//! * [`Shard`] / [`ServingHost`] — multi-stream serving: N complete
//!   per-stream serving replicas run on worker threads behind a
//!   [`workload::Scheduler`] routing policy, replacing the paper's linear
//!   single-stream QPS extrapolation with measured wall-clock throughput.
//! * [`Frontend`] — open-loop serving: seeded arrival processes, an
//!   SLO-aware dynamic batcher (size-or-deadline close) and token-bucket
//!   admission control with load shedding, turning makespan numbers into
//!   latency-vs-offered-load curves.
//!
//! # Example
//!
//! ```
//! use dlrm::model_zoo;
//! use sdm_core::{SdmConfig, SdmSystem};
//! use workload::{QueryGenerator, WorkloadConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = model_zoo::tiny(2, 1, 500);
//! let mut system = SdmSystem::build(&model, SdmConfig::default(), 7)?;
//! let mut gen = QueryGenerator::new(
//!     &model.tables,
//!     WorkloadConfig { item_batch: model.item_batch, ..WorkloadConfig::default() },
//!     7,
//! )?;
//! let result = system.run_query(&gen.next_query())?;
//! assert_eq!(result.scores.len(), model.item_batch as usize);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod config;
mod error;
mod frontend;
mod host;
mod loader;
mod manager;
mod placement;
mod shard;
mod stats;
mod system;
mod update;

pub use config::{AccessGranularity, BatchMode, LoadTransform, SdmConfig};
pub use embedding::PoolKernel;
pub use error::SdmError;
pub use frontend::{
    BatchRecord, CloseReason, Frontend, FrontendConfig, FrontendReport, QueryOutcome, QueryRecord,
    TokenBucketConfig,
};
pub use host::{HostReport, ServingHost};
pub use loader::{LoadedModel, LoadedTable, ModelLoader};
pub use manager::SdmMemoryManager;
pub use placement::{PlacementPlan, PlacementPolicy, TableLocation};
pub use shard::Shard;
pub use stats::SdmStats;
pub use system::{QpsReport, SdmSystem};
pub use update::{ModelUpdater, UpdateKind, UpdateReport};

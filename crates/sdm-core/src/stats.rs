//! Serving-path statistics for the SDM memory manager.

use sdm_metrics::units::Bytes;
use sdm_metrics::{LatencyHistogram, SimDuration};

/// Cumulative statistics of the SDM serving path.
#[derive(Debug, Clone, Default)]
pub struct SdmStats {
    /// Pooled embedding operators served.
    pub pooled_ops: u64,
    /// Pooled operators answered entirely from the pooled-embedding cache.
    pub pooled_cache_hits: u64,
    /// Row lookups served from fast memory directly (FM-placed tables).
    pub fm_direct_lookups: u64,
    /// Row lookups that hit the FM row cache.
    pub row_cache_hits: u64,
    /// Row lookups that missed the private cache but hit the host-shared
    /// tier (served from another shard's — or an earlier — SM read).
    pub shared_tier_hits: u64,
    /// Shared-tier probes that missed (private miss and shared miss, so the
    /// row went to SM).
    pub shared_tier_misses: u64,
    /// Shared-tier hits whose entry was promoted by a *different* shard:
    /// the cross-shard reuse the tier exists to recover.
    pub shared_tier_cross_hits: u64,
    /// Rows promoted into the shared tier at IO completion.
    pub shared_tier_promotions: u64,
    /// Row lookups that missed the cache and went to SM.
    pub sm_reads: u64,
    /// Row lookups resolved to pruned (zero) rows without any access.
    pub pruned_zero_rows: u64,
    /// Payload bytes read from SM.
    pub sm_bytes_read: Bytes,
    /// Bytes that crossed the device links (includes read amplification).
    pub sm_bus_bytes: Bytes,
    /// Latency distribution of pooled operators on SM-resident tables.
    pub sm_op_latency: LatencyHistogram,
    /// Latency distribution of pooled operators on FM-resident tables.
    pub fm_op_latency: LatencyHistogram,
    /// Total simulated time spent in dequantisation + pooling.
    pub pooling_time: SimDuration,
    /// Total simulated time spent waiting on SM IO.
    pub io_time: SimDuration,
    /// Queries admitted by an open-loop front end (zero when serving is
    /// driven closed-loop, without a front end).
    pub frontend_admitted: u64,
    /// Queries shed by the front end's token-bucket admission control.
    pub frontend_shed_rate_limited: u64,
    /// Queries shed by the front end because the estimated queue wait
    /// exceeded the SLO.
    pub frontend_shed_overload: u64,
    /// Queries shed by the front end's brownout (admission tightened while
    /// backend shard health was degraded) that a healthy backend would
    /// have admitted.
    pub frontend_shed_brownout: u64,
    /// Row lookups whose SM read exhausted every retry and were served
    /// degraded: the row pools as zero, like `pruned_zero_rows`, instead
    /// of failing the query. Always zero without injected faults.
    pub degraded_rows: u64,
    /// IO attempts re-issued by the engine's retry layer.
    pub io_retries: u64,
    /// IO attempts failed by transient device errors (all recovered or
    /// degraded; never surfaced as query failures).
    pub io_transient_errors: u64,
    /// IO attempts whose payload failed end-to-end checksum verification.
    /// Every detected corruption is retried or degraded — corrupted bytes
    /// are never pooled.
    pub io_checksum_failures: u64,
    /// IO attempts abandoned at the per-IO deadline.
    pub io_deadline_timeouts: u64,
    /// Hedged (duplicate) reads issued against slow primaries.
    pub io_hedges: u64,
    /// Hedged reads that won (completed cleanly before the primary).
    pub io_hedge_wins: u64,
    /// Batch partitions redirected away from an unhealthy shard by the
    /// host's failover routing.
    pub shard_failovers: u64,
}

impl SdmStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        SdmStats::default()
    }

    /// Folds another statistics block into this one: counters and byte
    /// totals add, histograms merge, simulated-time totals add.
    ///
    /// This is how a multi-shard host aggregates its per-shard serving
    /// statistics after the worker threads have joined — every shard owns
    /// its stats exclusively while serving, so aggregation needs no
    /// serving-path synchronisation.
    pub fn merge(&mut self, other: &SdmStats) {
        self.pooled_ops += other.pooled_ops;
        self.pooled_cache_hits += other.pooled_cache_hits;
        self.fm_direct_lookups += other.fm_direct_lookups;
        self.row_cache_hits += other.row_cache_hits;
        self.shared_tier_hits += other.shared_tier_hits;
        self.shared_tier_misses += other.shared_tier_misses;
        self.shared_tier_cross_hits += other.shared_tier_cross_hits;
        self.shared_tier_promotions += other.shared_tier_promotions;
        self.sm_reads += other.sm_reads;
        self.pruned_zero_rows += other.pruned_zero_rows;
        self.sm_bytes_read += other.sm_bytes_read;
        self.sm_bus_bytes += other.sm_bus_bytes;
        self.sm_op_latency.merge(&other.sm_op_latency);
        self.fm_op_latency.merge(&other.fm_op_latency);
        self.pooling_time += other.pooling_time;
        self.io_time += other.io_time;
        self.frontend_admitted += other.frontend_admitted;
        self.frontend_shed_rate_limited += other.frontend_shed_rate_limited;
        self.frontend_shed_overload += other.frontend_shed_overload;
        self.frontend_shed_brownout += other.frontend_shed_brownout;
        self.degraded_rows += other.degraded_rows;
        self.io_retries += other.io_retries;
        self.io_transient_errors += other.io_transient_errors;
        self.io_checksum_failures += other.io_checksum_failures;
        self.io_deadline_timeouts += other.io_deadline_timeouts;
        self.io_hedges += other.io_hedges;
        self.io_hedge_wins += other.io_hedge_wins;
        self.shard_failovers += other.shard_failovers;
    }

    /// Fraction of served rows that were degraded (pooled as zero after
    /// exhausted retries) over every row access the serving path resolved;
    /// zero without faults.
    pub fn degraded_row_rate(&self) -> f64 {
        let rows = self.row_cache_hits
            + self.shared_tier_hits
            + self.sm_reads
            + self.pruned_zero_rows
            + self.degraded_rows;
        if rows == 0 {
            0.0
        } else {
            self.degraded_rows as f64 / rows as f64
        }
    }

    /// Row-cache hit rate over SM-resident lookups.
    pub fn row_cache_hit_rate(&self) -> f64 {
        let lookups = self.row_cache_hits + self.shared_tier_hits + self.sm_reads;
        if lookups == 0 {
            0.0
        } else {
            self.row_cache_hits as f64 / lookups as f64
        }
    }

    /// Shared-tier hit rate over shared-tier probes (private-cache misses
    /// with the tier attached); zero before any probe.
    pub fn shared_tier_hit_rate(&self) -> f64 {
        let probes = self.shared_tier_hits + self.shared_tier_misses;
        if probes == 0 {
            0.0
        } else {
            self.shared_tier_hits as f64 / probes as f64
        }
    }

    /// Cross-shard share of shared-tier probes: hits served by a row
    /// another shard promoted. This is the reuse fully private per-shard
    /// caches cannot express; zero before any probe.
    pub fn shared_tier_cross_hit_rate(&self) -> f64 {
        let probes = self.shared_tier_hits + self.shared_tier_misses;
        if probes == 0 {
            0.0
        } else {
            self.shared_tier_cross_hits as f64 / probes as f64
        }
    }

    /// Pooled-embedding-cache hit rate over pooled operators.
    pub fn pooled_cache_hit_rate(&self) -> f64 {
        if self.pooled_ops == 0 {
            0.0
        } else {
            self.pooled_cache_hits as f64 / self.pooled_ops as f64
        }
    }

    /// Fraction of front-end arrivals shed (any cause, brownout included)
    /// over all arrivals; zero when no front end fed this serving path.
    pub fn frontend_shed_rate(&self) -> f64 {
        let shed = self.frontend_shed_rate_limited
            + self.frontend_shed_overload
            + self.frontend_shed_brownout;
        let offered = self.frontend_admitted + shed;
        if offered == 0 {
            0.0
        } else {
            shed as f64 / offered as f64
        }
    }

    /// Read amplification observed on the SM path.
    pub fn read_amplification(&self) -> f64 {
        if self.sm_bytes_read.is_zero() {
            1.0
        } else {
            self.sm_bus_bytes.as_u64() as f64 / self.sm_bytes_read.as_u64() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = SdmStats::new();
        a.pooled_ops = 3;
        a.row_cache_hits = 5;
        a.sm_bytes_read = Bytes(100);
        a.io_time = SimDuration::from_micros(7);
        a.sm_op_latency.record(SimDuration::from_micros(10));
        let mut b = SdmStats::new();
        b.pooled_ops = 2;
        b.sm_reads = 4;
        b.sm_bytes_read = Bytes(50);
        b.io_time = SimDuration::from_micros(3);
        b.sm_op_latency.record(SimDuration::from_micros(20));
        b.sm_op_latency.record(SimDuration::from_micros(30));
        a.merge(&b);
        assert_eq!(a.pooled_ops, 5);
        assert_eq!(a.row_cache_hits, 5);
        assert_eq!(a.sm_reads, 4);
        assert_eq!(a.sm_bytes_read, Bytes(150));
        assert_eq!(a.io_time, SimDuration::from_micros(10));
        assert_eq!(a.sm_op_latency.count(), 3);
        // `b` is unchanged.
        assert_eq!(b.pooled_ops, 2);
    }

    #[test]
    fn rates_handle_empty_and_populated() {
        let mut s = SdmStats::new();
        assert_eq!(s.row_cache_hit_rate(), 0.0);
        assert_eq!(s.pooled_cache_hit_rate(), 0.0);
        assert_eq!(s.read_amplification(), 1.0);

        s.row_cache_hits = 90;
        s.sm_reads = 10;
        s.pooled_ops = 20;
        s.pooled_cache_hits = 1;
        s.sm_bytes_read = Bytes(100);
        s.sm_bus_bytes = Bytes(400);
        assert!((s.row_cache_hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.pooled_cache_hit_rate() - 0.05).abs() < 1e-12);
        assert!((s.read_amplification() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn frontend_counters_merge_and_rate() {
        let mut s = SdmStats::new();
        assert_eq!(s.frontend_shed_rate(), 0.0);
        s.frontend_admitted = 150;
        s.frontend_shed_rate_limited = 30;
        s.frontend_shed_overload = 20;
        assert!((s.frontend_shed_rate() - 0.25).abs() < 1e-12);
        let mut merged = SdmStats::new();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.frontend_admitted, 300);
        assert_eq!(merged.frontend_shed_rate_limited, 60);
        assert_eq!(merged.frontend_shed_overload, 40);
    }

    #[test]
    fn resilience_counters_merge_and_rate() {
        let mut s = SdmStats::new();
        assert_eq!(s.degraded_row_rate(), 0.0);
        s.row_cache_hits = 6;
        s.sm_reads = 2;
        s.pruned_zero_rows = 1;
        s.degraded_rows = 1;
        assert!((s.degraded_row_rate() - 0.1).abs() < 1e-12);
        s.io_retries = 4;
        s.io_transient_errors = 3;
        s.io_checksum_failures = 2;
        s.io_deadline_timeouts = 1;
        s.io_hedges = 5;
        s.io_hedge_wins = 2;
        s.shard_failovers = 1;
        s.frontend_shed_brownout = 7;
        let mut merged = SdmStats::new();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.degraded_rows, 2);
        assert_eq!(merged.io_retries, 8);
        assert_eq!(merged.io_transient_errors, 6);
        assert_eq!(merged.io_checksum_failures, 4);
        assert_eq!(merged.io_deadline_timeouts, 2);
        assert_eq!(merged.io_hedges, 10);
        assert_eq!(merged.io_hedge_wins, 4);
        assert_eq!(merged.shard_failovers, 2);
        assert_eq!(merged.frontend_shed_brownout, 14);
    }

    #[test]
    fn shared_tier_rates_and_merge() {
        let mut s = SdmStats::new();
        assert_eq!(s.shared_tier_hit_rate(), 0.0);
        assert_eq!(s.shared_tier_cross_hit_rate(), 0.0);
        s.shared_tier_hits = 6;
        s.shared_tier_misses = 4;
        s.shared_tier_cross_hits = 3;
        s.shared_tier_promotions = 4;
        assert!((s.shared_tier_hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.shared_tier_cross_hit_rate() - 0.3).abs() < 1e-12);
        // Shared-tier hits count toward the row-lookup denominator.
        s.row_cache_hits = 10;
        s.sm_reads = 4;
        assert!((s.row_cache_hit_rate() - 0.5).abs() < 1e-12);
        let mut merged = SdmStats::new();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.shared_tier_hits, 12);
        assert_eq!(merged.shared_tier_misses, 8);
        assert_eq!(merged.shared_tier_cross_hits, 6);
        assert_eq!(merged.shared_tier_promotions, 8);
    }
}

//! Error type for the SDM stack.

use std::error::Error;
use std::fmt;

/// Errors returned by the SDM memory manager and loader.
#[derive(Debug)]
#[non_exhaustive]
pub enum SdmError {
    /// The embedding layer failed (bad descriptor, malformed row, …).
    Embedding(embedding::EmbeddingError),
    /// The IO engine or a device failed.
    Io(io_engine::IoError),
    /// The cache layer rejected its configuration.
    Cache(sdm_cache::CacheError),
    /// The DLRM model or engine failed.
    Dlrm(dlrm::DlrmError),
    /// The workload generator failed.
    Workload(workload::WorkloadError),
    /// The configuration is inconsistent (e.g. fast memory budget smaller
    /// than the directly-placed tables).
    InvalidConfig {
        /// Explanation of the problem.
        reason: String,
    },
    /// A shard's worker panicked while serving a batch. The panic is
    /// caught at the thread join and converted into this typed error so a
    /// poisoned shard fails its batch cleanly instead of tearing down the
    /// host.
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// Panic payload, when it carried a message.
        cause: String,
    },
    /// An internal bookkeeping invariant was violated (a bug in the serving
    /// pipeline, not in caller input). Surfaced as a typed error instead of
    /// a panic so a corrupted query fails cleanly and the shard survives.
    Internal {
        /// The invariant that did not hold.
        invariant: &'static str,
    },
}

impl fmt::Display for SdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdmError::Embedding(e) => write!(f, "embedding error: {e}"),
            SdmError::Io(e) => write!(f, "io error: {e}"),
            SdmError::Cache(e) => write!(f, "cache error: {e}"),
            SdmError::Dlrm(e) => write!(f, "dlrm error: {e}"),
            SdmError::Workload(e) => write!(f, "workload error: {e}"),
            SdmError::InvalidConfig { reason } => write!(f, "invalid SDM config: {reason}"),
            SdmError::ShardFailed { shard, cause } => {
                write!(f, "shard {shard} worker failed: {cause}")
            }
            SdmError::Internal { invariant } => {
                write!(f, "internal invariant violated: {invariant}")
            }
        }
    }
}

impl Error for SdmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SdmError::Embedding(e) => Some(e),
            SdmError::Io(e) => Some(e),
            SdmError::Cache(e) => Some(e),
            SdmError::Dlrm(e) => Some(e),
            SdmError::Workload(e) => Some(e),
            SdmError::InvalidConfig { .. } => None,
            SdmError::ShardFailed { .. } => None,
            SdmError::Internal { .. } => None,
        }
    }
}

impl From<embedding::EmbeddingError> for SdmError {
    fn from(e: embedding::EmbeddingError) -> Self {
        SdmError::Embedding(e)
    }
}

impl From<io_engine::IoError> for SdmError {
    fn from(e: io_engine::IoError) -> Self {
        SdmError::Io(e)
    }
}

impl From<scm_device::DeviceError> for SdmError {
    fn from(e: scm_device::DeviceError) -> Self {
        SdmError::Io(io_engine::IoError::from(e))
    }
}

impl From<sdm_cache::CacheError> for SdmError {
    fn from(e: sdm_cache::CacheError) -> Self {
        SdmError::Cache(e)
    }
}

impl From<dlrm::DlrmError> for SdmError {
    fn from(e: dlrm::DlrmError) -> Self {
        SdmError::Dlrm(e)
    }
}

impl From<workload::WorkloadError> for SdmError {
    fn from(e: workload::WorkloadError) -> Self {
        SdmError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SdmError = embedding::EmbeddingError::UnknownTable { table: 1 }.into();
        assert!(e.to_string().contains("embedding"));
        assert!(e.source().is_some());

        let e: SdmError = sdm_cache::CacheError::ZeroBudget.into();
        assert!(e.to_string().contains("cache"));

        let e = SdmError::InvalidConfig {
            reason: "too small".into(),
        };
        assert!(e.to_string().contains("too small"));
        assert!(e.source().is_none());

        let e = SdmError::ShardFailed {
            shard: 2,
            cause: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.to_string().contains("index out of bounds"));
        assert!(e.source().is_none());
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<SdmError>();
    }
}

//! SDM deployment configuration — the union of every tuning knob the paper
//! exposes at model-deployment time.

use crate::error::SdmError;
use crate::placement::PlacementPolicy;
use embedding::PoolKernel;
use io_engine::{CompletionMode, EngineConfig};
use scm_device::TechnologyProfile;
use sdm_cache::CacheConfig;
use sdm_metrics::units::Bytes;

/// Access granularity used for SM reads (paper §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessGranularity {
    /// SGL bit-bucket reads: only the row's bytes (DWORD aligned) cross the
    /// bus.
    #[default]
    Sgl,
    /// Whole-block reads with read amplification (the path without the
    /// paper's kernel/NVMe extension).
    Block,
}

/// How batches of queries move through the serving loop (paper §3.2).
///
/// The paper's serving stack hides SCM latency by keeping the device queues
/// deep: reads from many in-flight requests overlap, so pooling work runs
/// while other requests' IO is still in the queue. `Exact` keeps the
/// seed-compatible contract — each query's SM reads drain before the next
/// query issues, bit-identical to a sequential loop — while `Relaxed`
/// pipelines the batch: up to `max_inflight_queries` queries issue their
/// cache misses before the oldest query completes, trading per-query tail
/// latency for batch throughput and queue occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Batches execute exactly like a sequential per-query loop (the
    /// `batch_equivalence` contract).
    #[default]
    Exact,
    /// Overlapped execution: queries are begun up to a window ahead, so
    /// their SM reads share the device queues (`batch_overlap` contract:
    /// a window of 1 is bit-identical to [`BatchMode::Exact`]).
    Relaxed {
        /// In-flight query window; must be at least 1.
        max_inflight_queries: usize,
    },
}

/// Optional transformations applied when loading tables onto SM
/// (paper §4.5 and §A.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadTransform {
    /// Rebuild pruned tables as full tables on SM so the mapping tensors
    /// disappear from fast memory (Algorithm 2).
    pub deprune: bool,
    /// Expand int8/int4 rows to `f32` on SM so dequantisation is skipped at
    /// serving time (costs SM capacity and FM cache efficiency).
    pub dequantize: bool,
}

/// Full configuration of one SDM deployment on one host.
#[derive(Debug, Clone)]
pub struct SdmConfig {
    /// Technology used for the slow-memory devices.
    pub technology: TechnologyProfile,
    /// Number of SM devices on the host.
    pub device_count: usize,
    /// Capacity of each SM device.
    pub device_capacity: Bytes,
    /// Fast-memory budget available to the SDM stack (row cache + pooled
    /// cache + mapping tensors + directly placed tables).
    pub fm_budget: Bytes,
    /// Row/pooled cache configuration.
    pub cache: CacheConfig,
    /// IO engine tuning (outstanding-IO limits, completion mode).
    pub io: EngineConfig,
    /// Read granularity.
    pub granularity: AccessGranularity,
    /// Table placement policy.
    pub placement: PlacementPolicy,
    /// Load-time transformations.
    pub transform: LoadTransform,
    /// Batch execution mode (exact vs relaxed/overlapped).
    pub batch_mode: BatchMode,
    /// Dequant-accumulate pooling kernel ([`PoolKernel::Auto`] picks the
    /// widest SIMD kernel the host supports; explicit values pin one
    /// implementation for A/B runs — all choices are bit-identical).
    pub pool_kernel: PoolKernel,
    /// Seed for table materialisation.
    pub seed: u64,
}

impl Default for SdmConfig {
    fn default() -> Self {
        SdmConfig {
            technology: TechnologyProfile::optane_ssd(),
            device_count: 2,
            device_capacity: Bytes::from_mib(256),
            fm_budget: Bytes::from_mib(64),
            cache: CacheConfig::with_total_budget(Bytes::from_mib(48)),
            io: EngineConfig::default(),
            granularity: AccessGranularity::Sgl,
            placement: PlacementPolicy::SmOnlyWithCache,
            transform: LoadTransform::default(),
            batch_mode: BatchMode::default(),
            pool_kernel: PoolKernel::default(),
            seed: 0x5d31,
        }
    }
}

impl SdmConfig {
    /// A configuration sized for unit tests: small devices, small caches.
    pub fn for_tests() -> Self {
        SdmConfig {
            device_capacity: Bytes::from_mib(64),
            fm_budget: Bytes::from_mib(8),
            cache: CacheConfig::with_total_budget(Bytes::from_mib(4)),
            ..SdmConfig::default()
        }
    }

    /// Uses Nand Flash devices instead of the default Optane.
    pub fn with_nand_flash(mut self) -> Self {
        self.technology = TechnologyProfile::nand_flash();
        self
    }

    /// Sets the placement policy.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the load-time transformation flags.
    pub fn with_transform(mut self, transform: LoadTransform) -> Self {
        self.transform = transform;
        self
    }

    /// Sets the access granularity.
    pub fn with_granularity(mut self, granularity: AccessGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Switches the completion mode (interrupt vs polling, §A.1).
    pub fn with_completion_mode(mut self, mode: CompletionMode) -> Self {
        self.io.completion_mode = mode;
        self
    }

    /// Sets the batch execution mode (exact vs relaxed/overlapped).
    pub fn with_batch_mode(mut self, mode: BatchMode) -> Self {
        self.batch_mode = mode;
        self
    }

    /// Shorthand for relaxed batching with an in-flight window of `window`
    /// queries.
    pub fn with_relaxed_batching(self, window: usize) -> Self {
        self.with_batch_mode(BatchMode::Relaxed {
            max_inflight_queries: window,
        })
    }

    /// Pins the dequant-accumulate pooling kernel (A/B comparisons, the
    /// CI force-scalar leg). All kernels are bit-identical; `Auto` (the
    /// default) picks the widest one the host supports.
    pub fn with_pool_kernel(mut self, kernel: PoolKernel) -> Self {
        self.pool_kernel = kernel;
        self
    }

    /// Enables the host-shared second cache tier with the given budget
    /// (paper §3's host-level DRAM cache in front of SM). The budget is a
    /// host-level resource: [`SdmConfig::divide_among_indexed`] does not
    /// divide it, and [`crate::ServingHost::build`] carves the tier out
    /// exactly once and hands every shard a handle
    /// ([`crate::SdmSystem::build`] likewise attaches one for its single
    /// stream; only a bare [`crate::Shard::build`] leaves attachment to
    /// its owner). Zero disables the tier (the default), which keeps
    /// single-tier serving bit-identical.
    pub fn with_shared_tier(mut self, budget: Bytes) -> Self {
        self.cache.shared_tier_budget = budget;
        self
    }

    /// Selects the shared tier's admission policy (see
    /// [`sdm_cache::TierAdmission`]). The default,
    /// [`sdm_cache::TierAdmission::Always`], admits every promotion and is
    /// bit-identical to previous revisions;
    /// [`sdm_cache::TierAdmission::SecondTouch`] requires a row to be
    /// promoted twice before it displaces residents, which protects a
    /// capacity-constrained tier from single-use pollution.
    pub fn with_shared_tier_admission(mut self, admission: sdm_cache::TierAdmission) -> Self {
        self.cache.shared_tier_admission = admission;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SdmError::InvalidConfig`] for zero devices or capacities and
    /// propagates cache / IO configuration errors.
    pub fn validate(&self) -> Result<(), SdmError> {
        if self.device_count == 0 {
            return Err(SdmError::InvalidConfig {
                reason: "device_count must be at least 1".into(),
            });
        }
        if self.device_capacity.is_zero() {
            return Err(SdmError::InvalidConfig {
                reason: "device_capacity must be non-zero".into(),
            });
        }
        if self.fm_budget.is_zero() {
            return Err(SdmError::InvalidConfig {
                reason: "fm_budget must be non-zero".into(),
            });
        }
        if self.cache.row_cache_budget > self.fm_budget {
            return Err(SdmError::InvalidConfig {
                reason: format!(
                    "row cache budget {} exceeds fast-memory budget {}",
                    self.cache.row_cache_budget, self.fm_budget
                ),
            });
        }
        if self.granularity == AccessGranularity::Sgl && !self.technology.supports_sgl_bit_bucket {
            return Err(SdmError::InvalidConfig {
                reason: format!(
                    "technology {} does not support SGL reads; use block granularity",
                    self.technology.kind
                ),
            });
        }
        if let BatchMode::Relaxed {
            max_inflight_queries: 0,
        } = self.batch_mode
        {
            return Err(SdmError::InvalidConfig {
                reason: "relaxed batch mode needs max_inflight_queries >= 1".into(),
            });
        }
        // Reject an explicit SIMD kernel the host cannot run rather than
        // silently measuring the scalar fallback in an A/B comparison.
        if !self.pool_kernel.is_supported() {
            return Err(SdmError::InvalidConfig {
                reason: format!(
                    "pool kernel {} is not supported on this host",
                    self.pool_kernel
                ),
            });
        }
        self.cache.validate()?;
        self.io.validate()?;
        Ok(())
    }

    /// Total SM capacity across the host's devices.
    pub fn total_sm_capacity(&self) -> Bytes {
        self.device_capacity * self.device_count as u64
    }

    /// The per-shard slice (`index` of `shards`) of this host configuration
    /// when serving with `shards` concurrent shards.
    ///
    /// Host-shared fast-memory resources are split **losslessly**: the
    /// overall FM budget, the row-cache and pooled-cache budgets, and the
    /// IO engine's device-queue limits each give every shard its
    /// `total / shards` share, with the remainder distributed one unit each
    /// to the first shards — so the per-shard slices always sum exactly to
    /// the host budget (a truncating division silently dropped the
    /// remainder from every resource). Each shard still serves the *full*
    /// model — a shard is a serving replica that owns a complete SM image —
    /// so the device technology, count and capacity carry over unchanged,
    /// as do placement policy and load transforms. The shared-tier budget
    /// is host-level and is never divided (the host builds one tier and
    /// hands every shard a handle).
    pub fn divide_among_indexed(&self, shards: usize, index: usize) -> SdmConfig {
        let n = shards.max(1) as u64;
        SdmConfig {
            fm_budget: self.fm_budget.split_among(n, index as u64),
            cache: self.cache.divide_among_indexed(shards, index),
            io: self.io.divide_among_indexed(shards, index),
            ..self.clone()
        }
    }

    /// The first (largest) per-shard slice; see
    /// [`SdmConfig::divide_among_indexed`].
    ///
    /// `divide_among(1)` is the identity, which keeps the single-shard
    /// serving path bit-identical to an undivided [`SdmConfig`].
    pub fn divide_among(&self, shards: usize) -> SdmConfig {
        self.divide_among_indexed(shards, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SdmConfig::default().validate().is_ok());
        assert!(SdmConfig::for_tests().validate().is_ok());
    }

    #[test]
    fn pool_kernel_knob_validates_and_divides() {
        // Auto and Scalar are supported everywhere.
        assert!(SdmConfig::for_tests()
            .with_pool_kernel(PoolKernel::Scalar)
            .validate()
            .is_ok());
        assert_eq!(SdmConfig::default().pool_kernel, PoolKernel::Auto);
        // The kernel choice is host-wide and carries over to shard slices.
        let c = SdmConfig::for_tests().with_pool_kernel(PoolKernel::Scalar);
        assert_eq!(c.divide_among_indexed(4, 2).pool_kernel, PoolKernel::Scalar);
        // An explicit SIMD kernel validates only where the host supports it
        // (resolve() would run — as scalar — but A/B configs must not lie).
        for k in [PoolKernel::Sse2, PoolKernel::Avx2] {
            let c = SdmConfig::for_tests().with_pool_kernel(k);
            assert_eq!(c.validate().is_ok(), k.is_supported());
        }
    }

    #[test]
    fn invalid_configs_are_detected() {
        let mut c = SdmConfig::for_tests();
        c.device_count = 0;
        assert!(c.validate().is_err());

        let mut c = SdmConfig::for_tests();
        c.device_capacity = Bytes::ZERO;
        assert!(c.validate().is_err());

        let mut c = SdmConfig::for_tests();
        c.fm_budget = Bytes::ZERO;
        assert!(c.validate().is_err());

        let mut c = SdmConfig::for_tests();
        c.cache.row_cache_budget = Bytes::from_gib(100);
        assert!(c.validate().is_err());

        // SGL on a technology without bit-bucket support is rejected.
        let mut c = SdmConfig::for_tests();
        c.technology = TechnologyProfile::dimm_3dxp();
        assert!(c.validate().is_err());
        c.granularity = AccessGranularity::Block;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn batch_mode_round_trips_and_validates() {
        let c = SdmConfig::for_tests().with_relaxed_batching(8);
        assert_eq!(
            c.batch_mode,
            BatchMode::Relaxed {
                max_inflight_queries: 8
            }
        );
        assert!(c.validate().is_ok());
        // The divided per-shard slice keeps the mode.
        assert_eq!(c.divide_among(4).batch_mode, c.batch_mode);

        let zero = SdmConfig::for_tests().with_relaxed_batching(0);
        assert!(zero.validate().is_err());
        assert_eq!(SdmConfig::for_tests().batch_mode, BatchMode::Exact);
    }

    #[test]
    fn indexed_division_conserves_every_budget() {
        // Awkward budgets and shard counts: nothing divides evenly, yet the
        // per-shard slices must sum exactly to the host configuration.
        let mut c = SdmConfig::for_tests().with_shared_tier(Bytes::from_mib(2));
        c.fm_budget = Bytes(10_000_019);
        c.cache.row_cache_budget = Bytes(1_000_003);
        c.cache.pooled_cache_budget = Bytes(65_537);
        c.io.max_outstanding_per_device = 7;
        c.io.max_tables_in_flight = 13;
        for shards in [1usize, 3, 5, 7] {
            let slices: Vec<SdmConfig> = (0..shards)
                .map(|i| c.divide_among_indexed(shards, i))
                .collect();
            let fm: u64 = slices.iter().map(|s| s.fm_budget.as_u64()).sum();
            let row: u64 = slices
                .iter()
                .map(|s| s.cache.row_cache_budget.as_u64())
                .sum();
            let pooled: u64 = slices
                .iter()
                .map(|s| s.cache.pooled_cache_budget.as_u64())
                .sum();
            let dev: usize = slices.iter().map(|s| s.io.max_outstanding_per_device).sum();
            let tables: usize = slices.iter().map(|s| s.io.max_tables_in_flight).sum();
            assert_eq!(fm, c.fm_budget.as_u64(), "{shards} shards: fm");
            assert_eq!(
                row,
                c.cache.row_cache_budget.as_u64(),
                "{shards} shards: row"
            );
            assert_eq!(
                pooled,
                c.cache.pooled_cache_budget.as_u64(),
                "{shards} shards: pooled"
            );
            assert_eq!(dev, c.io.max_outstanding_per_device, "{shards} shards: io");
            assert_eq!(tables, c.io.max_tables_in_flight, "{shards} shards: tables");
            for (i, s) in slices.iter().enumerate() {
                assert!(s.validate().is_ok(), "{shards} shards: slice {i} invalid");
                // The shared tier is host-level and never divided.
                assert_eq!(s.cache.shared_tier_budget, c.cache.shared_tier_budget);
            }
        }
        // divide_among(1) remains the bit-identical identity.
        let identity = c.divide_among(1);
        assert_eq!(identity.fm_budget, c.fm_budget);
        assert_eq!(identity.cache, c.cache);
        assert_eq!(
            identity.io.max_outstanding_per_device,
            c.io.max_outstanding_per_device
        );
    }

    #[test]
    fn shared_tier_builder_round_trips() {
        let c = SdmConfig::for_tests().with_shared_tier(Bytes::from_mib(2));
        assert_eq!(c.cache.shared_tier_budget, Bytes::from_mib(2));
        assert!(c.validate().is_ok());
        assert!(SdmConfig::for_tests().cache.shared_tier_budget.is_zero());
        // Stripe misconfiguration is caught through the cache validation.
        let mut bad = c;
        bad.cache.shared_tier_stripes = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn builder_helpers_apply() {
        let c = SdmConfig::for_tests()
            .with_nand_flash()
            .with_granularity(AccessGranularity::Block)
            .with_completion_mode(CompletionMode::Polling)
            .with_transform(LoadTransform {
                deprune: true,
                dequantize: false,
            });
        assert_eq!(c.technology.kind, scm_device::TechnologyKind::NandFlash);
        assert_eq!(c.granularity, AccessGranularity::Block);
        assert_eq!(c.io.completion_mode, CompletionMode::Polling);
        assert!(c.transform.deprune);
        assert_eq!(c.total_sm_capacity(), c.device_capacity * 2);
    }
}

//! Open-loop request front end: SLO-aware dynamic batching and load
//! shedding ahead of a [`ServingHost`].
//!
//! Closed-loop driving ([`ServingHost::run_batch`] on pre-built batches)
//! measures how fast shards drain work; the paper's serving criterion is
//! what p50/p99 the host delivers *at a given offered QPS* while meeting a
//! latency target. This module provides that measurement surface:
//!
//! * arrivals come from a seeded [`workload::ArrivalGenerator`] (open loop
//!   — the arrival instants do not depend on how fast the server runs);
//! * a **dynamic batcher** accumulates admitted queries and closes the
//!   batch on size-or-deadline (`max_batch` reached, or the oldest queued
//!   query has waited `max_batch_delay`);
//! * **admission control** sheds queries instead of queueing without
//!   bound: a token bucket (rate limit) and an SLO guard that rejects a
//!   query when the estimated queue wait (time until the server frees up)
//!   already exceeds `max_queue_wait`; when backend shard health degrades
//!   ([`ServingHost::health_fraction`] < 1) the guard **browns out** —
//!   the threshold tightens in proportion, and queries only the tightened
//!   guard rejects are counted as [`QueryOutcome::ShedBrownout`];
//! * everything runs on the virtual clock, so a `(stream, seed, config)`
//!   triple produces a bit-identical [`FrontendReport`] on every run, and
//!   the warmed admission→batch→serve path performs no per-query heap
//!   allocation.
//!
//! The server is modelled as the serially-reused host: a dispatched batch
//! starts at `max(close_time, server_free)` and occupies the host for its
//! measured [`HostReport::virtual_makespan`]. Every query in a batch
//! completes when the batch does, so a served query's latency is
//! `batch_completion - arrival`.

use crate::error::SdmError;
use crate::host::ServingHost;
use crate::stats::SdmStats;
use sdm_metrics::{LatencyHistogram, LoadPoint, SimDuration, SimInstant};
use workload::{ArrivalGenerator, Query};

/// Token-bucket admission parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucketConfig {
    /// Maximum burst the bucket absorbs, in queries. Must be ≥ 1.
    pub capacity: f64,
    /// Sustained admission rate, queries per virtual second.
    pub refill_per_sec: f64,
}

/// Front-end tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendConfig {
    /// Close the open batch as soon as it holds this many queries.
    pub max_batch: usize,
    /// Close the open batch once its oldest query has waited this long —
    /// no admitted query is held past `arrival + max_batch_delay` before
    /// its batch is handed to the host.
    pub max_batch_delay: SimDuration,
    /// SLO guard: shed an arrival when the estimated queue wait (time
    /// until the server frees up) already exceeds this.
    pub max_queue_wait: SimDuration,
    /// Optional token-bucket rate limit applied before the SLO guard.
    pub token_bucket: Option<TokenBucketConfig>,
}

impl FrontendConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SdmError> {
        if self.max_batch == 0 {
            return Err(SdmError::InvalidConfig {
                reason: "frontend max_batch must be at least 1".to_string(),
            });
        }
        if let Some(bucket) = &self.token_bucket {
            if !(bucket.capacity.is_finite() && bucket.capacity >= 1.0) {
                return Err(SdmError::InvalidConfig {
                    reason: format!(
                        "token bucket capacity must be >= 1 query, got {}",
                        bucket.capacity
                    ),
                });
            }
            if !(bucket.refill_per_sec.is_finite() && bucket.refill_per_sec > 0.0) {
                return Err(SdmError::InvalidConfig {
                    reason: format!(
                        "token bucket refill must be positive, got {}",
                        bucket.refill_per_sec
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Why the batcher handed a batch to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The batch reached `max_batch` queries.
    Full,
    /// The oldest query reached its `max_batch_delay` deadline.
    Deadline,
    /// End of the arrival stream: the final partial batch is dispatched at
    /// its (not yet reached) deadline.
    Flush,
}

/// What happened to one offered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Admitted and queued; replaced by [`QueryOutcome::Served`] when its
    /// batch completes. Never present in the log of a finished run.
    Pending,
    /// Served; the batch completed at this instant.
    Served {
        /// Completion instant of the query's batch.
        completed: SimInstant,
    },
    /// Shed by the token bucket.
    ShedRateLimited,
    /// Shed by the SLO guard (estimated queue wait above `max_queue_wait`).
    ShedOverload,
    /// Shed by the brownout guard: backend shard health was degraded, so
    /// admission tightened to `max_queue_wait ×`
    /// [`ServingHost::health_fraction`] — a healthy backend would have
    /// admitted this query.
    ShedBrownout,
}

/// Per-query front-end record: when it arrived and how it ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRecord {
    /// Arrival instant on the virtual clock.
    pub arrival: SimInstant,
    /// Final outcome.
    pub outcome: QueryOutcome,
}

/// Per-batch front-end record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRecord {
    /// Queries in the batch.
    pub len: usize,
    /// Arrival of the batch's oldest query.
    pub oldest_arrival: SimInstant,
    /// When the batcher closed the batch. Never exceeds
    /// `oldest_arrival + max_batch_delay`.
    pub closed_at: SimInstant,
    /// When the host started executing it: `max(closed_at, server_free)`.
    pub started_at: SimInstant,
    /// `started_at` plus the batch's measured virtual makespan.
    pub completed_at: SimInstant,
    /// Why the batch closed.
    pub reason: CloseReason,
}

/// Measured outcome of one [`Frontend::run`] over an arrival stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendReport {
    /// Queries that arrived.
    pub offered: u64,
    /// Queries past admission control (all of which were then served).
    pub admitted: u64,
    /// Queries served to completion.
    pub served: u64,
    /// Queries shed by the token bucket.
    pub shed_rate_limited: u64,
    /// Queries shed by the SLO guard.
    pub shed_overload: u64,
    /// Queries shed only because degraded backend health tightened the
    /// admission threshold (brownout). Always zero on a healthy backend.
    pub shed_brownout: u64,
    /// Batches dispatched to the host.
    pub batches: u64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Median served latency (arrival → batch completion).
    pub p50_latency: SimDuration,
    /// 99th-percentile served latency.
    pub p99_latency: SimDuration,
    /// Mean served latency.
    pub mean_latency: SimDuration,
    /// Slowest served latency.
    pub max_latency: SimDuration,
    /// Measured offered rate: arrivals over the arrival window.
    pub offered_qps: f64,
    /// Measured served rate: completions over the window from the first
    /// arrival to `max(last completion, last arrival)`. The window is at
    /// least the arrival window and completions are at most arrivals, so
    /// `served_qps <= offered_qps` holds by construction.
    pub served_qps: f64,
}

impl FrontendReport {
    /// Total queries shed, for any reason (brownout included).
    pub fn shed(&self) -> u64 {
        self.shed_rate_limited + self.shed_overload + self.shed_brownout
    }

    /// Fraction of offered queries shed, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed() as f64 / self.offered as f64
        }
    }

    /// This run as a [`LoadPoint`] for a [`sdm_metrics::LoadCurveReport`],
    /// tagged with the arrival process's configured rate.
    pub fn load_point(&self, offered_qps_target: f64) -> LoadPoint {
        LoadPoint {
            offered_qps_target,
            offered: self.offered,
            admitted: self.admitted,
            served: self.served,
            shed_rate_limited: self.shed_rate_limited,
            // A brownout shed is an overload shed with a tighter threshold;
            // the load-curve schema folds them together.
            shed_overload: self.shed_overload + self.shed_brownout,
            offered_qps: self.offered_qps,
            served_qps: self.served_qps,
            p50_latency: self.p50_latency,
            p99_latency: self.p99_latency,
            mean_latency: self.mean_latency,
            batches: self.batches,
            mean_batch: self.mean_batch,
        }
    }
}

/// Token bucket on the virtual clock.
#[derive(Debug, Clone)]
struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    fill: f64,
    last: SimInstant,
}

impl TokenBucket {
    fn new(config: TokenBucketConfig) -> Self {
        TokenBucket {
            capacity: config.capacity,
            refill_per_sec: config.refill_per_sec,
            fill: config.capacity,
            last: SimInstant::EPOCH,
        }
    }

    fn reset(&mut self) {
        self.fill = self.capacity;
        self.last = SimInstant::EPOCH;
    }

    fn refill(&mut self, now: SimInstant) {
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.fill = (self.fill + elapsed * self.refill_per_sec).min(self.capacity);
        self.last = now;
    }

    fn try_take(&mut self) -> bool {
        if self.fill >= 1.0 {
            self.fill -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The open-loop front end: admission control plus a dynamic batcher
/// feeding a [`ServingHost`].
///
/// All per-run buffers (pick list, logs, latency histogram) are owned and
/// reused, so repeated runs of equal length allocate nothing once warmed.
#[derive(Debug)]
pub struct Frontend {
    config: FrontendConfig,
    bucket: Option<TokenBucket>,
    /// Open batch: positions within the current query stream.
    picks: Vec<usize>,
    /// Arrival of the open batch's oldest query.
    oldest_arrival: SimInstant,
    /// Instant the (serially reused) host becomes free.
    server_free: SimInstant,
    hist: LatencyHistogram,
    query_log: Vec<QueryRecord>,
    batch_log: Vec<BatchRecord>,
    /// Per-run counters.
    admitted: u64,
    served: u64,
    shed_rate_limited: u64,
    shed_overload: u64,
    shed_brownout: u64,
    /// Lifetime counters across runs, surfaced via [`Frontend::stats`].
    cum_admitted: u64,
    cum_shed_rate_limited: u64,
    cum_shed_overload: u64,
    cum_shed_brownout: u64,
}

impl Frontend {
    /// Builds a front end from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SdmError::InvalidConfig`] for a zero `max_batch` or a
    /// degenerate token bucket.
    pub fn new(config: FrontendConfig) -> Result<Self, SdmError> {
        config.validate()?;
        Ok(Frontend {
            config,
            bucket: config.token_bucket.map(TokenBucket::new),
            picks: Vec::new(),
            oldest_arrival: SimInstant::EPOCH,
            server_free: SimInstant::EPOCH,
            hist: LatencyHistogram::new(),
            query_log: Vec::new(),
            batch_log: Vec::new(),
            admitted: 0,
            served: 0,
            shed_rate_limited: 0,
            shed_overload: 0,
            shed_brownout: 0,
            cum_admitted: 0,
            cum_shed_rate_limited: 0,
            cum_shed_overload: 0,
            cum_shed_brownout: 0,
        })
    }

    /// The configuration this front end runs with.
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// Per-query records of the last run, parallel to its query stream.
    pub fn query_log(&self) -> &[QueryRecord] {
        &self.query_log
    }

    /// Per-batch records of the last run, in dispatch order.
    pub fn batch_log(&self) -> &[BatchRecord] {
        &self.batch_log
    }

    /// Lifetime front-end counters as an [`SdmStats`] block, mergeable
    /// with [`ServingHost::stats`] for a full serving picture.
    pub fn stats(&self) -> SdmStats {
        let mut stats = SdmStats::new();
        stats.frontend_admitted = self.cum_admitted;
        stats.frontend_shed_rate_limited = self.cum_shed_rate_limited;
        stats.frontend_shed_overload = self.cum_shed_overload;
        stats.frontend_shed_brownout = self.cum_shed_brownout;
        stats
    }

    /// Drives the host with one open-loop pass over `queries`: query `i`
    /// arrives at the generator's `i`-th arrival instant, passes admission
    /// control or is shed, and admitted queries are served in dynamic
    /// batches via [`ServingHost::run_selected_batch`].
    ///
    /// The generator is taken `&mut` and *not* reset, so a caller can
    /// continue one arrival timeline across successive runs; pass a fresh
    /// seeded generator for independent, reproducible runs.
    ///
    /// # Errors
    ///
    /// Propagates host errors. After an error the logs describe the
    /// partial run up to the failed dispatch.
    pub fn run(
        &mut self,
        host: &mut ServingHost,
        queries: &[Query],
        arrivals: &mut ArrivalGenerator,
    ) -> Result<FrontendReport, SdmError> {
        self.begin_run();
        let mut first_arrival = SimInstant::EPOCH;
        let mut last_arrival = SimInstant::EPOCH;
        for (qi, _) in queries.iter().enumerate() {
            let t = arrivals.next_arrival();
            if qi == 0 {
                first_arrival = t;
            }
            last_arrival = t;
            // The open batch closes on its own timeline, not the server's:
            // if its deadline passed before this arrival, it was dispatched
            // back then.
            if !self.picks.is_empty() {
                let deadline = self.oldest_arrival + self.config.max_batch_delay;
                if deadline <= t {
                    self.dispatch(host, queries, deadline, CloseReason::Deadline)?;
                }
            }
            self.query_log.push(QueryRecord {
                arrival: t,
                outcome: QueryOutcome::Pending,
            });
            if let Some(bucket) = self.bucket.as_mut() {
                bucket.refill(t);
                if !bucket.try_take() {
                    self.query_log[qi].outcome = QueryOutcome::ShedRateLimited;
                    self.shed_rate_limited += 1;
                    continue;
                }
            }
            // SLO guard: the server is busy until `server_free`; a query
            // that would already wait longer than the SLO allows is shed
            // now instead of serving a guaranteed-late response. When
            // backend health degrades the threshold tightens in proportion
            // (brownout): a reduced-capacity host should queue less, and
            // the queries only the tightened guard rejects are counted
            // separately. At full health the scaled threshold is exactly
            // `max_queue_wait`, so the guard is bit-identical to before.
            let wait = self.server_free.duration_since(t);
            if wait > self.config.max_queue_wait {
                self.query_log[qi].outcome = QueryOutcome::ShedOverload;
                self.shed_overload += 1;
                continue;
            }
            let health = host.health_fraction();
            if health < 1.0 {
                let tightened = SimDuration::from_nanos(
                    (self.config.max_queue_wait.as_nanos() as f64 * health).round() as u64,
                );
                if wait > tightened {
                    self.query_log[qi].outcome = QueryOutcome::ShedBrownout;
                    self.shed_brownout += 1;
                    continue;
                }
            }
            if self.picks.is_empty() {
                self.oldest_arrival = t;
            }
            self.picks.push(qi);
            self.admitted += 1;
            if self.picks.len() >= self.config.max_batch {
                self.dispatch(host, queries, t, CloseReason::Full)?;
            }
        }
        if !self.picks.is_empty() {
            let deadline = self.oldest_arrival + self.config.max_batch_delay;
            self.dispatch(host, queries, deadline, CloseReason::Flush)?;
        }
        self.cum_admitted += self.admitted;
        self.cum_shed_rate_limited += self.shed_rate_limited;
        self.cum_shed_overload += self.shed_overload;
        self.cum_shed_brownout += self.shed_brownout;
        Ok(self.report(first_arrival, last_arrival))
    }

    /// Resets all per-run state; buffer capacity is retained.
    fn begin_run(&mut self) {
        self.picks.clear();
        self.query_log.clear();
        self.batch_log.clear();
        self.hist.reset();
        self.oldest_arrival = SimInstant::EPOCH;
        self.server_free = SimInstant::EPOCH;
        self.admitted = 0;
        self.served = 0;
        self.shed_rate_limited = 0;
        self.shed_overload = 0;
        self.shed_brownout = 0;
        if let Some(bucket) = self.bucket.as_mut() {
            bucket.reset();
        }
    }

    /// Hands the open batch to the host, completes its queries and
    /// advances `server_free`.
    fn dispatch(
        &mut self,
        host: &mut ServingHost,
        queries: &[Query],
        closed_at: SimInstant,
        reason: CloseReason,
    ) -> Result<(), SdmError> {
        debug_assert!(!self.picks.is_empty());
        let started_at = self.server_free.max(closed_at);
        let host_report = host.run_selected_batch(queries, &self.picks)?;
        let completed_at = started_at + host_report.virtual_makespan;
        let Self {
            picks,
            query_log,
            hist,
            ..
        } = self;
        for &qi in picks.iter() {
            let record = &mut query_log[qi];
            hist.record(completed_at.duration_since(record.arrival));
            record.outcome = QueryOutcome::Served {
                completed: completed_at,
            };
        }
        self.batch_log.push(BatchRecord {
            len: self.picks.len(),
            oldest_arrival: self.oldest_arrival,
            closed_at,
            started_at,
            completed_at,
            reason,
        });
        self.served += self.picks.len() as u64;
        self.server_free = completed_at;
        self.picks.clear();
        Ok(())
    }

    fn report(&self, first_arrival: SimInstant, last_arrival: SimInstant) -> FrontendReport {
        let offered = self.query_log.len() as u64;
        let arrival_window = last_arrival.duration_since(first_arrival);
        let offered_qps = if arrival_window.is_zero() {
            0.0
        } else {
            offered as f64 / arrival_window.as_secs_f64()
        };
        // Serving extends past the last arrival while queued batches
        // drain; taking the max keeps the served window at least as long
        // as the arrival window, so served_qps <= offered_qps always.
        let serve_end = self.server_free.max(last_arrival);
        let served_window = serve_end.duration_since(first_arrival);
        let served_qps = if served_window.is_zero() {
            0.0
        } else {
            self.served as f64 / served_window.as_secs_f64()
        };
        let batches = self.batch_log.len() as u64;
        FrontendReport {
            offered,
            admitted: self.admitted,
            served: self.served,
            shed_rate_limited: self.shed_rate_limited,
            shed_overload: self.shed_overload,
            shed_brownout: self.shed_brownout,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                self.served as f64 / batches as f64
            },
            p50_latency: self.hist.p50(),
            p99_latency: self.hist.p99(),
            mean_latency: self.hist.mean(),
            max_latency: self.hist.max(),
            offered_qps,
            served_qps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SdmConfig;
    use dlrm::model_zoo;
    use workload::{ArrivalProcess, QueryGenerator, RoutingPolicy, WorkloadConfig};

    fn setup(count: usize, seed: u64) -> (ServingHost, Vec<Query>) {
        let model = model_zoo::tiny(2, 1, 400);
        let cfg = WorkloadConfig {
            item_batch: model.item_batch,
            user_population: 64,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&model.tables, cfg, seed).unwrap();
        let queries = gen.generate(count);
        let host = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            seed,
            1,
            RoutingPolicy::UserSticky,
        )
        .unwrap();
        (host, queries)
    }

    fn frontend(max_batch: usize, delay_us: u64, wait_us: u64) -> Frontend {
        Frontend::new(FrontendConfig {
            max_batch,
            max_batch_delay: SimDuration::from_micros(delay_us),
            max_queue_wait: SimDuration::from_micros(wait_us),
            token_bucket: None,
        })
        .unwrap()
    }

    fn poisson(rate: f64, seed: u64) -> ArrivalGenerator {
        ArrivalGenerator::new(ArrivalProcess::Poisson { rate_qps: rate }, seed).unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(Frontend::new(FrontendConfig {
            max_batch: 0,
            max_batch_delay: SimDuration::ZERO,
            max_queue_wait: SimDuration::ZERO,
            token_bucket: None,
        })
        .is_err());
        for bucket in [
            TokenBucketConfig {
                capacity: 0.5,
                refill_per_sec: 10.0,
            },
            TokenBucketConfig {
                capacity: 8.0,
                refill_per_sec: 0.0,
            },
        ] {
            assert!(Frontend::new(FrontendConfig {
                max_batch: 8,
                max_batch_delay: SimDuration::ZERO,
                max_queue_wait: SimDuration::ZERO,
                token_bucket: Some(bucket),
            })
            .is_err());
        }
    }

    #[test]
    fn slow_arrivals_close_batches_on_deadline_and_shed_nothing() {
        let (mut host, queries) = setup(24, 21);
        // 20 qps: mean gap 50ms, far above both the 2ms close deadline and
        // the tiny model's service time, and far below capacity.
        let mut fe = frontend(8, 2_000, 1_000_000);
        let report = fe.run(&mut host, &queries, &mut poisson(20.0, 1)).unwrap();
        assert_eq!(report.offered, 24);
        assert_eq!(report.served, 24);
        assert_eq!(report.shed(), 0);
        assert!(report.shed_rate() == 0.0);
        // Gaps dwarf the deadline, so batches stay small and close by
        // deadline (the last one by flush).
        assert!(report.batches >= 20, "batches {}", report.batches);
        let log = fe.batch_log();
        assert_eq!(log.len(), report.batches as usize);
        for batch in &log[..log.len() - 1] {
            assert_eq!(batch.reason, CloseReason::Deadline);
        }
        assert_eq!(log[log.len() - 1].reason, CloseReason::Flush);
        for batch in log {
            assert!(batch.closed_at <= batch.oldest_arrival + SimDuration::from_micros(2_000));
            assert!(batch.started_at >= batch.closed_at);
            assert!(batch.completed_at > batch.started_at);
        }
        // Every query served, with latency ≥ the time to its batch close.
        for record in fe.query_log() {
            match record.outcome {
                QueryOutcome::Served { completed } => assert!(completed > record.arrival),
                other => panic!("expected served, got {other:?}"),
            }
        }
        assert!(report.p50_latency >= SimDuration::from_micros(2_000));
        assert!(report.max_latency >= report.p99_latency);
        assert!(report.served_qps <= report.offered_qps);
    }

    #[test]
    fn fast_arrivals_fill_batches_to_max_size() {
        let (mut host, queries) = setup(32, 22);
        // 1M qps: ~1µs gaps, so batches hit max_batch long before the 1s
        // deadline; a generous SLO admits everything.
        let mut fe = frontend(4, 1_000_000, 10_000_000);
        let report = fe
            .run(&mut host, &queries, &mut poisson(1_000_000.0, 2))
            .unwrap();
        assert_eq!(report.served, 32);
        assert_eq!(report.batches, 8);
        assert!((report.mean_batch - 4.0).abs() < 1e-12);
        for batch in fe.batch_log() {
            assert_eq!(batch.len, 4);
            assert_eq!(batch.reason, CloseReason::Full);
        }
    }

    #[test]
    fn overload_sheds_once_queue_wait_exceeds_slo() {
        let (mut host, queries) = setup(48, 23);
        // Offered far above capacity with a zero-wait SLO: any arrival
        // while the server is busy is shed.
        let mut fe = frontend(4, 1_000_000, 0);
        let report = fe
            .run(&mut host, &queries, &mut poisson(1_000_000.0, 3))
            .unwrap();
        assert!(report.shed_overload > 0, "nothing shed: {report:?}");
        assert_eq!(report.shed_rate_limited, 0);
        assert_eq!(
            report.served + report.shed(),
            report.offered,
            "every offered query must be accounted for"
        );
        assert_eq!(report.admitted, report.served);
        let shed_logged = fe
            .query_log()
            .iter()
            .filter(|r| r.outcome == QueryOutcome::ShedOverload)
            .count() as u64;
        assert_eq!(shed_logged, report.shed_overload);
        // Shedding is load-dependent: the same stream at trivial load
        // sheds nothing.
        let (mut cold_host, _) = setup(48, 23);
        let relaxed = fe
            .run(&mut cold_host, &queries, &mut poisson(10.0, 3))
            .unwrap();
        assert_eq!(relaxed.shed(), 0);
    }

    #[test]
    fn token_bucket_rate_limits_bursts() {
        let (mut host, queries) = setup(24, 24);
        let mut fe = Frontend::new(FrontendConfig {
            max_batch: 4,
            max_batch_delay: SimDuration::from_micros(500),
            max_queue_wait: SimDuration::from_secs(10),
            token_bucket: Some(TokenBucketConfig {
                capacity: 2.0,
                refill_per_sec: 1.0,
            }),
        })
        .unwrap();
        // A ~1µs-gap burst against a 2-token bucket refilling at 1/s: the
        // first two queries take the stored tokens, the rest are shed.
        let report = fe
            .run(&mut host, &queries, &mut poisson(1_000_000.0, 4))
            .unwrap();
        assert_eq!(report.admitted, 2);
        assert_eq!(report.shed_rate_limited, 22);
        assert_eq!(report.shed_overload, 0);
        assert_eq!(report.served, 2);

        // Lifetime counters accumulate across runs.
        let (mut host2, _) = setup(24, 24);
        fe.run(&mut host2, &queries, &mut poisson(1_000_000.0, 4))
            .unwrap();
        let stats = fe.stats();
        assert_eq!(stats.frontend_admitted, 4);
        assert_eq!(stats.frontend_shed_rate_limited, 44);
        assert!((stats.frontend_shed_rate() - 44.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn degraded_backend_health_browns_out_admission() {
        let model = model_zoo::tiny(2, 1, 400);
        let cfg = WorkloadConfig {
            item_batch: model.item_batch,
            user_population: 64,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&model.tables, cfg, 26).unwrap();
        let queries = gen.generate(120);
        let mut host = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            26,
            3,
            RoutingPolicy::UserSticky,
        )
        .unwrap();
        // A healthy backend never browns out, whatever the load. The SLO
        // is tight enough that the overloaded stream queues right up to
        // it, so waits cross the brownout band once health degrades.
        let mut fe = frontend(4, 1_000_000, 400);
        let healthy = fe
            .run(&mut host, &queries, &mut poisson(1_000_000.0, 6))
            .unwrap();
        assert_eq!(healthy.shed_brownout, 0);
        // Degrade shard 2 (two consecutive worker panics), then offer the
        // same overload: the tightened guard sheds queries the plain SLO
        // guard would have admitted.
        for _ in 0..2 {
            host.shard_mut(2).poison();
            assert!(host.run_batch(&queries).is_err());
        }
        assert!(host.health_fraction() < 1.0);
        let browned = fe
            .run(&mut host, &queries, &mut poisson(1_000_000.0, 6))
            .unwrap();
        assert!(browned.shed_brownout > 0, "report: {browned:?}");
        assert_eq!(
            browned.served + browned.shed(),
            browned.offered,
            "brownout sheds must be accounted for"
        );
        let shed_logged = fe
            .query_log()
            .iter()
            .filter(|r| r.outcome == QueryOutcome::ShedBrownout)
            .count() as u64;
        assert_eq!(shed_logged, browned.shed_brownout);
        let stats = fe.stats();
        assert_eq!(stats.frontend_shed_brownout, browned.shed_brownout);
    }

    #[test]
    fn identical_seeds_reproduce_the_report_bit_for_bit() {
        let run = || {
            let (mut host, queries) = setup(40, 25);
            let mut fe = frontend(8, 1_000, 5_000);
            fe.run(&mut host, &queries, &mut poisson(2_000.0, 5))
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.served_qps <= a.offered_qps);
    }
}

//! Convenience wrapper tying the DLRM engine to the SDM memory manager.

use crate::config::SdmConfig;
use crate::error::SdmError;
use crate::shard::Shard;
use dlrm::{ComputeModel, InferenceEngine, LatencyBreakdown, ModelConfig, QueryResult};
use sdm_metrics::{LatencyHistogram, SimDuration, SimInstant};
use workload::Query;

/// Throughput/latency summary of a batch of queries executed on one stream.
///
/// The deprecated `qps_with_streams` linear extrapolation was removed:
/// multi-stream throughput is *measured* by [`crate::ServingHost`] and
/// reported through [`sdm_metrics::MultiStreamReport`].
#[derive(Debug, Clone)]
pub struct QpsReport {
    /// Queries executed.
    pub queries: u64,
    /// Mean end-to-end latency.
    pub mean_latency: SimDuration,
    /// 95th percentile latency.
    pub p95_latency: SimDuration,
    /// 99th percentile latency.
    pub p99_latency: SimDuration,
    /// Queries per second a single serving stream achieves
    /// (`1 / mean latency`).
    pub qps_single_stream: f64,
    /// Virtual time from the batch's first issue to its last completion.
    /// Under [`crate::BatchMode::Exact`] this is the sum of per-query
    /// latencies; under [`crate::BatchMode::Relaxed`] overlapped IO makes
    /// it shorter than the sum.
    pub makespan: SimDuration,
    /// Batch throughput on the virtual clock: `queries / makespan`. This is
    /// the number the exact-vs-relaxed comparison trades against per-query
    /// tail latency.
    pub batch_qps: f64,
}

/// A complete single-stream serving system: devices, IO engine, SDM manager
/// and the DLRM inference engine.
///
/// Since the sharded-serving refactor this is a thin wrapper over one
/// [`Shard`] — the multi-stream [`crate::ServingHost`] runs several of the
/// same shards on worker threads. Every method delegates, so the
/// single-stream API (and its bit-exact behaviour, asserted by the
/// `batch_equivalence` suite) is unchanged.
#[derive(Debug)]
pub struct SdmSystem {
    shard: Shard,
}

impl SdmSystem {
    /// Builds the full stack for a (scaled) model.
    ///
    /// A configuration with `with_shared_tier` set builds and attaches the
    /// tier here too (as shard 0), so the single-stream system honours the
    /// knob exactly like a 1-shard [`crate::ServingHost`] — with one
    /// stream the tier acts as a second-level row cache behind the private
    /// cache. (A bare [`Shard::build`] never attaches a tier; attachment
    /// is its owner's job.)
    ///
    /// # Errors
    ///
    /// Propagates configuration, layout and device errors.
    pub fn build(model: &ModelConfig, config: SdmConfig, seed: u64) -> Result<Self, SdmError> {
        let tier_budget = config.cache.shared_tier_budget;
        let tier_stripes = config.cache.shared_tier_stripes;
        let tier_admission = config.cache.shared_tier_admission;
        let mut shard = Shard::build(model, config, seed)?;
        if !tier_budget.is_zero() {
            shard.attach_shared_tier(
                std::sync::Arc::new(sdm_cache::SharedRowTier::with_admission(
                    tier_budget,
                    tier_stripes,
                    tier_admission,
                )),
                0,
            );
        }
        Ok(SdmSystem { shard })
    }

    /// Builds the stack with an explicit compute model (e.g. accelerator
    /// hosts).
    ///
    /// # Errors
    ///
    /// Propagates configuration, layout and device errors.
    pub fn build_with_compute(
        model: &ModelConfig,
        config: SdmConfig,
        compute: ComputeModel,
        seed: u64,
    ) -> Result<Self, SdmError> {
        let mut system = Self::build(model, config, seed)?;
        system.shard.set_compute(compute, seed)?;
        Ok(system)
    }

    /// The underlying serving shard.
    pub fn shard(&self) -> &Shard {
        &self.shard
    }

    /// The DLRM inference engine.
    pub fn engine(&self) -> &InferenceEngine {
        self.shard.engine()
    }

    /// Mutable access to the inference engine (to switch execution mode).
    pub fn engine_mut(&mut self) -> &mut InferenceEngine {
        self.shard.engine_mut()
    }

    /// The SDM memory manager.
    pub fn manager(&self) -> &crate::SdmMemoryManager {
        self.shard.manager()
    }

    /// Mutable access to the memory manager (cache invalidation, updates).
    pub fn manager_mut(&mut self) -> &mut crate::SdmMemoryManager {
        self.shard.manager_mut()
    }

    /// Current virtual time of the serving loop.
    pub fn now(&self) -> SimInstant {
        self.shard.now()
    }

    /// Executes one query into a caller-provided (reusable) result,
    /// advancing the virtual clock by its latency.
    ///
    /// This is the steady-state serving path: with warm system scratch, a
    /// warmed cache and a recycled `result`, it performs **zero heap
    /// allocations per query** (asserted by the `zero_alloc` test suite).
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    pub fn run_query_into(
        &mut self,
        query: &Query,
        result: &mut QueryResult,
    ) -> Result<(), SdmError> {
        self.shard.run_query_into(query, result)
    }

    /// Executes one query, advancing the virtual clock by its latency.
    ///
    /// Stateless convenience form: scratch is created per call and the
    /// returned `QueryResult` owns its scores, so each call pays the
    /// allocation cost the reusable paths ([`SdmSystem::run_query_into`]
    /// and [`SdmSystem::run_batch`]) amortise away. Results are identical
    /// either way — scratch never affects values.
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    pub fn run_query(&mut self, query: &Query) -> Result<QueryResult, SdmError> {
        self.shard.run_query(query)
    }

    /// Executes a batch of queries through the zero-allocation hot path and
    /// summarises latency and throughput.
    ///
    /// See [`Shard::run_batch`] for the equivalence and efficiency
    /// contract.
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors; the batch stops at the first
    /// failing query.
    pub fn run_batch(&mut self, queries: &[Query]) -> Result<QpsReport, SdmError> {
        self.shard.run_batch(queries)
    }

    /// Number of queries in the last [`SdmSystem::run_batch`].
    pub fn batch_len(&self) -> usize {
        self.shard.batch_len()
    }

    /// Scores of query `i` of the last batch.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the last batch.
    pub fn batch_scores(&self, i: usize) -> &[f32] {
        self.shard.batch_scores(i)
    }

    /// Latency breakdown of query `i` of the last batch.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the last batch.
    pub fn batch_latency(&self, i: usize) -> LatencyBreakdown {
        self.shard.batch_latency(i)
    }

    /// Executes a stream of queries and summarises latency and throughput:
    /// a thin loop over [`SdmSystem::run_batch`] in bounded chunks, so an
    /// arbitrarily long stream never retains more than one chunk's worth of
    /// per-query scores in the batch scratch.
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    pub fn run_queries(&mut self, queries: &[Query]) -> Result<QpsReport, SdmError> {
        /// Caps batch-scratch retention (scores, latencies) for long streams.
        const CHUNK: usize = 1024;
        if queries.len() <= CHUNK {
            return self.run_batch(queries);
        }
        let started = self.now();
        let mut hist = LatencyHistogram::new();
        for chunk in queries.chunks(CHUNK) {
            self.run_batch(chunk)?;
            hist.merge(self.shard.batch_hist());
        }
        let mean = hist.mean();
        let makespan = self.now().duration_since(started);
        Ok(QpsReport {
            queries: hist.count(),
            mean_latency: mean,
            p95_latency: hist.p95(),
            p99_latency: hist.p99(),
            qps_single_stream: if mean.is_zero() {
                0.0
            } else {
                1.0 / mean.as_secs_f64()
            },
            makespan,
            batch_qps: if makespan.is_zero() {
                0.0
            } else {
                hist.count() as f64 / makespan.as_secs_f64()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::model_zoo;
    use workload::{QueryGenerator, WorkloadConfig};

    fn workload(model: &ModelConfig, count: usize, seed: u64) -> Vec<Query> {
        let cfg = WorkloadConfig {
            item_batch: model.item_batch,
            user_population: 200,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&model.tables, cfg, seed).unwrap();
        gen.generate(count)
    }

    #[test]
    fn system_executes_queries_end_to_end() {
        let model = model_zoo::tiny(2, 1, 400);
        let mut system = SdmSystem::build(&model, SdmConfig::for_tests(), 3).unwrap();
        let queries = workload(&model, 20, 3);
        let report = system.run_queries(&queries).unwrap();
        assert_eq!(report.queries, 20);
        assert!(report.mean_latency > SimDuration::ZERO);
        assert!(report.p99_latency >= report.p95_latency);
        assert!(report.qps_single_stream > 0.0);
        assert!(system.now() > SimInstant::EPOCH);
        // The SM path was actually exercised.
        assert!(system.manager().stats().sm_reads > 0);
    }

    #[test]
    fn batch_report_carries_virtual_makespan_and_qps() {
        // In exact mode the makespan is the serial sum of per-query
        // latencies, so batch_qps and the 1/mean extrapolation agree.
        let model = model_zoo::tiny(2, 1, 300);
        let mut system = SdmSystem::build(&model, SdmConfig::for_tests(), 5).unwrap();
        let queries = workload(&model, 12, 5);
        let before = system.now();
        let report = system.run_batch(&queries).unwrap();
        assert_eq!(
            report.makespan,
            system.now().duration_since(before),
            "exact makespan must equal the clock advance"
        );
        assert!(report.batch_qps > 0.0);
        // Mean latency truncates to whole nanoseconds, so the two rates
        // agree only up to that rounding.
        assert!(
            (report.batch_qps - report.qps_single_stream).abs() / report.qps_single_stream < 1e-4,
            "serial batch throughput equals 1/mean-latency (up to ns rounding)"
        );
    }

    #[test]
    fn warm_cache_raises_throughput() {
        let model = model_zoo::tiny(2, 1, 300);
        let mut system = SdmSystem::build(&model, SdmConfig::for_tests(), 4).unwrap();
        let queries = workload(&model, 60, 4);
        let cold = system.run_queries(&queries[..30]).unwrap();
        let warm = system.run_queries(&queries[30..]).unwrap();
        assert!(
            warm.mean_latency <= cold.mean_latency,
            "warm {} > cold {}",
            warm.mean_latency,
            cold.mean_latency
        );
        assert!(system.manager().stats().row_cache_hit_rate() > 0.0);
    }

    #[test]
    fn chunked_run_queries_matches_single_batch_report() {
        let model = model_zoo::tiny(1, 1, 200);
        let queries = workload(&model, 1200, 8); // > CHUNK forces the chunked path
        let mut chunked = SdmSystem::build(&model, SdmConfig::for_tests(), 8).unwrap();
        let mut single = SdmSystem::build(&model, SdmConfig::for_tests(), 8).unwrap();
        let a = chunked.run_queries(&queries).unwrap();
        let b = single.run_batch(&queries).unwrap();
        assert_eq!(a.queries, 1200);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.p95_latency, b.p95_latency);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(chunked.now(), single.now());
        // The chunked path retains at most one chunk of scores.
        assert!(chunked.batch_len() <= 1024);
    }

    #[test]
    fn with_shared_tier_is_honoured_by_the_single_stream_system() {
        use sdm_metrics::units::Bytes;
        let model = model_zoo::tiny(1, 0, 400);
        // A private row cache too small for the stream, so private misses
        // reach the tier; the tier then holds what the slice cannot.
        let mut config = SdmConfig::for_tests().with_shared_tier(Bytes::from_mib(2));
        config.cache.row_cache_budget = Bytes::from_kib(2);
        config.cache.pooled_cache_budget = Bytes::ZERO;
        let mut system = SdmSystem::build(&model, config, 9).unwrap();
        assert!(system.manager().shared_tier().is_some());
        let queries = workload(&model, 30, 9);
        system.run_batch(&queries).unwrap();
        system.run_batch(&queries).unwrap();
        let stats = system.manager().stats();
        assert!(
            stats.shared_tier_hits > 0,
            "single-stream tier never served a probe"
        );
        // One stream, one source: hits are never cross-shard.
        assert_eq!(stats.shared_tier_cross_hits, 0);
        // Without the knob the tier stays detached.
        let plain = SdmSystem::build(&model, SdmConfig::for_tests(), 9).unwrap();
        assert!(plain.manager().shared_tier().is_none());
    }

    #[test]
    fn invalid_config_is_rejected_at_build() {
        let model = model_zoo::tiny(1, 1, 100);
        let mut config = SdmConfig::for_tests();
        config.device_count = 0;
        assert!(SdmSystem::build(&model, config, 0).is_err());
    }

    #[test]
    fn accelerator_compute_reduces_mlp_time() {
        let model = model_zoo::tiny(2, 1, 200);
        let queries = workload(&model, 5, 6);
        let mut cpu = SdmSystem::build(&model, SdmConfig::for_tests(), 6).unwrap();
        let mut accel = SdmSystem::build_with_compute(
            &model,
            SdmConfig::for_tests(),
            ComputeModel::accelerator(),
            6,
        )
        .unwrap();
        let cpu_result = cpu.run_query(&queries[0]).unwrap();
        let accel_result = accel.run_query(&queries[0]).unwrap();
        assert!(accel_result.latency.top_mlp < cpu_result.latency.top_mlp);
    }
}

//! Convenience wrapper tying the DLRM engine to the SDM memory manager.

use crate::config::SdmConfig;
use crate::error::SdmError;
use crate::loader::ModelLoader;
use crate::manager::SdmMemoryManager;
use dlrm::{
    ComputeModel, InferenceEngine, LatencyBreakdown, ModelConfig, PoolingBuffers, QueryResult,
};
use io_engine::IoEngine;
use scm_device::DeviceArray;
use sdm_metrics::{LatencyHistogram, SimDuration, SimInstant};
use workload::Query;

/// Throughput/latency summary of a batch of queries executed on one host.
#[derive(Debug, Clone)]
pub struct QpsReport {
    /// Queries executed.
    pub queries: u64,
    /// Mean end-to-end latency.
    pub mean_latency: SimDuration,
    /// 95th percentile latency.
    pub p95_latency: SimDuration,
    /// 99th percentile latency.
    pub p99_latency: SimDuration,
    /// Queries per second a single serving stream achieves
    /// (`1 / mean latency`).
    pub qps_single_stream: f64,
}

impl QpsReport {
    /// QPS achievable with `streams` concurrent serving streams, assuming
    /// the streams are limited by the measured per-query latency (the way
    /// the paper extrapolates host-level QPS from per-query latency).
    pub fn qps_with_streams(&self, streams: usize) -> f64 {
        self.qps_single_stream * streams.max(1) as f64
    }
}

/// Reusable storage for the results of the last [`SdmSystem::run_batch`]:
/// scores live back to back in one flat arena, so executing a batch
/// allocates nothing once the capacity has warmed up.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Scores of every query in the batch, concatenated.
    scores: Vec<f32>,
    /// `(start, len)` of each query's scores within `scores`.
    ranges: Vec<(usize, usize)>,
    /// Latency breakdown of each query.
    latencies: Vec<LatencyBreakdown>,
    /// Latency histogram, reset per batch (buckets reused).
    hist: LatencyHistogram,
    /// The per-query result the engine writes into, recycled across queries.
    result: QueryResult,
}

impl BatchScratch {
    fn reset(&mut self) {
        self.scores.clear();
        self.ranges.clear();
        self.latencies.clear();
        self.hist.reset();
    }
}

/// A complete single-host serving system: devices, IO engine, SDM manager
/// and the DLRM inference engine.
#[derive(Debug)]
pub struct SdmSystem {
    engine: InferenceEngine,
    manager: SdmMemoryManager,
    clock: SimInstant,
    /// Persistent execution scratch shared by every query this system runs.
    buffers: PoolingBuffers,
    batch: BatchScratch,
}

impl SdmSystem {
    /// Builds the full stack for a (scaled) model.
    ///
    /// # Errors
    ///
    /// Propagates configuration, layout and device errors.
    pub fn build(model: &ModelConfig, config: SdmConfig, seed: u64) -> Result<Self, SdmError> {
        config.validate()?;
        let array = DeviceArray::homogeneous(
            config.technology.clone(),
            config.device_capacity,
            config.device_count,
        )?;
        // Build-time clones (config/model), once per system — not hot.
        let mut io = IoEngine::new(array, config.io.clone());
        let loaded = ModelLoader::load(model, &config, &mut io)?;
        let manager = SdmMemoryManager::new(config, loaded, io);
        let engine = InferenceEngine::new(model.clone(), ComputeModel::default(), seed)?;
        Ok(SdmSystem {
            engine,
            manager,
            clock: SimInstant::EPOCH,
            buffers: PoolingBuffers::new(),
            batch: BatchScratch::default(),
        })
    }

    /// Builds the stack with an explicit compute model (e.g. accelerator
    /// hosts).
    ///
    /// # Errors
    ///
    /// Propagates configuration, layout and device errors.
    pub fn build_with_compute(
        model: &ModelConfig,
        config: SdmConfig,
        compute: ComputeModel,
        seed: u64,
    ) -> Result<Self, SdmError> {
        let mut system = Self::build(model, config, seed)?;
        system.engine = InferenceEngine::new(model.clone(), compute, seed)?;
        Ok(system)
    }

    /// The DLRM inference engine.
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }

    /// Mutable access to the inference engine (to switch execution mode).
    pub fn engine_mut(&mut self) -> &mut InferenceEngine {
        &mut self.engine
    }

    /// The SDM memory manager.
    pub fn manager(&self) -> &SdmMemoryManager {
        &self.manager
    }

    /// Mutable access to the memory manager (cache invalidation, updates).
    pub fn manager_mut(&mut self) -> &mut SdmMemoryManager {
        &mut self.manager
    }

    /// Current virtual time of the serving loop.
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// Executes one query into a caller-provided (reusable) result,
    /// advancing the virtual clock by its latency.
    ///
    /// This is the steady-state serving path: with warm system scratch, a
    /// warmed cache and a recycled `result`, it performs **zero heap
    /// allocations per query** (asserted by the `zero_alloc` test suite).
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    pub fn run_query_into(
        &mut self,
        query: &Query,
        result: &mut QueryResult,
    ) -> Result<(), SdmError> {
        self.engine.execute_into(
            query,
            &mut self.manager,
            self.clock,
            &mut self.buffers,
            result,
        )?;
        self.clock += result.latency.total;
        Ok(())
    }

    /// Executes one query, advancing the virtual clock by its latency.
    ///
    /// Stateless convenience form: scratch is created per call and the
    /// returned `QueryResult` owns its scores, so each call pays the
    /// allocation cost the reusable paths ([`SdmSystem::run_query_into`]
    /// and [`SdmSystem::run_batch`]) amortise away. Results are identical
    /// either way — scratch never affects values.
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    pub fn run_query(&mut self, query: &Query) -> Result<QueryResult, SdmError> {
        let result = self.engine.execute(query, &mut self.manager, self.clock)?;
        self.clock += result.latency.total;
        Ok(result)
    }

    /// Executes a batch of queries through the zero-allocation hot path and
    /// summarises latency and throughput.
    ///
    /// Virtual-time semantics are identical to looping
    /// [`SdmSystem::run_query`] — each query still observes the clock its
    /// predecessors advanced, so results, cache counters and IO totals are
    /// bit-for-bit the same (asserted by the `batch_equivalence` suite).
    /// What batching buys is host-side efficiency: one set of scratch
    /// buffers serves the whole batch, per-query results land in a flat
    /// reused arena (readable via [`SdmSystem::batch_scores`]) instead of a
    /// fresh `QueryResult` per query, and each operator's SM misses go to
    /// the device as one ring submission whose completions are pooled as
    /// they drain.
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors; the batch stops at the first
    /// failing query.
    pub fn run_batch(&mut self, queries: &[Query]) -> Result<QpsReport, SdmError> {
        self.batch.reset();
        for q in queries {
            self.engine.execute_into(
                q,
                &mut self.manager,
                self.clock,
                &mut self.buffers,
                &mut self.batch.result,
            )?;
            self.clock += self.batch.result.latency.total;
            let start = self.batch.scores.len();
            self.batch
                .scores
                .extend_from_slice(&self.batch.result.scores);
            self.batch
                .ranges
                .push((start, self.batch.result.scores.len()));
            self.batch.latencies.push(self.batch.result.latency);
            self.batch.hist.record(self.batch.result.latency.total);
        }
        let mean = self.batch.hist.mean();
        Ok(QpsReport {
            queries: self.batch.hist.count(),
            mean_latency: mean,
            p95_latency: self.batch.hist.p95(),
            p99_latency: self.batch.hist.p99(),
            qps_single_stream: if mean.is_zero() {
                0.0
            } else {
                1.0 / mean.as_secs_f64()
            },
        })
    }

    /// Number of queries in the last [`SdmSystem::run_batch`].
    pub fn batch_len(&self) -> usize {
        self.batch.ranges.len()
    }

    /// Scores of query `i` of the last batch.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the last batch.
    pub fn batch_scores(&self, i: usize) -> &[f32] {
        let (start, len) = self.batch.ranges[i];
        &self.batch.scores[start..start + len]
    }

    /// Latency breakdown of query `i` of the last batch.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the last batch.
    pub fn batch_latency(&self, i: usize) -> LatencyBreakdown {
        self.batch.latencies[i]
    }

    /// Executes a stream of queries and summarises latency and throughput:
    /// a thin loop over [`SdmSystem::run_batch`] in bounded chunks, so an
    /// arbitrarily long stream never retains more than one chunk's worth of
    /// per-query scores in the batch scratch.
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    pub fn run_queries(&mut self, queries: &[Query]) -> Result<QpsReport, SdmError> {
        /// Caps batch-scratch retention (scores, latencies) for long streams.
        const CHUNK: usize = 1024;
        if queries.len() <= CHUNK {
            return self.run_batch(queries);
        }
        let mut hist = LatencyHistogram::new();
        for chunk in queries.chunks(CHUNK) {
            self.run_batch(chunk)?;
            hist.merge(&self.batch.hist);
        }
        let mean = hist.mean();
        Ok(QpsReport {
            queries: hist.count(),
            mean_latency: mean,
            p95_latency: hist.p95(),
            p99_latency: hist.p99(),
            qps_single_stream: if mean.is_zero() {
                0.0
            } else {
                1.0 / mean.as_secs_f64()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::model_zoo;
    use workload::{QueryGenerator, WorkloadConfig};

    fn workload(model: &ModelConfig, count: usize, seed: u64) -> Vec<Query> {
        let cfg = WorkloadConfig {
            item_batch: model.item_batch,
            user_population: 200,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&model.tables, cfg, seed).unwrap();
        gen.generate(count)
    }

    #[test]
    fn system_executes_queries_end_to_end() {
        let model = model_zoo::tiny(2, 1, 400);
        let mut system = SdmSystem::build(&model, SdmConfig::for_tests(), 3).unwrap();
        let queries = workload(&model, 20, 3);
        let report = system.run_queries(&queries).unwrap();
        assert_eq!(report.queries, 20);
        assert!(report.mean_latency > SimDuration::ZERO);
        assert!(report.p99_latency >= report.p95_latency);
        assert!(report.qps_single_stream > 0.0);
        assert!(report.qps_with_streams(4) > report.qps_single_stream * 3.9);
        assert!(system.now() > SimInstant::EPOCH);
        // The SM path was actually exercised.
        assert!(system.manager().stats().sm_reads > 0);
    }

    #[test]
    fn warm_cache_raises_throughput() {
        let model = model_zoo::tiny(2, 1, 300);
        let mut system = SdmSystem::build(&model, SdmConfig::for_tests(), 4).unwrap();
        let queries = workload(&model, 60, 4);
        let cold = system.run_queries(&queries[..30]).unwrap();
        let warm = system.run_queries(&queries[30..]).unwrap();
        assert!(
            warm.mean_latency <= cold.mean_latency,
            "warm {} > cold {}",
            warm.mean_latency,
            cold.mean_latency
        );
        assert!(system.manager().stats().row_cache_hit_rate() > 0.0);
    }

    #[test]
    fn chunked_run_queries_matches_single_batch_report() {
        let model = model_zoo::tiny(1, 1, 200);
        let queries = workload(&model, 1200, 8); // > CHUNK forces the chunked path
        let mut chunked = SdmSystem::build(&model, SdmConfig::for_tests(), 8).unwrap();
        let mut single = SdmSystem::build(&model, SdmConfig::for_tests(), 8).unwrap();
        let a = chunked.run_queries(&queries).unwrap();
        let b = single.run_batch(&queries).unwrap();
        assert_eq!(a.queries, 1200);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.p95_latency, b.p95_latency);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(chunked.now(), single.now());
        // The chunked path retains at most one chunk of scores.
        assert!(chunked.batch_len() <= 1024);
    }

    #[test]
    fn invalid_config_is_rejected_at_build() {
        let model = model_zoo::tiny(1, 1, 100);
        let mut config = SdmConfig::for_tests();
        config.device_count = 0;
        assert!(SdmSystem::build(&model, config, 0).is_err());
    }

    #[test]
    fn accelerator_compute_reduces_mlp_time() {
        let model = model_zoo::tiny(2, 1, 200);
        let queries = workload(&model, 5, 6);
        let mut cpu = SdmSystem::build(&model, SdmConfig::for_tests(), 6).unwrap();
        let mut accel = SdmSystem::build_with_compute(
            &model,
            SdmConfig::for_tests(),
            ComputeModel::accelerator(),
            6,
        )
        .unwrap();
        let cpu_result = cpu.run_query(&queries[0]).unwrap();
        let accel_result = accel.run_query(&queries[0]).unwrap();
        assert!(accel_result.latency.top_mlp < cpu_result.latency.top_mlp);
    }
}

//! Convenience wrapper tying the DLRM engine to the SDM memory manager.

use crate::config::SdmConfig;
use crate::error::SdmError;
use crate::loader::ModelLoader;
use crate::manager::SdmMemoryManager;
use dlrm::{ComputeModel, InferenceEngine, ModelConfig, QueryResult};
use io_engine::IoEngine;
use scm_device::DeviceArray;
use sdm_metrics::{LatencyHistogram, SimDuration, SimInstant};
use workload::Query;

/// Throughput/latency summary of a batch of queries executed on one host.
#[derive(Debug, Clone)]
pub struct QpsReport {
    /// Queries executed.
    pub queries: u64,
    /// Mean end-to-end latency.
    pub mean_latency: SimDuration,
    /// 95th percentile latency.
    pub p95_latency: SimDuration,
    /// 99th percentile latency.
    pub p99_latency: SimDuration,
    /// Queries per second a single serving stream achieves
    /// (`1 / mean latency`).
    pub qps_single_stream: f64,
}

impl QpsReport {
    /// QPS achievable with `streams` concurrent serving streams, assuming
    /// the streams are limited by the measured per-query latency (the way
    /// the paper extrapolates host-level QPS from per-query latency).
    pub fn qps_with_streams(&self, streams: usize) -> f64 {
        self.qps_single_stream * streams.max(1) as f64
    }
}

/// A complete single-host serving system: devices, IO engine, SDM manager
/// and the DLRM inference engine.
#[derive(Debug)]
pub struct SdmSystem {
    engine: InferenceEngine,
    manager: SdmMemoryManager,
    clock: SimInstant,
}

impl SdmSystem {
    /// Builds the full stack for a (scaled) model.
    ///
    /// # Errors
    ///
    /// Propagates configuration, layout and device errors.
    pub fn build(model: &ModelConfig, config: SdmConfig, seed: u64) -> Result<Self, SdmError> {
        config.validate()?;
        let array = DeviceArray::homogeneous(
            config.technology.clone(),
            config.device_capacity,
            config.device_count,
        )?;
        let mut io = IoEngine::new(array, config.io.clone());
        let loaded = ModelLoader::load(model, &config, &mut io)?;
        let manager = SdmMemoryManager::new(config, loaded, io);
        let engine = InferenceEngine::new(model.clone(), ComputeModel::default(), seed)?;
        Ok(SdmSystem {
            engine,
            manager,
            clock: SimInstant::EPOCH,
        })
    }

    /// Builds the stack with an explicit compute model (e.g. accelerator
    /// hosts).
    ///
    /// # Errors
    ///
    /// Propagates configuration, layout and device errors.
    pub fn build_with_compute(
        model: &ModelConfig,
        config: SdmConfig,
        compute: ComputeModel,
        seed: u64,
    ) -> Result<Self, SdmError> {
        let mut system = Self::build(model, config, seed)?;
        system.engine = InferenceEngine::new(model.clone(), compute, seed)?;
        Ok(system)
    }

    /// The DLRM inference engine.
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }

    /// Mutable access to the inference engine (to switch execution mode).
    pub fn engine_mut(&mut self) -> &mut InferenceEngine {
        &mut self.engine
    }

    /// The SDM memory manager.
    pub fn manager(&self) -> &SdmMemoryManager {
        &self.manager
    }

    /// Mutable access to the memory manager (cache invalidation, updates).
    pub fn manager_mut(&mut self) -> &mut SdmMemoryManager {
        &mut self.manager
    }

    /// Current virtual time of the serving loop.
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// Executes one query, advancing the virtual clock by its latency.
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    pub fn run_query(&mut self, query: &Query) -> Result<QueryResult, SdmError> {
        let result = self.engine.execute(query, &mut self.manager, self.clock)?;
        self.clock += result.latency.total;
        Ok(result)
    }

    /// Executes a batch of queries back to back and summarises latency and
    /// throughput.
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    pub fn run_queries(&mut self, queries: &[Query]) -> Result<QpsReport, SdmError> {
        let mut hist = LatencyHistogram::new();
        for q in queries {
            let result = self.run_query(q)?;
            hist.record(result.latency.total);
        }
        let mean = hist.mean();
        Ok(QpsReport {
            queries: hist.count(),
            mean_latency: mean,
            p95_latency: hist.p95(),
            p99_latency: hist.p99(),
            qps_single_stream: if mean.is_zero() {
                0.0
            } else {
                1.0 / mean.as_secs_f64()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::model_zoo;
    use workload::{QueryGenerator, WorkloadConfig};

    fn workload(model: &ModelConfig, count: usize, seed: u64) -> Vec<Query> {
        let cfg = WorkloadConfig {
            item_batch: model.item_batch,
            user_population: 200,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&model.tables, cfg, seed).unwrap();
        gen.generate(count)
    }

    #[test]
    fn system_executes_queries_end_to_end() {
        let model = model_zoo::tiny(2, 1, 400);
        let mut system = SdmSystem::build(&model, SdmConfig::for_tests(), 3).unwrap();
        let queries = workload(&model, 20, 3);
        let report = system.run_queries(&queries).unwrap();
        assert_eq!(report.queries, 20);
        assert!(report.mean_latency > SimDuration::ZERO);
        assert!(report.p99_latency >= report.p95_latency);
        assert!(report.qps_single_stream > 0.0);
        assert!(report.qps_with_streams(4) > report.qps_single_stream * 3.9);
        assert!(system.now() > SimInstant::EPOCH);
        // The SM path was actually exercised.
        assert!(system.manager().stats().sm_reads > 0);
    }

    #[test]
    fn warm_cache_raises_throughput() {
        let model = model_zoo::tiny(2, 1, 300);
        let mut system = SdmSystem::build(&model, SdmConfig::for_tests(), 4).unwrap();
        let queries = workload(&model, 60, 4);
        let cold = system.run_queries(&queries[..30]).unwrap();
        let warm = system.run_queries(&queries[30..]).unwrap();
        assert!(
            warm.mean_latency <= cold.mean_latency,
            "warm {} > cold {}",
            warm.mean_latency,
            cold.mean_latency
        );
        assert!(system.manager().stats().row_cache_hit_rate() > 0.0);
    }

    #[test]
    fn invalid_config_is_rejected_at_build() {
        let model = model_zoo::tiny(1, 1, 100);
        let mut config = SdmConfig::for_tests();
        config.device_count = 0;
        assert!(SdmSystem::build(&model, config, 0).is_err());
    }

    #[test]
    fn accelerator_compute_reduces_mlp_time() {
        let model = model_zoo::tiny(2, 1, 200);
        let queries = workload(&model, 5, 6);
        let mut cpu = SdmSystem::build(&model, SdmConfig::for_tests(), 6).unwrap();
        let mut accel = SdmSystem::build_with_compute(
            &model,
            SdmConfig::for_tests(),
            ComputeModel::accelerator(),
            6,
        )
        .unwrap();
        let cpu_result = cpu.run_query(&queries[0]).unwrap();
        let accel_result = accel.run_query(&queries[0]).unwrap();
        assert!(accel_result.latency.top_mlp < cpu_result.latency.top_mlp);
    }
}

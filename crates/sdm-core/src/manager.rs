//! The SDM memory manager: the serving-time read path.

use crate::config::{AccessGranularity, SdmConfig};
use crate::error::SdmError;
use crate::loader::LoadedModel;
use crate::placement::TableLocation;
use crate::stats::SdmStats;
use dlrm::{DlrmError, EmbeddingBackend, LookupTicket, OverlappedBackend};
use embedding::kernels::{self, SelectedKernel};
use embedding::{QuantScheme, TableId};
use io_engine::{IoEngine, IoError, IoRequest};
use scm_device::{DeviceId, ReadCommand};
use sdm_cache::{
    DualRowCache, PooledEmbeddingCache, RowCache, RowKey, SharedRowTier, SlotPool, WarmupTracker,
};
use sdm_metrics::units::Bytes;
use sdm_metrics::{SimDuration, SimInstant};
use std::sync::Arc;

/// Per-element cost of dequantise + accumulate during pooling.
const DEQUANT_POOL_COST_PER_ELEMENT: SimDuration = SimDuration::from_nanos(1);
/// Per-element cost of pooling already-dequantised (`f32`) rows.
const POOL_ONLY_COST_PER_ELEMENT: SimDuration = SimDuration::from_nanos(0);
/// Cost of probing the pooled-embedding cache (hashing the index sequence).
const POOLED_CACHE_PROBE_COST: SimDuration = SimDuration::from_nanos(400);
/// Cost of one mapping-tensor lookup in fast memory.
const MAPPING_LOOKUP_COST: SimDuration = SimDuration::from_nanos(40);
/// DRAM random access cost for rows of directly-placed tables.
const FM_ROW_COST: SimDuration = SimDuration::from_nanos(150);

/// Reusable per-lookup scratch: the IO miss list survives across lookups so
/// a steady-state query never allocates for it.
#[derive(Debug, Default)]
struct LookupScratch {
    /// `(position in the index list, stored row)` of each cache miss.
    io_targets: Vec<(usize, u64)>,
}

/// This shard's handle on the host-shared cache tier: the tier itself
/// (shared via `Arc` across every shard's manager) plus the shard id used
/// to tag promotions, which is what distinguishes cross-shard hits from a
/// shard re-reading its own promotion.
#[derive(Debug, Clone)]
struct SharedTierHandle {
    tier: Arc<SharedRowTier>,
    source: u32,
}

/// Probes the shared tier for a private-cache miss, dequant-accumulating a
/// hit into `acc` under the stripe lock and keeping the hit/miss/cross
/// counters and warmup tracking consistent between the exact and
/// split-phase scan loops (which share this helper). Returns whether the
/// row was served; a detached tier (`None`) serves nothing.
// Takes the split borrows of the two scan loops individually — bundling
// them into a context struct would just move the field list.
#[allow(clippy::too_many_arguments)]
fn probe_shared_tier(
    shared: &Option<SharedTierHandle>,
    stats: &mut SdmStats,
    warmup: &mut WarmupTracker,
    key: &RowKey,
    quant: QuantScheme,
    kernel: SelectedKernel,
    latency: &mut SimDuration,
    acc: &mut [f32],
) -> Result<bool, SdmError> {
    let Some(shared) = shared else {
        return Ok(false);
    };
    *latency += shared.tier.lookup_cost();
    let mut pool_error: Option<embedding::EmbeddingError> = None;
    let hit = shared.tier.lookup_with(key, shared.source, |bytes| {
        pool_error = kernels::accumulate_row_with(kernel, bytes, quant, acc).err();
    });
    match hit {
        Some(h) => {
            if let Some(e) = pool_error {
                return Err(e.into());
            }
            stats.shared_tier_hits += 1;
            stats.shared_tier_cross_hits += u64::from(h.cross_shard);
            warmup.record(true);
            Ok(true)
        }
        None => {
            stats.shared_tier_misses += 1;
            Ok(false)
        }
    }
}

/// Which resolution path a split-phase lookup took at begin time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum PendingKind {
    /// Table placed directly in fast memory; fully resolved at begin.
    Fm,
    /// Answered by the pooled-embedding cache; fully resolved at begin.
    PooledHit,
    /// SM-resident table: hits resolved at begin, misses read from SM.
    #[default]
    Sm,
}

/// One begun-but-unfinished pooled lookup of the relaxed batch path.
///
/// Everything is owned and capacity-reusing: the accumulation buffer plays
/// the role the caller's `out` slice plays on the exact path (hits in index
/// order, then misses in completion order — the identical summation order),
/// and the index copy allows the deferred pooled-cache insert at finish.
#[derive(Debug, Default)]
struct PendingLookup {
    kind: PendingKind,
    table: TableId,
    quant: QuantScheme,
    /// Pooled accumulation buffer, sized to the table's dimension.
    acc: Vec<f32>,
    /// The op's index sequence (for the pooled-cache insert at finish).
    indices: Vec<u64>,
    /// Probe + mapping + hit-side latency accumulated at begin.
    hit_latency: SimDuration,
    /// Rows pooled so far (hits at begin, misses at drain).
    pooled_rows: usize,
    /// Time the op's SM reads spent in flight (zero without misses).
    io_time: SimDuration,
    /// Virtual instant the op was begun (and its misses submitted) at.
    submitted_at: SimInstant,
}

/// Outcome of the shared SM scan core
/// ([`SdmMemoryManager::sm_lookup_core`]).
struct SmScan {
    /// Mapping + cache-probe + shared-tier latency accrued by the scan.
    latency: SimDuration,
    /// Rows accumulated into the output (hits plus drained completions).
    pooled_rows: usize,
    /// Time the op's SM reads spent in flight (zero without misses).
    io_time: SimDuration,
}

/// Tail shared by the exact SM path and the split-phase finish: accounts
/// the dequantise+pool cost, feeds the pooled-embedding cache with the
/// final vector, and records the op's total latency. `pre_pool_latency`
/// is everything accrued before pooling (probe + scan + IO wait).
// Takes the split borrows of its two callers individually — bundling them
// into a context struct would just move the field list.
#[allow(clippy::too_many_arguments)]
fn finish_sm_op(
    config: &SdmConfig,
    pooled_cache: &mut PooledEmbeddingCache,
    stats: &mut SdmStats,
    table: TableId,
    indices: &[u64],
    quant: QuantScheme,
    pooled_rows: usize,
    pre_pool_latency: SimDuration,
    out: &[f32],
) -> SimDuration {
    let per_element = if quant == QuantScheme::Fp32 {
        POOL_ONLY_COST_PER_ELEMENT
    } else {
        DEQUANT_POOL_COST_PER_ELEMENT
    };
    let pool_time = per_element * (pooled_rows * out.len()) as u64 + SimDuration::from_nanos(100);
    stats.pooling_time += pool_time;
    if !config.cache.pooled_cache_budget.is_zero() {
        pooled_cache.insert(table, indices, out);
    }
    let latency = pre_pool_latency + pool_time;
    stats.sm_op_latency.record(latency);
    latency
}

/// The serving-path memory manager.
///
/// Implements [`dlrm::EmbeddingBackend`]: the DLRM inference engine asks for
/// pooled embeddings, and the manager resolves each one through (in order)
/// the pooled-embedding cache, the fast-memory row cache, and finally
/// SGL reads from the SCM devices (paper Algorithm 1).
///
/// The hot path is allocation- and copy-free on a warmed cache: cache hits
/// are dequant-accumulated straight out of the caches' arenas into the
/// caller's output range, and misses are submitted as one ring submission
/// whose completions are pooled as they drain.
#[derive(Debug)]
pub struct SdmMemoryManager {
    config: SdmConfig,
    /// Dequant-accumulate kernel resolved once from
    /// `config.pool_kernel` at build time (all choices bit-identical).
    kernel: SelectedKernel,
    loaded: LoadedModel,
    engine: IoEngine,
    row_cache: DualRowCache,
    pooled_cache: PooledEmbeddingCache,
    /// Host-shared second tier, consulted between a private-cache miss and
    /// SM-IO submission. `None` (the default) keeps the single-tier serving
    /// path bit-identical to previous revisions.
    shared: Option<SharedTierHandle>,
    warmup: WarmupTracker,
    stats: SdmStats,
    scratch: LookupScratch,
    /// Slab of begun-but-unfinished split-phase lookups. The pool's
    /// generation tickets reject tickets retained across a slot's reuse —
    /// see [`sdm_cache::SlotPool`].
    pending: SlotPool<PendingLookup>,
    clock: SimInstant,
}

impl SdmMemoryManager {
    /// Creates the manager from a loaded model and the IO engine that owns
    /// the devices holding its SM image.
    pub fn new(config: SdmConfig, loaded: LoadedModel, engine: IoEngine) -> Self {
        // Construction-time clone (once per deployment, not per query).
        let mut row_cache = DualRowCache::new(config.cache.clone());
        for table in loaded.placement.uncached_tables() {
            row_cache.disable_table(table);
        }
        let pooled_cache = PooledEmbeddingCache::new(
            config.cache.pooled_cache_budget,
            config.cache.pooled_len_threshold,
        );
        let kernel = config.pool_kernel.resolve_default();
        SdmMemoryManager {
            config,
            kernel,
            loaded,
            engine,
            row_cache,
            pooled_cache,
            shared: None,
            warmup: WarmupTracker::new(2_000, 0.8),
            stats: SdmStats::new(),
            scratch: LookupScratch::default(),
            pending: SlotPool::new(),
            clock: SimInstant::EPOCH,
        }
    }

    /// Attaches the host-shared cache tier, tagging this manager's
    /// promotions with `source` (its shard id). The serving host calls
    /// this once per shard at build time; without an attachment the
    /// manager serves exactly as before (private caches then SM).
    pub fn attach_shared_tier(&mut self, tier: Arc<SharedRowTier>, source: u32) {
        self.shared = Some(SharedTierHandle { tier, source });
    }

    /// The attached host-shared tier, if any.
    pub fn shared_tier(&self) -> Option<&Arc<SharedRowTier>> {
        self.shared.as_ref().map(|h| &h.tier)
    }

    /// The deployment configuration.
    pub fn config(&self) -> &SdmConfig {
        &self.config
    }

    /// The pooling kernel the manager resolved from
    /// [`SdmConfig::pool_kernel`] at construction time.
    pub fn kernel(&self) -> SelectedKernel {
        self.kernel
    }

    /// The loaded model.
    pub fn loaded(&self) -> &LoadedModel {
        &self.loaded
    }

    /// Mutable access to the loaded model (used by the model updater).
    pub(crate) fn loaded_mut(&mut self) -> &mut LoadedModel {
        &mut self.loaded
    }

    /// The IO engine (for device statistics).
    pub fn io_engine(&self) -> &IoEngine {
        &self.engine
    }

    /// Mutable access to the IO engine (model updater, fault-plan
    /// injection on the underlying devices, retry-policy tuning).
    pub fn io_engine_mut(&mut self) -> &mut IoEngine {
        &mut self.engine
    }

    /// Serving statistics.
    pub fn stats(&self) -> &SdmStats {
        &self.stats
    }

    /// The fast-memory row cache.
    pub fn row_cache(&self) -> &DualRowCache {
        &self.row_cache
    }

    /// The pooled-embedding cache.
    pub fn pooled_cache(&self) -> &PooledEmbeddingCache {
        &self.pooled_cache
    }

    /// Warmup tracker (hit-rate windows since the last cache invalidation).
    pub fn warmup(&self) -> &WarmupTracker {
        &self.warmup
    }

    /// Current position of the manager's virtual clock.
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// Fast-memory bytes consumed by the stack: directly placed tables,
    /// mapping tensors, and the configured cache budgets.
    pub fn fm_usage(&self) -> Bytes {
        self.loaded.fm_table_bytes
            + self.loaded.fm_mapping_bytes
            + self.config.cache.row_cache_budget
            + self.config.cache.pooled_cache_budget
    }

    /// Drops every cached row and pooled vector (what a full model update
    /// does) and restarts warmup tracking. With a shared tier attached the
    /// tier is cleared too — it caches rows of the same model image, so a
    /// model update invalidates it host-wide (idempotent when several
    /// shards invalidate after the same update).
    pub fn invalidate_caches(&mut self) {
        self.row_cache.clear();
        self.pooled_cache.clear();
        if let Some(shared) = &self.shared {
            shared.tier.clear();
        }
        self.warmup = WarmupTracker::new(2_000, 0.8);
    }

    /// Scan core of the fast-memory path, shared by the exact
    /// (`pooled_lookup_into_at`) and split-phase (`fm_lookup_begin`)
    /// halves: accumulates every row into `out` (sized to the table's
    /// dimension), records the fm stats and returns the op latency.
    fn fm_lookup_core(
        &mut self,
        table: TableId,
        indices: &[u64],
        out: &mut [f32],
    ) -> Result<SimDuration, SdmError> {
        let t = self
            .loaded
            .fm_tables
            .get(&table)
            .ok_or(embedding::EmbeddingError::UnknownTable { table })?;
        // Copy out the two plain fields instead of cloning the descriptor —
        // the descriptor carries a heap-allocated name, and this runs once
        // per operator.
        let (quant, dim) = (t.descriptor().quant, t.descriptor().dim);
        if out.len() != dim {
            return Err(embedding::EmbeddingError::MalformedRow {
                expected: dim,
                actual: out.len(),
            }
            .into());
        }
        let kernel = self.kernel;
        for (i, &idx) in indices.iter().enumerate() {
            let row = t.row(idx)?;
            // Pull the next row's cache lines in while this one is
            // accumulated (rows sit in one contiguous arena, so the slice
            // math for the lookahead is free; a bad next index surfaces
            // as an error on its own iteration).
            if let Some(&next) = indices.get(i + 1) {
                if let Ok(next_row) = t.row(next) {
                    kernels::prefetch_row(next_row);
                }
            }
            kernels::accumulate_row_with(kernel, row, quant, out)?;
        }
        self.stats.fm_direct_lookups += indices.len() as u64;
        let latency = FM_ROW_COST * indices.len() as u64
            + DEQUANT_POOL_COST_PER_ELEMENT * (indices.len() * dim) as u64;
        self.stats.fm_op_latency.record(latency);
        Ok(latency)
    }

    /// Serves a pooled lookup against an SM-resident table: pooled cache →
    /// the shared scan core ([`SdmMemoryManager::sm_lookup_core`]) → the
    /// shared pool-cost + pooled-cache-feed tail ([`finish_sm_op`]).
    fn sm_pooled_lookup_into(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
        out: &mut [f32],
    ) -> Result<SimDuration, SdmError> {
        let t = self
            .loaded
            .tables
            .get(&table)
            .ok_or(embedding::EmbeddingError::UnknownTable { table })?;
        let (quant, dim) = (t.stored.quant, t.stored.dim);
        if out.len() != dim {
            return Err(embedding::EmbeddingError::MalformedRow {
                expected: dim,
                actual: out.len(),
            }
            .into());
        }
        let mut latency = SimDuration::ZERO;

        // 1. Pooled-embedding cache (Algorithm 1).
        if !self.config.cache.pooled_cache_budget.is_zero()
            && self.pooled_cache.eligible(indices.len())
        {
            latency += POOLED_CACHE_PROBE_COST;
            if let Some(vector) = self.pooled_cache.lookup(table, indices) {
                out.copy_from_slice(vector);
                self.stats.pooled_cache_hits += 1;
                self.stats.sm_op_latency.record(latency);
                return Ok(latency);
            }
        }

        // 2–3. Row caches, shared tier and SM IO via the shared core.
        let scan = self.sm_lookup_core(table, indices, now, out)?;
        latency += scan.latency + scan.io_time;

        // 4–5. Pool-cost accounting + pooled-cache feed (shared tail).
        Ok(finish_sm_op(
            &self.config,
            &mut self.pooled_cache,
            &mut self.stats,
            table,
            indices,
            quant,
            scan.pooled_rows,
            latency,
            out,
        ))
    }

    /// Scan + IO core of the SM path (Algorithm 1 steps 2–3), shared by
    /// the exact and split-phase halves: resolves each index through the
    /// mapping tensor, the private row cache, the shared tier (paper
    /// Algorithm 1 with the host-shared second tier between the private
    /// miss and the device) and finally SM reads, accumulating into `out`
    /// in the canonical order — hits in index order, then misses in
    /// completion order — so both halves produce bit-identical pooled
    /// vectors.
    ///
    /// Cache hits — private or shared — are dequant-accumulated
    /// immediately, straight out of the owning arena (no copy, no
    /// allocation; shared hits accumulate under the stripe lock, which is
    /// released before the scan continues); the misses are gathered into a
    /// reused scratch list, submitted as **one ring submission**, and
    /// pooled as their completions drain — overlapping completion reaping
    /// with the dequantise+pool work. Completed reads are promoted into the
    /// shared tier at drain time, so no stripe lock is ever held across IO.
    fn sm_lookup_core(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
        out: &mut [f32],
    ) -> Result<SmScan, SdmError> {
        // Split borrows once so cache hits can be accumulated into `out`
        // while statistics and scratch update alongside.
        let kernel = self.kernel;
        let Self {
            config,
            loaded,
            engine,
            row_cache,
            shared,
            warmup,
            stats,
            scratch,
            ..
        } = self;
        let t = loaded
            .tables
            .get(&table)
            .ok_or(embedding::EmbeddingError::UnknownTable { table })?;
        let quant = t.stored.quant;
        let logical_rows = t.logical.num_rows;
        let mapping = t.mapping.as_ref();
        let mut latency = SimDuration::ZERO;

        // 2. Resolve each index: mapping tensor, row cache, then SM IO.
        // Hits accumulate straight into `out` in index order; misses queue
        // in the reused scratch list.
        scratch.io_targets.clear();
        let mut zero_rows = 0u64;
        let mut pooled_rows = 0usize;
        for (pos, &idx) in indices.iter().enumerate() {
            if idx >= logical_rows {
                return Err(embedding::EmbeddingError::RowOutOfRange {
                    row: idx,
                    rows: logical_rows,
                }
                .into());
            }
            // Pruned tables translate through the FM mapping tensor.
            let stored_row = if let Some(mapping) = mapping {
                latency += MAPPING_LOOKUP_COST;
                match mapping.map(idx) {
                    Some(r) => r,
                    None => {
                        zero_rows += 1;
                        continue; // pruned row contributes zeros, no access
                    }
                }
            } else {
                idx
            };

            latency += row_cache.lookup_cost();
            let key = RowKey::new(table, stored_row);
            // Software-prefetch the next index's cached row (if resident)
            // while this one is looked up and accumulated; `peek` leaves
            // the LRU order and hit/miss statistics untouched. Pruned
            // tables are skipped — translating the lookahead index through
            // the mapping tensor would double-charge its lookup cost.
            if mapping.is_none() {
                if let Some(&next) = indices.get(pos + 1) {
                    if let Some(bytes) = row_cache.peek(&RowKey::new(table, next)) {
                        kernels::prefetch_row(bytes);
                    }
                }
            }
            match row_cache.get(&key) {
                Some(bytes) => {
                    kernels::accumulate_row_with(kernel, bytes, quant, out)?;
                    stats.row_cache_hits += 1;
                    warmup.record(true);
                    pooled_rows += 1;
                }
                None => {
                    // Host-shared tier between the private miss and SM IO:
                    // a hit accumulates under the stripe lock, in the same
                    // index-order slot a private hit would occupy.
                    if probe_shared_tier(
                        shared,
                        stats,
                        warmup,
                        &key,
                        quant,
                        kernel,
                        &mut latency,
                        out,
                    )? {
                        pooled_rows += 1;
                    } else {
                        stats.sm_reads += 1;
                        warmup.record(false);
                        scratch.io_targets.push((pos, stored_row));
                    }
                }
            }
        }
        stats.pruned_zero_rows += zero_rows;

        // 3. Issue the misses as one ring submission of SGL (or block)
        // reads, then pool each row as its completion drains.
        let mut io_time = SimDuration::ZERO;
        if !scratch.io_targets.is_empty() {
            // Lock-discipline boundary: stripe locks are sub-microsecond
            // critical sections and fills happen at IO *completion*, so no
            // tracked lock may be held while SM reads are submitted. Debug
            // builds panic here on a violation; release builds compile this
            // to nothing.
            sdm_cache::assert_no_locks_held("SM submit boundary (manager::sm_lookup_core)");
            let placement = loaded.layout.placement(table)?;
            let device = DeviceId(placement.device_index);
            for (pos, stored_row) in &scratch.io_targets {
                let offset = placement.row_offset(*stored_row)?;
                let command = match config.granularity {
                    AccessGranularity::Sgl => ReadCommand::sgl(offset, placement.row_bytes),
                    AccessGranularity::Block => ReadCommand::block(offset, placement.row_bytes),
                };
                match engine.submit(
                    IoRequest::new(device, command)
                        .with_table(table)
                        .with_user_data(*pos as u64),
                    now,
                ) {
                    Ok(()) => {}
                    Err(IoError::RetriesExhausted { .. }) => {
                        // The row is unrecoverable right now: degrade
                        // gracefully. No completion will arrive for it, so
                        // it contributes zeros to the pooled vector exactly
                        // like a pruned row; it moves from the `sm_reads`
                        // bucket (charged during the scan) to
                        // `degraded_rows`, keeping row conservation intact.
                        stats.sm_reads -= 1;
                        stats.degraded_rows += 1;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            let io_targets = &scratch.io_targets;
            let mut pool_error: Option<SdmError> = None;
            let finished_at = engine.drain_each(now, |completion| {
                // Pull the completed row's lines toward L1 ahead of the
                // position binary search below: the same bytes are then
                // read three times (accumulate, row-cache insert, shared
                // promotion) without re-paying the first-touch latency.
                kernels::prefetch_row(&completion.data);
                stats.sm_bytes_read += Bytes(completion.data.len() as u64);
                stats.sm_bus_bytes += completion.bus_bytes;
                let pos = completion.user_data as usize;
                // io_targets is built in ascending position order, so the
                // reverse lookup is a binary search, not a linear scan. A
                // completion for a position we never submitted is a pipeline
                // bug; record it as a typed error and skip the row rather
                // than tearing the shard down mid-drain.
                let stored_row = match io_targets
                    .binary_search_by_key(&pos, |(p, _)| *p)
                    .map(|i| io_targets[i].1)
                {
                    Ok(row) => row,
                    Err(_) => {
                        if pool_error.is_none() {
                            pool_error = Some(SdmError::Internal {
                                invariant: "IO completion matches a submitted miss position",
                            });
                        }
                        return;
                    }
                };
                if pool_error.is_none() {
                    if let Err(e) =
                        kernels::accumulate_row_with(kernel, &completion.data, quant, out)
                    {
                        pool_error = Some(e.into());
                    } else {
                        pooled_rows += 1;
                    }
                }
                // Copied into the cache's arena (the seed's extra
                // intermediate clone is gone, not the final copy).
                let key = RowKey::new(table, stored_row);
                row_cache.insert(key, &completion.data);
                // Promote into the shared tier so other shards can serve
                // this row without their own SM read.
                if let Some(shared) = shared {
                    if shared.tier.insert(key, &completion.data, shared.source) {
                        stats.shared_tier_promotions += 1;
                    }
                }
            })?;
            if let Some(e) = pool_error {
                return Err(e);
            }
            io_time = finished_at.duration_since(now);
            stats.io_time += io_time;
        }

        Ok(SmScan {
            latency,
            pooled_rows,
            io_time,
        })
    }

    /// Serves one pooled embedding operator into `out` (sized to the
    /// table's dimension), advancing the manager's clock. This is the
    /// zero-allocation hot path.
    ///
    /// Unlike the trait's minimum contract (which requires a zero-filled
    /// buffer), this implementation overwrites `out` unconditionally: the
    /// result may be persisted into the shared pooled-embedding cache, so a
    /// stale buffer must never be able to poison later queries.
    ///
    /// # Errors
    ///
    /// Returns [`SdmError`] for unknown tables, out-of-range indices or IO
    /// failures.
    pub fn pooled_lookup_into_at(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
        out: &mut [f32],
    ) -> Result<SimDuration, SdmError> {
        out.fill(0.0);
        self.stats.pooled_ops += 1;
        let location = self.loaded.placement.location(table);
        let took = match location {
            TableLocation::FastMemory => self.fm_lookup_core(table, indices, out),
            TableLocation::SlowMemoryCached | TableLocation::SlowMemoryUncached => {
                self.sm_pooled_lookup_into(table, indices, now, out)
            }
        }?;
        self.clock = self.clock.max(now + took);
        Ok(took)
    }

    /// Serves one pooled embedding operator, advancing the manager's clock.
    /// Allocating convenience form of
    /// [`SdmMemoryManager::pooled_lookup_into_at`].
    ///
    /// # Errors
    ///
    /// Returns [`SdmError`] for unknown tables, out-of-range indices or IO
    /// failures.
    pub fn pooled_lookup_at(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<(Vec<f32>, SimDuration), SdmError> {
        let dim = self
            .loaded
            .tables
            .get(&table)
            .ok_or(embedding::EmbeddingError::UnknownTable { table })?
            .stored
            .dim;
        let mut pooled = vec![0.0f32; dim];
        let took = self.pooled_lookup_into_at(table, indices, now, &mut pooled)?;
        Ok((pooled, took))
    }

    /// Returns every split-phase lookup slot to the free list. The relaxed
    /// batch executor calls this before each batch so an aborted previous
    /// batch can never leak pending slots.
    pub(crate) fn reset_pending(&mut self) {
        self.pending.reset();
    }

    /// Begin half of a split-phase pooled lookup (the relaxed batch path).
    ///
    /// Resolves everything immediately available — fast-memory rows,
    /// pooled-cache hits, row-cache hits — into a manager-owned
    /// accumulation buffer and issues the misses to the IO engine at
    /// virtual time `now`. The summation order matches the exact path
    /// exactly (hits in index order, then misses in completion order), so
    /// a pipeline whose begin instants equal the exact path's query starts
    /// produces bit-identical pooled vectors.
    pub(crate) fn lookup_begin_at(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<LookupTicket, SdmError> {
        self.stats.pooled_ops += 1;
        let id = self.pending.acquire();
        let outcome = match self.loaded.placement.location(table) {
            TableLocation::FastMemory => self.fm_lookup_begin(id, table, indices, now),
            TableLocation::SlowMemoryCached | TableLocation::SlowMemoryUncached => {
                self.sm_lookup_begin(id, table, indices, now)
            }
        };
        match outcome {
            Ok(()) => Ok(LookupTicket(self.pending.ticket(id))),
            Err(e) => {
                self.pending.release(id);
                Err(e)
            }
        }
    }

    /// Begin path for a table placed directly in fast memory: fully
    /// resolved at begin time through the shared scan core
    /// ([`SdmMemoryManager::fm_lookup_core`]), accumulating into the
    /// slot's buffer instead of the caller's.
    fn fm_lookup_begin(
        &mut self,
        id: usize,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<(), SdmError> {
        let t = self
            .loaded
            .fm_tables
            .get(&table)
            .ok_or(embedding::EmbeddingError::UnknownTable { table })?;
        let (quant, dim) = (t.descriptor().quant, t.descriptor().dim);
        // Take the slot's accumulation buffer so the core can borrow the
        // manager; it is put back (resized to the table's dimension, with
        // its capacity reused) whether or not the scan succeeds.
        let op = self.pending.slot_mut(id);
        op.kind = PendingKind::Fm;
        op.table = table;
        op.quant = quant;
        op.indices.clear();
        op.pooled_rows = 0;
        op.io_time = SimDuration::ZERO;
        op.submitted_at = now;
        let mut acc = std::mem::take(&mut op.acc);
        acc.clear();
        acc.resize(dim, 0.0);
        let outcome = self.fm_lookup_core(table, indices, &mut acc);
        let op = self.pending.slot_mut(id);
        op.acc = acc;
        op.hit_latency = outcome?;
        Ok(())
    }

    /// Begin path for an SM-resident table: pooled-cache probe, then the
    /// shared scan core ([`SdmMemoryManager::sm_lookup_core`]) into the
    /// slot's buffer. The pooled-cache *insert* is deferred to finish
    /// time, when the vector is final.
    fn sm_lookup_begin(
        &mut self,
        id: usize,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<(), SdmError> {
        let t = self
            .loaded
            .tables
            .get(&table)
            .ok_or(embedding::EmbeddingError::UnknownTable { table })?;
        let (quant, dim) = (t.stored.quant, t.stored.dim);
        let mut latency = SimDuration::ZERO;

        // 1. Pooled-embedding cache (Algorithm 1). A hit copies the cached
        // vector; the insert side waits until finish, when the vector is
        // complete.
        if !self.config.cache.pooled_cache_budget.is_zero()
            && self.pooled_cache.eligible(indices.len())
        {
            latency += POOLED_CACHE_PROBE_COST;
            let Self {
                pooled_cache,
                pending,
                stats,
                ..
            } = self;
            if let Some(vector) = pooled_cache.lookup(table, indices) {
                let op = pending.slot_mut(id);
                op.kind = PendingKind::PooledHit;
                op.table = table;
                op.quant = quant;
                op.acc.clear();
                op.acc.resize(dim, 0.0);
                op.acc.copy_from_slice(vector);
                op.pooled_rows = 0;
                op.io_time = SimDuration::ZERO;
                op.submitted_at = now;
                op.hit_latency = latency;
                stats.pooled_cache_hits += 1;
                return Ok(());
            }
        }

        // Only the SM path reaches finish-time with a deferred pooled-cache
        // insert, so the index copy happens after the pooled probe — a
        // pooled hit never reads `op.indices` and skips the copy entirely.
        let op = self.pending.slot_mut(id);
        op.kind = PendingKind::Sm;
        op.table = table;
        op.quant = quant;
        op.indices.clear();
        op.indices.extend_from_slice(indices);
        op.submitted_at = now;
        // 2–3. The same scan core as the exact path, accumulating into the
        // slot's buffer (taken so the core can borrow the manager, and put
        // back whether or not the scan succeeds) instead of the caller's.
        let mut acc = std::mem::take(&mut op.acc);
        acc.clear();
        acc.resize(dim, 0.0);
        let outcome = self.sm_lookup_core(table, indices, now, &mut acc);
        let op = self.pending.slot_mut(id);
        op.acc = acc;
        let scan = outcome?;
        op.hit_latency = latency + scan.latency;
        op.pooled_rows = scan.pooled_rows;
        op.io_time = scan.io_time;
        Ok(())
    }

    /// Finish half of a split-phase pooled lookup: copies the completed
    /// vector into `out`, performs the deferred pooled-cache insert,
    /// accounts pooling cost and returns the op's full latency (hit side +
    /// IO wait + pooling).
    pub(crate) fn lookup_finish_into(
        &mut self,
        ticket: LookupTicket,
        out: &mut [f32],
    ) -> Result<SimDuration, SdmError> {
        let Some(id) = self.pending.checked_slot(ticket.0) else {
            return Err(SdmError::Dlrm(DlrmError::StaleTicket { ticket: ticket.0 }));
        };
        let Self {
            config,
            pooled_cache,
            stats,
            pending,
            clock,
            ..
        } = self;
        let op = pending.slot_mut(id);
        // Validate before releasing, so a mis-sized buffer is retryable.
        if out.len() != op.acc.len() {
            return Err(embedding::EmbeddingError::MalformedRow {
                expected: op.acc.len(),
                actual: out.len(),
            }
            .into());
        }
        out.copy_from_slice(&op.acc);
        let latency = match op.kind {
            PendingKind::Fm => op.hit_latency, // fm stats recorded at begin
            PendingKind::PooledHit => {
                stats.sm_op_latency.record(op.hit_latency);
                op.hit_latency
            }
            // 4–5. Deferred pool-cost accounting + pooled-cache feed: the
            // vector is final now (same shared tail as the exact path).
            PendingKind::Sm => finish_sm_op(
                config,
                pooled_cache,
                stats,
                op.table,
                &op.indices,
                op.quant,
                op.pooled_rows,
                op.hit_latency + op.io_time,
                out,
            ),
        };
        *clock = (*clock).max(op.submitted_at + latency);
        pending.release(id);
        Ok(latency)
    }
}

impl EmbeddingBackend for SdmMemoryManager {
    fn pooled_lookup(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<(Vec<f32>, SimDuration), DlrmError> {
        self.pooled_lookup_at(table, indices, now)
            .map_err(DlrmError::backend)
    }

    fn pooled_lookup_into(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
        out: &mut [f32],
    ) -> Result<SimDuration, DlrmError> {
        self.pooled_lookup_into_at(table, indices, now, out)
            .map_err(DlrmError::backend)
    }

    fn backend_name(&self) -> &str {
        "sdm"
    }
}

impl OverlappedBackend for SdmMemoryManager {
    fn lookup_begin(
        &mut self,
        table: TableId,
        indices: &[u64],
        now: SimInstant,
    ) -> Result<LookupTicket, DlrmError> {
        self.lookup_begin_at(table, indices, now)
            .map_err(DlrmError::backend)
    }

    fn lookup_finish(
        &mut self,
        ticket: LookupTicket,
        out: &mut [f32],
    ) -> Result<SimDuration, DlrmError> {
        match self.lookup_finish_into(ticket, out) {
            Ok(latency) => Ok(latency),
            // Surface stale tickets unwrapped so callers can match on them.
            Err(SdmError::Dlrm(e @ DlrmError::StaleTicket { .. })) => Err(e),
            Err(e) => Err(DlrmError::backend(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::ModelLoader;
    use dlrm::{model_zoo, DramBackend};
    use io_engine::EngineConfig;
    use scm_device::DeviceArray;

    fn build(model: &dlrm::ModelConfig, config: SdmConfig) -> SdmMemoryManager {
        let array = DeviceArray::homogeneous(
            config.technology.clone(),
            config.device_capacity,
            config.device_count,
        )
        .unwrap();
        let mut engine = IoEngine::new(array, EngineConfig::default());
        let loaded = ModelLoader::load(model, &config, &mut engine).unwrap();
        SdmMemoryManager::new(config, loaded, engine)
    }

    #[test]
    fn sdm_results_match_dram_baseline_bit_for_bit() {
        let model = model_zoo::tiny(2, 1, 400);
        let config = SdmConfig::for_tests();
        let mut sdm = build(&model, config.clone());
        let mut dram = DramBackend::from_tables(
            model
                .tables
                .iter()
                .map(|d| embedding::EmbeddingTable::generate(d, config.seed))
                .collect(),
        );
        let indices = vec![3u64, 17, 99, 250, 3];
        for table in [0u32, 1, 2] {
            let (a, _) = sdm
                .pooled_lookup_at(table, &indices, SimInstant::EPOCH)
                .unwrap();
            let (b, _) = dram
                .pooled_lookup(table, &indices, SimInstant::EPOCH)
                .unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-4, "table {table}: {x} vs {y}");
            }
        }
        assert_eq!(sdm.backend_name(), "sdm");
    }

    #[test]
    fn second_access_hits_the_row_cache_and_is_faster() {
        let model = model_zoo::tiny(1, 0, 500);
        let mut sdm = build(&model, SdmConfig::for_tests());
        let indices = vec![10u64, 20, 30, 40];
        let (_, cold) = sdm
            .pooled_lookup_at(0, &indices, SimInstant::EPOCH)
            .unwrap();
        let (_, warm) = sdm
            .pooled_lookup_at(0, &indices, SimInstant::EPOCH)
            .unwrap();
        assert!(warm < cold / 2, "warm {warm} vs cold {cold}");
        assert!(sdm.stats().row_cache_hits >= 4 || sdm.stats().pooled_cache_hits >= 1);
        assert!(sdm.stats().sm_reads >= 4);
    }

    #[test]
    fn pooled_cache_short_circuits_repeat_sequences() {
        let model = model_zoo::tiny(1, 0, 500);
        let mut config = SdmConfig::for_tests();
        config.cache.pooled_len_threshold = 2;
        let mut sdm = build(&model, config);
        let indices = vec![5u64, 6, 7, 8, 9];
        sdm.pooled_lookup_at(0, &indices, SimInstant::EPOCH)
            .unwrap();
        let before = sdm.stats().pooled_cache_hits;
        // Same multiset in a different order still hits.
        let shuffled = vec![9u64, 8, 7, 6, 5];
        let (_, latency) = sdm
            .pooled_lookup_at(0, &shuffled, SimInstant::EPOCH)
            .unwrap();
        assert_eq!(sdm.stats().pooled_cache_hits, before + 1);
        assert!(latency <= SimDuration::from_micros(1));
        assert!(sdm.stats().pooled_cache_hit_rate() > 0.0);
    }

    #[test]
    fn fm_placed_item_tables_never_touch_sm() {
        let model = model_zoo::tiny(1, 1, 300);
        let mut sdm = build(&model, SdmConfig::for_tests());
        let item_table = model.item_tables()[0].id;
        sdm.pooled_lookup_at(item_table, &[1, 2, 3], SimInstant::EPOCH)
            .unwrap();
        assert_eq!(sdm.stats().sm_reads, 0);
        assert_eq!(sdm.stats().fm_direct_lookups, 3);
        assert_eq!(sdm.io_engine().stats().submitted, 0);
    }

    #[test]
    fn split_phase_lookup_matches_exact_lookup() {
        let model = model_zoo::tiny(2, 1, 400);
        let config = SdmConfig::for_tests();
        let mut exact = build(&model, config.clone());
        let mut split = build(&model, config);
        let indices = vec![3u64, 17, 99, 250, 3];
        // Two passes: cold (IO on the misses) and warm (cache hits, pooled
        // cache); covers FM tables (id 2 is the item table) and SM tables.
        for _pass in 0..2 {
            for table in [0u32, 1, 2] {
                let (want, took_exact) = exact
                    .pooled_lookup_at(table, &indices, SimInstant::EPOCH)
                    .unwrap();
                let ticket = split
                    .lookup_begin_at(table, &indices, SimInstant::EPOCH)
                    .unwrap();
                let mut got = vec![0.0f32; want.len()];
                let took_split = split.lookup_finish_into(ticket, &mut got).unwrap();
                assert_eq!(want, got, "table {table} pooled vectors diverge");
                assert_eq!(took_exact, took_split, "table {table} latency diverges");
            }
        }
        // Counters agree between the two paths.
        let a = exact.stats();
        let b = split.stats();
        assert_eq!(a.pooled_ops, b.pooled_ops);
        assert_eq!(a.row_cache_hits, b.row_cache_hits);
        assert_eq!(a.sm_reads, b.sm_reads);
        assert_eq!(a.pooled_cache_hits, b.pooled_cache_hits);
        assert_eq!(a.fm_direct_lookups, b.fm_direct_lookups);
        assert_eq!(a.io_time, b.io_time);
        assert_eq!(a.pooling_time, b.pooling_time);
        assert_eq!(exact.now(), split.now());

        // A consumed ticket goes stale.
        let ticket = split
            .lookup_begin_at(0, &indices, SimInstant::EPOCH)
            .unwrap();
        let mut out = vec![0.0f32; 32];
        split.lookup_finish_into(ticket, &mut out).unwrap();
        assert!(matches!(
            split.lookup_finish_into(ticket, &mut out),
            Err(SdmError::Dlrm(DlrmError::StaleTicket { .. }))
        ));

        // A retained ticket stays stale even after its slot is re-acquired
        // by a later begin (generation mismatch): the old ticket must not
        // consume the new occupant's result.
        let reused = split
            .lookup_begin_at(0, &indices, SimInstant::EPOCH)
            .unwrap();
        assert_ne!(ticket, reused, "re-acquired slot must issue a new ticket");
        assert!(matches!(
            split.lookup_finish_into(ticket, &mut out),
            Err(SdmError::Dlrm(DlrmError::StaleTicket { .. }))
        ));
        // The legitimate in-flight lookup is unaffected by the rejection.
        split.lookup_finish_into(reused, &mut out).unwrap();
    }

    #[test]
    fn shared_tier_serves_other_managers_misses() {
        let model = model_zoo::tiny(1, 0, 500);
        let config = SdmConfig::for_tests();
        let tier = Arc::new(SharedRowTier::new(Bytes::from_mib(2), 4));
        let mut a = build(&model, config.clone());
        let mut b = build(&model, config.clone());
        a.attach_shared_tier(Arc::clone(&tier), 0);
        b.attach_shared_tier(Arc::clone(&tier), 1);
        let indices = vec![10u64, 20, 30, 40];
        // Manager A reads cold: SM reads, then promotion into the tier.
        let (want, _) = a.pooled_lookup_at(0, &indices, SimInstant::EPOCH).unwrap();
        assert_eq!(a.stats().sm_reads, 4);
        assert_eq!(a.stats().shared_tier_promotions, 4);
        assert_eq!(tier.len(), 4);
        // Manager B misses privately but hits the shared tier: no SM IO,
        // every hit is cross-shard, and the pooled values are bit-identical
        // (same rows accumulated in the same index order).
        let (got, _) = b.pooled_lookup_at(0, &indices, SimInstant::EPOCH).unwrap();
        assert_eq!(got, want);
        assert_eq!(b.stats().sm_reads, 0);
        assert_eq!(b.stats().shared_tier_hits, 4);
        assert_eq!(b.stats().shared_tier_cross_hits, 4);
        assert_eq!(b.io_engine().stats().submitted, 0);
        assert!(b.stats().shared_tier_hit_rate() > 0.99);
        // A re-reading its own promotions hits, but not cross-shard (the
        // private cache serves first, so force a private-cache-miss path by
        // invalidating only the private side via a fresh manager).
        let mut a2 = build(&model, config);
        a2.attach_shared_tier(Arc::clone(&tier), 0);
        a2.pooled_lookup_at(0, &indices, SimInstant::EPOCH).unwrap();
        assert_eq!(a2.stats().shared_tier_hits, 4);
        assert_eq!(a2.stats().shared_tier_cross_hits, 0);
    }

    #[test]
    fn split_phase_lookup_matches_exact_with_shared_tier() {
        let model = model_zoo::tiny(2, 1, 400);
        let config = SdmConfig::for_tests();
        let exact_tier = Arc::new(SharedRowTier::new(Bytes::from_mib(1), 4));
        let split_tier = Arc::new(SharedRowTier::new(Bytes::from_mib(1), 4));
        let mut exact = build(&model, config.clone());
        let mut split = build(&model, config);
        exact.attach_shared_tier(exact_tier, 2);
        split.attach_shared_tier(split_tier, 2);
        let indices = vec![3u64, 17, 99, 250, 3];
        for _pass in 0..2 {
            for table in [0u32, 1, 2] {
                let (want, took_exact) = exact
                    .pooled_lookup_at(table, &indices, SimInstant::EPOCH)
                    .unwrap();
                let ticket = split
                    .lookup_begin_at(table, &indices, SimInstant::EPOCH)
                    .unwrap();
                let mut got = vec![0.0f32; want.len()];
                let took_split = split.lookup_finish_into(ticket, &mut got).unwrap();
                assert_eq!(want, got, "table {table} pooled vectors diverge");
                assert_eq!(took_exact, took_split, "table {table} latency diverges");
            }
        }
        let a = exact.stats();
        let b = split.stats();
        assert_eq!(a.shared_tier_hits, b.shared_tier_hits);
        assert_eq!(a.shared_tier_misses, b.shared_tier_misses);
        assert_eq!(a.shared_tier_promotions, b.shared_tier_promotions);
        assert_eq!(a.sm_reads, b.sm_reads);
        assert_eq!(a.io_time, b.io_time);
        assert_eq!(exact.now(), split.now());
    }

    #[test]
    fn invalidate_caches_clears_the_shared_tier() {
        let model = model_zoo::tiny(1, 0, 300);
        let tier = Arc::new(SharedRowTier::new(Bytes::from_mib(1), 2));
        let mut sdm = build(&model, SdmConfig::for_tests());
        sdm.attach_shared_tier(Arc::clone(&tier), 0);
        sdm.pooled_lookup_at(0, &[1, 2, 3], SimInstant::EPOCH)
            .unwrap();
        assert!(!tier.is_empty());
        sdm.invalidate_caches();
        assert!(tier.is_empty());
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        let model = model_zoo::tiny(1, 0, 100);
        let mut sdm = build(&model, SdmConfig::for_tests());
        assert!(sdm
            .pooled_lookup_at(0, &[1_000_000], SimInstant::EPOCH)
            .is_err());
        assert!(sdm.pooled_lookup_at(77, &[0], SimInstant::EPOCH).is_err());
    }

    #[test]
    fn pruned_rows_pool_to_partial_sums_without_io() {
        let mut model = model_zoo::tiny(1, 0, 200);
        model.tables[0].pruned_fraction = 0.5;
        let mut sdm = build(&model, SdmConfig::for_tests());
        let indices: Vec<u64> = (0..50).collect();
        let (pooled, _) = sdm
            .pooled_lookup_at(0, &indices, SimInstant::EPOCH)
            .unwrap();
        assert_eq!(pooled.len(), 32);
        assert!(sdm.stats().pruned_zero_rows > 0);
        // Rows actually read is total minus the pruned ones.
        assert_eq!(sdm.stats().sm_reads + sdm.stats().pruned_zero_rows, 50);
    }

    #[test]
    fn invalidate_caches_forces_cold_reads_again() {
        let model = model_zoo::tiny(1, 0, 300);
        let mut sdm = build(&model, SdmConfig::for_tests());
        let indices = vec![1u64, 2, 3];
        sdm.pooled_lookup_at(0, &indices, SimInstant::EPOCH)
            .unwrap();
        let reads_before = sdm.stats().sm_reads;
        sdm.invalidate_caches();
        sdm.pooled_lookup_at(0, &indices, SimInstant::EPOCH)
            .unwrap();
        assert_eq!(sdm.stats().sm_reads, reads_before + 3);
    }

    #[test]
    fn block_granularity_amplifies_bus_traffic() {
        let model = model_zoo::tiny(1, 0, 400);
        let mut sgl = build(&model, SdmConfig::for_tests());
        let mut block = build(
            &model,
            SdmConfig::for_tests()
                .with_nand_flash()
                .with_granularity(AccessGranularity::Block),
        );
        let indices: Vec<u64> = (0..20).collect();
        sgl.pooled_lookup_at(0, &indices, SimInstant::EPOCH)
            .unwrap();
        block
            .pooled_lookup_at(0, &indices, SimInstant::EPOCH)
            .unwrap();
        assert!(block.stats().read_amplification() > 5.0 * sgl.stats().read_amplification());
    }

    #[test]
    fn fm_usage_accounts_for_tables_mappings_and_caches() {
        let model = model_zoo::tiny(1, 1, 200);
        let sdm = build(&model, SdmConfig::for_tests());
        let usage = sdm.fm_usage();
        assert!(usage >= sdm.config().cache.row_cache_budget);
        assert!(usage >= sdm.loaded().fm_table_bytes);
    }
}

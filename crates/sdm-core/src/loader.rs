//! Model loading: materialise tables, apply load-time transformations and
//! write the SM image.

use crate::config::{LoadTransform, SdmConfig};
use crate::error::SdmError;
use crate::placement::{PlacementPlan, TableLocation};
use dlrm::ModelConfig;
use embedding::{
    EmbeddingTable, MappingTensor, PrunedTable, QuantScheme, SmLayout, TableDescriptor, TableId,
};
use io_engine::IoEngine;
use scm_device::DeviceId;
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;
use std::collections::HashMap;

/// One table as it exists after loading.
#[derive(Debug)]
pub struct LoadedTable {
    /// Descriptor of the table as stored (post de-prune / de-quantise).
    pub stored: TableDescriptor,
    /// Descriptor the queries address (the unpruned index space).
    pub logical: TableDescriptor,
    /// Where the rows live.
    pub location: TableLocation,
    /// Mapping tensor kept in fast memory when the table is pruned and was
    /// not de-pruned at load time.
    pub mapping: Option<MappingTensor>,
}

/// The result of loading a model onto one host.
#[derive(Debug)]
pub struct LoadedModel {
    /// The (scaled) model being served.
    pub model: ModelConfig,
    /// Per-table load state.
    pub tables: HashMap<TableId, LoadedTable>,
    /// Tables resident directly in fast memory.
    pub fm_tables: HashMap<TableId, EmbeddingTable>,
    /// Byte layout of the SM-resident tables.
    pub layout: SmLayout,
    /// The placement plan that was applied.
    pub placement: PlacementPlan,
    /// Fast-memory bytes used by directly placed tables (materialised size).
    pub fm_table_bytes: Bytes,
    /// Fast-memory bytes used by mapping tensors.
    pub fm_mapping_bytes: Bytes,
    /// Bytes written to the SM devices during the load.
    pub sm_written_bytes: Bytes,
    /// Simulated device time of the load writes.
    pub load_time: SimDuration,
}

impl LoadedModel {
    /// Whether a table is SM-resident.
    pub fn on_sm(&self, table: TableId) -> bool {
        matches!(
            self.placement.location(table),
            TableLocation::SlowMemoryCached | TableLocation::SlowMemoryUncached
        )
    }
}

/// Loads models onto a host's devices.
#[derive(Debug, Default)]
pub struct ModelLoader;

impl ModelLoader {
    /// Loads `model` according to `config`, writing SM-resident tables
    /// through `engine`'s device array.
    ///
    /// The model passed here should already be scaled to a materialisable
    /// size (see `dlrm::model_zoo::scaled_model`).
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid, the tables do not
    /// fit on the devices, or a device write fails.
    pub fn load(
        model: &ModelConfig,
        config: &SdmConfig,
        engine: &mut IoEngine,
    ) -> Result<LoadedModel, SdmError> {
        config.validate()?;
        model.validate()?;
        let placement = PlacementPlan::compute(model, &config.placement);

        // Descriptor/model clones below are load-time only (once per model
        // deployment, never on the query path), so the simplicity of owned
        // copies beats threading lifetimes through the serving structs.
        let mut fm_tables = HashMap::new();
        let mut loaded_tables = HashMap::new();
        let mut sm_materialised: Vec<(TableDescriptor, EmbeddingTable)> = Vec::new();
        let mut fm_table_bytes = Bytes::ZERO;
        let mut fm_mapping_bytes = Bytes::ZERO;

        for desc in &model.tables {
            let location = placement.location(desc.id);
            let table = EmbeddingTable::generate(desc, config.seed);
            match location {
                TableLocation::FastMemory => {
                    fm_table_bytes += table.capacity();
                    loaded_tables.insert(
                        desc.id,
                        LoadedTable {
                            stored: desc.clone(),
                            logical: desc.clone(),
                            location,
                            mapping: None,
                        },
                    );
                    fm_tables.insert(desc.id, table);
                }
                TableLocation::SlowMemoryCached | TableLocation::SlowMemoryUncached => {
                    let (stored_table, mapping) =
                        Self::apply_transforms(desc, table, &config.transform, config.seed)?;
                    if let Some(m) = &mapping {
                        fm_mapping_bytes += m.footprint();
                    }
                    loaded_tables.insert(
                        desc.id,
                        LoadedTable {
                            stored: stored_table.descriptor().clone(),
                            logical: desc.clone(),
                            location,
                            mapping,
                        },
                    );
                    sm_materialised.push((stored_table.descriptor().clone(), stored_table));
                }
            }
        }

        // Lay the SM tables out and write the image.
        let sm_descriptors: Vec<TableDescriptor> =
            sm_materialised.iter().map(|(d, _)| d.clone()).collect();
        let layout = SmLayout::plan(
            &sm_descriptors,
            config.device_count,
            config.device_capacity,
            config.technology.access_granularity,
        )?;

        let mut sm_written_bytes = Bytes::ZERO;
        let mut load_time = SimDuration::ZERO;
        for (desc, table) in &sm_materialised {
            let placement = layout.placement(desc.id)?;
            let stride = placement.row_stride as usize;
            let mut image = vec![0u8; (placement.num_rows as usize) * stride];
            for (i, row) in table.iter().enumerate() {
                let at = i * stride;
                image[at..at + row.len()].copy_from_slice(row);
            }
            let outcome = engine.array_mut().write(
                DeviceId(placement.device_index),
                placement.base_offset,
                &image,
            )?;
            sm_written_bytes += outcome.written;
            load_time += outcome.device_latency;
        }

        Ok(LoadedModel {
            model: model.clone(),
            tables: loaded_tables,
            fm_tables,
            layout,
            placement,
            fm_table_bytes,
            fm_mapping_bytes,
            sm_written_bytes,
            load_time,
        })
    }

    /// Applies pruning/de-pruning and de-quantisation to an SM-bound table.
    fn apply_transforms(
        desc: &TableDescriptor,
        table: EmbeddingTable,
        transform: &LoadTransform,
        seed: u64,
    ) -> Result<(EmbeddingTable, Option<MappingTensor>), SdmError> {
        // Step 1: pruning, when the descriptor declares a pruned fraction.
        let (mut stored, mapping) = if desc.pruned_fraction > 0.0 {
            let keep = (1.0 - desc.pruned_fraction).clamp(0.001, 1.0);
            let pruned = PrunedTable::prune(&table, keep, seed ^ desc.id as u64)?;
            if transform.deprune {
                let (full, _report) = pruned.deprune()?;
                (full, None)
            } else {
                let mapping = pruned.mapping().clone();
                (pruned.pruned_rows().clone(), Some(mapping))
            }
        } else {
            (table, None)
        };

        // Step 2: de-quantisation at load time (§A.5).
        if transform.dequantize && stored.descriptor().quant != QuantScheme::Fp32 {
            stored = stored.requantize(QuantScheme::Fp32)?;
        }
        Ok((stored, mapping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SdmConfig;
    use dlrm::model_zoo;
    use io_engine::EngineConfig;
    use scm_device::DeviceArray;

    fn engine(config: &SdmConfig) -> IoEngine {
        let array = DeviceArray::homogeneous(
            config.technology.clone(),
            config.device_capacity,
            config.device_count,
        )
        .unwrap();
        IoEngine::new(array, EngineConfig::default())
    }

    #[test]
    fn load_places_user_tables_on_sm_and_item_tables_in_fm() {
        let model = model_zoo::tiny(3, 2, 400);
        let config = SdmConfig::for_tests();
        let mut eng = engine(&config);
        let loaded = ModelLoader::load(&model, &config, &mut eng).unwrap();
        assert_eq!(loaded.tables.len(), 5);
        assert_eq!(loaded.fm_tables.len(), 2);
        assert_eq!(loaded.layout.len(), 3);
        assert!(loaded.sm_written_bytes > Bytes::ZERO);
        assert!(loaded.load_time > SimDuration::ZERO);
        assert!(loaded.on_sm(0));
        assert!(!loaded.on_sm(3));
        assert_eq!(loaded.fm_mapping_bytes, Bytes::ZERO);
    }

    #[test]
    fn sm_rows_written_match_generated_tables() {
        let model = model_zoo::tiny(1, 0, 100);
        let config = SdmConfig::for_tests();
        let mut eng = engine(&config);
        let loaded = ModelLoader::load(&model, &config, &mut eng).unwrap();
        let reference = EmbeddingTable::generate(&model.tables[0], config.seed);
        let placement = loaded.layout.placement(0).unwrap();
        // Read row 7 back from the device and compare.
        let offset = placement.row_offset(7).unwrap();
        let out = eng
            .array_mut()
            .read(
                DeviceId(placement.device_index),
                &scm_device::ReadCommand::sgl(offset, placement.row_bytes),
                1,
            )
            .unwrap();
        assert_eq!(out.data, reference.row(7).unwrap());
    }

    #[test]
    fn pruned_tables_keep_mapping_in_fm_unless_depruned() {
        let mut model = model_zoo::tiny(1, 0, 300);
        model.tables[0].pruned_fraction = 0.4;
        let config = SdmConfig::for_tests();
        let mut eng = engine(&config);
        let loaded = ModelLoader::load(&model, &config, &mut eng).unwrap();
        let t = &loaded.tables[&0];
        assert!(t.mapping.is_some());
        assert!(loaded.fm_mapping_bytes > Bytes::ZERO);
        assert!(t.stored.num_rows < t.logical.num_rows);

        // With de-pruning the mapping disappears and the stored table is full
        // size again.
        let config = SdmConfig::for_tests().with_transform(LoadTransform {
            deprune: true,
            dequantize: false,
        });
        let mut eng = engine(&config);
        let loaded = ModelLoader::load(&model, &config, &mut eng).unwrap();
        let t = &loaded.tables[&0];
        assert!(t.mapping.is_none());
        assert_eq!(loaded.fm_mapping_bytes, Bytes::ZERO);
        assert_eq!(t.stored.num_rows, t.logical.num_rows);
    }

    #[test]
    fn dequantize_at_load_expands_sm_footprint() {
        let model = model_zoo::tiny(1, 0, 200);
        let base_cfg = SdmConfig::for_tests();
        let mut eng = engine(&base_cfg);
        let quantised = ModelLoader::load(&model, &base_cfg, &mut eng).unwrap();

        let wide_cfg = SdmConfig::for_tests().with_transform(LoadTransform {
            deprune: false,
            dequantize: true,
        });
        let mut eng = engine(&wide_cfg);
        let dequantised = ModelLoader::load(&model, &wide_cfg, &mut eng).unwrap();
        assert!(dequantised.sm_written_bytes > quantised.sm_written_bytes * 2);
        assert_eq!(dequantised.tables[&0].stored.quant, QuantScheme::Fp32);
    }

    #[test]
    fn oversized_model_is_rejected() {
        let model = model_zoo::tiny(2, 0, 50_000);
        let mut config = SdmConfig::for_tests();
        config.device_capacity = Bytes::from_kib(64);
        let mut eng = engine(&config);
        assert!(ModelLoader::load(&model, &config, &mut eng).is_err());
    }
}

//! Model updates: full and incremental refresh of the SM image (paper §A.3)
//! and their endurance / warmup consequences.

use crate::error::SdmError;
use crate::manager::SdmMemoryManager;
use embedding::EmbeddingTable;
use scm_device::DeviceId;
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;

/// What kind of refresh to perform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateKind {
    /// Rewrite every SM-resident table (new snapshot of all embeddings).
    Full,
    /// Rewrite only a fraction of each table's rows (incremental update).
    Incremental {
        /// Fraction of rows refreshed, in `(0, 1]`.
        fraction: f64,
    },
}

/// Outcome of a model update.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateReport {
    /// Bytes written to the SM devices.
    pub bytes_written: Bytes,
    /// Simulated device time spent writing.
    pub write_time: SimDuration,
    /// Whether the fast-memory caches were invalidated (full updates only).
    pub caches_invalidated: bool,
    /// Minimum days between updates of this size that the devices' rated
    /// endurance allows (the tightest device across the array).
    pub min_update_interval_days: f64,
}

/// Applies model updates to a running [`SdmMemoryManager`].
#[derive(Debug, Default)]
pub struct ModelUpdater;

impl ModelUpdater {
    /// Performs an update with fresh table contents derived from
    /// `new_version` (a seed for the regenerated weights).
    ///
    /// # Errors
    ///
    /// Returns [`SdmError`] for invalid fractions or device write failures.
    pub fn apply(
        manager: &mut SdmMemoryManager,
        kind: UpdateKind,
        new_version: u64,
    ) -> Result<UpdateReport, SdmError> {
        let fraction = match kind {
            UpdateKind::Full => 1.0,
            UpdateKind::Incremental { fraction } => {
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(SdmError::InvalidConfig {
                        reason: format!("incremental update fraction {fraction} outside (0, 1]"),
                    });
                }
                fraction
            }
        };

        // Collect the SM-resident tables and their placements first so we do
        // not hold borrows across the device writes. The descriptor clones
        // are update-time only (minutes apart), never on the query path.
        let sm_tables: Vec<(u32, embedding::TableDescriptor)> = manager
            .loaded()
            .tables
            .iter()
            .filter(|(id, _)| manager.loaded().on_sm(**id))
            .map(|(id, t)| (*id, t.stored.clone()))
            .collect();

        let mut bytes_written = Bytes::ZERO;
        let mut write_time = SimDuration::ZERO;
        for (table_id, stored) in &sm_tables {
            let placement = *manager.loaded().layout.placement(*table_id)?;
            let new_table = EmbeddingTable::generate(stored, new_version ^ *table_id as u64);
            let rows_to_write =
                ((stored.num_rows as f64 * fraction).ceil() as u64).clamp(1, stored.num_rows);
            let stride = placement.row_stride as usize;
            let mut image = vec![0u8; rows_to_write as usize * stride];
            for row in 0..rows_to_write {
                let bytes = new_table.row(row)?;
                let at = row as usize * stride;
                image[at..at + bytes.len()].copy_from_slice(bytes);
            }
            let outcome = manager.io_engine_mut().array_mut().write(
                DeviceId(placement.device_index),
                placement.base_offset,
                &image,
            )?;
            bytes_written += outcome.written;
            write_time += outcome.device_latency;
        }

        // Full updates replace every row, so the cached copies are stale and
        // must be dropped; incremental updates leave most rows valid and in
        // practice are applied through the cache (dirty write-back), so the
        // caches are kept.
        let caches_invalidated = matches!(kind, UpdateKind::Full);
        if caches_invalidated {
            manager.invalidate_caches();
            // Mark the new version visible to the serving path.
            let _ = manager.loaded_mut();
        }

        let min_update_interval_days = manager
            .io_engine()
            .array()
            .iter()
            .map(|(_, d)| {
                d.profile()
                    .min_update_interval_days(bytes_written, d.capacity())
            })
            .fold(0.0f64, f64::max);

        Ok(UpdateReport {
            bytes_written,
            write_time,
            caches_invalidated,
            min_update_interval_days,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SdmConfig;
    use crate::loader::ModelLoader;
    use crate::manager::SdmMemoryManager;
    use dlrm::model_zoo;
    use io_engine::{EngineConfig, IoEngine};
    use scm_device::DeviceArray;
    use sdm_cache::RowCache;
    use sdm_metrics::SimInstant;

    fn manager() -> SdmMemoryManager {
        let model = model_zoo::tiny(2, 1, 300);
        let config = SdmConfig::for_tests();
        let array = DeviceArray::homogeneous(
            config.technology.clone(),
            config.device_capacity,
            config.device_count,
        )
        .unwrap();
        let mut engine = IoEngine::new(array, EngineConfig::default());
        let loaded = ModelLoader::load(&model, &config, &mut engine).unwrap();
        SdmMemoryManager::new(config, loaded, engine)
    }

    #[test]
    fn full_update_rewrites_everything_and_invalidates_caches() {
        let mut m = manager();
        // Warm the cache first.
        m.pooled_lookup_at(0, &[1, 2, 3], SimInstant::EPOCH)
            .unwrap();
        let warm_entries = m.row_cache().len();
        assert!(warm_entries > 0);

        let report = ModelUpdater::apply(&mut m, UpdateKind::Full, 99).unwrap();
        assert!(report.caches_invalidated);
        assert!(report.bytes_written > Bytes::ZERO);
        assert!(report.write_time > SimDuration::ZERO);
        assert!(report.min_update_interval_days >= 0.0);
        assert_eq!(m.row_cache().len(), 0);

        // Rows served after the update come from the new version.
        let (after, _) = m
            .pooled_lookup_at(0, &[1, 2, 3], SimInstant::EPOCH)
            .unwrap();
        assert_eq!(after.len(), 32);
    }

    #[test]
    fn incremental_update_writes_less_and_keeps_caches() {
        let mut full_m = manager();
        let full = ModelUpdater::apply(&mut full_m, UpdateKind::Full, 7).unwrap();

        let mut inc_m = manager();
        inc_m
            .pooled_lookup_at(0, &[1, 2, 3], SimInstant::EPOCH)
            .unwrap();
        let cached = inc_m.row_cache().len();
        let inc =
            ModelUpdater::apply(&mut inc_m, UpdateKind::Incremental { fraction: 0.1 }, 7).unwrap();
        assert!(inc.bytes_written < full.bytes_written / 5);
        assert!(!inc.caches_invalidated);
        assert_eq!(inc_m.row_cache().len(), cached);
    }

    #[test]
    fn invalid_fraction_is_rejected() {
        let mut m = manager();
        assert!(ModelUpdater::apply(&mut m, UpdateKind::Incremental { fraction: 0.0 }, 1).is_err());
        assert!(ModelUpdater::apply(&mut m, UpdateKind::Incremental { fraction: 1.5 }, 1).is_err());
    }
}

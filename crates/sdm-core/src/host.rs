//! Shard-partitioned, thread-parallel serving host.
//!
//! The paper reports host-level QPS by extrapolating single-stream latency
//! across concurrent serving streams (§3, Table 4). This module replaces
//! that assumption with a measurement: a [`ServingHost`] owns N
//! [`Shard`]s — each a complete serving replica with its own
//! [`crate::SdmMemoryManager`], IO engine, caches and scratch — routes each
//! incoming batch across them with a [`workload::Scheduler`] policy, runs
//! the shards on scoped worker threads, and merges per-shard scores,
//! latencies and cache counters back into query order. The reported
//! [`HostReport::wall_qps`] is real wall-clock throughput, shaped by the
//! machine's core count and by how the routing policy concentrates each
//! shard's working set, not by an idealized linear model.
//!
//! The host also owns end-to-end failure handling: a worker panic is
//! caught at the join and converted into [`SdmError::ShardFailed`] so a
//! poisoned shard fails its batch cleanly, and per-shard health tracking
//! (consecutive failures plus a makespan EWMA) routes subsequent batches
//! away from failing or straggling shards, with a periodic probe batch
//! that gives them traffic back so they can recover. The aggregate
//! [`ServingHost::health_fraction`] feeds the front end's brownout
//! admission control.

use crate::config::SdmConfig;
use crate::error::SdmError;
use crate::shard::Shard;
use crate::stats::SdmStats;
use dlrm::{LatencyBreakdown, ModelConfig};
use io_engine::IoStats;
use sdm_cache::SharedRowTier;
use sdm_metrics::{CounterSet, LatencyHistogram, SimDuration, StreamMeasurement};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use workload::{Query, RoutingPolicy, Scheduler};

/// Consecutive failed batches after which a shard is routed around.
const FAILURE_THRESHOLD: u32 = 2;
/// Successful batches a shard must have served before its makespan EWMA
/// is trusted for straggler detection.
const WARMUP_BATCHES: u64 = 3;
/// A shard whose makespan EWMA exceeds the fastest warmed healthy
/// shard's by this factor is treated as a straggler.
const STRAGGLER_FACTOR: u64 = 4;
/// Every `PROBE_INTERVAL`-th batch skips failover rerouting so unhealthy
/// shards see traffic again and get a chance to recover.
const PROBE_INTERVAL: u64 = 8;

/// Health of one shard: consecutive batch failures plus an EWMA of its
/// per-batch virtual makespan (α = 1/4, integer nanoseconds so identical
/// runs stay bit-identical).
#[derive(Debug, Clone, Copy, Default)]
struct ShardHealth {
    /// Batches that failed back-to-back; reset by any success.
    consecutive_failures: u32,
    /// EWMA of per-batch virtual makespan, in nanoseconds.
    latency_ewma: u64,
    /// Successful (non-empty) batches folded into the EWMA.
    batches: u64,
}

impl ShardHealth {
    fn record_success(&mut self, makespan: SimDuration) {
        self.consecutive_failures = 0;
        let sample = makespan.as_nanos();
        self.latency_ewma = if self.batches == 0 {
            sample
        } else {
            self.latency_ewma.saturating_mul(3).saturating_add(sample) / 4
        };
        self.batches += 1;
    }

    fn record_failure(&mut self) {
        self.consecutive_failures += 1;
    }
}

/// The straggler reference: the smallest makespan EWMA among warmed,
/// zero-failure shards. `None` until at least one shard qualifies.
fn ewma_reference(health: &[ShardHealth]) -> Option<u64> {
    health
        .iter()
        .filter(|h| h.consecutive_failures == 0 && h.batches >= WARMUP_BATCHES)
        .map(|h| h.latency_ewma)
        .min()
}

/// Whether a shard should be routed around: it keeps failing, or it has
/// warmed up as a straggler relative to the fastest healthy shard. A
/// shard can never be a straggler relative to itself, so a 1-shard host
/// only ever fails over on repeated failures (to nowhere — see
/// [`reroute_unhealthy`]).
fn is_unhealthy(h: &ShardHealth, reference: Option<u64>) -> bool {
    if h.consecutive_failures >= FAILURE_THRESHOLD {
        return true;
    }
    match reference {
        Some(r) => {
            h.batches >= WARMUP_BATCHES && h.latency_ewma > r.saturating_mul(STRAGGLER_FACTOR)
        }
        None => false,
    }
}

/// Moves every unhealthy shard's picks onto healthy shards, round-robin,
/// keeping `pos` (merge positions) in tandem with `exec` when the caller
/// uses a two-level mapping. Returns the number of shard-batches
/// rerouted. No-ops — without allocating — when every shard is healthy,
/// so the steady-state hot path stays allocation-free; also no-ops when
/// *no* shard is healthy (there is nowhere to fail over to, so the batch
/// serves in place and surfaces its errors).
fn reroute_unhealthy(
    health: &[ShardHealth],
    exec: &mut [Vec<usize>],
    mut pos: Option<&mut [Vec<usize>]>,
) -> u64 {
    let reference = ewma_reference(health);
    if !health.iter().any(|h| is_unhealthy(h, reference)) {
        return 0;
    }
    if !health.iter().any(|h| !is_unhealthy(h, reference)) {
        return 0;
    }
    let mut moved = 0;
    let mut target = 0usize;
    for u in 0..health.len() {
        if !is_unhealthy(&health[u], reference) || exec[u].is_empty() {
            continue;
        }
        moved += 1;
        for k in 0..exec[u].len() {
            while is_unhealthy(&health[target], reference) {
                target = (target + 1) % health.len();
            }
            let pick = exec[u][k];
            exec[target].push(pick);
            if let Some(p) = pos.as_deref_mut() {
                let merge_at = p[u][k];
                p[target].push(merge_at);
            }
            target = (target + 1) % health.len();
        }
        exec[u].clear();
        if let Some(p) = pos.as_deref_mut() {
            p[u].clear();
        }
    }
    moved
}

/// Folds each shard's batch outcome into its health record: shards that
/// executed a non-empty partition contribute their makespan to the EWMA
/// (and clear their failure streak).
fn record_batch_health(health: &mut [ShardHealth], shards: &[Shard], exec: &[Vec<usize>]) {
    for ((h, shard), picks) in health.iter_mut().zip(shards.iter()).zip(exec.iter()) {
        if !picks.is_empty() {
            h.record_success(shard.batch_report().makespan);
        }
    }
}

/// Renders a worker panic payload for [`SdmError::ShardFailed`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Measured outcome of one [`ServingHost::run_batch`].
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Queries executed across all shards.
    pub queries: u64,
    /// Shards (concurrent serving streams) that served the batch.
    pub shards: usize,
    /// Mean per-query virtual latency across all shards.
    pub mean_latency: SimDuration,
    /// 95th percentile per-query virtual latency.
    pub p95_latency: SimDuration,
    /// 99th percentile per-query virtual latency.
    pub p99_latency: SimDuration,
    /// Host wall-clock duration of the batch, in seconds.
    pub wall_seconds: f64,
    /// Measured host throughput: queries per wall-clock second.
    pub wall_qps: f64,
    /// Virtual makespan of the batch: the longest per-shard makespan, since
    /// shards execute their partitions in parallel. Deterministic (virtual
    /// clock), unlike the wall-clock fields.
    pub virtual_makespan: SimDuration,
    /// Batch throughput on the virtual clock: `queries / virtual_makespan`.
    /// Deterministic, so CI can gate on it — this is the number that shows
    /// the shared tier's avoided SM reads, independent of host core count.
    pub virtual_qps: f64,
}

impl HostReport {
    /// This run as a [`StreamMeasurement`], ready to be recorded into a
    /// [`sdm_metrics::MultiStreamReport`].
    pub fn measurement(&self) -> StreamMeasurement {
        StreamMeasurement {
            streams: self.shards,
            queries: self.queries,
            wall_seconds: self.wall_seconds,
            mean_latency: self.mean_latency,
            p95_latency: self.p95_latency,
            p99_latency: self.p99_latency,
        }
    }
}

/// Reusable merge buffers: per-query score ranges and latencies in original
/// query order, refilled from the shards' batch scratch after each batch.
#[derive(Debug, Default)]
struct MergeScratch {
    /// Scores of every query of the last batch (shard-major order).
    scores: Vec<f32>,
    /// `(start, len)` into `scores` for each query, in query order.
    ranges: Vec<(usize, usize)>,
    /// Latency breakdown per query, in query order.
    latencies: Vec<LatencyBreakdown>,
    /// Merged latency histogram of the last batch.
    hist: LatencyHistogram,
}

/// A multi-stream serving host: N shards behind a routing scheduler.
///
/// Shards are full serving replicas of the same model, built from an evenly
/// divided [`SdmConfig`] (see [`SdmConfig::divide_among`]): each owns a
/// slice of the host's fast-memory cache budget and device-queue slots. A
/// batch is partitioned by the configured [`RoutingPolicy`] — user-sticky
/// routing keeps each user's repeating index sequences on one shard, which
/// is what makes per-shard caches effective (paper Figure 4c) — executed on
/// one `std::thread::scope` worker per shard, and merged back into query
/// order.
///
/// A 1-shard host divides nothing, spawns nothing and executes exactly the
/// [`crate::SdmSystem::run_batch`] hot path, so its results are bit-identical
/// to the single-stream system (asserted by the `sharded_equivalence`
/// suite).
#[derive(Debug)]
pub struct ServingHost {
    shards: Vec<Shard>,
    scheduler: Scheduler,
    /// The host-shared second cache tier, `None` when disabled. Shards hold
    /// `Arc` clones; this handle serves the host-level accessors.
    shared: Option<Arc<SharedRowTier>>,
    /// Per-shard pick lists (positions into the current batch), reused
    /// across batches so steady-state partitioning allocates nothing.
    parts: Vec<Vec<usize>>,
    /// Per-shard global query positions for [`ServingHost::run_selected_batch`],
    /// reused like `parts`.
    sel_exec: Vec<Vec<usize>>,
    /// Per-shard positions within the selection (where each result merges
    /// back), parallel to `sel_exec`.
    sel_pos: Vec<Vec<usize>>,
    merged: MergeScratch,
    /// Per-shard health (failure streaks + makespan EWMA), driving
    /// failover rerouting and the front end's brownout signal.
    health: Vec<ShardHealth>,
    /// Batches attempted (drives the periodic recovery probe).
    batches_run: u64,
    /// Shard-batches rerouted away from unhealthy shards.
    failovers: u64,
}

/// Runs every shard on its partition and merges scores, latencies and the
/// latency histogram back into selection order; returns the batch's virtual
/// makespan (the slowest shard's).
///
/// `exec_parts[s]` holds the positions within `queries` shard `s` executes;
/// `merge_pos[s]` the parallel positions within the output selection
/// (`0..out_len`) each result lands at. `run_batch` passes the same buffers
/// for both (the selection is the whole batch); `run_selected_batch` passes
/// the two-level mapping from [`Scheduler::partition_picks_into`].
fn execute_and_merge(
    shards: &mut [Shard],
    queries: &[Query],
    exec_parts: &[Vec<usize>],
    merge_pos: &[Vec<usize>],
    out_len: usize,
    merged: &mut MergeScratch,
) -> Result<SimDuration, SdmError> {
    merged.scores.clear();
    merged.ranges.clear();
    merged.latencies.clear();
    merged.hist.reset();

    if shards.len() == 1 {
        // Inline, allocation-free: a single stream needs no worker threads.
        // The unwind guard mirrors the threaded join below so a panicking
        // shard fails its batch with the same typed error either way.
        let shard = &mut shards[0];
        match catch_unwind(AssertUnwindSafe(|| {
            shard.run_indexed_batch(queries, &exec_parts[0])
        })) {
            Ok(r) => r?,
            Err(payload) => {
                return Err(SdmError::ShardFailed {
                    shard: 0,
                    cause: panic_message(payload),
                })
            }
        }
    } else {
        let results: Vec<Result<(), SdmError>> = std::thread::scope(|scope| {
            let workers: Vec<_> = shards
                .iter_mut()
                .zip(exec_parts.iter())
                .map(|(shard, picks)| scope.spawn(move || shard.run_indexed_batch(queries, picks)))
                .collect();
            // A panicking worker becomes a typed per-shard error instead of
            // unwinding through the scope and tearing down the host.
            workers
                .into_iter()
                .enumerate()
                .map(|(i, w)| match w.join() {
                    Ok(r) => r,
                    Err(payload) => Err(SdmError::ShardFailed {
                        shard: i,
                        cause: panic_message(payload),
                    }),
                })
                .collect()
        });
        for r in results {
            r?;
        }
    }

    // Merge per-shard results back into selection order: shard `s` executed
    // its picks in stream order, so its k-th batch entry lands at position
    // `merge_pos[s][k]`.
    merged.ranges.resize(out_len, (0, 0));
    merged
        .latencies
        .resize(out_len, LatencyBreakdown::default());
    for (shard, positions) in shards.iter().zip(merge_pos.iter()) {
        debug_assert_eq!(shard.batch_len(), positions.len());
        for (k, &out) in positions.iter().enumerate() {
            let scores = shard.batch_scores(k);
            let start = merged.scores.len();
            merged.scores.extend_from_slice(scores);
            merged.ranges[out] = (start, scores.len());
            merged.latencies[out] = shard.batch_latency(k);
        }
        merged.hist.merge(shard.batch_hist());
    }
    Ok(shards
        .iter()
        .map(|s| s.batch_report().makespan)
        .max()
        .unwrap_or(SimDuration::ZERO))
}

/// Builds the [`HostReport`] from merged results and the measured windows.
fn finish_report(
    shards: usize,
    merged: &MergeScratch,
    wall_seconds: f64,
    virtual_makespan: SimDuration,
) -> HostReport {
    // One source of truth for the query count, so `wall_qps` always agrees
    // with `measurement().wall_qps()`.
    let executed = merged.hist.count();
    HostReport {
        queries: executed,
        shards,
        mean_latency: merged.hist.mean(),
        p95_latency: merged.hist.p95(),
        p99_latency: merged.hist.p99(),
        wall_seconds,
        wall_qps: if wall_seconds > 0.0 {
            executed as f64 / wall_seconds
        } else {
            0.0
        },
        virtual_makespan,
        virtual_qps: if virtual_makespan.is_zero() {
            0.0
        } else {
            executed as f64 / virtual_makespan.as_secs_f64()
        },
    }
}

impl ServingHost {
    /// Builds a host of `shards` serving replicas of `model`, each from an
    /// equal slice of `config`, routed by `policy`.
    ///
    /// All shards are seeded identically, so they materialise bit-identical
    /// table and MLP weights: which shard serves a query never changes its
    /// scores.
    ///
    /// # Errors
    ///
    /// Propagates configuration, layout and device errors — including a
    /// per-shard budget slice that divides down to zero.
    pub fn build(
        model: &ModelConfig,
        config: &SdmConfig,
        seed: u64,
        shards: usize,
        policy: RoutingPolicy,
    ) -> Result<Self, SdmError> {
        let count = shards.max(1);
        let mut built = Vec::with_capacity(count);
        for i in 0..count {
            // Lossless per-shard slices: shard `i` receives share `i` of
            // every divided resource, so the shards' budgets sum exactly to
            // the host configuration (remainders go to the first shards).
            built.push(Shard::build(
                model,
                config.divide_among_indexed(count, i),
                seed,
            )?);
        }
        // The shared tier is carved out once at the host level — its budget
        // is deliberately *not* divided — and every shard gets a handle,
        // tagged with its index so cross-shard hits are distinguishable.
        let shared = if config.cache.shared_tier_budget.is_zero() {
            None
        } else {
            let tier = Arc::new(SharedRowTier::with_admission(
                config.cache.shared_tier_budget,
                config.cache.shared_tier_stripes,
                config.cache.shared_tier_admission,
            ));
            for (i, shard) in built.iter_mut().enumerate() {
                shard.attach_shared_tier(Arc::clone(&tier), i as u32);
            }
            Some(tier)
        };
        Ok(ServingHost {
            shards: built,
            scheduler: Scheduler::new(count, policy),
            shared,
            parts: Vec::new(),
            sel_exec: Vec::new(),
            sel_pos: Vec::new(),
            merged: MergeScratch::default(),
            health: vec![ShardHealth::default(); count],
            batches_run: 0,
            failovers: 0,
        })
    }

    /// The host-shared cache tier, `None` when the configuration disables
    /// it (`shared_tier_budget == 0`).
    pub fn shared_tier(&self) -> Option<&SharedRowTier> {
        self.shared.as_deref()
    }

    /// Number of shards (concurrent serving streams).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing policy partitioning batches across shards.
    pub fn policy(&self) -> RoutingPolicy {
        self.scheduler.policy()
    }

    /// Read access to shard `i` (its manager, caches and statistics).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// Mutable access to shard `i` (fault-plan injection on its devices,
    /// compute-mode switches, cache invalidation).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn shard_mut(&mut self, i: usize) -> &mut Shard {
        &mut self.shards[i]
    }

    /// Fraction of shards currently considered healthy (1.0 = all). The
    /// front end scales its admission threshold by this to brown out when
    /// backend capacity degrades.
    pub fn health_fraction(&self) -> f64 {
        let reference = ewma_reference(&self.health);
        let healthy = self
            .health
            .iter()
            .filter(|h| !is_unhealthy(h, reference))
            .count();
        healthy as f64 / self.health.len().max(1) as f64
    }

    /// Shard-batches rerouted away from unhealthy shards so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Aggregated serving statistics across all shards (counters add,
    /// histograms merge), including every shard engine's resilience
    /// counters and the host's failover count.
    pub fn stats(&self) -> SdmStats {
        let mut total = SdmStats::new();
        for shard in &self.shards {
            total.merge(shard.manager().stats());
            let r = shard.manager().io_engine().stats().resilience;
            total.io_retries += r.retries;
            total.io_transient_errors += r.transient_errors;
            total.io_checksum_failures += r.checksum_failures;
            total.io_deadline_timeouts += r.deadline_timeouts;
            total.io_hedges += r.hedges;
            total.io_hedge_wins += r.hedge_wins;
        }
        total.shard_failovers += self.failovers;
        total
    }

    /// Host-level queue-occupancy accounting: every shard engine's
    /// per-submission depth samples folded into one [`IoStats`]. Relaxed
    /// batch mode exists to push this distribution deeper (paper §3.2).
    pub fn queue_depth(&self) -> IoStats {
        let mut total = IoStats::default();
        for shard in &self.shards {
            total.merge(&shard.manager().io_engine().stats().queue_depth);
        }
        total
    }

    /// Host-level device counters: every device's [`CounterSet`] (reads,
    /// writes, bus bytes) across every shard, folded into one set.
    pub fn device_counters(&self) -> CounterSet {
        let total = CounterSet::new();
        for shard in &self.shards {
            for (_, device) in shard.manager().io_engine().array().iter() {
                total.merge_from(device.counters());
            }
        }
        total
    }

    /// Executes a batch: partitions it across the shards, runs every shard
    /// on its own worker thread, merges the results back into query order
    /// and reports **measured** wall-clock throughput.
    ///
    /// Scores are readable per query via [`ServingHost::scores`] — query
    /// `i` of `queries` produces the same scores no matter how many shards
    /// the host has or which policy routed it (asserted by the
    /// `sharded_equivalence` suite). With one shard the batch runs inline
    /// on the calling thread, bit-identical to
    /// [`crate::SdmSystem::run_batch`].
    ///
    /// # Errors
    ///
    /// Propagates the first shard error; shard threads always join before
    /// this returns. After an error the result accessors
    /// ([`ServingHost::len`], [`ServingHost::scores`], …) report an empty
    /// batch — never a previous batch's stale results.
    pub fn run_batch(&mut self, queries: &[Query]) -> Result<HostReport, SdmError> {
        let Self {
            shards,
            scheduler,
            parts,
            merged,
            health,
            batches_run,
            failovers,
            ..
        } = self;
        // The measured window covers the whole host-side batch — the
        // serial partition, the parallel shard execution and the serial
        // merge — so `wall_qps` is delivered throughput, not just the
        // threaded middle. This is the host's *measurement* of real thread
        // scaling (PR 3's whole point) — the only legitimate wall-clock
        // read in the virtual-clock stack; serving decisions never see it.
        // sdm-analyze: allow(no-wall-clock)
        let wall = Instant::now();
        scheduler.partition_indices_into(queries, parts);
        *batches_run += 1;
        // Failover: move picks off unhealthy shards, except on the
        // periodic probe batch that lets them demonstrate recovery.
        if *batches_run % PROBE_INTERVAL != 0 {
            *failovers += reroute_unhealthy(health, parts, None);
        }
        // Over the whole batch, pick positions equal query positions, so
        // `parts` serves as both the execution and the merge mapping
        // (rerouting moves entries within `parts`, preserving that).
        let virtual_makespan =
            match execute_and_merge(shards, queries, parts, parts, queries.len(), merged) {
                Ok(m) => m,
                Err(e) => {
                    if let SdmError::ShardFailed { shard, .. } = &e {
                        if let Some(h) = health.get_mut(*shard) {
                            h.record_failure();
                        }
                    }
                    return Err(e);
                }
            };
        record_batch_health(health, shards, parts);
        let wall_seconds = wall.elapsed().as_secs_f64();
        Ok(finish_report(
            shards.len(),
            merged,
            wall_seconds,
            virtual_makespan,
        ))
    }

    /// Executes a *selection* of a query stream: `picks` holds positions
    /// within `queries`. Otherwise identical to
    /// [`ServingHost::run_batch`] — partitioned by the same scheduler,
    /// merged back into selection order (result `i` belongs to query
    /// `queries[picks[i]]`), measured the same way.
    ///
    /// This is the dispatch path for an open-loop front end: a dynamic
    /// batcher admits a subset of the arrival stream and serves it without
    /// copying `Query` values, so the warmed admission→batch→serve loop
    /// performs no per-query allocation.
    ///
    /// # Errors
    ///
    /// Propagates the first shard error, exactly like
    /// [`ServingHost::run_batch`].
    pub fn run_selected_batch(
        &mut self,
        queries: &[Query],
        picks: &[usize],
    ) -> Result<HostReport, SdmError> {
        let Self {
            shards,
            scheduler,
            sel_exec,
            sel_pos,
            merged,
            health,
            batches_run,
            failovers,
            ..
        } = self;
        // Wall-clock QPS measurement, as in `run_batch` above — never an
        // input to serving decisions.
        // sdm-analyze: allow(no-wall-clock)
        let wall = Instant::now();
        scheduler.partition_picks_into(queries, picks, sel_exec, sel_pos);
        *batches_run += 1;
        // Same failover policy as `run_batch`, with the merge positions
        // moved in tandem with the execution picks.
        if *batches_run % PROBE_INTERVAL != 0 {
            *failovers += reroute_unhealthy(health, sel_exec, Some(sel_pos));
        }
        let virtual_makespan =
            match execute_and_merge(shards, queries, sel_exec, sel_pos, picks.len(), merged) {
                Ok(m) => m,
                Err(e) => {
                    if let SdmError::ShardFailed { shard, .. } = &e {
                        if let Some(h) = health.get_mut(*shard) {
                            h.record_failure();
                        }
                    }
                    return Err(e);
                }
            };
        record_batch_health(health, shards, sel_exec);
        let wall_seconds = wall.elapsed().as_secs_f64();
        Ok(finish_report(
            shards.len(),
            merged,
            wall_seconds,
            virtual_makespan,
        ))
    }

    /// Number of queries in the last [`ServingHost::run_batch`].
    pub fn len(&self) -> usize {
        self.merged.ranges.len()
    }

    /// Whether the host has executed no batch (or an empty one).
    pub fn is_empty(&self) -> bool {
        self.merged.ranges.is_empty()
    }

    /// Scores of query `i` of the last batch, in original query order.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the last batch.
    pub fn scores(&self, i: usize) -> &[f32] {
        let (start, len) = self.merged.ranges[i];
        &self.merged.scores[start..start + len]
    }

    /// Latency breakdown of query `i` of the last batch, in original query
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the last batch.
    pub fn latency(&self, i: usize) -> LatencyBreakdown {
        self.merged.latencies[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::model_zoo;
    use workload::{QueryGenerator, WorkloadConfig};

    fn workload(model: &ModelConfig, count: usize, seed: u64) -> Vec<Query> {
        let cfg = WorkloadConfig {
            item_batch: model.item_batch,
            user_population: 64,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&model.tables, cfg, seed).unwrap();
        gen.generate(count)
    }

    #[test]
    fn host_serves_batches_across_shards() {
        let model = model_zoo::tiny(2, 1, 400);
        let queries = workload(&model, 24, 9);
        let mut host = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            9,
            4,
            RoutingPolicy::UserSticky,
        )
        .unwrap();
        assert_eq!(host.shards(), 4);
        assert_eq!(host.policy(), RoutingPolicy::UserSticky);
        assert!(host.is_empty());
        let report = host.run_batch(&queries).unwrap();
        assert_eq!(report.queries, 24);
        assert_eq!(report.shards, 4);
        assert_eq!(host.len(), 24);
        assert!(report.mean_latency > SimDuration::ZERO);
        assert!(report.wall_seconds > 0.0);
        assert!(report.wall_qps > 0.0);
        let m = report.measurement();
        assert_eq!(m.streams, 4);
        assert!((m.wall_qps() - report.wall_qps).abs() < 1e-9);
        // Every query produced scores of the item-batch width.
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(host.scores(i).len(), q.item_batch as usize);
            assert!(host.latency(i).total > SimDuration::ZERO);
        }
        // All shards saw work under sticky routing with many users.
        let stats = host.stats();
        assert!(stats.pooled_ops > 0);
        // Host-level device counters aggregate across shards: model load
        // writes plus serving-time SM reads all land in one set.
        let devices = host.device_counters();
        assert!(devices.value("writes") > 0);
        assert!(devices.value("reads") > 0);
    }

    #[test]
    fn single_shard_host_matches_sdm_system_bit_for_bit() {
        let model = model_zoo::tiny(2, 1, 300);
        let queries = workload(&model, 16, 10);
        let mut host = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            10,
            1,
            RoutingPolicy::RoundRobin,
        )
        .unwrap();
        let mut system = crate::SdmSystem::build(&model, SdmConfig::for_tests(), 10).unwrap();
        host.run_batch(&queries).unwrap();
        let report = system.run_batch(&queries).unwrap();
        assert_eq!(host.len(), system.batch_len());
        for i in 0..host.len() {
            assert_eq!(host.scores(i), system.batch_scores(i));
            assert_eq!(host.latency(i), system.batch_latency(i));
        }
        let a = host.stats();
        let b = system.manager().stats();
        assert_eq!(a.row_cache_hits, b.row_cache_hits);
        assert_eq!(a.sm_reads, b.sm_reads);
        assert_eq!(report.queries, queries.len() as u64);
    }

    #[test]
    fn zero_shards_clamp_to_one() {
        let model = model_zoo::tiny(1, 0, 200);
        let host = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            11,
            0,
            RoutingPolicy::RoundRobin,
        )
        .unwrap();
        assert_eq!(host.shards(), 1);
    }

    #[test]
    fn selected_batch_on_identity_picks_matches_run_batch() {
        let model = model_zoo::tiny(2, 1, 300);
        let queries = workload(&model, 20, 14);
        let identity: Vec<usize> = (0..queries.len()).collect();
        for shards in [1, 3] {
            let mut selected = ServingHost::build(
                &model,
                &SdmConfig::for_tests(),
                14,
                shards,
                RoutingPolicy::UserSticky,
            )
            .unwrap();
            let mut full = ServingHost::build(
                &model,
                &SdmConfig::for_tests(),
                14,
                shards,
                RoutingPolicy::UserSticky,
            )
            .unwrap();
            let a = selected.run_selected_batch(&queries, &identity).unwrap();
            let b = full.run_batch(&queries).unwrap();
            assert_eq!(a.queries, b.queries);
            assert_eq!(a.virtual_makespan, b.virtual_makespan);
            assert_eq!(selected.len(), full.len());
            for i in 0..full.len() {
                assert_eq!(selected.scores(i), full.scores(i));
                assert_eq!(selected.latency(i), full.latency(i));
            }
        }
    }

    #[test]
    fn selected_batch_serves_subsets_in_selection_order() {
        let model = model_zoo::tiny(2, 1, 300);
        let queries = workload(&model, 30, 15);
        let picks: Vec<usize> = (0..queries.len()).step_by(3).collect();
        let mut host = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            15,
            2,
            RoutingPolicy::UserSticky,
        )
        .unwrap();
        // Reference: a fresh host serving only the picked queries as a
        // contiguous batch produces the same scores (same seed, cold start).
        let subset: Vec<Query> = picks.iter().map(|&i| queries[i].clone()).collect();
        let mut reference = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            15,
            2,
            RoutingPolicy::UserSticky,
        )
        .unwrap();
        let a = host.run_selected_batch(&queries, &picks).unwrap();
        let b = reference.run_batch(&subset).unwrap();
        assert_eq!(a.queries, picks.len() as u64);
        assert_eq!(host.len(), picks.len());
        assert_eq!(a.virtual_makespan, b.virtual_makespan);
        for i in 0..picks.len() {
            assert_eq!(host.scores(i), reference.scores(i));
        }
    }

    #[test]
    fn poisoned_shard_fails_the_batch_cleanly() {
        let model = model_zoo::tiny(2, 1, 300);
        let queries = workload(&model, 12, 21);
        let mut host = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            21,
            3,
            RoutingPolicy::RoundRobin,
        )
        .unwrap();
        host.shard_mut(1).poison();
        let err = host.run_batch(&queries).unwrap_err();
        match err {
            SdmError::ShardFailed { shard, cause } => {
                assert_eq!(shard, 1);
                assert!(cause.contains("poisoned"), "cause: {cause}");
            }
            other => panic!("expected ShardFailed, got {other}"),
        }
        // The failed batch reports empty results, never stale ones.
        assert!(host.is_empty());
        // The host survives: the next batch (poison cleared) serves fine.
        let report = host.run_batch(&queries).unwrap();
        assert_eq!(report.queries, queries.len() as u64);
    }

    #[test]
    fn single_shard_panic_is_caught_inline() {
        let model = model_zoo::tiny(1, 1, 200);
        let queries = workload(&model, 6, 22);
        let mut host = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            22,
            1,
            RoutingPolicy::RoundRobin,
        )
        .unwrap();
        host.shard_mut(0).poison();
        let err = host.run_batch(&queries).unwrap_err();
        assert!(matches!(err, SdmError::ShardFailed { shard: 0, .. }));
        assert!(host.run_batch(&queries).is_ok());
    }

    #[test]
    fn repeated_failures_reroute_batches_to_healthy_shards() {
        let model = model_zoo::tiny(2, 1, 300);
        let queries = workload(&model, 18, 23);
        let mut host = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            23,
            3,
            RoutingPolicy::RoundRobin,
        )
        .unwrap();
        assert_eq!(host.health_fraction(), 1.0);
        // Two consecutive worker panics mark shard 2 unhealthy.
        for _ in 0..2 {
            host.shard_mut(2).poison();
            assert!(host.run_batch(&queries).is_err());
        }
        assert!(host.health_fraction() < 1.0);
        // The next batch routes around shard 2: the batch succeeds in
        // full, shard 2 executes nothing, and the reroute is counted.
        let report = host.run_batch(&queries).unwrap();
        assert_eq!(report.queries, queries.len() as u64);
        assert_eq!(host.shard(2).batch_len(), 0);
        assert!(host.failovers() >= 1);
        assert_eq!(host.stats().shard_failovers, host.failovers());
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(host.scores(i).len(), q.item_batch as usize);
        }
        // Keep serving until the periodic probe batch gives shard 2
        // traffic again; it succeeds, so the shard recovers and
        // subsequent batches stop rerouting.
        for _ in 0..(PROBE_INTERVAL as usize) {
            host.run_batch(&queries).unwrap();
        }
        assert_eq!(host.health_fraction(), 1.0);
        let settled = host.failovers();
        host.run_batch(&queries).unwrap();
        assert_eq!(host.failovers(), settled);
        assert!(host.shard(2).batch_len() > 0);
    }

    #[test]
    fn straggler_detection_uses_relative_ewma() {
        let mut health = vec![ShardHealth::default(); 3];
        // Not enough history: nothing is unhealthy however slow.
        health[2].record_success(SimDuration::from_millis(500));
        assert!(!is_unhealthy(&health[2], ewma_reference(&health)));
        // Warm all shards: two fast, one 500x slower.
        for _ in 0..4 {
            health[0].record_success(SimDuration::from_micros(1000));
            health[1].record_success(SimDuration::from_micros(1100));
            health[2].record_success(SimDuration::from_millis(500));
        }
        let reference = ewma_reference(&health);
        assert!(!is_unhealthy(&health[0], reference));
        assert!(!is_unhealthy(&health[1], reference));
        assert!(is_unhealthy(&health[2], reference));
        // Failure streaks trip the other arm of the check.
        let mut failing = ShardHealth::default();
        failing.record_failure();
        assert!(!is_unhealthy(&failing, reference));
        failing.record_failure();
        assert!(is_unhealthy(&failing, reference));
        // One success clears the streak.
        failing.record_success(SimDuration::from_micros(1000));
        assert!(!is_unhealthy(&failing, reference));
    }

    #[test]
    fn reroute_moves_exec_and_merge_positions_in_tandem() {
        let mut health = vec![ShardHealth::default(); 3];
        health[1].record_failure();
        health[1].record_failure();
        let mut exec = vec![vec![0, 3], vec![1, 4], vec![2, 5]];
        let mut pos = vec![vec![10, 13], vec![11, 14], vec![12, 15]];
        let moved = reroute_unhealthy(&health, &mut exec, Some(&mut pos));
        assert_eq!(moved, 1);
        assert!(exec[1].is_empty());
        assert!(pos[1].is_empty());
        // Every (pick, merge) pair survives, still paired at the same
        // index of whichever shard received it.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for s in 0..3 {
            assert_eq!(exec[s].len(), pos[s].len());
            pairs.extend(exec[s].iter().copied().zip(pos[s].iter().copied()));
        }
        pairs.sort_unstable();
        assert_eq!(
            pairs,
            vec![(0, 10), (1, 11), (2, 12), (3, 13), (4, 14), (5, 15)]
        );
        // All shards unhealthy: nowhere to go, nothing moves.
        health[0] = health[1];
        health[2] = health[1];
        let before = exec.clone();
        assert_eq!(reroute_unhealthy(&health, &mut exec, Some(&mut pos)), 0);
        assert_eq!(exec, before);
    }

    #[test]
    fn repeated_batches_reuse_merge_buffers() {
        let model = model_zoo::tiny(1, 1, 200);
        let queries = workload(&model, 12, 12);
        let mut host = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            12,
            2,
            RoutingPolicy::UserSticky,
        )
        .unwrap();
        let first = host.run_batch(&queries).unwrap();
        let mut reference: Vec<Vec<f32>> = Vec::new();
        for i in 0..host.len() {
            reference.push(host.scores(i).to_vec());
        }
        let second = host.run_batch(&queries).unwrap();
        assert_eq!(first.queries, second.queries);
        // Warm caches mean the second pass is not slower in virtual time.
        assert!(second.mean_latency <= first.mean_latency);
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(host.scores(i), want.as_slice());
        }
    }
}

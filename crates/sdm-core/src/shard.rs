//! One serving shard: the complete per-stream serving state of a host.
//!
//! A shard owns everything one concurrent serving stream needs — an
//! inference engine, an SDM memory manager (with its own IO engine and
//! caches), a virtual clock and the reusable scratch that makes the hot
//! path allocation-free. Shards share nothing, so they are `Send` by
//! construction (asserted by the `send_assertions` suite) and a
//! [`crate::ServingHost`] can run one per worker thread. A single-shard
//! deployment is exactly the [`crate::SdmSystem`] of previous revisions:
//! `SdmSystem` is now a thin wrapper over one `Shard`.

use crate::config::{BatchMode, SdmConfig};
use crate::error::SdmError;
use crate::loader::ModelLoader;
use crate::manager::SdmMemoryManager;
use crate::system::QpsReport;
use dlrm::{
    ComputeModel, InferenceEngine, LatencyBreakdown, ModelConfig, PendingQuery, PoolingBuffers,
    QueryResult,
};
use io_engine::IoEngine;
use scm_device::DeviceArray;
use sdm_cache::SlotPool;
use sdm_metrics::{LatencyHistogram, SimInstant};
use std::collections::VecDeque;
use workload::Query;

/// Reusable storage for the results of the last batch a shard executed:
/// scores live back to back in one flat arena, so executing a batch
/// allocates nothing once the capacity has warmed up.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    /// Scores of every query in the batch, concatenated.
    pub(crate) scores: Vec<f32>,
    /// `(start, len)` of each query's scores within `scores`.
    pub(crate) ranges: Vec<(usize, usize)>,
    /// Latency breakdown of each query.
    pub(crate) latencies: Vec<LatencyBreakdown>,
    /// Latency histogram, reset per batch (buckets reused).
    pub(crate) hist: LatencyHistogram,
    /// The per-query result the engine writes into, recycled across queries.
    pub(crate) result: QueryResult,
    /// Shard clock when the batch started (for the batch makespan).
    pub(crate) started_at: SimInstant,
}

impl BatchScratch {
    fn reset(&mut self, started_at: SimInstant) {
        self.scores.clear();
        self.ranges.clear();
        self.latencies.clear();
        self.hist.reset();
        self.started_at = started_at;
    }

    /// Appends the recycled per-query result to the batch records.
    fn push_result(&mut self) {
        let start = self.scores.len();
        self.scores.extend_from_slice(&self.result.scores);
        self.ranges.push((start, self.result.scores.len()));
        self.latencies.push(self.result.latency);
        self.hist.record(self.result.latency.total);
    }
}

/// One in-flight slot of the relaxed pipeline: the pooled-vector scratch a
/// query was begun with and its pending tickets.
#[derive(Debug, Default)]
struct RelaxedSlot {
    buffers: PoolingBuffers,
    pending: PendingQuery,
}

/// Reusable state of the relaxed (overlapped) batch executor: a
/// [`SlotPool`] of per-query scratch plus the FIFO of begun queries.
#[derive(Debug, Default)]
struct RelaxedScratch {
    /// Slot pool; grows to the in-flight window and is then recycled.
    slots: SlotPool<RelaxedSlot>,
    /// Begun-but-unfinished queries: `(slot id, batch position)` in begin
    /// order (queries finish strictly FIFO).
    inflight: VecDeque<(usize, usize)>,
}

impl RelaxedScratch {
    fn reset(&mut self) {
        self.inflight.clear();
        self.slots.reset();
    }
}

/// A self-contained serving shard: devices, IO engine, SDM manager and the
/// DLRM inference engine, plus per-stream execution scratch.
#[derive(Debug)]
pub struct Shard {
    engine: InferenceEngine,
    manager: SdmMemoryManager,
    clock: SimInstant,
    /// Persistent execution scratch shared by every query this shard runs.
    buffers: PoolingBuffers,
    pub(crate) batch: BatchScratch,
    /// Per-slot scratch of the relaxed (overlapped) batch executor.
    relaxed: RelaxedScratch,
    /// Test hook: when set, the next batch panics inside the worker. Lets
    /// the failure-handling tests exercise the host's panic-to-error
    /// conversion without a real crash site.
    poisoned: bool,
}

impl Shard {
    /// Builds the full per-stream stack for a (scaled) model.
    ///
    /// # Errors
    ///
    /// Propagates configuration, layout and device errors.
    pub fn build(model: &ModelConfig, config: SdmConfig, seed: u64) -> Result<Self, SdmError> {
        config.validate()?;
        let array = DeviceArray::homogeneous(
            config.technology.clone(),
            config.device_capacity,
            config.device_count,
        )?;
        // Build-time clones (config/model), once per shard — not hot.
        let mut io = IoEngine::new(array, config.io.clone());
        let loaded = ModelLoader::load(model, &config, &mut io)?;
        let manager = SdmMemoryManager::new(config, loaded, io);
        let engine = InferenceEngine::new(model.clone(), ComputeModel::default(), seed)?;
        Ok(Shard {
            engine,
            manager,
            clock: SimInstant::EPOCH,
            buffers: PoolingBuffers::new(),
            batch: BatchScratch::default(),
            relaxed: RelaxedScratch::default(),
            poisoned: false,
        })
    }

    /// Makes the next batch on this shard panic inside its worker thread.
    ///
    /// Failure-handling test hook: the host must convert the panic into
    /// [`SdmError::ShardFailed`] and keep the other shards serving.
    #[doc(hidden)]
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Replaces the inference engine with one using an explicit compute
    /// model (e.g. accelerator hosts).
    ///
    /// # Errors
    ///
    /// Propagates model validation errors.
    pub fn set_compute(&mut self, compute: ComputeModel, seed: u64) -> Result<(), SdmError> {
        self.engine = InferenceEngine::new(self.engine.model().clone(), compute, seed)?;
        Ok(())
    }

    /// The DLRM inference engine.
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }

    /// Mutable access to the inference engine (to switch execution mode).
    pub fn engine_mut(&mut self) -> &mut InferenceEngine {
        &mut self.engine
    }

    /// Attaches the host-shared cache tier to this shard's manager,
    /// tagging its promotions with `source` (the shard's index in the
    /// host). See [`crate::SdmMemoryManager::attach_shared_tier`].
    pub fn attach_shared_tier(
        &mut self,
        tier: std::sync::Arc<sdm_cache::SharedRowTier>,
        source: u32,
    ) {
        self.manager.attach_shared_tier(tier, source);
    }

    /// The SDM memory manager.
    pub fn manager(&self) -> &SdmMemoryManager {
        &self.manager
    }

    /// Mutable access to the memory manager (cache invalidation, updates).
    pub fn manager_mut(&mut self) -> &mut SdmMemoryManager {
        &mut self.manager
    }

    /// Current virtual time of this shard's serving loop.
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// Executes one query into a caller-provided (reusable) result,
    /// advancing the shard's virtual clock by its latency.
    ///
    /// This is the steady-state serving path: with warm shard scratch, a
    /// warmed cache and a recycled `result`, it performs **zero heap
    /// allocations per query** (asserted by the `zero_alloc` test suite).
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    pub fn run_query_into(
        &mut self,
        query: &Query,
        result: &mut QueryResult,
    ) -> Result<(), SdmError> {
        self.engine.execute_into(
            query,
            &mut self.manager,
            self.clock,
            &mut self.buffers,
            result,
        )?;
        self.clock += result.latency.total;
        Ok(())
    }

    /// Executes one query, advancing the virtual clock by its latency.
    ///
    /// Stateless convenience form: scratch is created per call and the
    /// returned `QueryResult` owns its scores, so each call pays the
    /// allocation cost the reusable paths ([`Shard::run_query_into`] and
    /// [`Shard::run_batch`]) amortise away. Results are identical either
    /// way — scratch never affects values.
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    pub fn run_query(&mut self, query: &Query) -> Result<QueryResult, SdmError> {
        let result = self.engine.execute(query, &mut self.manager, self.clock)?;
        self.clock += result.latency.total;
        Ok(result)
    }

    /// The batch execution mode this shard was configured with.
    pub fn batch_mode(&self) -> BatchMode {
        self.manager.config().batch_mode
    }

    /// The exact batch core: executes every yielded query through the
    /// zero-allocation hot path, recording scores, latencies and the
    /// latency histogram into the batch scratch.
    fn run_batch_iter<'a>(
        &mut self,
        queries: impl Iterator<Item = &'a Query>,
    ) -> Result<(), SdmError> {
        self.batch.reset(self.clock);
        for q in queries {
            self.engine.execute_into(
                q,
                &mut self.manager,
                self.clock,
                &mut self.buffers,
                &mut self.batch.result,
            )?;
            self.clock += self.batch.result.latency.total;
            self.batch.push_result();
        }
        Ok(())
    }

    /// The relaxed batch core (paper §3.2): pipelines the batch through the
    /// IO engine with up to `window` queries in flight.
    ///
    /// Queries are *begun* in order — bottom MLP, cache probes, and one ring
    /// submission per operator's misses — at a submit clock that advances
    /// only by each query's issue cost, so the misses of up to `window`
    /// queries share the device queues; each query is *finished* (IO wait
    /// resolved, interaction + top MLP) when the window is full or the batch
    /// ends. The shard clock advances to the latest finish instant, so the
    /// batch makespan reflects the overlap instead of a serial sum.
    ///
    /// With `window == 1` every begin instant equals the exact path's query
    /// start, making results, counters and clocks bit-identical to
    /// [`BatchMode::Exact`] (asserted by the `batch_overlap` suite).
    fn run_batch_relaxed(
        &mut self,
        queries: &[Query],
        picks: Option<&[usize]>,
        window: usize,
    ) -> Result<(), SdmError> {
        let window = window.max(1);
        let n = picks.map_or(queries.len(), <[usize]>::len);
        let query_at = |k: usize| picks.map_or(&queries[k], |p| &queries[p[k]]);
        self.batch.reset(self.clock);
        self.manager.reset_pending();
        self.relaxed.reset();

        let mut submit = self.clock;
        let mut latest = self.clock;
        for k in 0..n {
            if self.relaxed.inflight.len() == window {
                let finished = self.finish_front(&query_at)?;
                latest = latest.max(finished);
                // The vacated pipeline stage gates the next begin.
                submit = submit.max(finished);
            }
            let slot = self.relaxed.slots.acquire();
            let s = self.relaxed.slots.slot_mut(slot);
            self.engine.begin_query_into(
                query_at(k),
                &mut self.manager,
                submit,
                &mut s.buffers,
                &mut s.pending,
            )?;
            submit += s.pending.issue_cost();
            self.relaxed.inflight.push_back((slot, k));
        }
        while !self.relaxed.inflight.is_empty() {
            let finished = self.finish_front(&query_at)?;
            latest = latest.max(finished);
        }
        self.clock = self.clock.max(latest);
        Ok(())
    }

    /// Finishes the oldest in-flight query of the relaxed pipeline and
    /// returns its virtual finish instant.
    fn finish_front<'a>(
        &mut self,
        query_at: &impl Fn(usize) -> &'a Query,
    ) -> Result<SimInstant, SdmError> {
        let Some((slot, k)) = self.relaxed.inflight.pop_front() else {
            // Callers drain the pipeline under `!inflight.is_empty()`
            // guards; finishing an empty pipeline is a scheduling bug.
            return Err(SdmError::Internal {
                invariant: "finish_front called with queries in flight",
            });
        };
        let s = self.relaxed.slots.slot_mut(slot);
        self.engine.finish_query_into(
            query_at(k),
            &mut self.manager,
            &mut s.buffers,
            &mut s.pending,
            &mut self.batch.result,
        )?;
        let finished = s.pending.begun_at() + self.batch.result.latency.total;
        self.relaxed.slots.release(slot);
        self.batch.push_result();
        Ok(finished)
    }

    /// Summarises the last batch from its histogram and makespan.
    pub(crate) fn batch_report(&self) -> QpsReport {
        let mean = self.batch.hist.mean();
        let makespan = self.clock.duration_since(self.batch.started_at);
        QpsReport {
            queries: self.batch.hist.count(),
            mean_latency: mean,
            p95_latency: self.batch.hist.p95(),
            p99_latency: self.batch.hist.p99(),
            qps_single_stream: if mean.is_zero() {
                0.0
            } else {
                1.0 / mean.as_secs_f64()
            },
            makespan,
            batch_qps: if makespan.is_zero() {
                0.0
            } else {
                self.batch.hist.count() as f64 / makespan.as_secs_f64()
            },
        }
    }

    /// Executes a batch of queries through the zero-allocation hot path and
    /// summarises latency and throughput, honouring the configured
    /// [`BatchMode`].
    ///
    /// In [`BatchMode::Exact`] (the default) virtual-time semantics are
    /// identical to looping [`Shard::run_query`] — each query still
    /// observes the clock its predecessors advanced, so results, cache
    /// counters and IO totals are bit-for-bit the same (asserted by the
    /// `batch_equivalence` suite). What batching buys is host-side
    /// efficiency: one set of scratch buffers serves the whole batch,
    /// per-query results land in a flat reused arena (readable via
    /// [`Shard::batch_scores`]) instead of a fresh `QueryResult` per query,
    /// and each operator's SM misses go to the device as one ring
    /// submission whose completions are pooled as they drain.
    ///
    /// In [`BatchMode::Relaxed`] the batch is additionally pipelined
    /// through the IO engine — up to `max_inflight_queries` queries issue
    /// their SM misses before the oldest completes, which deepens the
    /// device queues and shrinks the batch makespan
    /// ([`QpsReport::batch_qps`]) at the cost of per-query tail latency
    /// (the `batch_overlap` suite pins down the equivalence and
    /// conservation contracts).
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors; the batch stops at the first
    /// failing query.
    pub fn run_batch(&mut self, queries: &[Query]) -> Result<QpsReport, SdmError> {
        match self.batch_mode() {
            BatchMode::Exact => self.run_batch_iter(queries.iter())?,
            BatchMode::Relaxed {
                max_inflight_queries,
            } => self.run_batch_relaxed(queries, None, max_inflight_queries)?,
        }
        Ok(self.batch_report())
    }

    /// Executes the subset of `queries` selected by `picks` (positions into
    /// `queries`, in stream order) through the batched hot path.
    ///
    /// This is the sharded serving entry point: a
    /// [`workload::Scheduler`] partitions a host batch into per-shard
    /// index lists, each shard runs its picks, and the host merges results
    /// back into query order via the pick positions — query `picks[k]`'s
    /// scores are [`Shard::batch_scores`]`(k)`.
    ///
    /// # Errors
    ///
    /// Propagates engine and memory errors.
    ///
    /// # Panics
    ///
    /// Panics when a pick is out of range for `queries`.
    pub fn run_indexed_batch(
        &mut self,
        queries: &[Query],
        picks: &[usize],
    ) -> Result<(), SdmError> {
        if self.poisoned {
            self.poisoned = false;
            panic!("poisoned shard (test hook)");
        }
        match self.batch_mode() {
            BatchMode::Exact => self.run_batch_iter(picks.iter().map(|&i| &queries[i])),
            BatchMode::Relaxed {
                max_inflight_queries,
            } => self.run_batch_relaxed(queries, Some(picks), max_inflight_queries),
        }
    }

    /// Number of queries in the last batch.
    pub fn batch_len(&self) -> usize {
        self.batch.ranges.len()
    }

    /// Scores of query `i` of the last batch.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the last batch.
    pub fn batch_scores(&self, i: usize) -> &[f32] {
        let (start, len) = self.batch.ranges[i];
        &self.batch.scores[start..start + len]
    }

    /// Latency breakdown of query `i` of the last batch.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the last batch.
    pub fn batch_latency(&self, i: usize) -> LatencyBreakdown {
        self.batch.latencies[i]
    }

    /// Latency histogram of the last batch.
    pub fn batch_hist(&self) -> &LatencyHistogram {
        &self.batch.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::model_zoo;
    use workload::{QueryGenerator, WorkloadConfig};

    fn workload(model: &ModelConfig, count: usize, seed: u64) -> Vec<Query> {
        let cfg = WorkloadConfig {
            item_batch: model.item_batch,
            user_population: 150,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&model.tables, cfg, seed).unwrap();
        gen.generate(count)
    }

    #[test]
    fn indexed_batch_matches_contiguous_batch_on_identity_picks() {
        let model = model_zoo::tiny(2, 1, 400);
        let queries = workload(&model, 16, 5);
        let picks: Vec<usize> = (0..queries.len()).collect();
        let mut direct = Shard::build(&model, SdmConfig::for_tests(), 5).unwrap();
        let mut indexed = Shard::build(&model, SdmConfig::for_tests(), 5).unwrap();
        direct.run_batch(&queries).unwrap();
        indexed.run_indexed_batch(&queries, &picks).unwrap();
        assert_eq!(direct.batch_len(), indexed.batch_len());
        for i in 0..direct.batch_len() {
            assert_eq!(direct.batch_scores(i), indexed.batch_scores(i));
            assert_eq!(direct.batch_latency(i), indexed.batch_latency(i));
        }
        assert_eq!(direct.now(), indexed.now());
    }

    #[test]
    fn indexed_batch_executes_picks_in_given_order() {
        let model = model_zoo::tiny(1, 1, 300);
        let queries = workload(&model, 8, 6);
        let picks = [6usize, 2, 4, 2];
        let mut batched = Shard::build(&model, SdmConfig::for_tests(), 6).unwrap();
        batched.run_indexed_batch(&queries, &picks).unwrap();
        assert_eq!(batched.batch_len(), picks.len());
        // Bit-identical to a per-query loop visiting the same picks in the
        // same order (so cache warm-up history matches exactly).
        let mut looped = Shard::build(&model, SdmConfig::for_tests(), 6).unwrap();
        for (k, &qi) in picks.iter().enumerate() {
            let r = looped.run_query(&queries[qi]).unwrap();
            assert_eq!(r.scores.as_slice(), batched.batch_scores(k));
            assert_eq!(r.latency, batched.batch_latency(k));
        }
        assert_eq!(looped.now(), batched.now());
    }

    #[test]
    fn empty_picks_produce_empty_batch() {
        let model = model_zoo::tiny(1, 0, 200);
        let queries = workload(&model, 2, 7);
        let mut shard = Shard::build(&model, SdmConfig::for_tests(), 7).unwrap();
        shard.run_indexed_batch(&queries, &[]).unwrap();
        assert_eq!(shard.batch_len(), 0);
        assert_eq!(shard.batch_report().queries, 0);
        assert_eq!(shard.now(), SimInstant::EPOCH);
    }

    #[test]
    fn set_compute_switches_the_engine() {
        let model = model_zoo::tiny(1, 1, 200);
        let queries = workload(&model, 1, 8);
        let mut cpu = Shard::build(&model, SdmConfig::for_tests(), 8).unwrap();
        let mut accel = Shard::build(&model, SdmConfig::for_tests(), 8).unwrap();
        accel.set_compute(ComputeModel::accelerator(), 8).unwrap();
        let c = cpu.run_query(&queries[0]).unwrap();
        let a = accel.run_query(&queries[0]).unwrap();
        assert!(a.latency.top_mlp < c.latency.top_mlp);
        assert_eq!(a.scores, c.scores);
    }
}

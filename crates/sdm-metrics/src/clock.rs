//! Virtual time used by the simulated device and IO stack.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A span of simulated time with nanosecond resolution.
///
/// `SimDuration` mirrors the subset of `std::time::Duration` the stack needs,
/// but is its own newtype so simulated and wall-clock durations can never be
/// mixed by accident.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration {
    nanos: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { nanos: 0 };

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration { nanos }
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration {
            nanos: micros * 1_000,
        }
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            nanos: millis * 1_000_000,
        }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Creates a duration from fractional microseconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_micros_f64(micros: f64) -> Self {
        if !micros.is_finite() || micros <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration {
            nanos: (micros * 1_000.0).round() as u64,
        }
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration {
            nanos: (secs * 1_000_000_000.0).round() as u64,
        }
    }

    /// Total nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Total whole microseconds in this duration (truncating).
    pub const fn as_micros(self) -> u64 {
        self.nanos / 1_000
    }

    /// Duration expressed as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.nanos as f64 / 1_000.0
    }

    /// Duration expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / 1_000_000.0
    }

    /// Duration expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.nanos >= other.nanos {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.nanos <= other.nanos {
            self
        } else {
            other
        }
    }

    /// Returns true if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.nanos == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_add(rhs.nanos),
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.nanos = self.nanos.saturating_add(rhs.nanos);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.nanos = self.nanos.saturating_sub(rhs.nanos);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_mul(rhs),
        }
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_micros_f64(self.as_micros_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration {
            nanos: self.nanos.checked_div(rhs).unwrap_or(0),
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.nanos >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.nanos >= 1_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// A point in simulated time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant {
    nanos: u64,
}

impl SimInstant {
    /// The origin of simulated time.
    pub const EPOCH: SimInstant = SimInstant { nanos: 0 };

    /// Creates an instant at an absolute nanosecond offset from the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimInstant { nanos }
    }

    /// Nanoseconds elapsed since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Time elapsed since an earlier instant, saturating at zero.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(earlier.nanos),
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimInstant) -> SimInstant {
        if self.nanos >= other.nanos {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant {
            nanos: self.nanos.saturating_add(rhs.nanos),
        }
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.nanos = self.nanos.saturating_add(rhs.nanos);
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_nanos(self.nanos))
    }
}

/// A shared, thread-safe virtual clock.
///
/// The clock only moves when [`SimClock::advance`] (or
/// [`SimClock::advance_to`]) is called; every component of the simulated
/// stack reads the same clock, so cross-component latencies compose
/// deterministically.
///
/// Cloning a `SimClock` produces a handle to the *same* underlying clock.
///
/// # Example
///
/// ```
/// use sdm_metrics::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let t0 = clock.now();
/// clock.advance(SimDuration::from_micros(25));
/// assert_eq!((clock.now() - t0).as_micros(), 25);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        SimClock {
            nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        SimInstant {
            nanos: self.nanos.load(Ordering::SeqCst),
        }
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let new = self.nanos.fetch_add(d.nanos, Ordering::SeqCst) + d.nanos;
        SimInstant { nanos: new }
    }

    /// Moves the clock forward to `t` if `t` is in the future; never moves it
    /// backwards. Returns the (possibly unchanged) current time.
    pub fn advance_to(&self, t: SimInstant) -> SimInstant {
        let mut cur = self.nanos.load(Ordering::SeqCst);
        while cur < t.nanos {
            match self
                .nanos
                .compare_exchange(cur, t.nanos, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(observed) => cur = observed,
            }
        }
        SimInstant { nanos: cur }
    }
}

/// A single-threaded clock cursor used by discrete-event style loops where a
/// local notion of "current time for this actor" is needed on top of the
/// shared [`SimClock`].
#[derive(Debug, Clone)]
pub struct LocalCursor {
    at: Rc<Cell<SimInstant>>,
}

impl LocalCursor {
    /// Creates a cursor starting at `t`.
    pub fn starting_at(t: SimInstant) -> Self {
        LocalCursor {
            at: Rc::new(Cell::new(t)),
        }
    }

    /// Current position of the cursor.
    pub fn now(&self) -> SimInstant {
        self.at.get()
    }

    /// Moves the cursor forward by `d`.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let next = self.at.get() + d;
        self.at.set(next);
        next
    }

    /// Moves the cursor to `t` if later than the current position.
    pub fn advance_to(&self, t: SimInstant) -> SimInstant {
        let next = self.at.get().max(t);
        self.at.set(next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(2), SimDuration::from_micros(2_000));
        assert_eq!(SimDuration::from_secs(3), SimDuration::from_millis(3_000));
    }

    #[test]
    fn duration_float_constructors_saturate() {
        assert_eq!(SimDuration::from_micros_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(3);
        assert_eq!((a + b).as_micros(), 13);
        assert_eq!((a - b).as_micros(), 7);
        assert_eq!((b - a), SimDuration::ZERO);
        assert_eq!((a * 3).as_micros(), 30);
        assert_eq!((a / 2).as_micros(), 5);
        assert_eq!((a / 0), SimDuration::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn duration_display_scales() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.00us");
        assert!(SimDuration::from_millis(5).to_string().ends_with("ms"));
        assert!(SimDuration::from_secs(5).to_string().ends_with('s'));
    }

    #[test]
    fn instant_ordering_and_arithmetic() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_micros(10);
        assert!(t1 > t0);
        assert_eq!((t1 - t0).as_micros(), 10);
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        assert_eq!(t1.max(t0), t1);
    }

    #[test]
    fn clock_advances_monotonically() {
        let clock = SimClock::new();
        let t0 = clock.now();
        clock.advance(SimDuration::from_micros(5));
        let t1 = clock.now();
        assert_eq!((t1 - t0).as_micros(), 5);

        // advance_to never goes backwards
        clock.advance_to(SimInstant::EPOCH);
        assert_eq!(clock.now(), t1);
        clock.advance_to(t1 + SimDuration::from_micros(1));
        assert_eq!((clock.now() - t1).as_micros(), 1);
    }

    #[test]
    fn clock_clones_share_state() {
        let clock = SimClock::new();
        let other = clock.clone();
        clock.advance(SimDuration::from_micros(7));
        assert_eq!(other.now().as_nanos(), 7_000);
    }

    #[test]
    fn local_cursor_tracks_independent_time() {
        let cursor = LocalCursor::starting_at(SimInstant::EPOCH);
        cursor.advance(SimDuration::from_micros(4));
        assert_eq!(cursor.now().as_nanos(), 4_000);
        cursor.advance_to(SimInstant::from_nanos(1_000));
        assert_eq!(cursor.now().as_nanos(), 4_000);
        cursor.advance_to(SimInstant::from_nanos(9_000));
        assert_eq!(cursor.now().as_nanos(), 9_000);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }
}

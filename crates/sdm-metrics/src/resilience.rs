//! Fault-resilience reporting: serving quality under injected faults.
//!
//! The fault-injection layer perturbs SM reads (transient errors, latency
//! storms, stuck IOs, bit flips); the serving stack answers with retries,
//! deadlines, hedged reads, degraded rows and shard failover. This module
//! records the measurement that proves the stack holds up: one entry per
//! named condition (e.g. `"healthy"`, `"storm"`), each carrying the
//! deterministic virtual-clock throughput plus the full injected-vs-handled
//! fault ledger, so CI can gate on *zero corrupted results served* and on a
//! floor for throughput retention under faults.

/// One measured serving run under a named fault condition.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceMeasurement {
    /// Condition label, e.g. `"healthy"` or `"storm"`.
    pub label: String,
    /// Queries executed.
    pub queries: u64,
    /// Deterministic batch throughput on the virtual clock.
    pub virtual_qps: f64,
    /// Embedding-row accesses (cache hits + SM reads + pruned + degraded).
    pub row_accesses: u64,
    /// Rows whose SM read exhausted every retry and were served as zeros.
    pub degraded_rows: u64,
    /// Transient read errors the fault plans injected.
    pub injected_transient: u64,
    /// Bit-flip corruptions the fault plans injected.
    pub injected_corruptions: u64,
    /// Stuck IOs the fault plans injected.
    pub injected_stuck: u64,
    /// Corruptions the end-to-end checksum caught at IO completion.
    pub detected_corruptions: u64,
    /// Corrupted payloads that reached a query result. The whole point of
    /// end-to-end verification is that this is **always zero**.
    pub corrupted_served: u64,
    /// IO attempts re-issued by the retry layer.
    pub retries: u64,
    /// IOs abandoned at the per-IO deadline.
    pub deadline_timeouts: u64,
    /// Hedged (duplicate) reads issued against slow primaries.
    pub hedges: u64,
    /// Hedges that completed before their primary.
    pub hedge_wins: u64,
    /// Shard-batches the host rerouted away from unhealthy shards.
    pub failovers: u64,
}

impl ResilienceMeasurement {
    /// Fraction of row accesses served degraded (as zeros); zero before
    /// any access.
    pub fn degraded_row_rate(&self) -> f64 {
        if self.row_accesses == 0 {
            0.0
        } else {
            self.degraded_rows as f64 / self.row_accesses as f64
        }
    }

    /// Fraction of injected corruptions the checksum caught; `1.0` when
    /// nothing was injected (vacuously fully detected). End-to-end
    /// verification requires this to be exactly `1.0`.
    pub fn corruption_detection_rate(&self) -> f64 {
        if self.injected_corruptions == 0 {
            1.0
        } else {
            self.detected_corruptions as f64 / self.injected_corruptions as f64
        }
    }

    /// Total faults injected across all modes.
    pub fn injected_total(&self) -> u64 {
        self.injected_transient + self.injected_corruptions + self.injected_stuck
    }
}

/// Per-condition resilience measurements, keyed by label.
///
/// # Example
///
/// ```
/// use sdm_metrics::{ResilienceMeasurement, ResilienceReport};
///
/// let mut report = ResilienceReport::new();
/// for (label, qps, injected) in [("healthy", 1000.0, 0u64), ("storm", 700.0, 50)] {
///     report.record(ResilienceMeasurement {
///         label: label.to_string(),
///         queries: 256,
///         virtual_qps: qps,
///         row_accesses: 4096,
///         degraded_rows: injected / 25,
///         injected_transient: injected,
///         injected_corruptions: injected / 2,
///         injected_stuck: injected / 10,
///         detected_corruptions: injected / 2,
///         corrupted_served: 0,
///         retries: injected,
///         deadline_timeouts: injected / 10,
///         hedges: injected / 5,
///         hedge_wins: injected / 10,
///         failovers: 0,
///     });
/// }
/// assert!((report.qps_retention("storm", "healthy").unwrap() - 0.7).abs() < 1e-9);
/// assert_eq!(report.get("storm").unwrap().corruption_detection_rate(), 1.0);
/// assert_eq!(report.total_corrupted_served(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResilienceReport {
    /// Measurements, kept sorted by label (one entry each).
    entries: Vec<ResilienceMeasurement>,
}

impl ResilienceReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        ResilienceReport::default()
    }

    /// Records a measurement, replacing any previous entry with the same
    /// label.
    pub fn record(&mut self, measurement: ResilienceMeasurement) {
        match self
            .entries
            .binary_search_by(|m| m.label.as_str().cmp(&measurement.label))
        {
            Ok(i) => self.entries[i] = measurement,
            Err(i) => self.entries.insert(i, measurement),
        }
    }

    /// The measurement under a condition label, when recorded.
    pub fn get(&self, label: &str) -> Option<&ResilienceMeasurement> {
        self.entries
            .binary_search_by(|m| m.label.as_str().cmp(label))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Throughput retained under `faulty` relative to `baseline`:
    /// `faulty_qps / baseline_qps`. `None` until both runs are recorded or
    /// when the baseline measured zero throughput.
    pub fn qps_retention(&self, faulty: &str, baseline: &str) -> Option<f64> {
        let base = self.get(baseline)?.virtual_qps;
        if base <= 0.0 {
            return None;
        }
        Some(self.get(faulty)?.virtual_qps / base)
    }

    /// Corrupted payloads served across every recorded condition — the
    /// number CI pins to zero.
    pub fn total_corrupted_served(&self) -> u64 {
        self.entries.iter().map(|m| m.corrupted_served).sum()
    }

    /// Iterates measurements in ascending label order.
    pub fn iter(&self) -> impl Iterator<Item = &ResilienceMeasurement> {
        self.entries.iter()
    }

    /// Number of recorded measurements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(label: &str, qps: f64, injected: u64) -> ResilienceMeasurement {
        ResilienceMeasurement {
            label: label.to_string(),
            queries: 64,
            virtual_qps: qps,
            row_accesses: 1000,
            degraded_rows: injected / 20,
            injected_transient: injected,
            injected_corruptions: injected / 2,
            injected_stuck: injected / 4,
            detected_corruptions: injected / 2,
            corrupted_served: 0,
            retries: injected + injected / 2,
            deadline_timeouts: injected / 4,
            hedges: injected / 8,
            hedge_wins: injected / 16,
            failovers: u64::from(injected > 0),
        }
    }

    #[test]
    fn measurement_rates() {
        let healthy = m("healthy", 1000.0, 0);
        assert_eq!(healthy.degraded_row_rate(), 0.0);
        assert_eq!(healthy.corruption_detection_rate(), 1.0);
        assert_eq!(healthy.injected_total(), 0);
        let storm = m("storm", 650.0, 200);
        assert!((storm.degraded_row_rate() - 0.01).abs() < 1e-12);
        assert_eq!(storm.corruption_detection_rate(), 1.0);
        assert_eq!(storm.injected_total(), 200 + 100 + 50);
        let mut missed = storm.clone();
        missed.detected_corruptions = 50;
        assert!((missed.corruption_detection_rate() - 0.5).abs() < 1e-12);
        let empty = ResilienceMeasurement {
            row_accesses: 0,
            ..m("empty", 0.0, 0)
        };
        assert_eq!(empty.degraded_row_rate(), 0.0);
    }

    #[test]
    fn report_records_replaces_and_retains() {
        let mut r = ResilienceReport::new();
        assert!(r.is_empty());
        assert!(r.qps_retention("storm", "healthy").is_none());
        r.record(m("storm", 600.0, 100));
        r.record(m("healthy", 1000.0, 0));
        r.record(m("storm", 650.0, 100)); // replaces
        assert_eq!(r.len(), 2);
        let labels: Vec<&str> = r.iter().map(|m| m.label.as_str()).collect();
        assert_eq!(labels, vec!["healthy", "storm"]);
        assert!((r.qps_retention("storm", "healthy").unwrap() - 0.65).abs() < 1e-9);
        assert!(r.qps_retention("healthy", "missing").is_none());
        assert_eq!(r.total_corrupted_served(), 0);
        // A zero-throughput baseline yields no retention, not infinity.
        r.record(m("dead", 0.0, 0));
        assert!(r.qps_retention("storm", "dead").is_none());
    }
}

//! Exact-vs-relaxed batch execution comparison.
//!
//! The paper's serving throughput comes from keeping SCM device queues deep
//! (§3.2): reads from many in-flight requests overlap so device latency
//! hides behind pooling work. A [`BatchModeReport`] holds one measured
//! [`BatchModeMeasurement`] per execution mode so the trade-off — batch
//! throughput and queue occupancy versus per-query tail latency — is
//! quantified instead of asserted.

use crate::clock::SimDuration;

/// One mode's measured serving numbers over a query stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchModeMeasurement {
    /// Queries executed.
    pub queries: u64,
    /// Virtual time from the first query's issue to the last completion.
    pub makespan: SimDuration,
    /// Median per-query latency.
    pub p50_latency: SimDuration,
    /// 99th percentile per-query latency.
    pub p99_latency: SimDuration,
    /// Mean device-queue depth observed per IO submission.
    pub mean_queue_depth: f64,
    /// Deepest device queue any submission was issued at.
    pub max_queue_depth: usize,
}

impl BatchModeMeasurement {
    /// Batch throughput on the virtual clock: queries per makespan second.
    pub fn qps(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.queries as f64 / self.makespan.as_secs_f64()
        }
    }
}

/// Measured exact-vs-relaxed comparison over the same query stream.
///
/// # Example
///
/// ```
/// use sdm_metrics::{BatchModeMeasurement, BatchModeReport, SimDuration};
///
/// let mut report = BatchModeReport::new();
/// report.record_exact(BatchModeMeasurement {
///     queries: 100,
///     makespan: SimDuration::from_millis(100),
///     p50_latency: SimDuration::from_micros(900),
///     p99_latency: SimDuration::from_micros(1500),
///     mean_queue_depth: 4.0,
///     max_queue_depth: 12,
/// });
/// report.record_relaxed(BatchModeMeasurement {
///     queries: 100,
///     makespan: SimDuration::from_millis(50),
///     p50_latency: SimDuration::from_micros(1100),
///     p99_latency: SimDuration::from_micros(3000),
///     mean_queue_depth: 9.0,
///     max_queue_depth: 40,
/// });
/// assert!((report.qps_gain().unwrap() - 2.0).abs() < 1e-9);
/// assert!((report.p99_ratio().unwrap() - 2.0).abs() < 1e-9);
/// assert!(report.depth_gain().unwrap() > 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchModeReport {
    exact: Option<BatchModeMeasurement>,
    relaxed: Option<BatchModeMeasurement>,
}

impl BatchModeReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        BatchModeReport::default()
    }

    /// Records the exact-mode measurement.
    pub fn record_exact(&mut self, m: BatchModeMeasurement) {
        self.exact = Some(m);
    }

    /// Records the relaxed-mode measurement.
    pub fn record_relaxed(&mut self, m: BatchModeMeasurement) {
        self.relaxed = Some(m);
    }

    /// The exact-mode measurement, when recorded.
    pub fn exact(&self) -> Option<&BatchModeMeasurement> {
        self.exact.as_ref()
    }

    /// The relaxed-mode measurement, when recorded.
    pub fn relaxed(&self) -> Option<&BatchModeMeasurement> {
        self.relaxed.as_ref()
    }

    /// Whether both sides have been measured.
    pub fn is_complete(&self) -> bool {
        self.exact.is_some() && self.relaxed.is_some()
    }

    /// Relaxed-over-exact batch throughput gain; `None` until both sides
    /// are recorded with a non-zero exact QPS.
    pub fn qps_gain(&self) -> Option<f64> {
        let exact = self.exact?.qps();
        if exact <= 0.0 {
            return None;
        }
        Some(self.relaxed?.qps() / exact)
    }

    /// Relaxed-over-exact p99 latency ratio (the price of the overlap);
    /// `None` until both sides are recorded with a non-zero exact p99.
    pub fn p99_ratio(&self) -> Option<f64> {
        let exact = self.exact?.p99_latency;
        if exact.is_zero() {
            return None;
        }
        Some(self.relaxed?.p99_latency.as_secs_f64() / exact.as_secs_f64())
    }

    /// Relaxed-over-exact mean queue-depth ratio; `None` until both sides
    /// are recorded with a non-zero exact depth.
    pub fn depth_gain(&self) -> Option<f64> {
        let exact = self.exact?.mean_queue_depth;
        if exact <= 0.0 {
            return None;
        }
        Some(self.relaxed?.mean_queue_depth / exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(queries: u64, makespan_us: u64, p99_us: u64, depth: f64) -> BatchModeMeasurement {
        BatchModeMeasurement {
            queries,
            makespan: SimDuration::from_micros(makespan_us),
            p50_latency: SimDuration::from_micros(p99_us / 2),
            p99_latency: SimDuration::from_micros(p99_us),
            mean_queue_depth: depth,
            max_queue_depth: depth.ceil() as usize * 2,
        }
    }

    #[test]
    fn qps_guards_zero_makespan() {
        assert_eq!(m(10, 0, 5, 1.0).qps(), 0.0);
        assert!((m(10, 1_000, 5, 1.0).qps() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn ratios_need_both_sides() {
        let mut r = BatchModeReport::new();
        assert!(!r.is_complete());
        assert!(r.qps_gain().is_none());
        r.record_exact(m(100, 10_000, 200, 2.0));
        assert!(r.qps_gain().is_none());
        r.record_relaxed(m(100, 4_000, 500, 7.0));
        assert!(r.is_complete());
        assert!((r.qps_gain().unwrap() - 2.5).abs() < 1e-9);
        assert!((r.p99_ratio().unwrap() - 2.5).abs() < 1e-9);
        assert!((r.depth_gain().unwrap() - 3.5).abs() < 1e-9);
        assert_eq!(r.exact().unwrap().queries, 100);
        assert_eq!(r.relaxed().unwrap().max_queue_depth, 14);
    }

    #[test]
    fn degenerate_baselines_yield_none() {
        let mut r = BatchModeReport::new();
        r.record_exact(m(0, 0, 0, 0.0));
        r.record_relaxed(m(100, 4_000, 500, 7.0));
        assert!(r.qps_gain().is_none());
        assert!(r.p99_ratio().is_none());
        assert!(r.depth_gain().is_none());
    }
}

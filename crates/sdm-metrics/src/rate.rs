//! Windowed rate estimation over simulated time (QPS, IOPS, bytes/s).

use crate::{SimDuration, SimInstant};
use std::collections::VecDeque;

/// Estimates the rate of events per second over a sliding window of
/// simulated time.
///
/// Events are recorded with the instant at which they happened and an
/// optional weight (e.g. bytes for a bandwidth estimate). Queries evaluate
/// the rate over the configured window ending at a given instant.
///
/// # Example
///
/// ```
/// use sdm_metrics::{RateEstimator, SimDuration, SimInstant};
///
/// let mut r = RateEstimator::new(SimDuration::from_secs(1));
/// let mut t = SimInstant::EPOCH;
/// for _ in 0..100 {
///     t = t + SimDuration::from_millis(10);
///     r.record(t, 1);
/// }
/// let rate = r.rate_at(t);
/// assert!((rate - 100.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window: SimDuration,
    events: VecDeque<(SimInstant, u64)>,
    total_weight: u64,
    lifetime_weight: u64,
    first_event: Option<SimInstant>,
    last_event: Option<SimInstant>,
}

impl RateEstimator {
    /// Creates an estimator with the given sliding window.
    ///
    /// A zero window is accepted but every query will return zero; callers
    /// normally pass something in the 100 ms – 10 s range.
    pub fn new(window: SimDuration) -> Self {
        RateEstimator {
            window,
            events: VecDeque::new(),
            total_weight: 0,
            lifetime_weight: 0,
            first_event: None,
            last_event: None,
        }
    }

    /// Records an event of weight `weight` at instant `at`.
    pub fn record(&mut self, at: SimInstant, weight: u64) {
        self.events.push_back((at, weight));
        self.total_weight += weight;
        self.lifetime_weight += weight;
        self.first_event.get_or_insert(at);
        self.last_event = Some(match self.last_event {
            Some(prev) => prev.max(at),
            None => at,
        });
        self.evict(at);
    }

    fn evict(&mut self, now: SimInstant) {
        let cutoff = now.as_nanos().saturating_sub(self.window.as_nanos());
        while let Some(&(t, w)) = self.events.front() {
            if t.as_nanos() < cutoff {
                self.events.pop_front();
                self.total_weight -= w;
            } else {
                break;
            }
        }
    }

    /// Rate (weight per second) over the window ending at `now`.
    pub fn rate_at(&mut self, now: SimInstant) -> f64 {
        self.evict(now);
        if self.window.is_zero() {
            return 0.0;
        }
        self.total_weight as f64 / self.window.as_secs_f64()
    }

    /// Average rate over the entire recorded lifetime, from the first event
    /// to `now`. Returns zero before any event is recorded.
    pub fn lifetime_rate(&self, now: SimInstant) -> f64 {
        let Some(first) = self.first_event else {
            return 0.0;
        };
        let elapsed = now.duration_since(first);
        if elapsed.is_zero() {
            return 0.0;
        }
        self.lifetime_weight as f64 / elapsed.as_secs_f64()
    }

    /// Total weight recorded since creation.
    pub fn lifetime_total(&self) -> u64 {
        self.lifetime_weight
    }

    /// Instant of the most recent event, if any.
    pub fn last_event(&self) -> Option<SimInstant> {
        self.last_event
    }

    /// The configured sliding window.
    pub fn window(&self) -> SimDuration {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimator_reports_zero() {
        let mut r = RateEstimator::new(SimDuration::from_secs(1));
        assert_eq!(r.rate_at(SimInstant::EPOCH), 0.0);
        assert_eq!(r.lifetime_rate(SimInstant::EPOCH), 0.0);
        assert_eq!(r.lifetime_total(), 0);
        assert!(r.last_event().is_none());
    }

    #[test]
    fn steady_rate_is_recovered() {
        let mut r = RateEstimator::new(SimDuration::from_secs(1));
        let mut t = SimInstant::EPOCH;
        for _ in 0..2000 {
            t += SimDuration::from_micros(500); // 2000 events/s
            r.record(t, 1);
        }
        let rate = r.rate_at(t);
        assert!((rate - 2000.0).abs() < 50.0, "rate = {rate}");
        let lifetime = r.lifetime_rate(t);
        assert!((lifetime - 2000.0).abs() < 50.0, "lifetime = {lifetime}");
    }

    #[test]
    fn old_events_fall_out_of_window() {
        let mut r = RateEstimator::new(SimDuration::from_millis(100));
        r.record(SimInstant::EPOCH, 1000);
        let later = SimInstant::EPOCH + SimDuration::from_secs(10);
        assert_eq!(r.rate_at(later), 0.0);
        // lifetime total is unaffected by eviction
        assert_eq!(r.lifetime_total(), 1000);
    }

    #[test]
    fn weighted_events_give_bandwidth() {
        let mut r = RateEstimator::new(SimDuration::from_secs(1));
        let mut t = SimInstant::EPOCH;
        for _ in 0..100 {
            t += SimDuration::from_millis(10);
            r.record(t, 4096); // 100 * 4 KiB per second
        }
        let bw = r.rate_at(t);
        assert!((bw - 409_600.0).abs() < 10_000.0, "bw = {bw}");
    }

    #[test]
    fn zero_window_is_safe() {
        let mut r = RateEstimator::new(SimDuration::ZERO);
        r.record(SimInstant::EPOCH, 5);
        assert_eq!(r.rate_at(SimInstant::EPOCH), 0.0);
    }
}

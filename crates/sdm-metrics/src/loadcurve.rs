//! Latency-vs-offered-load curve for open-loop serving.
//!
//! Closed-loop makespan numbers say how fast a host can drain a pre-built
//! batch; the paper's serving criterion is different — what p50/p99 does
//! the host deliver *at a given offered QPS*, and how much load must be
//! shed to protect the latency SLO. A [`LoadCurveReport`] holds one
//! [`LoadPoint`] per offered-load level so that curve can be gated on
//! shape invariants (p99 monotone in load, no shedding far below
//! capacity) instead of jitter-prone absolutes.

use crate::clock::SimDuration;

/// One offered-load level's measured serving numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// The arrival process's configured mean rate, queries per virtual
    /// second.
    pub offered_qps_target: f64,
    /// Queries that arrived (admitted + shed).
    pub offered: u64,
    /// Queries past admission control (all of which are then served).
    pub admitted: u64,
    /// Queries served to completion.
    pub served: u64,
    /// Queries shed by token-bucket admission control.
    pub shed_rate_limited: u64,
    /// Queries shed because the estimated queue wait exceeded the SLO.
    pub shed_overload: u64,
    /// Measured offered rate: arrivals over the arrival window.
    pub offered_qps: f64,
    /// Measured served rate: completions over the full serving window
    /// (never exceeds `offered_qps` by construction).
    pub served_qps: f64,
    /// Median served latency (arrival to batch completion).
    pub p50_latency: SimDuration,
    /// 99th-percentile served latency.
    pub p99_latency: SimDuration,
    /// Mean served latency.
    pub mean_latency: SimDuration,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
}

impl LoadPoint {
    /// Total queries shed, for either reason.
    pub fn shed(&self) -> u64 {
        self.shed_rate_limited + self.shed_overload
    }

    /// Fraction of offered queries shed, in `[0, 1]` (0 when nothing was
    /// offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed() as f64 / self.offered as f64
        }
    }
}

/// A latency-vs-offered-load curve: one [`LoadPoint`] per offered rate,
/// recorded in increasing-load order.
///
/// # Example
///
/// ```
/// use sdm_metrics::{LoadCurveReport, LoadPoint, SimDuration};
///
/// let mut curve = LoadCurveReport::new();
/// for (rate, p99_us, shed) in [(100.0, 3_000, 0), (400.0, 9_000, 12)] {
///     curve.record(LoadPoint {
///         offered_qps_target: rate,
///         offered: 256,
///         admitted: 256 - shed,
///         served: 256 - shed,
///         shed_rate_limited: 0,
///         shed_overload: shed,
///         offered_qps: rate,
///         served_qps: rate * (256.0 - shed as f64) / 256.0,
///         p50_latency: SimDuration::from_micros(p99_us / 2),
///         p99_latency: SimDuration::from_micros(p99_us),
///         mean_latency: SimDuration::from_micros(p99_us / 2),
///         batches: 64,
///         mean_batch: 4.0,
///     });
/// }
/// assert_eq!(curve.len(), 2);
/// assert!(curve.p99_monotone());
/// assert_eq!(curve.get(0).unwrap().shed(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadCurveReport {
    points: Vec<LoadPoint>,
}

impl LoadCurveReport {
    /// Creates an empty curve.
    pub fn new() -> Self {
        LoadCurveReport::default()
    }

    /// Appends one measured load point (call in increasing-load order).
    pub fn record(&mut self, point: LoadPoint) {
        self.points.push(point);
    }

    /// Number of load points recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `i`-th load point, in recording order.
    pub fn get(&self, i: usize) -> Option<&LoadPoint> {
        self.points.get(i)
    }

    /// Iterates the load points in recording order.
    pub fn iter(&self) -> impl Iterator<Item = &LoadPoint> {
        self.points.iter()
    }

    /// True when p99 latency never decreases from one recorded point to
    /// the next — the shape a healthy latency-vs-load curve must have
    /// when points are recorded in increasing-load order.
    pub fn p99_monotone(&self) -> bool {
        self.points
            .windows(2)
            .all(|pair| pair[0].p99_latency <= pair[1].p99_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(rate: f64, p99_us: u64, shed_overload: u64) -> LoadPoint {
        let offered = 256;
        LoadPoint {
            offered_qps_target: rate,
            offered,
            admitted: offered - shed_overload,
            served: offered - shed_overload,
            shed_rate_limited: 0,
            shed_overload,
            offered_qps: rate * 0.99,
            served_qps: rate * 0.9,
            p50_latency: SimDuration::from_micros(p99_us / 2),
            p99_latency: SimDuration::from_micros(p99_us),
            mean_latency: SimDuration::from_micros(p99_us / 2),
            batches: 32,
            mean_batch: offered as f64 / 32.0,
        }
    }

    #[test]
    fn shed_rate_counts_both_causes() {
        let mut p = point(100.0, 2_000, 64);
        p.shed_rate_limited = 64;
        assert_eq!(p.shed(), 128);
        assert!((p.shed_rate() - 0.5).abs() < 1e-12);

        let empty = LoadPoint {
            offered: 0,
            ..point(1.0, 1, 0)
        };
        assert_eq!(empty.shed_rate(), 0.0);
    }

    #[test]
    fn monotonicity_check_spots_dips() {
        let mut good = LoadCurveReport::new();
        assert!(good.is_empty() && good.p99_monotone());
        good.record(point(100.0, 2_000, 0));
        good.record(point(400.0, 2_000, 0)); // tie is allowed
        good.record(point(1_600.0, 70_000, 180));
        assert_eq!(good.len(), 3);
        assert!(good.p99_monotone());

        let mut dip = LoadCurveReport::new();
        dip.record(point(100.0, 9_000, 0));
        dip.record(point(400.0, 2_000, 0));
        assert!(!dip.p99_monotone());
    }

    #[test]
    fn identical_runs_compare_equal() {
        let a = {
            let mut c = LoadCurveReport::new();
            c.record(point(100.0, 2_000, 0));
            c
        };
        let b = {
            let mut c = LoadCurveReport::new();
            c.record(point(100.0, 2_000, 0));
            c
        };
        assert_eq!(a, b);
        assert_eq!(a.iter().count(), 1);
        assert!(a.get(1).is_none());
    }
}

//! Cache-admission policy lab: A/B serving comparison per shard count.
//!
//! The shared host tier's admission knob (always-admit vs the second-touch
//! doorkeeper, `sdm_cache::TierAdmission`) only matters when the tier is
//! *capacity constrained* — when it cannot hold the skewed stream's full
//! hot set and single-touch tail rows compete with the head for residency.
//! This module records that A/B: for each shard count, one run per
//! admission policy over the same capacity-constrained skewed stream, each
//! carrying the *virtual-clock* batch throughput (deterministic, so CI can
//! gate on it) plus the tier's hit/promotion/denial counters.

/// One measured serving run at a fixed shard count under one admission
/// policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePolicyMeasurement {
    /// Shards (concurrent serving streams) during the run.
    pub shards: usize,
    /// Admission policy label (`"always_admit"` or `"second_touch"`).
    pub policy: &'static str,
    /// Queries executed across all shards.
    pub queries: u64,
    /// Deterministic batch throughput on the virtual clock (the slowest
    /// shard's makespan bounds the batch).
    pub virtual_qps: f64,
    /// Shared-tier hits across all shards during the measured batch.
    pub shared_hits: u64,
    /// Shared-tier misses across all shards (probes that went to SM).
    pub shared_misses: u64,
    /// Rows promoted into the tier at IO completion.
    pub promotions: u64,
    /// Promotions the admission policy turned away (zero under
    /// always-admit).
    pub admission_denied: u64,
}

impl CachePolicyMeasurement {
    /// Shared-tier hit rate over tier probes; zero before any probe.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.shared_hits + self.shared_misses;
        if probes == 0 {
            0.0
        } else {
            self.shared_hits as f64 / probes as f64
        }
    }
}

/// Admission-policy measurements per shard count.
///
/// # Example
///
/// ```
/// use sdm_metrics::{CachePolicyMeasurement, CachePolicyReport};
///
/// let mut report = CachePolicyReport::new();
/// for (policy, qps, hits, denied) in [
///     ("always_admit", 1000.0, 40u64, 0u64),
///     ("second_touch", 1100.0, 48, 120),
/// ] {
///     report.record(CachePolicyMeasurement {
///         shards: 2,
///         policy,
///         queries: 256,
///         virtual_qps: qps,
///         shared_hits: hits,
///         shared_misses: 16,
///         promotions: 32,
///         admission_denied: denied,
///     });
/// }
/// let always = report.get(2, "always_admit").unwrap();
/// let second = report.get(2, "second_touch").unwrap();
/// assert!(second.hit_rate() >= always.hit_rate());
/// assert!((report.qps_ratio(2, "second_touch", "always_admit").unwrap() - 1.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CachePolicyReport {
    /// Measurements, kept sorted by `(shards, policy)` (one entry each).
    entries: Vec<CachePolicyMeasurement>,
}

impl CachePolicyReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        CachePolicyReport::default()
    }

    /// Records a measurement, replacing any previous entry for the same
    /// shard count and policy.
    pub fn record(&mut self, measurement: CachePolicyMeasurement) {
        let key = (measurement.shards, measurement.policy);
        match self
            .entries
            .binary_search_by_key(&key, |m| (m.shards, m.policy))
        {
            Ok(i) => self.entries[i] = measurement,
            Err(i) => self.entries.insert(i, measurement),
        }
    }

    /// The measurement at a shard count under a policy, when recorded.
    pub fn get(&self, shards: usize, policy: &str) -> Option<&CachePolicyMeasurement> {
        self.entries
            .iter()
            .find(|m| m.shards == shards && m.policy == policy)
    }

    /// Virtual-QPS ratio of `policy` over `baseline` at a shard count.
    /// `None` until both runs are recorded or when the baseline measured
    /// zero throughput.
    pub fn qps_ratio(&self, shards: usize, policy: &str, baseline: &str) -> Option<f64> {
        let base = self.get(shards, baseline)?.virtual_qps;
        if base <= 0.0 {
            return None;
        }
        Some(self.get(shards, policy)?.virtual_qps / base)
    }

    /// Iterates measurements in ascending `(shards, policy)` order.
    pub fn iter(&self) -> impl Iterator<Item = &CachePolicyMeasurement> {
        self.entries.iter()
    }

    /// Number of recorded measurements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(shards: usize, policy: &'static str, qps: f64, hits: u64) -> CachePolicyMeasurement {
        CachePolicyMeasurement {
            shards,
            policy,
            queries: 100,
            virtual_qps: qps,
            shared_hits: hits,
            shared_misses: 10,
            promotions: 20,
            admission_denied: if policy == "second_touch" { 15 } else { 0 },
        }
    }

    #[test]
    fn hit_rate_handles_empty_and_populated() {
        let empty = CachePolicyMeasurement {
            shared_hits: 0,
            shared_misses: 0,
            ..m(1, "always_admit", 100.0, 0)
        };
        assert_eq!(empty.hit_rate(), 0.0);
        let on = m(1, "always_admit", 100.0, 40);
        assert!((on.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn record_sorts_replaces_and_ratios() {
        let mut r = CachePolicyReport::new();
        assert!(r.is_empty());
        assert!(r.qps_ratio(2, "second_touch", "always_admit").is_none());
        r.record(m(4, "second_touch", 1500.0, 45));
        r.record(m(2, "always_admit", 1000.0, 40));
        r.record(m(2, "second_touch", 1100.0, 44));
        r.record(m(4, "always_admit", 1200.0, 40));
        r.record(m(2, "second_touch", 1200.0, 46)); // replaces
        assert_eq!(r.len(), 4);
        let keys: Vec<(usize, &str)> = r.iter().map(|e| (e.shards, e.policy)).collect();
        assert_eq!(
            keys,
            vec![
                (2, "always_admit"),
                (2, "second_touch"),
                (4, "always_admit"),
                (4, "second_touch"),
            ]
        );
        assert!((r.qps_ratio(2, "second_touch", "always_admit").unwrap() - 1.2).abs() < 1e-9);
        assert!(r.qps_ratio(8, "second_touch", "always_admit").is_none());
        // A zero-throughput baseline yields no ratio instead of infinity.
        r.record(m(8, "always_admit", 0.0, 0));
        r.record(m(8, "second_touch", 100.0, 10));
        assert!(r.qps_ratio(8, "second_touch", "always_admit").is_none());
    }
}

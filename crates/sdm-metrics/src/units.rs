//! Byte, power and cost units used by the device and datacenter models.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A quantity of bytes.
///
/// Used for capacities (DRAM per host, SSD capacity, model size) as well as
/// transfer sizes. The type is a plain newtype over `u64`; helpers are
/// provided for the usual SI-ish units (powers of two, as is conventional for
/// memory capacities).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a quantity from kibibytes.
    pub const fn from_kib(kib: u64) -> Bytes {
        Bytes(kib * 1024)
    }

    /// Creates a quantity from mebibytes.
    pub const fn from_mib(mib: u64) -> Bytes {
        Bytes(mib * 1024 * 1024)
    }

    /// Creates a quantity from gibibytes.
    pub const fn from_gib(gib: u64) -> Bytes {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Creates a quantity from tebibytes.
    pub const fn from_tib(tib: u64) -> Bytes {
        Bytes(tib * 1024 * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Quantity expressed in fractional gibibytes.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Quantity expressed in fractional mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Slice `index` of this quantity divided losslessly among `shards`:
    /// every share is `total / shards`, and the `total % shards` remainder
    /// bytes go one each to the first shards, so the shares always sum to
    /// the exact total. See [`split_share`].
    pub fn split_among(self, shards: u64, index: u64) -> Bytes {
        Bytes(split_share(self.0, shards, index))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Smaller of two quantities.
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// Larger of two quantities.
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    /// True when the quantity is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0.checked_div(rhs).unwrap_or(0))
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

/// Share `index` (zero-based) of `total` divided losslessly among `shards`.
///
/// Every share is `total / shards`, and the `total % shards` remainder units
/// go one each to shares `0..remainder`, so
/// `(0..shards).map(|i| split_share(total, shards, i)).sum() == total` for
/// every input — unlike a plain truncating division, which silently drops
/// the remainder from the aggregate. `shards == 0` is treated as 1 (the
/// identity split), and `split_share(total, 1, 0) == total` exactly.
pub fn split_share(total: u64, shards: u64, index: u64) -> u64 {
    let shards = shards.max(1);
    total / shards + u64::from(index < total % shards)
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * KIB;
        const GIB: u64 = 1024 * MIB;
        const TIB: u64 = 1024 * GIB;
        if self.0 >= TIB {
            write!(f, "{:.2}TiB", self.0 as f64 / TIB as f64)
        } else if self.0 >= GIB {
            write!(f, "{:.2}GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2}MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2}KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// Electrical power in watts.
///
/// The paper reports normalized power numbers; [`Watts`] carries the absolute
/// model-level values and the `cluster` crate normalizes for reporting.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(pub f64);

impl Watts {
    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// Raw value.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Ratio of this power to a baseline (used for normalized reporting).
    ///
    /// Returns zero when the baseline is zero or non-finite.
    pub fn normalized_to(self, baseline: Watts) -> f64 {
        if baseline.0 <= 0.0 || !baseline.0.is_finite() {
            0.0
        } else {
            self.0 / baseline.0
        }
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1_000_000.0 {
            write!(f, "{:.2}MW", self.0 / 1_000_000.0)
        } else if self.0.abs() >= 1_000.0 {
            write!(f, "{:.2}kW", self.0 / 1_000.0)
        } else {
            write!(f, "{:.1}W", self.0)
        }
    }
}

/// Relative cost per GB, normalized so DDR4 DRAM is `1.0` (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct RelativeCost(pub f64);

impl RelativeCost {
    /// Cost of DRAM per GB (the normalization baseline).
    pub const DRAM: RelativeCost = RelativeCost(1.0);

    /// Raw relative value.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Total relative cost of a capacity at this per-GB cost.
    pub fn total_for(self, capacity: Bytes) -> f64 {
        self.0 * capacity.as_gib_f64()
    }
}

impl fmt::Display for RelativeCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}x DRAM/GB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::from_gib(1).as_u64(), 1 << 30);
        assert_eq!(Bytes::from_tib(1).as_u64(), 1u64 << 40);
    }

    #[test]
    fn bytes_arithmetic_and_ordering() {
        let a = Bytes::from_mib(4);
        let b = Bytes::from_mib(1);
        assert_eq!(a + b, Bytes::from_mib(5));
        assert_eq!(a - b, Bytes::from_mib(3));
        assert_eq!(b - a, Bytes::ZERO);
        assert_eq!(a * 2, Bytes::from_mib(8));
        assert_eq!(a / 4, Bytes::from_mib(1));
        assert_eq!(a / 0, Bytes::ZERO);
        assert!(a > b);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn bytes_display_scales() {
        assert_eq!(Bytes(512).to_string(), "512B");
        assert_eq!(Bytes::from_kib(2).to_string(), "2.00KiB");
        assert_eq!(Bytes::from_gib(143).to_string(), "143.00GiB");
        assert!(Bytes::from_tib(1).to_string().ends_with("TiB"));
    }

    #[test]
    fn bytes_sum() {
        let total: Bytes = vec![Bytes(1), Bytes(2), Bytes(3)].into_iter().sum();
        assert_eq!(total, Bytes(6));
    }

    #[test]
    fn split_share_is_lossless_at_awkward_counts() {
        // Remainders land on the first shares and every total is conserved.
        for total in [0u64, 1, 6, 7, 64, 1000, u64::from(u32::MAX)] {
            for shards in [1u64, 2, 3, 4, 5, 7, 16] {
                let sum: u64 = (0..shards).map(|i| split_share(total, shards, i)).sum();
                assert_eq!(sum, total, "{total} split {shards} ways");
                // Shares are within one unit of each other, largest first.
                for i in 1..shards {
                    let prev = split_share(total, shards, i - 1);
                    let cur = split_share(total, shards, i);
                    assert!(prev == cur || prev == cur + 1);
                }
            }
        }
        // Identity and zero-shard clamping.
        assert_eq!(split_share(42, 1, 0), 42);
        assert_eq!(split_share(42, 0, 0), 42);
        // The motivating case: 7 queue slots over 4 shards used to lose 3.
        assert_eq!(
            (0..4).map(|i| split_share(7, 4, i)).collect::<Vec<_>>(),
            vec![2, 2, 2, 1]
        );
        assert_eq!(Bytes(7).split_among(4, 0), Bytes(2));
        assert_eq!(Bytes(7).split_among(4, 3), Bytes(1));
    }

    #[test]
    fn watts_normalization() {
        let a = Watts(400.0);
        let base = Watts(1000.0);
        assert!((a.normalized_to(base) - 0.4).abs() < 1e-12);
        assert_eq!(a.normalized_to(Watts::ZERO), 0.0);
    }

    #[test]
    fn watts_display() {
        assert_eq!(Watts(5.0).to_string(), "5.0W");
        assert_eq!(Watts(1500.0).to_string(), "1.50kW");
        assert_eq!(Watts(2_000_000.0).to_string(), "2.00MW");
    }

    #[test]
    fn relative_cost_totals() {
        let nand = RelativeCost(1.0 / 30.0);
        let total = nand.total_for(Bytes::from_gib(300));
        assert!((total - 10.0).abs() < 1e-9);
    }
}

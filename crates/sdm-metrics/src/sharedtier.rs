//! Shared-tier serving comparison: tier-on vs tier-off per shard count.
//!
//! The host-shared second cache tier exists to recover cross-shard row
//! reuse (one SM read serving every shard) that fully private per-shard
//! caches lose. This module records the measurement that proves it: for
//! each shard count, one run with the tier disabled and one with it
//! enabled, each carrying the *virtual-clock* batch throughput (which is
//! deterministic, so CI can gate on it) and the tier's hit/cross-hit
//! counters.

/// One measured serving run at a fixed shard count with the shared tier on
/// or off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedTierMeasurement {
    /// Shards (concurrent serving streams) during the run.
    pub shards: usize,
    /// Whether the shared tier was enabled.
    pub enabled: bool,
    /// Queries executed across all shards.
    pub queries: u64,
    /// Deterministic batch throughput on the virtual clock (the slowest
    /// shard's makespan bounds the batch).
    pub virtual_qps: f64,
    /// Shared-tier hits across all shards (zero with the tier off).
    pub shared_hits: u64,
    /// Shared-tier misses across all shards (probes that went to SM).
    pub shared_misses: u64,
    /// Shared-tier hits served by a row another shard promoted.
    pub cross_shard_hits: u64,
    /// Rows promoted into the tier at IO completion.
    pub promotions: u64,
}

impl SharedTierMeasurement {
    /// Shared-tier hit rate over tier probes; zero before any probe.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.shared_hits + self.shared_misses;
        if probes == 0 {
            0.0
        } else {
            self.shared_hits as f64 / probes as f64
        }
    }

    /// Cross-shard share of tier probes — the reuse private per-shard
    /// caches cannot express; zero before any probe.
    pub fn cross_shard_hit_rate(&self) -> f64 {
        let probes = self.shared_hits + self.shared_misses;
        if probes == 0 {
            0.0
        } else {
            self.cross_shard_hits as f64 / probes as f64
        }
    }
}

/// Tier-on vs tier-off measurements per shard count.
///
/// # Example
///
/// ```
/// use sdm_metrics::{SharedTierMeasurement, SharedTierReport};
///
/// let mut report = SharedTierReport::new();
/// for (enabled, qps, hits) in [(false, 1000.0, 0u64), (true, 1300.0, 64)] {
///     report.record(SharedTierMeasurement {
///         shards: 4,
///         enabled,
///         queries: 256,
///         virtual_qps: qps,
///         shared_hits: hits,
///         shared_misses: 32,
///         cross_shard_hits: hits / 2,
///         promotions: 32,
///     });
/// }
/// assert!((report.qps_gain(4).unwrap() - 1.3).abs() < 1e-9);
/// assert!(report.get(4, true).unwrap().cross_shard_hit_rate() > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedTierReport {
    /// Measurements, kept sorted by `(shards, enabled)` (one entry each).
    entries: Vec<SharedTierMeasurement>,
}

impl SharedTierReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        SharedTierReport::default()
    }

    /// Records a measurement, replacing any previous entry for the same
    /// shard count and tier state.
    pub fn record(&mut self, measurement: SharedTierMeasurement) {
        let key = (measurement.shards, measurement.enabled);
        match self
            .entries
            .binary_search_by_key(&key, |m| (m.shards, m.enabled))
        {
            Ok(i) => self.entries[i] = measurement,
            Err(i) => self.entries.insert(i, measurement),
        }
    }

    /// The measurement at a shard count and tier state, when recorded.
    pub fn get(&self, shards: usize, enabled: bool) -> Option<&SharedTierMeasurement> {
        self.entries
            .binary_search_by_key(&(shards, enabled), |m| (m.shards, m.enabled))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Virtual-QPS gain of enabling the tier at a shard count: on / off.
    /// `None` until both runs are recorded or when the off run measured
    /// zero throughput.
    pub fn qps_gain(&self, shards: usize) -> Option<f64> {
        let off = self.get(shards, false)?.virtual_qps;
        if off <= 0.0 {
            return None;
        }
        Some(self.get(shards, true)?.virtual_qps / off)
    }

    /// Iterates measurements in ascending `(shards, enabled)` order.
    pub fn iter(&self) -> impl Iterator<Item = &SharedTierMeasurement> {
        self.entries.iter()
    }

    /// Number of recorded measurements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(shards: usize, enabled: bool, qps: f64) -> SharedTierMeasurement {
        SharedTierMeasurement {
            shards,
            enabled,
            queries: 100,
            virtual_qps: qps,
            shared_hits: if enabled { 40 } else { 0 },
            shared_misses: if enabled { 10 } else { 0 },
            cross_shard_hits: if enabled { 25 } else { 0 },
            promotions: if enabled { 10 } else { 0 },
        }
    }

    #[test]
    fn rates_handle_empty_and_populated() {
        let off = m(2, false, 900.0);
        assert_eq!(off.hit_rate(), 0.0);
        assert_eq!(off.cross_shard_hit_rate(), 0.0);
        let on = m(2, true, 1200.0);
        assert!((on.hit_rate() - 0.8).abs() < 1e-12);
        assert!((on.cross_shard_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn record_sorts_replaces_and_gains() {
        let mut r = SharedTierReport::new();
        assert!(r.is_empty());
        assert!(r.qps_gain(2).is_none());
        r.record(m(4, true, 1500.0));
        r.record(m(2, false, 900.0));
        r.record(m(2, true, 1200.0));
        r.record(m(4, false, 1000.0));
        r.record(m(2, true, 1260.0)); // replaces
        assert_eq!(r.len(), 4);
        let keys: Vec<(usize, bool)> = r.iter().map(|e| (e.shards, e.enabled)).collect();
        assert_eq!(keys, vec![(2, false), (2, true), (4, false), (4, true)]);
        assert!((r.qps_gain(2).unwrap() - 1.4).abs() < 1e-9);
        assert!((r.qps_gain(4).unwrap() - 1.5).abs() < 1e-9);
        assert!(r.qps_gain(8).is_none());
        // A zero-throughput off run yields no gain instead of infinity.
        r.record(m(8, false, 0.0));
        r.record(m(8, true, 100.0));
        assert!(r.qps_gain(8).is_none());
    }
}

//! Measured multi-stream serving throughput.
//!
//! The paper extrapolates host-level QPS from single-stream latency by
//! multiplying with the stream count (§3, Table 4). A real host serves
//! concurrent streams whose delivered QPS is shaped by cache contention,
//! per-stream working sets and the core count — so this module records what
//! was actually *measured*: one wall-clock [`StreamMeasurement`] per stream
//! count, collected into a [`MultiStreamReport`] that can answer speedup
//! and scaling-efficiency questions without assuming linearity.

use crate::clock::SimDuration;

/// One measured serving run at a fixed number of concurrent streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamMeasurement {
    /// Concurrent serving streams (shards) during the run.
    pub streams: usize,
    /// Queries executed across all streams.
    pub queries: u64,
    /// Host wall-clock duration of the run, in seconds.
    pub wall_seconds: f64,
    /// Mean per-query virtual latency across all streams.
    pub mean_latency: SimDuration,
    /// 95th percentile per-query virtual latency.
    pub p95_latency: SimDuration,
    /// 99th percentile per-query virtual latency.
    pub p99_latency: SimDuration,
}

impl StreamMeasurement {
    /// Measured host throughput: queries per wall-clock second.
    pub fn wall_qps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.queries as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Measured wall-clock QPS per stream count.
///
/// # Example
///
/// ```
/// use sdm_metrics::{MultiStreamReport, SimDuration, StreamMeasurement};
///
/// let mut report = MultiStreamReport::new();
/// for (streams, wall) in [(1usize, 1.0f64), (4, 0.4)] {
///     report.record(StreamMeasurement {
///         streams,
///         queries: 1000,
///         wall_seconds: wall,
///         mean_latency: SimDuration::from_micros(100),
///         p95_latency: SimDuration::from_micros(180),
///         p99_latency: SimDuration::from_micros(250),
///     });
/// }
/// assert!((report.speedup(4).unwrap() - 2.5).abs() < 1e-9);
/// assert!((report.scaling_efficiency(4).unwrap() - 0.625).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultiStreamReport {
    /// Measurements, kept sorted by stream count (one entry per count).
    entries: Vec<StreamMeasurement>,
}

impl MultiStreamReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        MultiStreamReport::default()
    }

    /// Records a measurement, replacing any previous entry for the same
    /// stream count.
    pub fn record(&mut self, measurement: StreamMeasurement) {
        match self
            .entries
            .binary_search_by_key(&measurement.streams, |m| m.streams)
        {
            Ok(i) => self.entries[i] = measurement,
            Err(i) => self.entries.insert(i, measurement),
        }
    }

    /// The measurement at a given stream count, when recorded.
    pub fn get(&self, streams: usize) -> Option<&StreamMeasurement> {
        self.entries
            .binary_search_by_key(&streams, |m| m.streams)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// The single-stream baseline measurement.
    pub fn baseline(&self) -> Option<&StreamMeasurement> {
        self.get(1)
    }

    /// Measured speedup of `streams` concurrent streams over the measured
    /// single-stream baseline; `None` until both runs are recorded.
    pub fn speedup(&self, streams: usize) -> Option<f64> {
        let base = self.baseline()?.wall_qps();
        if base <= 0.0 {
            return None;
        }
        Some(self.get(streams)?.wall_qps() / base)
    }

    /// Scaling efficiency at `streams`: measured speedup divided by the
    /// stream count (1.0 means perfectly linear scaling, the assumption the
    /// paper's extrapolation bakes in).
    pub fn scaling_efficiency(&self, streams: usize) -> Option<f64> {
        if streams == 0 {
            return None;
        }
        Some(self.speedup(streams)? / streams as f64)
    }

    /// Iterates measurements in ascending stream-count order.
    pub fn iter(&self) -> impl Iterator<Item = &StreamMeasurement> {
        self.entries.iter()
    }

    /// Number of recorded stream counts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(streams: usize, queries: u64, wall_seconds: f64) -> StreamMeasurement {
        StreamMeasurement {
            streams,
            queries,
            wall_seconds,
            mean_latency: SimDuration::from_micros(120),
            p95_latency: SimDuration::from_micros(200),
            p99_latency: SimDuration::from_micros(300),
        }
    }

    #[test]
    fn wall_qps_guards_zero_duration() {
        assert_eq!(m(1, 100, 0.0).wall_qps(), 0.0);
        assert!((m(1, 100, 0.5).wall_qps() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn record_sorts_and_replaces() {
        let mut r = MultiStreamReport::new();
        r.record(m(4, 100, 1.0));
        r.record(m(1, 100, 2.0));
        r.record(m(2, 100, 1.5));
        r.record(m(4, 100, 0.8)); // replaces the first 4-stream entry
        assert_eq!(r.len(), 3);
        let counts: Vec<usize> = r.iter().map(|e| e.streams).collect();
        assert_eq!(counts, vec![1, 2, 4]);
        assert!((r.get(4).unwrap().wall_seconds - 0.8).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_efficiency_are_relative_to_measured_baseline() {
        let mut r = MultiStreamReport::new();
        assert!(r.is_empty());
        assert!(r.speedup(2).is_none());
        r.record(m(1, 1000, 1.0)); // 1000 q/s
        r.record(m(2, 1000, 0.625)); // 1600 q/s
        assert!((r.speedup(2).unwrap() - 1.6).abs() < 1e-9);
        assert!((r.scaling_efficiency(2).unwrap() - 0.8).abs() < 1e-9);
        assert!(r.speedup(8).is_none(), "unmeasured counts stay unknown");
        assert!(r.scaling_efficiency(0).is_none());
        assert_eq!(r.baseline().unwrap().queries, 1000);
    }

    #[test]
    fn zero_qps_baseline_yields_no_speedup() {
        let mut r = MultiStreamReport::new();
        r.record(m(1, 0, 0.0));
        r.record(m(2, 100, 1.0));
        assert!(r.speedup(2).is_none());
    }
}

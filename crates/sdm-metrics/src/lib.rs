//! Measurement and simulation-time primitives shared by the SDM stack.
//!
//! The reproduction runs on a *virtual clock* ([`SimClock`]) so device
//! latencies, queueing delays and warmup behaviour are deterministic and do
//! not depend on the wall-clock speed of the host running the experiments.
//!
//! The crate provides:
//!
//! * [`SimClock`], [`SimInstant`] and [`SimDuration`] — nanosecond-resolution
//!   virtual time.
//! * [`LatencyHistogram`] — log-bucketed latency histograms with percentile
//!   queries (p50/p95/p99 as used throughout the paper).
//! * [`Counter`] and [`CounterSet`] — named monotonic counters, mergeable
//!   across threads for per-shard statistic aggregation.
//! * [`MultiStreamReport`] — *measured* wall-clock QPS per concurrent
//!   stream count, replacing linear single-stream extrapolation.
//! * [`BatchModeReport`] — exact-vs-relaxed batch execution comparison
//!   (virtual QPS, p50/p99 latency, device-queue depth per mode).
//! * [`SharedTierReport`] — shared-tier-on vs -off serving comparison per
//!   shard count (deterministic virtual QPS, hit and cross-shard-hit
//!   rates).
//! * [`CachePolicyReport`] — admission-policy A/B on a capacity-constrained
//!   shared tier (always-admit vs second-touch doorkeeper per shard count).
//! * [`LoadCurveReport`] — open-loop latency-vs-offered-load curve
//!   (p50/p99, shed rate and served QPS per offered-QPS point).
//! * [`ResilienceReport`] — serving quality under injected faults
//!   (throughput retention, degraded-row rate, the injected-vs-detected
//!   corruption ledger CI pins to "nothing corrupted ever served").
//! * [`RateEstimator`] — windowed rate estimation (QPS, IOPS).
//! * [`units`] — byte, power and cost units used by the datacenter-level
//!   modelling.
//! * [`alloc_hook`] — process-wide allocation counters fed by counting
//!   `GlobalAlloc` wrappers in tests/benches, used to assert the serving
//!   loop's zero-allocation steady state.
//!
//! # Example
//!
//! ```
//! use sdm_metrics::{LatencyHistogram, SimDuration};
//!
//! let mut hist = LatencyHistogram::new();
//! for us in [10u64, 12, 15, 100, 400] {
//!     hist.record(SimDuration::from_micros(us));
//! }
//! assert!(hist.percentile(0.5) >= SimDuration::from_micros(10));
//! assert_eq!(hist.count(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod alloc_hook;
mod batchmode;
mod cachepolicy;
mod clock;
mod counters;
mod histogram;
mod loadcurve;
mod multistream;
mod rate;
mod resilience;
mod sharedtier;
pub mod units;

pub use batchmode::{BatchModeMeasurement, BatchModeReport};
pub use cachepolicy::{CachePolicyMeasurement, CachePolicyReport};
pub use clock::{LocalCursor, SimClock, SimDuration, SimInstant};
pub use counters::{Counter, CounterSet};
pub use histogram::LatencyHistogram;
pub use loadcurve::{LoadCurveReport, LoadPoint};
pub use multistream::{MultiStreamReport, StreamMeasurement};
pub use rate::RateEstimator;
pub use resilience::{ResilienceMeasurement, ResilienceReport};
pub use sharedtier::{SharedTierMeasurement, SharedTierReport};

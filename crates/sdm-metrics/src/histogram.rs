//! Log-bucketed latency histogram with percentile queries.

use crate::SimDuration;
use std::fmt;

/// Number of sub-buckets per power-of-two bucket. Higher means better
/// resolution at the cost of memory; 16 gives <6.25% relative error which is
/// more than enough for the p95/p99 style reporting used by the paper.
const SUB_BUCKETS: usize = 16;
/// Maximum exponent tracked (2^40 ns ≈ 18 minutes), everything above clamps.
const MAX_EXP: usize = 40;

/// A latency histogram with logarithmic buckets.
///
/// Values are recorded as [`SimDuration`]s; percentiles interpolate by rank
/// within the containing bucket (never past its upper boundary), so the
/// relative error stays bounded by the bucket width while streams whose
/// quantiles fall inside the *same* bucket still report distinct values.
///
/// # Example
///
/// ```
/// use sdm_metrics::{LatencyHistogram, SimDuration};
///
/// let mut h = LatencyHistogram::new();
/// for i in 1..=100u64 {
///     h.record(SimDuration::from_micros(i));
/// }
/// let p95 = h.percentile(0.95);
/// assert!(p95 >= SimDuration::from_micros(90));
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total: SimDuration,
    max: SimDuration,
    min: Option<SimDuration>,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; (MAX_EXP + 1) * SUB_BUCKETS],
            count: 0,
            total: SimDuration::ZERO,
            max: SimDuration::ZERO,
            min: None,
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        if nanos == 0 {
            return 0;
        }
        let exp = 63 - nanos.leading_zeros() as usize;
        let exp = exp.min(MAX_EXP);
        let base = 1u64 << exp;
        // Position within [2^exp, 2^(exp+1)) split into SUB_BUCKETS slots.
        let offset = ((nanos - base) as u128 * SUB_BUCKETS as u128 / base as u128) as usize;
        exp * SUB_BUCKETS + offset.min(SUB_BUCKETS - 1)
    }

    fn bucket_upper_bound(index: usize) -> u64 {
        let exp = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        let base = 1u64 << exp;
        base + (base as u128 * (sub as u128 + 1) / SUB_BUCKETS as u128) as u64
    }

    fn bucket_lower_bound(index: usize) -> u64 {
        let exp = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        let base = 1u64 << exp;
        base + (base as u128 * sub as u128 / SUB_BUCKETS as u128) as u64
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let idx = Self::bucket_index(d.as_nanos());
        self.buckets[idx] += 1;
        self.count += 1;
        self.total += d;
        self.max = self.max.max(d);
        self.min = Some(match self.min {
            Some(m) => m.min(d),
            None => d,
        });
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns true when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.total / self.count
        }
    }

    /// Largest recorded sample, or zero when empty.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Smallest recorded sample, or zero when empty.
    pub fn min(&self) -> SimDuration {
        self.min.unwrap_or(SimDuration::ZERO)
    }

    /// Sum of all recorded samples.
    pub fn total(&self) -> SimDuration {
        self.total
    }

    /// Returns an upper bound on the `q`-quantile (`q` in `[0, 1]`).
    ///
    /// The answer interpolates linearly within the bucket that holds the
    /// target rank (rank-weighted, rounded up), so two streams whose true
    /// quantiles differ by less than one bucket width still report different
    /// values. The result never exceeds the containing bucket's upper
    /// boundary (the rank-`n`-of-`n` position *is* that boundary) and is
    /// clamped into `[min, max]`, so it remains an upper bound on the true
    /// quantile whenever samples are not concentrated above the interpolated
    /// point within their bucket.
    ///
    /// Out-of-range `q` values are clamped. Returns zero for an empty
    /// histogram.
    pub fn percentile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen >= target {
                let lower = Self::bucket_lower_bound(idx);
                let width = Self::bucket_upper_bound(idx) - lower;
                // 1-based rank of the target within this bucket; rank n of n
                // lands exactly on the bucket's upper boundary.
                let rank = target - (seen - n);
                let interp = (width as u128 * rank as u128).div_ceil(n as u128) as u64;
                let bound = SimDuration::from_nanos(lower + interp);
                return bound.min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Convenience accessor for the 50th percentile.
    pub fn p50(&self) -> SimDuration {
        self.percentile(0.50)
    }

    /// Convenience accessor for the 95th percentile.
    pub fn p95(&self) -> SimDuration {
        self.percentile(0.95)
    }

    /// Convenience accessor for the 99th percentile.
    pub fn p99(&self) -> SimDuration {
        self.percentile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        for b in &mut self.buckets {
            *b = 0;
        }
        self.count = 0;
        self.total = SimDuration::ZERO;
        self.max = SimDuration::ZERO;
        self.min = None;
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(0.99), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn single_sample_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(42));
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50(), SimDuration::from_micros(42));
        assert_eq!(h.p99(), SimDuration::from_micros(42));
        assert_eq!(h.min(), SimDuration::from_micros(42));
        assert_eq!(h.max(), SimDuration::from_micros(42));
    }

    #[test]
    fn percentile_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.p50().as_micros() as f64;
        let p99 = h.p99().as_micros() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.10, "p50 = {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.10, "p99 = {p99}");
        assert!(h.percentile(1.0) == h.max());
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 20, 30] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.mean(), SimDuration::from_micros(20));
        assert_eq!(h.total(), SimDuration::from_micros(60));
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(1));
        b.record(SimDuration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), SimDuration::from_micros(1));
        assert_eq!(a.max(), SimDuration::from_micros(1000));
    }

    #[test]
    fn reset_clears_state() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(5));
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn zero_duration_sample_is_recorded() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p99(), SimDuration::ZERO);
    }

    #[test]
    fn interpolation_resolves_within_one_sub_bucket() {
        // 1000 evenly spaced samples inside ONE sub-bucket: [2^20, 2^20+2^16)
        // is a single bucket, so the pre-interpolation histogram answered
        // every quantile with the same upper boundary. Interpolation must
        // spread the answers across the bucket by rank.
        let base = 1u64 << 20;
        let mut h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(SimDuration::from_nanos(base + i * 64));
        }
        let p10 = h.percentile(0.10).as_nanos();
        let p50 = h.p50().as_nanos();
        let p90 = h.percentile(0.90).as_nanos();
        assert!(p10 < p50 && p50 < p90, "p10={p10} p50={p50} p90={p90}");
        // The bucket spans 65536 ns; the interpolated p50 sits near the
        // bucket's midpoint, not at its upper boundary.
        let width = 1u64 << 16;
        assert!(p50 >= base && p50 <= base + width * 55 / 100, "p50={p50}");
        assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    fn percentile_is_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        let mut x = 17u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(SimDuration::from_nanos(1 + x % 5_000_000));
        }
        let mut prev = SimDuration::ZERO;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0);
            assert!(p >= prev, "percentile not monotone at q={i}");
            prev = p;
        }
        assert!(h.percentile(0.0) >= h.min());
        assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    fn clamp_out_of_range_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(7));
        assert_eq!(h.percentile(-1.0), SimDuration::from_micros(7));
        assert_eq!(h.percentile(2.0), SimDuration::from_micros(7));
    }
}

//! Allocation-counter hook for hot-path allocation audits.
//!
//! The serving loop's steady-state guarantee — *zero heap allocations per
//! query on a fully warmed cache* — is asserted by tests and benches that
//! install a counting `GlobalAlloc` wrapper around the system allocator.
//! This crate forbids `unsafe`, so the wrapper itself lives in the test /
//! bench binaries; what lives here is the safe, process-wide counter the
//! wrappers report into and the control surface (`enable` / `reset` /
//! `allocations`) the assertions use.
//!
//! Counting is disabled by default and the disabled fast path is a single
//! relaxed atomic load, so shipping the hook in release builds costs
//! effectively nothing.
//!
//! # Example (inside a test binary)
//!
//! ```ignore
//! use std::alloc::{GlobalAlloc, Layout, System};
//!
//! struct Counting;
//! unsafe impl GlobalAlloc for Counting {
//!     unsafe fn alloc(&self, l: Layout) -> *mut u8 {
//!         sdm_metrics::alloc_hook::note_alloc(l.size());
//!         System.alloc(l)
//!     }
//!     unsafe fn dealloc(&self, p: *mut u8, l: Layout) { System.dealloc(p, l) }
//! }
//! #[global_allocator]
//! static ALLOC: Counting = Counting;
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Reports one allocation of `size` bytes. Called by a counting
/// `GlobalAlloc` wrapper; a no-op while counting is disabled.
#[inline]
pub fn note_alloc(size: usize) {
    if ENABLED.load(Ordering::Relaxed) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    }
}

/// Turns counting on or off (process-wide).
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// True while allocations are being counted.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Zeroes the counters (does not change the enabled flag).
pub fn reset() {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ALLOCATED_BYTES.store(0, Ordering::SeqCst);
}

/// Allocations observed while enabled since the last [`reset`].
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Bytes allocated while enabled since the last [`reset`].
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::SeqCst)
}

/// RAII guard: counts allocations for the duration of a scope.
///
/// Creating the guard resets the counters and enables counting; dropping it
/// disables counting again. Read the totals through [`allocations`] /
/// [`allocated_bytes`] *before* relying on numbers from a later scope.
#[derive(Debug)]
pub struct CountingScope(());

impl CountingScope {
    /// Starts a counting scope.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        reset();
        set_enabled(true);
        CountingScope(())
    }

    /// Allocations observed so far in this scope.
    pub fn allocations(&self) -> u64 {
        allocations()
    }
}

impl Drop for CountingScope {
    fn drop(&mut self) {
        set_enabled(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test (not several) because the hook is process-global state and
    // the test harness runs tests concurrently.
    #[test]
    fn hook_counts_only_while_enabled() {
        // Tests in this crate run without a counting global allocator, so
        // `note_alloc` is driven by hand here.
        set_enabled(false);
        reset();
        note_alloc(128);
        assert_eq!(allocations(), 0);
        assert_eq!(allocated_bytes(), 0);

        let scope = CountingScope::new();
        note_alloc(100);
        note_alloc(28);
        assert_eq!(scope.allocations(), 2);
        assert_eq!(allocated_bytes(), 128);
        drop(scope);
        assert!(!is_enabled());
        note_alloc(1);
        assert_eq!(allocations(), 2, "counting after drop must be off");
    }
}

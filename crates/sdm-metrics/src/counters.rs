//! Named monotonic counters.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter that can be shared across components.
///
/// Cloning a `Counter` produces a handle to the same underlying value.
///
/// # Example
///
/// ```
/// use sdm_metrics::Counter;
///
/// let c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds `n` to the counter and returns the new value.
    pub fn add(&self, n: u64) -> u64 {
        self.value.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Adds one to the counter and returns the new value.
    pub fn incr(&self) -> u64 {
        self.add(1)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// A set of named counters, used by components to expose their internal
/// statistics (IOs issued, cache hits, bytes moved, …).
///
/// # Example
///
/// ```
/// use sdm_metrics::CounterSet;
///
/// let set = CounterSet::new();
/// set.counter("reads").add(2);
/// set.counter("reads").incr();
/// assert_eq!(set.value("reads"), 3);
/// assert_eq!(set.value("unknown"), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CounterSet {
    counters: Arc<parking_counters::Registry>,
}

/// Internal registry keeping name → counter mappings behind a mutex-free
/// read path would be overkill here; a plain `std::sync::Mutex` suffices for
/// statistics that are read rarely.
mod parking_counters {
    use super::Counter;
    use std::collections::BTreeMap;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    #[derive(Debug, Default)]
    pub struct Registry {
        inner: Mutex<BTreeMap<String, Counter>>,
    }

    impl Registry {
        /// Counters are atomics mutated outside the registry lock, so a
        /// panic while the map guard is held cannot leave the map itself
        /// inconsistent — recover the guard instead of propagating poison.
        fn locked(&self) -> MutexGuard<'_, BTreeMap<String, Counter>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        pub fn counter(&self, name: &str) -> Counter {
            self.locked().entry(name.to_owned()).or_default().clone()
        }

        pub fn snapshot(&self) -> BTreeMap<String, u64> {
            self.locked()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect()
        }

        pub fn reset_all(&self) {
            for c in self.locked().values() {
                c.reset();
            }
        }
    }
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        CounterSet {
            counters: Arc::new(parking_counters::Registry::default()),
        }
    }

    /// Returns (creating on first use) the counter with the given name.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters.counter(name)
    }

    /// Current value of a named counter; zero when the counter does not
    /// exist yet.
    pub fn value(&self, name: &str) -> u64 {
        self.counters.snapshot().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.counters.snapshot()
    }

    /// Resets every counter in the set to zero.
    pub fn reset_all(&self) {
        self.counters.reset_all();
    }

    /// Adds every counter of `other` into this set, creating counters on
    /// first sight. Both sets stay usable; the adds are atomic, so a
    /// host-level set can be aggregated (e.g. per-device counters across
    /// serving shards) while other threads keep counting.
    pub fn merge_from(&self, other: &CounterSet) {
        for (name, value) in other.snapshot() {
            self.counter(&name).add(value);
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        let mut first = true;
        for (k, v) in snap {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_and_reset() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        assert_eq!(c.add(5), 5);
        assert_eq!(c.incr(), 6);
        assert_eq!(c.reset(), 6);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_clones_share_value() {
        let c = Counter::new();
        let d = c.clone();
        c.add(2);
        d.add(3);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn counter_set_creates_on_demand() {
        let set = CounterSet::new();
        assert_eq!(set.value("io.reads"), 0);
        set.counter("io.reads").add(7);
        assert_eq!(set.value("io.reads"), 7);
        let snap = set.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap["io.reads"], 7);
    }

    #[test]
    fn counter_set_reset_all() {
        let set = CounterSet::new();
        set.counter("a").add(1);
        set.counter("b").add(2);
        set.reset_all();
        assert_eq!(set.value("a"), 0);
        assert_eq!(set.value("b"), 0);
    }

    #[test]
    fn counter_set_display_nonempty() {
        let set = CounterSet::new();
        assert_eq!(set.to_string(), "(empty)");
        set.counter("x").add(1);
        assert_eq!(set.to_string(), "x=1");
    }

    #[test]
    fn counter_set_merge_from_aggregates_across_sets() {
        let host = CounterSet::new();
        host.counter("hits").add(1);
        let shard_a = CounterSet::new();
        shard_a.counter("hits").add(4);
        shard_a.counter("misses").add(2);
        let shard_b = CounterSet::new();
        shard_b.counter("hits").add(5);
        host.merge_from(&shard_a);
        host.merge_from(&shard_b);
        assert_eq!(host.value("hits"), 10);
        assert_eq!(host.value("misses"), 2);
        // Sources are unchanged.
        assert_eq!(shard_a.value("hits"), 4);
        assert_eq!(shard_b.value("misses"), 0);
    }

    #[test]
    fn counter_set_shared_across_clones() {
        let set = CounterSet::new();
        let other = set.clone();
        set.counter("hits").add(4);
        assert_eq!(other.value("hits"), 4);
    }
}

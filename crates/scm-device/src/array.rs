//! A host's set of SCM devices.

use crate::device::{ReadOutcome, ScmDevice, WriteOutcome};
use crate::error::DeviceError;
use crate::nvme::ReadCommand;
use crate::tech::TechnologyProfile;
use sdm_metrics::units::Bytes;
use sdm_metrics::{SimDuration, SimInstant};
use std::fmt;

/// Identifies one device within a [`DeviceArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// The set of SCM drives attached to one host (e.g. the paper's HW-SS has
/// two 2 TB Nand drives, HW-AO two 0.4 TB Optane drives).
///
/// The array exposes a flat logical address space; the `sdm-core` crate
/// decides which device a table lives on and addresses it as
/// `(DeviceId, offset)`. Aggregate statistics (total IOPS capability,
/// capacity) are available for host sizing.
#[derive(Debug)]
pub struct DeviceArray {
    devices: Vec<ScmDevice>,
}

impl DeviceArray {
    /// Creates an array from already-constructed devices.
    pub fn new(devices: Vec<ScmDevice>) -> Self {
        DeviceArray { devices }
    }

    /// Creates `count` identical devices of the given profile and capacity.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ZeroCapacity`] when `capacity_each` is zero.
    pub fn homogeneous(
        profile: TechnologyProfile,
        capacity_each: Bytes,
        count: usize,
    ) -> Result<Self, DeviceError> {
        let mut devices = Vec::with_capacity(count);
        for i in 0..count {
            devices.push(ScmDevice::new(
                format!("{}-{}", profile.kind, i),
                profile.clone(),
                capacity_each,
            )?);
        }
        Ok(DeviceArray { devices })
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the array holds no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total capacity across all devices.
    pub fn total_capacity(&self) -> Bytes {
        self.devices.iter().map(|d| d.capacity()).sum()
    }

    /// Aggregate random-read IOPS ceiling across all devices.
    pub fn total_max_iops(&self) -> f64 {
        self.devices.iter().map(|d| d.profile().max_read_iops).sum()
    }

    /// Aggregate IOPS sustainable while keeping per-IO latency under
    /// `target` (used for the Table 10 sizing experiment).
    pub fn total_iops_at_latency(&self, target: SimDuration) -> f64 {
        self.devices
            .iter()
            .map(|d| d.iops_at_latency_target(target))
            .sum()
    }

    /// Borrow a device.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownDevice`] for an out-of-range id.
    pub fn device(&self, id: DeviceId) -> Result<&ScmDevice, DeviceError> {
        self.devices.get(id.0).ok_or(DeviceError::UnknownDevice {
            index: id.0,
            len: self.devices.len(),
        })
    }

    /// Mutably borrow a device.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownDevice`] for an out-of-range id.
    pub fn device_mut(&mut self, id: DeviceId) -> Result<&mut ScmDevice, DeviceError> {
        let len = self.devices.len();
        self.devices
            .get_mut(id.0)
            .ok_or(DeviceError::UnknownDevice { index: id.0, len })
    }

    /// Iterates over `(DeviceId, &ScmDevice)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &ScmDevice)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i), d))
    }

    /// Issues a read against a specific device at the given queue depth.
    ///
    /// # Errors
    ///
    /// Propagates device errors; see [`ScmDevice::read`].
    pub fn read(
        &mut self,
        id: DeviceId,
        cmd: &ReadCommand,
        queue_depth: usize,
    ) -> Result<ReadOutcome, DeviceError> {
        self.device_mut(id)?.read(cmd, queue_depth)
    }

    /// Issues a read against a specific device at virtual instant `now`,
    /// consulting any attached fault plan (see [`ScmDevice::read_at`]).
    ///
    /// # Errors
    ///
    /// Propagates device errors, including injected
    /// [`DeviceError::TransientRead`] failures.
    pub fn read_at(
        &mut self,
        id: DeviceId,
        cmd: &ReadCommand,
        queue_depth: usize,
        now: SimInstant,
    ) -> Result<ReadOutcome, DeviceError> {
        self.device_mut(id)?.read_at(cmd, queue_depth, now)
    }

    /// Writes to a specific device.
    ///
    /// # Errors
    ///
    /// Propagates device errors; see [`ScmDevice::write_at`].
    pub fn write(
        &mut self,
        id: DeviceId,
        offset: u64,
        data: &[u8],
    ) -> Result<WriteOutcome, DeviceError> {
        self.device_mut(id)?.write_at(offset, data)
    }

    /// Picks the device with the fewest reads served so far (simple
    /// least-loaded placement helper).
    pub fn least_loaded(&self) -> Option<DeviceId> {
        self.devices
            .iter()
            .enumerate()
            .min_by_key(|(_, d)| d.stats().reads)
            .map(|(i, _)| DeviceId(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_array_has_aggregate_capacity_and_iops() {
        let arr = DeviceArray::homogeneous(TechnologyProfile::optane_ssd(), Bytes::from_mib(8), 2)
            .unwrap();
        assert_eq!(arr.len(), 2);
        assert!(!arr.is_empty());
        assert_eq!(arr.total_capacity(), Bytes::from_mib(16));
        assert!((arr.total_max_iops() - 8_000_000.0).abs() < 1.0);
    }

    #[test]
    fn unknown_device_is_an_error() {
        let mut arr =
            DeviceArray::homogeneous(TechnologyProfile::nand_flash(), Bytes::from_mib(1), 1)
                .unwrap();
        assert!(matches!(
            arr.read(DeviceId(5), &ReadCommand::sgl(0, 8), 1),
            Err(DeviceError::UnknownDevice { index: 5, len: 1 })
        ));
        assert!(arr.device(DeviceId(0)).is_ok());
    }

    #[test]
    fn reads_and_writes_route_to_the_right_device() {
        let mut arr =
            DeviceArray::homogeneous(TechnologyProfile::optane_ssd(), Bytes::from_mib(1), 2)
                .unwrap();
        arr.write(DeviceId(1), 0, &[9u8; 64]).unwrap();
        let out0 = arr.read(DeviceId(0), &ReadCommand::sgl(0, 64), 1).unwrap();
        let out1 = arr.read(DeviceId(1), &ReadCommand::sgl(0, 64), 1).unwrap();
        assert_eq!(out0.data, vec![0u8; 64]);
        assert_eq!(out1.data, vec![9u8; 64]);
        assert_eq!(arr.device(DeviceId(1)).unwrap().stats().writes, 1);
    }

    #[test]
    fn least_loaded_balances() {
        let mut arr =
            DeviceArray::homogeneous(TechnologyProfile::optane_ssd(), Bytes::from_mib(1), 2)
                .unwrap();
        arr.read(DeviceId(0), &ReadCommand::sgl(0, 64), 1).unwrap();
        assert_eq!(arr.least_loaded(), Some(DeviceId(1)));
        let empty = DeviceArray::new(vec![]);
        assert_eq!(empty.least_loaded(), None);
        assert!(empty.is_empty());
    }

    #[test]
    fn aggregate_iops_at_latency_is_bounded_by_ceiling() {
        let arr = DeviceArray::homogeneous(TechnologyProfile::optane_ssd(), Bytes::from_mib(1), 9)
            .unwrap();
        let sustainable = arr.total_iops_at_latency(SimDuration::from_micros(40));
        assert!(sustainable > 0.0);
        assert!(sustainable <= arr.total_max_iops());
        // 9 Optane SSDs provide ~36M IOPS ceiling (paper Table 10).
        assert!(arr.total_max_iops() >= 36_000_000.0 - 1.0);
    }
}

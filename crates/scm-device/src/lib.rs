//! Simulated Storage Class Memory (SCM) devices for the SDM stack.
//!
//! The paper evaluates its Software Defined Memory design on real NVMe Nand
//! Flash and Optane SSDs. This crate substitutes a deterministic device
//! simulator that reproduces the *performance envelope* those results are
//! driven by (paper Table 1 and Figure 3):
//!
//! * an IOPS ceiling and a loaded-latency curve (latency inflates as the
//!   device approaches its IOPS ceiling, with Nand Flash degrading much
//!   earlier and further than Optane);
//! * an access granularity (4 KiB blocks for Nand, 512 B for Optane, cache
//!   lines for DIMM/CXL 3DXP) producing read amplification for the 64–512 B
//!   embedding rows DLRM actually needs;
//! * NVMe-style reads with a Scatter-Gather-List *bit bucket* that transfers
//!   only the requested byte ranges over the bus (paper §4.1.1);
//! * endurance (drive writes per day) limiting model-update frequency;
//! * occasional long-tail latencies for Nand Flash (the reason the paper's
//!   HW-SS deployment meets p95 but not p99).
//!
//! The central types are [`TechnologyProfile`] (a named point in Table 1),
//! [`ScmDevice`] (one simulated drive holding real bytes) and
//! [`DeviceArray`] (a host's set of drives). A [`FaultPlan`] can be
//! attached per device to inject deterministic, seeded failures — transient
//! read errors, latency storms, stuck IOs and bit-flip corruption — that
//! the upper layers must survive; every [`ReadOutcome`] carries a
//! [`checksum64`] guard tag so corruption is always detectable.
//!
//! # Example
//!
//! ```
//! use scm_device::{ReadCommand, ScmDevice, TechnologyProfile};
//! use sdm_metrics::units::Bytes;
//!
//! # fn main() -> Result<(), scm_device::DeviceError> {
//! let mut dev = ScmDevice::new("ssd0", TechnologyProfile::optane_ssd(), Bytes::from_mib(4))?;
//! dev.write_at(0, &[7u8; 256])?;
//! let out = dev.read(&ReadCommand::sgl(0, 128), 1)?;
//! assert_eq!(out.data.len(), 128);
//! assert!(out.data.iter().all(|&b| b == 7));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The read/write paths must stay panic-free: every failure is a typed
// `DeviceError` the IO engine's retry layer can act on. Tests opt back in
// locally with `#[allow(clippy::unwrap_used)]`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod array;
mod block;
mod device;
mod error;
mod fault;
mod latency;
mod nvme;
mod tech;

pub use array::{DeviceArray, DeviceId};
pub use block::PageStore;
pub use device::{DeviceStats, ReadOutcome, ScmDevice, WriteOutcome};
pub use error::DeviceError;
pub use fault::{checksum64, FaultPlan, FaultStats, FaultWindow};
pub use latency::LoadedLatencyModel;
pub use nvme::{AccessMode, ReadCommand, SglRange};
pub use tech::{Sourcing, TechnologyKind, TechnologyProfile};

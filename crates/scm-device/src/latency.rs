//! Loaded-latency model: how device latency inflates as offered load
//! approaches the device's IOPS ceiling (paper Figure 3).

use crate::tech::TechnologyProfile;
use sdm_metrics::SimDuration;

/// Deterministic model of read latency as a function of device utilisation.
///
/// The model captures the qualitative behaviour the paper measures in
/// Figure 3:
///
/// * below the *knee* utilisation, latency stays near the technology's base
///   latency;
/// * above the knee it inflates like an M/M/1 queue, `1 / (1 - rho)`, so Nand
///   Flash (knee at ~50 % utilisation, 90 µs base) blows past a millisecond
///   well before its nominal IOPS ceiling while Optane stays in the tens of
///   microseconds almost to its ceiling;
/// * a small deterministic "tail" fraction of reads takes
///   `tail_multiplier × base` (Nand garbage-collection pauses), which is why
///   the paper's Nand deployment meets p95 but not p99.
///
/// The model is intentionally closed-form so experiments are reproducible.
#[derive(Debug, Clone)]
pub struct LoadedLatencyModel {
    base: SimDuration,
    knee: f64,
    tail_probability: f64,
    tail_multiplier: f64,
    max_iops: f64,
    /// Cap on the queueing inflation of the body of the distribution: past
    /// this point the device is saturated and throughput (not per-IO media
    /// latency) is the limit, which the device model expresses separately
    /// via Little's law.
    max_inflation: f64,
    /// Deterministic counter used to pick which reads land in the tail.
    tail_counter: u64,
}

impl LoadedLatencyModel {
    /// Builds the latency model for one technology profile.
    pub fn new(profile: &TechnologyProfile) -> Self {
        LoadedLatencyModel {
            base: profile.base_read_latency,
            knee: profile.knee_utilisation.clamp(0.01, 0.999),
            tail_probability: profile.tail_probability.clamp(0.0, 1.0),
            tail_multiplier: profile.tail_multiplier.max(1.0),
            max_iops: profile.max_read_iops.max(1.0),
            // Technologies with heavier tails (Nand) also degrade further
            // before saturating; Optane stays close to its base latency.
            max_inflation: (profile.tail_multiplier / 4.0).clamp(2.0, 6.0),
            tail_counter: 0,
        }
    }

    /// The unloaded base latency.
    pub fn base_latency(&self) -> SimDuration {
        self.base
    }

    /// Media latency for one access at the given utilisation (fraction of
    /// the IOPS ceiling, clamped to `[0, 0.99]`), excluding bus transfer and
    /// excluding the tail.
    pub fn latency_at_utilisation(&self, utilisation: f64) -> SimDuration {
        let rho = utilisation.clamp(0.0, 0.99);
        if rho <= self.knee {
            // Gentle linear rise up to the knee (controller pipelining hides
            // most of the queueing below the knee).
            let slope = 0.5; // +50% at the knee
            return self.base * (1.0 + slope * rho / self.knee);
        }
        // Past the knee: M/M/1-style inflation relative to the knee point,
        // capped once the device saturates (beyond that, throughput — not
        // per-IO media latency — is the limit).
        let at_knee = 1.5;
        let remaining = (rho - self.knee) / (1.0 - self.knee); // 0..1
        let inflation = (at_knee / (1.0 - remaining * 0.98)).min(self.max_inflation);
        self.base * inflation
    }

    /// Media latency for one access given the current queue depth, using
    /// Little's law to convert outstanding IOs into utilisation.
    pub fn latency_at_queue_depth(&self, queue_depth: usize) -> SimDuration {
        let service = self.base.as_secs_f64().max(1e-9);
        // The device can retire roughly max_iops requests/s; queue_depth
        // requests outstanding implies an offered load of qd / (service *
        // max_iops) of the ceiling.
        let utilisation = queue_depth as f64 / (service * self.max_iops).max(1.0);
        self.latency_at_utilisation(utilisation)
    }

    /// Returns the latency for the next read, including the deterministic
    /// tail. Tail reads occur every `1/tail_probability` reads.
    pub fn next_read_latency(&mut self, utilisation: f64) -> SimDuration {
        let body = self.latency_at_utilisation(utilisation);
        if self.tail_probability <= 0.0 {
            return body;
        }
        self.tail_counter += 1;
        let period = (1.0 / self.tail_probability).round() as u64;
        if period > 0 && self.tail_counter.is_multiple_of(period) {
            self.base * self.tail_multiplier
        } else {
            body
        }
    }

    /// Effective IOPS the device can sustain while keeping latency under
    /// `target`: found by walking the utilisation curve.
    pub fn iops_at_latency_target(&self, target: SimDuration) -> f64 {
        if target < self.base {
            return 0.0;
        }
        let mut lo = 0.0f64;
        let mut hi = 0.99f64;
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            if self.latency_at_utilisation(mid) <= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo * self.max_iops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechnologyProfile;

    #[test]
    fn latency_monotone_in_utilisation() {
        let m = LoadedLatencyModel::new(&TechnologyProfile::nand_flash());
        let mut prev = SimDuration::ZERO;
        for i in 0..100 {
            let u = i as f64 / 100.0;
            let l = m.latency_at_utilisation(u);
            assert!(l >= prev, "latency decreased at u={u}");
            prev = l;
        }
    }

    #[test]
    fn nand_inflates_much_more_than_optane() {
        let mut nand = LoadedLatencyModel::new(&TechnologyProfile::nand_flash());
        let mut optane = LoadedLatencyModel::new(&TechnologyProfile::optane_ssd());
        let nand_loaded = nand.next_read_latency(0.9);
        let optane_loaded = optane.next_read_latency(0.9);
        // Optane stays in the tens of microseconds; Nand goes to hundreds.
        assert!(
            optane_loaded < SimDuration::from_micros(60),
            "{optane_loaded}"
        );
        assert!(nand_loaded > SimDuration::from_micros(200), "{nand_loaded}");
    }

    #[test]
    fn unloaded_latency_close_to_base() {
        let m = LoadedLatencyModel::new(&TechnologyProfile::optane_ssd());
        let l = m.latency_at_utilisation(0.01);
        assert!(l >= m.base_latency());
        assert!(l < m.base_latency() * 2);
    }

    #[test]
    fn tail_reads_are_periodic_and_slow() {
        let profile = TechnologyProfile::nand_flash();
        let mut m = LoadedLatencyModel::new(&profile);
        let mut tails = 0;
        let n = 1000;
        for _ in 0..n {
            if m.next_read_latency(0.1) >= profile.base_read_latency * profile.tail_multiplier {
                tails += 1;
            }
        }
        let expected = (n as f64 * profile.tail_probability) as i64;
        assert!((tails - expected).abs() <= 1, "tails = {tails}");
    }

    #[test]
    fn queue_depth_mapping_is_sane() {
        let m = LoadedLatencyModel::new(&TechnologyProfile::optane_ssd());
        // 4M IOPS * 10us = 40 outstanding at saturation; qd=4 is light load.
        let light = m.latency_at_queue_depth(4);
        let heavy = m.latency_at_queue_depth(60);
        assert!(light < heavy);
    }

    #[test]
    fn iops_at_latency_target_brackets_ceiling() {
        let profile = TechnologyProfile::optane_ssd();
        let m = LoadedLatencyModel::new(&profile);
        let at_loose = m.iops_at_latency_target(SimDuration::from_millis(10));
        assert!(at_loose > 0.9 * profile.max_read_iops);
        let at_tight = m.iops_at_latency_target(SimDuration::from_nanos(1));
        assert_eq!(at_tight, 0.0);
    }
}

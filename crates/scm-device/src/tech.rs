//! SCM technology profiles (paper Table 1).

use sdm_metrics::units::{Bytes, RelativeCost};
use sdm_metrics::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which underlying memory/storage technology a profile describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TechnologyKind {
    /// PCIe Nand Flash SSD.
    NandFlash,
    /// PCIe 3DXP (Optane) SSD.
    OptaneSsd,
    /// PCIe ZSSD (low-latency SLC Nand).
    Zssd,
    /// 3DXP on the DDR bus (Optane DIMM / App Direct).
    Dimm3dxp,
    /// 3DXP behind a CXL link.
    Cxl3dxp,
    /// Plain DRAM, used as the fast-memory reference point.
    Dram,
}

impl fmt::Display for TechnologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TechnologyKind::NandFlash => "PCIe Nand Flash",
            TechnologyKind::OptaneSsd => "PCIe 3DXP (Optane) SSD",
            TechnologyKind::Zssd => "PCIe ZSSD",
            TechnologyKind::Dimm3dxp => "DIMM 3DXP (Optane)",
            TechnologyKind::Cxl3dxp => "CXL 3DXP",
            TechnologyKind::Dram => "DDR4 DRAM",
        };
        f.write_str(name)
    }
}

/// How many vendors offer a given technology (paper Table 1 "Sourcing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sourcing {
    /// Only one vendor ships the part.
    Single,
    /// Multiple vendors ship compatible parts.
    Multi,
}

impl fmt::Display for Sourcing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sourcing::Single => f.write_str("single"),
            Sourcing::Multi => f.write_str("multi"),
        }
    }
}

/// The performance/cost envelope of one slow-memory technology.
///
/// Field values for the presets come from the paper's Table 1 plus the
/// loaded-latency behaviour shown in Figure 3. All presets describe a single
/// device (one SSD, one DIMM, one CXL device).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyProfile {
    /// Technology family.
    pub kind: TechnologyKind,
    /// Random-read IOPS ceiling for the device.
    pub max_read_iops: f64,
    /// Unloaded (low queue depth) read latency for one access.
    pub base_read_latency: SimDuration,
    /// Smallest unit the media can transfer; smaller requests are amplified
    /// to this size internally (read amplification).
    pub access_granularity: Bytes,
    /// Whether the device supports NVMe SGL bit-bucket reads, i.e. shipping
    /// only the requested sub-ranges of a block over the bus (§4.1.1).
    pub supports_sgl_bit_bucket: bool,
    /// Sustained write bandwidth in bytes per second (model updates, §A.3).
    pub write_bandwidth: f64,
    /// Unloaded write latency for one access.
    pub base_write_latency: SimDuration,
    /// Rated endurance in physical drive writes per day over a 5 year life.
    pub endurance_dwpd: f64,
    /// Host-visible link bandwidth in bytes per second (PCIe/DDR/CXL).
    pub link_bandwidth: f64,
    /// Relative cost per GB (DRAM = 1.0).
    pub cost_per_gb: RelativeCost,
    /// Vendor availability.
    pub sourcing: Sourcing,
    /// Probability that a read lands in the device's slow tail (garbage
    /// collection, media retries). Nand Flash has a visible tail; Optane's is
    /// negligible.
    pub tail_probability: f64,
    /// Multiplier applied to the base latency for tail reads.
    pub tail_multiplier: f64,
    /// Utilisation (fraction of `max_read_iops`) above which latency starts
    /// inflating steeply. Nand controllers saturate early (§4.1: bursts must
    /// be smoothed), Optane stays flat almost to the ceiling.
    pub knee_utilisation: f64,
}

impl TechnologyProfile {
    /// PCIe Nand Flash SSD: 0.5 M IOPS, O(100 µs), 4 KiB granularity,
    /// 1/30 DRAM cost, multi-sourced (Table 1 row 1).
    pub fn nand_flash() -> Self {
        TechnologyProfile {
            kind: TechnologyKind::NandFlash,
            max_read_iops: 500_000.0,
            base_read_latency: SimDuration::from_micros(90),
            access_granularity: Bytes::from_kib(4),
            supports_sgl_bit_bucket: true,
            write_bandwidth: 1.8e9,
            base_write_latency: SimDuration::from_micros(25),
            endurance_dwpd: 5.0,
            link_bandwidth: 3.2e9,
            cost_per_gb: RelativeCost(1.0 / 30.0),
            sourcing: Sourcing::Multi,
            tail_probability: 0.01,
            tail_multiplier: 20.0,
            knee_utilisation: 0.5,
        }
    }

    /// PCIe 3DXP (Optane) SSD: 4 M IOPS at 512 B, O(10 µs), high endurance,
    /// 1/5 DRAM cost, single-sourced (Table 1 row 2).
    pub fn optane_ssd() -> Self {
        TechnologyProfile {
            kind: TechnologyKind::OptaneSsd,
            max_read_iops: 4_000_000.0,
            base_read_latency: SimDuration::from_micros(10),
            access_granularity: Bytes(512),
            supports_sgl_bit_bucket: true,
            write_bandwidth: 2.2e9,
            base_write_latency: SimDuration::from_micros(10),
            endurance_dwpd: 100.0,
            link_bandwidth: 3.2e9,
            cost_per_gb: RelativeCost(1.0 / 5.0),
            sourcing: Sourcing::Single,
            tail_probability: 0.0005,
            tail_multiplier: 4.0,
            knee_utilisation: 0.85,
        }
    }

    /// PCIe ZSSD: 1 M IOPS, O(100 µs) loaded, 4 KiB granularity,
    /// 1/10 DRAM cost (Table 1 row 3).
    pub fn zssd() -> Self {
        TechnologyProfile {
            kind: TechnologyKind::Zssd,
            max_read_iops: 1_000_000.0,
            base_read_latency: SimDuration::from_micros(20),
            access_granularity: Bytes::from_kib(4),
            supports_sgl_bit_bucket: true,
            write_bandwidth: 2.0e9,
            base_write_latency: SimDuration::from_micros(20),
            endurance_dwpd: 5.0,
            link_bandwidth: 3.2e9,
            cost_per_gb: RelativeCost(1.0 / 10.0),
            sourcing: Sourcing::Single,
            tail_probability: 0.005,
            tail_multiplier: 10.0,
            knee_utilisation: 0.6,
        }
    }

    /// DIMM 3DXP (Optane persistent memory): sub-microsecond latency, 64 B
    /// granularity, 1/3 DRAM cost; shares the DDR bus with DRAM (Table 1
    /// row 4).
    pub fn dimm_3dxp() -> Self {
        TechnologyProfile {
            kind: TechnologyKind::Dimm3dxp,
            max_read_iops: 60_000_000.0,
            base_read_latency: SimDuration::from_nanos(300),
            access_granularity: Bytes(64),
            supports_sgl_bit_bucket: false,
            write_bandwidth: 8.0e9,
            base_write_latency: SimDuration::from_nanos(400),
            endurance_dwpd: 300.0,
            link_bandwidth: 20.0e9,
            cost_per_gb: RelativeCost(1.0 / 3.0),
            sourcing: Sourcing::Single,
            tail_probability: 0.0,
            tail_multiplier: 1.0,
            knee_utilisation: 0.9,
        }
    }

    /// CXL-attached 3DXP: >10 M IOPS, ~0.5 µs, 64–128 B granularity
    /// (Table 1 row 5).
    pub fn cxl_3dxp() -> Self {
        TechnologyProfile {
            kind: TechnologyKind::Cxl3dxp,
            max_read_iops: 12_000_000.0,
            base_read_latency: SimDuration::from_nanos(500),
            access_granularity: Bytes(128),
            supports_sgl_bit_bucket: false,
            write_bandwidth: 10.0e9,
            base_write_latency: SimDuration::from_nanos(600),
            endurance_dwpd: 300.0,
            link_bandwidth: 25.0e9,
            cost_per_gb: RelativeCost(0.25),
            sourcing: Sourcing::Single,
            tail_probability: 0.0,
            tail_multiplier: 1.0,
            knee_utilisation: 0.9,
        }
    }

    /// DDR4 DRAM reference point used for the fast-memory side of the
    /// comparison (not an SCM; granularity is one cache line).
    pub fn dram() -> Self {
        TechnologyProfile {
            kind: TechnologyKind::Dram,
            max_read_iops: 500_000_000.0,
            base_read_latency: SimDuration::from_nanos(90),
            access_granularity: Bytes(64),
            supports_sgl_bit_bucket: false,
            write_bandwidth: 20.0e9,
            base_write_latency: SimDuration::from_nanos(90),
            endurance_dwpd: f64::INFINITY,
            link_bandwidth: 25.0e9,
            cost_per_gb: RelativeCost::DRAM,
            sourcing: Sourcing::Multi,
            tail_probability: 0.0,
            tail_multiplier: 1.0,
            knee_utilisation: 0.95,
        }
    }

    /// All the slow-memory candidates of paper Table 1, in table order.
    pub fn table1() -> Vec<TechnologyProfile> {
        vec![
            Self::nand_flash(),
            Self::optane_ssd(),
            Self::zssd(),
            Self::dimm_3dxp(),
            Self::cxl_3dxp(),
        ]
    }

    /// Expected interval between full-model updates, in days, before the
    /// device exceeds its rated endurance:
    /// `UpdateInterval = 365 * ModelSize / (DWPD * Capacity)` inverted to a
    /// per-update interval (paper §3).
    ///
    /// Returns `f64::INFINITY` when either the model is empty or endurance is
    /// unbounded.
    pub fn min_update_interval_days(&self, model_size: Bytes, device_capacity: Bytes) -> f64 {
        if model_size.is_zero() || !self.endurance_dwpd.is_finite() {
            return if model_size.is_zero() {
                f64::INFINITY
            } else {
                0.0
            };
        }
        if device_capacity.is_zero() {
            return f64::INFINITY;
        }
        // Writes per day the device tolerates, expressed in model refreshes.
        let refreshes_per_day =
            self.endurance_dwpd * device_capacity.as_gib_f64() / model_size.as_gib_f64();
        if refreshes_per_day <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / refreshes_per_day
        }
    }

    /// Lifetime write budget (5 years at the rated DWPD) for a device of the
    /// given capacity. Unbounded endurance yields `None`.
    pub fn lifetime_write_budget(&self, capacity: Bytes) -> Option<Bytes> {
        if !self.endurance_dwpd.is_finite() {
            return None;
        }
        let days = 5.0 * 365.0;
        let total_gib = self.endurance_dwpd * days * capacity.as_gib_f64();
        Some(Bytes((total_gib * 1024.0 * 1024.0 * 1024.0) as u64))
    }

    /// Bus transfer time for `bytes` at the profile's link bandwidth.
    pub fn transfer_time(&self, bytes: Bytes) -> SimDuration {
        if self.link_bandwidth <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes.as_u64() as f64 / self.link_bandwidth)
    }

    /// Human-readable one-line summary (used by the Table 1 experiment).
    pub fn summary(&self) -> String {
        format!(
            "{:<26} IOPS={:>5.1}M latency={:>9} granularity={:>8} endurance={:>6} DWPD cost={:>6.3} sourcing={}",
            self.kind.to_string(),
            self.max_read_iops / 1.0e6,
            self.base_read_latency.to_string(),
            self.access_granularity.to_string(),
            if self.endurance_dwpd.is_finite() {
                format!("{:.0}", self.endurance_dwpd)
            } else {
                "inf".to_string()
            },
            self.cost_per_gb.as_f64(),
            self.sourcing,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ordering_matches_paper() {
        let rows = TechnologyProfile::table1();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].kind, TechnologyKind::NandFlash);
        assert_eq!(rows[1].kind, TechnologyKind::OptaneSsd);
        assert_eq!(rows[2].kind, TechnologyKind::Zssd);
        assert_eq!(rows[3].kind, TechnologyKind::Dimm3dxp);
        assert_eq!(rows[4].kind, TechnologyKind::Cxl3dxp);
    }

    #[test]
    fn optane_beats_nand_on_iops_and_latency() {
        let nand = TechnologyProfile::nand_flash();
        let optane = TechnologyProfile::optane_ssd();
        assert!(optane.max_read_iops > 4.0 * nand.max_read_iops);
        assert!(optane.base_read_latency < nand.base_read_latency);
        assert!(optane.access_granularity < nand.access_granularity);
        assert!(optane.endurance_dwpd > nand.endurance_dwpd);
        // but nand is cheaper per GB
        assert!(nand.cost_per_gb.as_f64() < optane.cost_per_gb.as_f64());
    }

    #[test]
    fn cost_ordering_matches_table1() {
        // nand < zssd < optane ssd < dimm < dram
        let nand = TechnologyProfile::nand_flash().cost_per_gb.as_f64();
        let zssd = TechnologyProfile::zssd().cost_per_gb.as_f64();
        let optane = TechnologyProfile::optane_ssd().cost_per_gb.as_f64();
        let dimm = TechnologyProfile::dimm_3dxp().cost_per_gb.as_f64();
        let dram = TechnologyProfile::dram().cost_per_gb.as_f64();
        assert!(nand < zssd && zssd < optane && optane < dimm && dimm < dram);
    }

    #[test]
    fn update_interval_scales_with_model_size() {
        let nand = TechnologyProfile::nand_flash();
        let cap = Bytes::from_tib(2);
        let small = nand.min_update_interval_days(Bytes::from_gib(100), cap);
        let large = nand.min_update_interval_days(Bytes::from_gib(1000), cap);
        assert!(large > small);
        assert!(small > 0.0);
        // empty model can be "updated" at any frequency
        assert!(nand
            .min_update_interval_days(Bytes::ZERO, cap)
            .is_infinite());
    }

    #[test]
    fn lifetime_budget_only_for_finite_endurance() {
        let nand = TechnologyProfile::nand_flash();
        let dram = TechnologyProfile::dram();
        let cap = Bytes::from_tib(1);
        assert!(nand.lifetime_write_budget(cap).is_some());
        assert!(dram.lifetime_write_budget(cap).is_none());
        let budget = nand.lifetime_write_budget(cap).unwrap();
        // 5 DWPD for 5 years on a 1 TiB drive ≈ 9125 TiB
        assert!(budget > Bytes::from_tib(9000));
        assert!(budget < Bytes::from_tib(9300));
    }

    #[test]
    fn transfer_time_proportional_to_bytes() {
        let optane = TechnologyProfile::optane_ssd();
        let t512 = optane.transfer_time(Bytes(512));
        let t4k = optane.transfer_time(Bytes::from_kib(4));
        assert!(t4k > t512 * 7);
        assert!(t4k < t512 * 9);
    }

    #[test]
    fn summary_mentions_kind() {
        let s = TechnologyProfile::nand_flash().summary();
        assert!(s.contains("Nand"));
        assert!(s.contains("IOPS"));
    }

    #[test]
    fn display_impls() {
        assert_eq!(Sourcing::Multi.to_string(), "multi");
        assert!(TechnologyKind::Cxl3dxp.to_string().contains("CXL"));
    }
}

//! Sparse byte-addressable backing store for simulated devices.

use crate::error::DeviceError;
use sdm_metrics::units::Bytes;
use std::collections::HashMap;

/// Chunk size used for the sparse store. This is an implementation detail
/// independent of the device's access granularity.
const CHUNK: usize = 4096;

/// A sparse page store holding the bytes written to a simulated device.
///
/// Unwritten regions read back as zeroes, like a freshly formatted drive.
/// The store allocates 4 KiB chunks lazily so terabyte-scale *logical*
/// devices can be simulated while only the touched capacity is resident.
///
/// # Example
///
/// ```
/// use scm_device::PageStore;
/// use sdm_metrics::units::Bytes;
///
/// # fn main() -> Result<(), scm_device::DeviceError> {
/// let mut store = PageStore::new(Bytes::from_mib(1))?;
/// store.write_at(10, &[1, 2, 3])?;
/// assert_eq!(store.read_at(9, 5)?, vec![0, 1, 2, 3, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PageStore {
    capacity: Bytes,
    chunks: HashMap<u64, Box<[u8; CHUNK]>>,
}

impl PageStore {
    /// Creates an empty store of the given logical capacity.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ZeroCapacity`] for a zero-sized store.
    pub fn new(capacity: Bytes) -> Result<Self, DeviceError> {
        if capacity.is_zero() {
            return Err(DeviceError::ZeroCapacity);
        }
        Ok(PageStore {
            capacity,
            chunks: HashMap::new(),
        })
    }

    /// Logical capacity of the store.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Number of bytes actually resident (allocated chunks).
    pub fn resident_bytes(&self) -> Bytes {
        Bytes((self.chunks.len() * CHUNK) as u64)
    }

    fn check_range(&self, offset: u64, len: u64) -> Result<(), DeviceError> {
        let end = offset.checked_add(len);
        match end {
            Some(end) if end <= self.capacity.as_u64() => Ok(()),
            _ => Err(DeviceError::OutOfBounds {
                offset,
                len,
                capacity: self.capacity,
            }),
        }
    }

    /// Writes `data` starting at byte `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`] if the write extends past the
    /// device capacity.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), DeviceError> {
        self.check_range(offset, data.len() as u64)?;
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset + written as u64;
            let chunk_idx = pos / CHUNK as u64;
            let within = (pos % CHUNK as u64) as usize;
            let n = (CHUNK - within).min(data.len() - written);
            let chunk = self
                .chunks
                .entry(chunk_idx)
                .or_insert_with(|| Box::new([0u8; CHUNK]));
            chunk[within..within + n].copy_from_slice(&data[written..written + n]);
            written += n;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at byte `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`] if the read extends past the
    /// device capacity.
    pub fn read_at(&self, offset: u64, len: u64) -> Result<Vec<u8>, DeviceError> {
        self.check_range(offset, len)?;
        let mut out = vec![0u8; len as usize];
        self.read_into(offset, &mut out)?;
        Ok(out)
    }

    /// Reads into a caller-provided buffer (avoids allocation on hot paths).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`] if the read extends past the
    /// device capacity.
    pub fn read_into(&self, offset: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        self.check_range(offset, buf.len() as u64)?;
        let mut read = 0usize;
        while read < buf.len() {
            let pos = offset + read as u64;
            let chunk_idx = pos / CHUNK as u64;
            let within = (pos % CHUNK as u64) as usize;
            let n = (CHUNK - within).min(buf.len() - read);
            match self.chunks.get(&chunk_idx) {
                Some(chunk) => buf[read..read + n].copy_from_slice(&chunk[within..within + n]),
                None => buf[read..read + n].fill(0),
            }
            read += n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_rejected() {
        assert!(matches!(
            PageStore::new(Bytes::ZERO),
            Err(DeviceError::ZeroCapacity)
        ));
    }

    #[test]
    fn unwritten_reads_are_zero() {
        let store = PageStore::new(Bytes::from_kib(64)).unwrap();
        assert_eq!(store.read_at(100, 16).unwrap(), vec![0u8; 16]);
        assert_eq!(store.resident_bytes(), Bytes::ZERO);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut store = PageStore::new(Bytes::from_kib(64)).unwrap();
        let data: Vec<u8> = (0..=255).collect();
        store.write_at(1000, &data).unwrap();
        assert_eq!(store.read_at(1000, 256).unwrap(), data);
    }

    #[test]
    fn write_spanning_chunk_boundary() {
        let mut store = PageStore::new(Bytes::from_kib(64)).unwrap();
        let data = vec![0xAB; 1000];
        store.write_at((CHUNK - 500) as u64, &data).unwrap();
        let back = store.read_at((CHUNK - 500) as u64, 1000).unwrap();
        assert_eq!(back, data);
        assert_eq!(store.resident_bytes(), Bytes((2 * CHUNK) as u64));
    }

    #[test]
    fn out_of_bounds_accesses_rejected() {
        let mut store = PageStore::new(Bytes::from_kib(4)).unwrap();
        assert!(matches!(
            store.write_at(4096, &[1]),
            Err(DeviceError::OutOfBounds { .. })
        ));
        assert!(matches!(
            store.read_at(4000, 200),
            Err(DeviceError::OutOfBounds { .. })
        ));
        // exactly at the boundary is fine
        assert!(store.write_at(4095, &[1]).is_ok());
    }

    #[test]
    fn overflowing_offset_is_rejected() {
        let store = PageStore::new(Bytes::from_kib(4)).unwrap();
        assert!(matches!(
            store.read_at(u64::MAX - 2, 10),
            Err(DeviceError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn read_into_partial_overlap_with_written_chunk() {
        let mut store = PageStore::new(Bytes::from_kib(16)).unwrap();
        store.write_at(0, &[9u8; 8]).unwrap();
        let mut buf = [1u8; 16];
        store.read_into(4, &mut buf).unwrap();
        assert_eq!(&buf[..4], &[9, 9, 9, 9]);
        assert_eq!(&buf[4..], &[0u8; 12]);
    }
}

//! A single simulated SCM device.

use crate::block::PageStore;
use crate::error::DeviceError;
use crate::fault::{checksum64, FaultPlan};
use crate::latency::LoadedLatencyModel;
use crate::nvme::ReadCommand;
use crate::tech::TechnologyProfile;
use sdm_metrics::units::Bytes;
use sdm_metrics::{CounterSet, SimDuration, SimInstant};

/// Outcome of one read command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The requested payload bytes, concatenated in range order.
    pub data: Vec<u8>,
    /// Time the device and link needed to serve this command.
    pub device_latency: SimDuration,
    /// Bytes that crossed the host link (includes read amplification).
    pub bus_bytes: Bytes,
    /// Bytes the caller actually asked for.
    pub requested_bytes: Bytes,
    /// Device blocks touched on the media.
    pub blocks_touched: u64,
    /// End-to-end protection guard: [`checksum64`] of the payload as read
    /// from the media, stamped *before* any injected corruption. The host
    /// verifies it at IO completion (NVMe end-to-end data protection).
    pub checksum: u64,
}

/// Outcome of one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Time the device needed to persist the write.
    pub device_latency: SimDuration,
    /// Bytes written.
    pub written: Bytes,
}

/// Cumulative statistics for one device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    /// Read commands served.
    pub reads: u64,
    /// Write calls served.
    pub writes: u64,
    /// Payload bytes requested by readers.
    pub bytes_requested: Bytes,
    /// Bytes shipped over the link for reads.
    pub bytes_on_bus: Bytes,
    /// Bytes written over the device lifetime.
    pub bytes_written: Bytes,
    /// Total simulated device time spent on reads.
    pub read_time: SimDuration,
}

impl DeviceStats {
    /// Average read amplification observed so far (1.0 when no reads yet).
    pub fn read_amplification(&self) -> f64 {
        if self.bytes_requested.is_zero() {
            1.0
        } else {
            self.bytes_on_bus.as_u64() as f64 / self.bytes_requested.as_u64() as f64
        }
    }
}

/// One simulated SCM drive: a sparse byte store plus the technology's
/// performance envelope.
///
/// The device is *passive*: callers (normally the `io-engine` crate) tell it
/// the current queue depth, and the device answers with the data and the
/// simulated latency of the access. This keeps the device deterministic and
/// lets the IO engine own all queueing policy, matching the paper's split
/// between the NVMe device and the io_uring-based software stack.
#[derive(Debug)]
pub struct ScmDevice {
    name: String,
    profile: TechnologyProfile,
    store: PageStore,
    latency: LoadedLatencyModel,
    stats: DeviceStats,
    counters: CounterSet,
    lifetime_write_budget: Option<Bytes>,
    enforce_endurance: bool,
    fault: Option<FaultPlan>,
}

impl ScmDevice {
    /// Creates a device with the given profile and capacity.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ZeroCapacity`] when `capacity` is zero.
    pub fn new(
        name: impl Into<String>,
        profile: TechnologyProfile,
        capacity: Bytes,
    ) -> Result<Self, DeviceError> {
        let store = PageStore::new(capacity)?;
        let latency = LoadedLatencyModel::new(&profile);
        let lifetime_write_budget = profile.lifetime_write_budget(capacity);
        Ok(ScmDevice {
            name: name.into(),
            profile,
            store,
            latency,
            stats: DeviceStats::default(),
            counters: CounterSet::new(),
            lifetime_write_budget,
            enforce_endurance: false,
            fault: None,
        })
    }

    /// Device name (for reporting).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The technology profile backing this device.
    pub fn profile(&self) -> &TechnologyProfile {
        &self.profile
    }

    /// Logical capacity.
    pub fn capacity(&self) -> Bytes {
        self.store.capacity()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Named counters (exposed for dashboards / experiment output).
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// When enabled, writes beyond the rated lifetime endurance budget are
    /// rejected with [`DeviceError::EnduranceExhausted`]. Disabled by default
    /// so functional tests are not bounded by endurance.
    pub fn set_enforce_endurance(&mut self, enforce: bool) {
        self.enforce_endurance = enforce;
    }

    /// Attaches (or with `None`, detaches) a deterministic fault plan. Reads
    /// issued through [`ScmDevice::read_at`] consult the plan; an empty plan
    /// or no plan leaves the device's behaviour bit-identical.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The attached fault plan, if any (for reading injection counters).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Writes `data` at `offset` (model load / model update path).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`] for writes past the capacity and
    /// [`DeviceError::EnduranceExhausted`] when endurance enforcement is
    /// enabled and the budget is spent.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<WriteOutcome, DeviceError> {
        if self.enforce_endurance {
            if let Some(budget) = self.lifetime_write_budget {
                let after = self.stats.bytes_written + Bytes(data.len() as u64);
                if after > budget {
                    return Err(DeviceError::EnduranceExhausted {
                        written: self.stats.bytes_written,
                        budget,
                    });
                }
            }
        }
        self.store.write_at(offset, data)?;
        let written = Bytes(data.len() as u64);
        self.stats.writes += 1;
        self.stats.bytes_written += written;
        self.counters.counter("writes").incr();
        self.counters.counter("bytes_written").add(written.as_u64());
        let latency = self.profile.base_write_latency
            + SimDuration::from_secs_f64(
                written.as_u64() as f64 / self.profile.write_bandwidth.max(1.0),
            );
        Ok(WriteOutcome {
            device_latency: latency,
            written,
        })
    }

    /// Serves a read command at the given queue depth (number of IOs
    /// outstanding against this device, including this one).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`] if any range is outside the
    /// device, [`DeviceError::SglUnsupported`] if SGL mode is requested on a
    /// technology without bit-bucket support and [`DeviceError::EmptyCommand`]
    /// for commands with no payload.
    pub fn read(
        &mut self,
        cmd: &ReadCommand,
        queue_depth: usize,
    ) -> Result<ReadOutcome, DeviceError> {
        self.read_at(cmd, queue_depth, SimInstant::EPOCH)
    }

    /// Serves a read command issued at virtual instant `now`.
    ///
    /// Identical to [`ScmDevice::read`] except that an attached
    /// [`FaultPlan`] is consulted: the issue instant selects latency-storm
    /// windows, and the plan's pinned RNG decides transient errors, stuck
    /// IOs and payload corruption. With no plan attached the instant is
    /// ignored and the behaviour is bit-identical to `read`.
    ///
    /// # Errors
    ///
    /// Everything [`ScmDevice::read`] returns, plus
    /// [`DeviceError::TransientRead`] when the fault plan injects a
    /// retryable failure.
    pub fn read_at(
        &mut self,
        cmd: &ReadCommand,
        queue_depth: usize,
        now: SimInstant,
    ) -> Result<ReadOutcome, DeviceError> {
        if cmd.requested_bytes().is_zero() {
            return Err(DeviceError::EmptyCommand);
        }
        let bus_bytes = cmd.bus_bytes(&self.profile)?;
        let blocks = cmd.blocks_touched(self.profile.access_granularity);

        let mut data = Vec::with_capacity(cmd.requested_bytes().as_u64() as usize);
        for range in cmd.ranges() {
            let part = self.store.read_at(range.offset, range.len as u64)?;
            data.extend_from_slice(&part);
        }
        // Guard tag over the payload as the media holds it; injected
        // corruption below happens after, so the host can always detect it.
        let checksum = checksum64(&data);

        // Media latency at the current load plus the link transfer time for
        // the bytes that actually cross the bus. Multi-block commands pay the
        // media time once per extra block (they are sequential inside the
        // controller).
        let service = self.latency.base_latency().as_secs_f64().max(1e-9);
        let utilisation =
            queue_depth.max(1) as f64 / (service * self.profile.max_read_iops).max(1.0);
        let media = self.latency.next_read_latency(utilisation);
        let extra_blocks = blocks.saturating_sub(1);
        let media_total = media + (media / 4) * extra_blocks;
        let transfer = self.profile.transfer_time(bus_bytes);
        // At saturation the device retires at most `max_read_iops` commands
        // per second, so with `queue_depth` outstanding the observed latency
        // cannot drop below the Little's-law bound.
        let queueing_floor =
            SimDuration::from_secs_f64(queue_depth as f64 / self.profile.max_read_iops.max(1.0));
        let mut latency = (media_total + transfer).max(queueing_floor);

        if let Some(plan) = self.fault.as_mut() {
            let decision = plan.decide(now);
            if decision.transient_error {
                // A failed command consumes no stats: the engine re-issues
                // it and the retry is accounted like any other read.
                return Err(DeviceError::TransientRead {
                    device: self.name.clone(),
                });
            }
            if decision.storm_multiplier > 1.0 {
                latency = SimDuration::from_nanos(
                    (latency.as_nanos() as f64 * decision.storm_multiplier).round() as u64,
                );
            }
            if decision.stuck {
                latency = latency.max(plan.stuck_latency());
            }
            if decision.corrupt {
                let bit = plan.corrupt_bit(data.len());
                data[bit / 8] ^= 1 << (bit % 8);
            }
        }

        self.stats.reads += 1;
        self.stats.bytes_requested += cmd.requested_bytes();
        self.stats.bytes_on_bus += bus_bytes;
        self.stats.read_time += latency;
        self.counters.counter("reads").incr();
        self.counters.counter("bus_bytes").add(bus_bytes.as_u64());

        Ok(ReadOutcome {
            data,
            device_latency: latency,
            bus_bytes,
            requested_bytes: cmd.requested_bytes(),
            blocks_touched: blocks,
            checksum,
        })
    }

    /// Effective IOPS this device can sustain while staying under the given
    /// per-IO latency target (used for host sizing, paper Table 10).
    pub fn iops_at_latency_target(&self, target: SimDuration) -> f64 {
        self.latency.iops_at_latency_target(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvme::{AccessMode, SglRange};

    fn small_optane() -> ScmDevice {
        ScmDevice::new(
            "test-optane",
            TechnologyProfile::optane_ssd(),
            Bytes::from_mib(4),
        )
        .unwrap()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut dev = small_optane();
        let payload: Vec<u8> = (0..200u16).map(|x| (x % 251) as u8).collect();
        dev.write_at(4096, &payload).unwrap();
        let out = dev.read(&ReadCommand::sgl(4096, 200), 1).unwrap();
        assert_eq!(out.data, payload);
        assert_eq!(out.requested_bytes, Bytes(200));
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stats().writes, 1);
    }

    #[test]
    fn block_mode_reports_amplification() {
        let mut dev =
            ScmDevice::new("nand", TechnologyProfile::nand_flash(), Bytes::from_mib(4)).unwrap();
        dev.write_at(0, &[1u8; 256]).unwrap();
        let out = dev.read(&ReadCommand::block(0, 128), 1).unwrap();
        assert_eq!(out.bus_bytes, Bytes::from_kib(4));
        assert_eq!(out.blocks_touched, 1);
        assert!(dev.stats().read_amplification() > 30.0);
    }

    #[test]
    fn sgl_latency_not_larger_than_block_latency() {
        let mut dev_a = ScmDevice::new(
            "nand-a",
            TechnologyProfile::nand_flash(),
            Bytes::from_mib(4),
        )
        .unwrap();
        let mut dev_b = ScmDevice::new(
            "nand-b",
            TechnologyProfile::nand_flash(),
            Bytes::from_mib(4),
        )
        .unwrap();
        let block = dev_a.read(&ReadCommand::block(0, 128), 1).unwrap();
        let sgl = dev_b.read(&ReadCommand::sgl(0, 128), 1).unwrap();
        assert!(sgl.device_latency <= block.device_latency);
        // The saving comes from the transfer component, a few percent of the
        // total (paper §4.1.1 reports 3-5%).
        let saving = 1.0
            - sgl.device_latency.as_micros_f64() / block.device_latency.as_micros_f64().max(1e-9);
        assert!(saving > 0.0 && saving < 0.25, "saving = {saving}");
    }

    #[test]
    fn loaded_reads_are_slower_than_unloaded() {
        let mut dev =
            ScmDevice::new("nand", TechnologyProfile::nand_flash(), Bytes::from_mib(4)).unwrap();
        let light = dev.read(&ReadCommand::sgl(0, 128), 1).unwrap();
        let heavy = dev.read(&ReadCommand::sgl(0, 128), 200).unwrap();
        assert!(heavy.device_latency > light.device_latency);
    }

    #[test]
    fn out_of_bounds_read_fails() {
        let mut dev = small_optane();
        let err = dev
            .read(&ReadCommand::sgl(Bytes::from_mib(4).as_u64(), 8), 1)
            .unwrap_err();
        assert!(matches!(err, DeviceError::OutOfBounds { .. }));
    }

    #[test]
    fn endurance_enforcement_rejects_excess_writes() {
        let mut profile = TechnologyProfile::nand_flash();
        profile.endurance_dwpd = 1.0 / (5.0 * 365.0); // budget = 1x capacity
        let mut dev = ScmDevice::new("tiny", profile, Bytes::from_kib(4)).unwrap();
        dev.set_enforce_endurance(true);
        // Budget is roughly one full capacity (~4 KiB); the first half-sized
        // write fits, a subsequent full-capacity write does not.
        dev.write_at(0, &vec![0u8; 2048]).unwrap();
        let err = dev.write_at(0, &vec![0u8; 4096]).unwrap_err();
        assert!(matches!(err, DeviceError::EnduranceExhausted { .. }));
    }

    #[test]
    fn multi_range_read_concatenates_in_order() {
        let mut dev = small_optane();
        dev.write_at(0, &[1u8; 64]).unwrap();
        dev.write_at(1024, &[2u8; 64]).unwrap();
        let cmd = ReadCommand::with_ranges(
            vec![SglRange::new(0, 64), SglRange::new(1024, 64)],
            AccessMode::Sgl,
        )
        .unwrap();
        let out = dev.read(&cmd, 1).unwrap();
        assert_eq!(&out.data[..64], &[1u8; 64]);
        assert_eq!(&out.data[64..], &[2u8; 64]);
    }

    #[test]
    fn read_outcome_checksum_matches_payload() {
        let mut dev = small_optane();
        dev.write_at(0, &[5u8; 128]).unwrap();
        let out = dev.read(&ReadCommand::sgl(0, 128), 1).unwrap();
        assert_eq!(out.checksum, checksum64(&out.data));
    }

    #[test]
    fn attached_empty_plan_is_bit_identical() {
        let mut plain = small_optane();
        let mut faulted = small_optane();
        faulted.set_fault_plan(Some(FaultPlan::new(11)));
        for i in 0..20u64 {
            let a = plain.read(&ReadCommand::sgl(i * 512, 128), 3).unwrap();
            let b = faulted
                .read_at(
                    &ReadCommand::sgl(i * 512, 128),
                    3,
                    SimInstant::from_nanos(i * 1_000),
                )
                .unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(faulted.fault_plan().unwrap().stats().total(), 0);
    }

    #[test]
    fn injected_corruption_breaks_the_guard_checksum() {
        let mut dev = small_optane();
        dev.write_at(0, &[3u8; 256]).unwrap();
        dev.set_fault_plan(Some(FaultPlan::new(2).with_corruption(1.0)));
        let out = dev
            .read_at(&ReadCommand::sgl(0, 256), 1, SimInstant::EPOCH)
            .unwrap();
        assert_ne!(
            checksum64(&out.data),
            out.checksum,
            "corrupted payload must fail guard verification"
        );
        assert_eq!(dev.fault_plan().unwrap().stats().corruptions, 1);
    }

    #[test]
    fn injected_transient_error_is_retryable_and_unaccounted() {
        let mut dev = small_optane();
        dev.set_fault_plan(Some(FaultPlan::new(4).with_transient_errors(1.0)));
        let err = dev
            .read_at(&ReadCommand::sgl(0, 64), 1, SimInstant::EPOCH)
            .unwrap_err();
        assert!(err.is_transient());
        assert_eq!(dev.stats().reads, 0, "failed reads do not count as served");
    }

    #[test]
    fn storm_and_stuck_inflate_latency() {
        let baseline = small_optane()
            .read(&ReadCommand::sgl(0, 128), 1)
            .unwrap()
            .device_latency;

        let mut stormy = small_optane();
        stormy.set_fault_plan(Some(FaultPlan::new(0).with_storm(
            SimInstant::EPOCH,
            SimInstant::from_nanos(u64::MAX),
            8.0,
        )));
        let storm_latency = stormy
            .read_at(&ReadCommand::sgl(0, 128), 1, SimInstant::from_nanos(5))
            .unwrap()
            .device_latency;
        assert!(storm_latency >= baseline * 7, "storm must inflate latency");

        let mut sticky = small_optane();
        let hang = SimDuration::from_millis(80);
        sticky.set_fault_plan(Some(FaultPlan::new(0).with_stuck(1.0, hang)));
        let stuck_latency = sticky
            .read_at(&ReadCommand::sgl(0, 128), 1, SimInstant::EPOCH)
            .unwrap()
            .device_latency;
        assert_eq!(stuck_latency, hang);
    }

    #[test]
    fn stats_accumulate() {
        let mut dev = small_optane();
        for i in 0..10 {
            dev.read(&ReadCommand::sgl(i * 512, 128), 4).unwrap();
        }
        assert_eq!(dev.stats().reads, 10);
        assert_eq!(dev.stats().bytes_requested, Bytes(1280));
        assert_eq!(dev.counters().value("reads"), 10);
    }
}

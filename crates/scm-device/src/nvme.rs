//! NVMe-style read commands, including SGL bit-bucket sub-block reads.
//!
//! Paper §4.1.1: standard block devices only read in multiples of the block
//! size (4 KiB for Nand), which for 128–512 B embedding rows wastes ~75 % of
//! the bus bandwidth and forces an extra memcpy on the host. The paper's
//! kernel/NVMe-driver extension uses the Scatter Gather List *bit bucket*
//! descriptor so the device discards the uninteresting parts of a block and
//! ships only the requested byte ranges (down to DWORD granularity).
//!
//! [`ReadCommand`] models both paths: [`AccessMode::Block`] reads whole
//! device blocks (read amplification), [`AccessMode::Sgl`] reads exact byte
//! ranges rounded up to 4-byte DWORDs.

use crate::error::DeviceError;
use crate::tech::TechnologyProfile;
use sdm_metrics::units::Bytes;

/// DWORD granularity required by the SGL path.
pub const DWORD: u64 = 4;

/// One contiguous byte range requested from the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SglRange {
    /// Byte offset on the device.
    pub offset: u64,
    /// Number of bytes requested.
    pub len: u32,
}

impl SglRange {
    /// Creates a range.
    pub fn new(offset: u64, len: u32) -> Self {
        SglRange { offset, len }
    }

    /// End offset (exclusive).
    pub fn end(&self) -> u64 {
        self.offset + self.len as u64
    }

    /// The range aligned outward to DWORD boundaries, as the SGL transport
    /// actually transfers it.
    pub fn dword_aligned(&self) -> SglRange {
        let start = self.offset - (self.offset % DWORD);
        let end = self.end().div_ceil(DWORD) * DWORD;
        SglRange {
            offset: start,
            len: (end - start) as u32,
        }
    }
}

/// Whether a read uses whole-block transfers or SGL bit-bucket sub-block
/// transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Conventional block IO: every touched device block is shipped over
    /// the bus in full (read amplification).
    Block,
    /// SGL bit-bucket IO: only the requested ranges (DWORD aligned) cross
    /// the bus. Requires [`TechnologyProfile::supports_sgl_bit_bucket`].
    Sgl,
}

/// A read command against one device.
///
/// A command may carry several ranges (one NVMe command can gather multiple
/// rows that live in the same block neighbourhood), although the common case
/// in this stack is a single embedding row per command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadCommand {
    ranges: Vec<SglRange>,
    mode: AccessMode,
}

impl ReadCommand {
    /// Creates a single-range command using whole-block IO.
    pub fn block(offset: u64, len: u32) -> Self {
        ReadCommand {
            ranges: vec![SglRange::new(offset, len)],
            mode: AccessMode::Block,
        }
    }

    /// Creates a single-range command using SGL bit-bucket IO.
    pub fn sgl(offset: u64, len: u32) -> Self {
        ReadCommand {
            ranges: vec![SglRange::new(offset, len)],
            mode: AccessMode::Sgl,
        }
    }

    /// Creates a multi-range command.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EmptyCommand`] when `ranges` is empty or all
    /// ranges have zero length.
    pub fn with_ranges(ranges: Vec<SglRange>, mode: AccessMode) -> Result<Self, DeviceError> {
        if ranges.is_empty() || ranges.iter().all(|r| r.len == 0) {
            return Err(DeviceError::EmptyCommand);
        }
        Ok(ReadCommand { ranges, mode })
    }

    /// The requested ranges.
    pub fn ranges(&self) -> &[SglRange] {
        &self.ranges
    }

    /// The access mode.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// Total payload bytes the caller asked for.
    pub fn requested_bytes(&self) -> Bytes {
        Bytes(self.ranges.iter().map(|r| r.len as u64).sum())
    }

    /// Number of device blocks (of `granularity`) this command touches.
    ///
    /// This is the media-side work regardless of the access mode: the device
    /// always senses whole blocks internally.
    pub fn blocks_touched(&self, granularity: Bytes) -> u64 {
        let g = granularity.as_u64().max(1);
        let mut blocks: Vec<(u64, u64)> = self
            .ranges
            .iter()
            .filter(|r| r.len > 0)
            .map(|r| (r.offset / g, (r.end() - 1) / g))
            .collect();
        blocks.sort_unstable();
        // Count unique blocks over the merged intervals.
        let mut count = 0u64;
        let mut last_counted: Option<u64> = None;
        for (start, end) in blocks {
            let from = match last_counted {
                Some(l) if l >= start => l + 1,
                _ => start,
            };
            if from <= end {
                count += end - from + 1;
                last_counted = Some(end);
            }
        }
        count
    }

    /// Bytes that cross the host link for this command under the given
    /// technology, i.e. including read amplification for block mode and
    /// DWORD rounding for SGL mode.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::SglUnsupported`] when SGL mode is requested on
    /// a technology without bit-bucket support.
    pub fn bus_bytes(&self, profile: &TechnologyProfile) -> Result<Bytes, DeviceError> {
        match self.mode {
            AccessMode::Block => Ok(Bytes(
                self.blocks_touched(profile.access_granularity)
                    * profile.access_granularity.as_u64(),
            )),
            AccessMode::Sgl => {
                if !profile.supports_sgl_bit_bucket {
                    return Err(DeviceError::SglUnsupported {
                        technology: profile.kind.to_string(),
                    });
                }
                Ok(Bytes(
                    self.ranges
                        .iter()
                        .map(|r| r.dword_aligned().len as u64)
                        .sum(),
                ))
            }
        }
    }

    /// The read-amplification factor: bus bytes divided by requested bytes.
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError::SglUnsupported`] from [`Self::bus_bytes`].
    pub fn read_amplification(&self, profile: &TechnologyProfile) -> Result<f64, DeviceError> {
        let requested = self.requested_bytes().as_u64().max(1);
        Ok(self.bus_bytes(profile)?.as_u64() as f64 / requested as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dword_alignment_rounds_outward() {
        let r = SglRange::new(10, 7); // [10, 17)
        let a = r.dword_aligned(); // [8, 20)
        assert_eq!(a.offset, 8);
        assert_eq!(a.len, 12);

        let aligned = SglRange::new(8, 16);
        assert_eq!(aligned.dword_aligned(), aligned);
    }

    #[test]
    fn empty_command_rejected() {
        assert_eq!(
            ReadCommand::with_ranges(vec![], AccessMode::Sgl),
            Err(DeviceError::EmptyCommand)
        );
        assert_eq!(
            ReadCommand::with_ranges(vec![SglRange::new(0, 0)], AccessMode::Block),
            Err(DeviceError::EmptyCommand)
        );
    }

    #[test]
    fn block_mode_amplifies_small_reads() {
        let nand = TechnologyProfile::nand_flash();
        let cmd = ReadCommand::block(100, 128);
        assert_eq!(cmd.blocks_touched(nand.access_granularity), 1);
        assert_eq!(cmd.bus_bytes(&nand).unwrap(), Bytes::from_kib(4));
        let amp = cmd.read_amplification(&nand).unwrap();
        assert!((amp - 32.0).abs() < 1e-9);
    }

    #[test]
    fn sgl_mode_saves_bus_bandwidth() {
        let nand = TechnologyProfile::nand_flash();
        let cmd = ReadCommand::sgl(100, 128);
        assert_eq!(cmd.bus_bytes(&nand).unwrap(), Bytes(128));
        assert!((cmd.read_amplification(&nand).unwrap() - 1.0).abs() < 1e-9);
        // Paper: only reading the needed parts saves ~75% of bus bandwidth
        // for 128B rows on 512B-granularity Optane.
        let optane = TechnologyProfile::optane_ssd();
        let block = ReadCommand::block(100, 128).bus_bytes(&optane).unwrap();
        let sgl = ReadCommand::sgl(100, 128).bus_bytes(&optane).unwrap();
        let saving = 1.0 - sgl.as_u64() as f64 / block.as_u64() as f64;
        assert!(saving >= 0.70, "saving = {saving}");
    }

    #[test]
    fn sgl_rejected_without_support() {
        let dimm = TechnologyProfile::dimm_3dxp();
        let cmd = ReadCommand::sgl(0, 64);
        assert!(matches!(
            cmd.bus_bytes(&dimm),
            Err(DeviceError::SglUnsupported { .. })
        ));
    }

    #[test]
    fn request_spanning_two_blocks_touches_two() {
        let nand = TechnologyProfile::nand_flash();
        let cmd = ReadCommand::block(4000, 200); // crosses the 4096 boundary
        assert_eq!(cmd.blocks_touched(nand.access_granularity), 2);
        assert_eq!(cmd.bus_bytes(&nand).unwrap(), Bytes::from_kib(8));
    }

    #[test]
    fn multi_range_in_same_block_counts_once() {
        let nand = TechnologyProfile::nand_flash();
        let cmd = ReadCommand::with_ranges(
            vec![SglRange::new(0, 128), SglRange::new(512, 128)],
            AccessMode::Block,
        )
        .unwrap();
        assert_eq!(cmd.blocks_touched(nand.access_granularity), 1);
        assert_eq!(cmd.requested_bytes(), Bytes(256));
    }

    #[test]
    fn multi_range_across_blocks_merges_correctly() {
        let g = Bytes::from_kib(4);
        let cmd = ReadCommand::with_ranges(
            vec![
                SglRange::new(0, 128),
                SglRange::new(8192, 128),
                SglRange::new(8300, 64),
            ],
            AccessMode::Block,
        )
        .unwrap();
        assert_eq!(cmd.blocks_touched(g), 2);
    }
}

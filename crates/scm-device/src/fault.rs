//! Deterministic fault injection for simulated devices.
//!
//! A [`FaultPlan`] attaches to one [`crate::ScmDevice`] and perturbs its
//! read path with the failure modes production SCM deployments see:
//! transient (retryable) read errors, latency-spike storms over virtual-time
//! windows, stuck IOs that hang far past the normal service time, and
//! bit-flip payload corruption. Every decision is drawn from a pinned
//! xoshiro256** stream seeded at construction, and latency storms are keyed
//! off the *virtual* issue instant — so a given `(seed, IO sequence)` pair
//! replays the identical fault sequence on every run, which is what lets
//! the resilience tests and the `fault_resilience` bench section gate on
//! bit-identical replay.
//!
//! An empty plan (all rates zero, no storm windows) injects nothing and
//! leaves the device's behaviour bit-identical to having no plan attached.
//!
//! Corruption is paired with end-to-end data protection: the device stamps
//! every [`crate::ReadOutcome`] with a [`checksum64`] of the payload *as
//! read from the media*, then flips a payload bit afterwards when the plan
//! says so — exactly the shape of NVMe end-to-end protection, where the
//! guard tag travels with the data and the host verifies it on completion.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdm_metrics::{SimDuration, SimInstant};

/// FNV-1a 64-bit checksum of a byte slice.
///
/// Used as the per-row guard tag of the end-to-end data protection path: a
/// single flipped bit always changes the digest, so every injected
/// corruption is detectable at IO completion.
///
/// # Example
///
/// ```
/// use scm_device::checksum64;
///
/// let mut row = vec![7u8; 64];
/// let guard = checksum64(&row);
/// row[13] ^= 0x10; // single bit flip
/// assert_ne!(checksum64(&row), guard);
/// ```
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A latency-storm window: reads issued at a virtual instant inside
/// `[start, end)` have their device latency multiplied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// First instant of the storm (inclusive).
    pub start: SimInstant,
    /// End of the storm (exclusive).
    pub end: SimInstant,
    /// Multiplier applied to the device latency of reads issued inside the
    /// window. Values ≤ 1 leave the latency unchanged.
    pub latency_multiplier: f64,
}

impl FaultWindow {
    /// Whether the window covers the given instant.
    pub fn contains(&self, t: SimInstant) -> bool {
        self.start <= t && t < self.end
    }
}

/// Cumulative injection counters of one [`FaultPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads failed with a transient (retryable) error.
    pub transient_errors: u64,
    /// Reads whose payload had a bit flipped after the guard checksum was
    /// taken.
    pub corruptions: u64,
    /// Reads stuck far past the normal service time.
    pub stuck: u64,
    /// Reads issued inside a latency-storm window.
    pub storm_reads: u64,
}

impl FaultStats {
    /// Total faults injected across all modes.
    pub fn total(&self) -> u64 {
        self.transient_errors + self.corruptions + self.stuck + self.storm_reads
    }

    /// Folds another plan's counters into this one (host-level reporting).
    pub fn merge(&mut self, other: &FaultStats) {
        self.transient_errors += other.transient_errors;
        self.corruptions += other.corruptions;
        self.stuck += other.stuck;
        self.storm_reads += other.storm_reads;
    }
}

/// What the plan decided for one read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FaultDecision {
    /// Fail the read with a transient error (preempts everything else).
    pub transient_error: bool,
    /// Pin the read's latency to at least the plan's stuck latency.
    pub stuck: bool,
    /// Flip one payload bit after the guard checksum is taken.
    pub corrupt: bool,
    /// Latency multiplier from the active storm window (1.0 outside).
    pub storm_multiplier: f64,
}

/// A seeded, deterministic per-device fault schedule.
///
/// Rates are per-read probabilities in `[0, 1]`; out-of-range values are
/// clamped. The probability draws happen in a fixed order on every read, so
/// the fault sequence depends only on the seed and the IO sequence — not on
/// which faults actually fired.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    transient_error_rate: f64,
    corrupt_rate: f64,
    stuck_rate: f64,
    stuck_latency: SimDuration,
    storms: Vec<FaultWindow>,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultPlan {
    /// Creates an empty plan (injects nothing) with a pinned RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_error_rate: 0.0,
            corrupt_rate: 0.0,
            stuck_rate: 0.0,
            stuck_latency: SimDuration::from_millis(50),
            storms: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: FaultStats::default(),
        }
    }

    /// Sets the per-read probability of a transient (retryable) error.
    #[must_use]
    pub fn with_transient_errors(mut self, rate: f64) -> Self {
        self.transient_error_rate = clamp_rate(rate);
        self
    }

    /// Sets the per-read probability of a single-bit payload corruption.
    #[must_use]
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corrupt_rate = clamp_rate(rate);
        self
    }

    /// Sets the per-read probability of a stuck IO and the latency such an
    /// IO hangs for (the read completes, but only after `latency` — far
    /// past any per-IO deadline the engine enforces).
    #[must_use]
    pub fn with_stuck(mut self, rate: f64, latency: SimDuration) -> Self {
        self.stuck_rate = clamp_rate(rate);
        self.stuck_latency = latency;
        self
    }

    /// Adds a latency-storm window: reads issued in `[start, end)` have
    /// their latency multiplied by `latency_multiplier`.
    #[must_use]
    pub fn with_storm(
        mut self,
        start: SimInstant,
        end: SimInstant,
        latency_multiplier: f64,
    ) -> Self {
        self.storms.push(FaultWindow {
            start,
            end,
            latency_multiplier,
        });
        self
    }

    /// The seed the plan's RNG was pinned with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.transient_error_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.stuck_rate == 0.0
            && self.storms.is_empty()
    }

    /// Cumulative injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The latency a stuck IO hangs for.
    pub fn stuck_latency(&self) -> SimDuration {
        self.stuck_latency
    }

    /// Rewinds the plan to its freshly-seeded state (RNG and counters), so
    /// the identical fault sequence replays.
    pub fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.stats = FaultStats::default();
    }

    /// Decides the fate of one read issued at virtual instant `now`.
    ///
    /// Always draws the same number of probability samples so the RNG
    /// stream stays aligned with the IO sequence regardless of outcomes.
    pub(crate) fn decide(&mut self, now: SimInstant) -> FaultDecision {
        let transient_error = self.rng.gen_bool(self.transient_error_rate);
        let stuck = self.rng.gen_bool(self.stuck_rate);
        let corrupt = self.rng.gen_bool(self.corrupt_rate);
        let storm_multiplier = self
            .storms
            .iter()
            .find(|w| w.contains(now))
            .map_or(1.0, |w| w.latency_multiplier);
        if transient_error {
            self.stats.transient_errors += 1;
            return FaultDecision {
                transient_error: true,
                stuck: false,
                corrupt: false,
                storm_multiplier: 1.0,
            };
        }
        if storm_multiplier > 1.0 {
            self.stats.storm_reads += 1;
        }
        if stuck {
            self.stats.stuck += 1;
        }
        if corrupt {
            self.stats.corruptions += 1;
        }
        FaultDecision {
            transient_error: false,
            stuck,
            corrupt,
            storm_multiplier,
        }
    }

    /// Picks the payload bit to flip for a corrupted read of `len` bytes.
    pub(crate) fn corrupt_bit(&mut self, len: usize) -> usize {
        debug_assert!(len > 0, "corrupting an empty payload");
        self.rng.gen_range(0..len.max(1) * 8)
    }
}

fn clamp_rate(rate: f64) -> f64 {
    if rate.is_finite() {
        rate.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn checksum_detects_single_bit_flips() {
        let data: Vec<u8> = (0..255u8).collect();
        let guard = checksum64(&data);
        for byte in [0usize, 17, 254] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(checksum64(&flipped), guard, "flip {byte}:{bit} missed");
            }
        }
        assert_eq!(checksum64(&data), guard);
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let mut plan = FaultPlan::new(7);
        assert!(plan.is_empty());
        for i in 0..1_000u64 {
            let d = plan.decide(SimInstant::from_nanos(i));
            assert!(!d.transient_error && !d.stuck && !d.corrupt);
            assert_eq!(d.storm_multiplier, 1.0);
        }
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn identical_seeds_replay_identical_decisions() {
        let build = || {
            FaultPlan::new(42)
                .with_transient_errors(0.1)
                .with_corruption(0.05)
                .with_stuck(0.02, SimDuration::from_millis(10))
                .with_storm(
                    SimInstant::from_nanos(100),
                    SimInstant::from_nanos(500),
                    4.0,
                )
        };
        let mut a = build();
        let mut b = build();
        for i in 0..2_000u64 {
            assert_eq!(
                a.decide(SimInstant::from_nanos(i)),
                b.decide(SimInstant::from_nanos(i))
            );
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "rates this high must fire");

        // reset() rewinds to the same sequence.
        let before = *a.stats();
        a.reset();
        for i in 0..2_000u64 {
            a.decide(SimInstant::from_nanos(i));
        }
        assert_eq!(*a.stats(), before);
    }

    #[test]
    fn storm_windows_cover_only_their_interval() {
        let mut plan = FaultPlan::new(1).with_storm(
            SimInstant::from_nanos(10),
            SimInstant::from_nanos(20),
            8.0,
        );
        assert!(!plan.is_empty());
        assert_eq!(plan.decide(SimInstant::from_nanos(9)).storm_multiplier, 1.0);
        assert_eq!(
            plan.decide(SimInstant::from_nanos(10)).storm_multiplier,
            8.0
        );
        assert_eq!(
            plan.decide(SimInstant::from_nanos(19)).storm_multiplier,
            8.0
        );
        assert_eq!(
            plan.decide(SimInstant::from_nanos(20)).storm_multiplier,
            1.0
        );
        assert_eq!(plan.stats().storm_reads, 2);
    }

    #[test]
    fn rates_are_clamped() {
        let plan = FaultPlan::new(3)
            .with_transient_errors(7.0)
            .with_corruption(-2.0)
            .with_stuck(f64::NAN, SimDuration::from_millis(1));
        assert_eq!(plan.transient_error_rate, 1.0);
        assert_eq!(plan.corrupt_rate, 0.0);
        assert_eq!(plan.stuck_rate, 0.0);
    }

    #[test]
    fn corrupt_bit_stays_in_payload() {
        let mut plan = FaultPlan::new(9).with_corruption(1.0);
        for _ in 0..100 {
            assert!(plan.corrupt_bit(16) < 128);
        }
    }
}

//! Error type for the simulated device layer.

use sdm_metrics::units::Bytes;
use std::error::Error;
use std::fmt;

/// Errors returned by the simulated SCM devices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A read or write referenced a byte range outside the device capacity.
    OutOfBounds {
        /// First byte of the offending access.
        offset: u64,
        /// Length of the offending access.
        len: u64,
        /// Device capacity.
        capacity: Bytes,
    },
    /// A device was created with zero capacity.
    ZeroCapacity,
    /// A read command carried no ranges / zero length.
    EmptyCommand,
    /// The command requested SGL (sub-block) access on a technology that
    /// does not support the bit-bucket extension.
    SglUnsupported {
        /// Human-readable technology name.
        technology: String,
    },
    /// The addressed device does not exist in the [`crate::DeviceArray`].
    UnknownDevice {
        /// Index that was requested.
        index: usize,
        /// Number of devices in the array.
        len: usize,
    },
    /// A write was rejected because the device has exhausted its rated
    /// endurance budget.
    EnduranceExhausted {
        /// Total bytes written so far.
        written: Bytes,
        /// Lifetime write budget.
        budget: Bytes,
    },
    /// A read failed transiently (injected by a [`crate::FaultPlan`] or, in
    /// a real deployment, a media/link hiccup). Safe to retry.
    TransientRead {
        /// Name of the device that failed the read.
        device: String,
    },
}

impl DeviceError {
    /// Whether re-issuing the same command can reasonably succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, DeviceError::TransientRead { .. })
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) is outside device capacity {capacity}"
            ),
            DeviceError::ZeroCapacity => write!(f, "device capacity must be non-zero"),
            DeviceError::EmptyCommand => write!(f, "read command carries no bytes"),
            DeviceError::SglUnsupported { technology } => {
                write!(
                    f,
                    "technology {technology} does not support SGL bit-bucket reads"
                )
            }
            DeviceError::UnknownDevice { index, len } => {
                write!(
                    f,
                    "device index {index} out of range (array has {len} devices)"
                )
            }
            DeviceError::EnduranceExhausted { written, budget } => write!(
                f,
                "endurance budget exhausted: {written} written of {budget} lifetime budget"
            ),
            DeviceError::TransientRead { device } => {
                write!(f, "transient read failure on device {device} (retryable)")
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DeviceError::OutOfBounds {
            offset: 10,
            len: 20,
            capacity: Bytes::from_kib(1),
        };
        let msg = e.to_string();
        assert!(msg.contains("10"));
        assert!(msg.contains("capacity"));

        assert!(DeviceError::ZeroCapacity.to_string().contains("non-zero"));
        assert!(DeviceError::EmptyCommand.to_string().contains("no bytes"));
        assert!(DeviceError::SglUnsupported {
            technology: "PCIe Nand Flash".into()
        }
        .to_string()
        .contains("bit-bucket"));
        assert!(DeviceError::UnknownDevice { index: 3, len: 2 }
            .to_string()
            .contains("3"));
        let transient = DeviceError::TransientRead {
            device: "ssd0".into(),
        };
        assert!(transient.to_string().contains("ssd0"));
        assert!(transient.is_transient());
        assert!(!DeviceError::EmptyCommand.is_transient());
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DeviceError>();
    }
}
